(* The experiment harness: regenerates every table and figure of the
   paper's Section 6, plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- fig15a fig16c  -- run a subset

   Experiments: fig15a fig15b fig15c fig16a fig16b fig16c
                abl-sea abl-fuse abl-idx abl-plan abl-compile abl-simjoin
                serve-cache serve-parallel micro

   Absolute times differ from the paper (their substrate was Xindice on a
   1.4 GHz Windows 2000 PC); the shapes -- who wins, by what factor, and
   the growth trends -- are the reproduction target. See EXPERIMENTS.md. *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Printer = Toss_xml.Printer
module Collection = Toss_store.Collection
module Hierarchy = Toss_hierarchy.Hierarchy
module Lexicon = Toss_ontology.Lexicon
module Fusion = Toss_ontology.Fusion
module Maker = Toss_ontology.Maker
module Interop = Toss_ontology.Interop
module Ontology = Toss_ontology.Ontology
module Sea = Toss_similarity.Sea
module Levenshtein = Toss_similarity.Levenshtein
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Sigmod_gen = Toss_data.Sigmod_gen
module Workload = Toss_data.Workload
module Quality = Toss_eval.Quality
module Rewrite = Toss_core.Rewrite
module Simjoin = Toss_core.Simjoin
module Engine = Toss_server.Engine
module Protocol = Toss_server.Protocol
module Server = Toss_server.Server
module Transport = Toss_server.Transport
module Client = Toss_server.Client
module Shard_map = Toss_shard.Shard_map
module Router = Toss_shard.Router
module Loadgen = Toss_shard.Loadgen
module B = Toss_eval.Bench_util

let metric = Workload.experiment_metric

(* Every experiment also persists its table as CSV + gnuplot under this
   directory, so figures can be re-plotted from a run's artifacts. *)
let results_dir = "bench_results"

(* Each experiment's JSON artifact embeds the metrics accumulated since
   the previous [emit], so a row's timings come with the index hit rates,
   rewrite fan-outs and embedding counts that explain them; the registry
   is then reset to scope the next experiment's snapshot. *)
let emit name ~columns rows =
  B.print_table ~columns rows;
  let series = Toss_eval.Series.v ~name ~columns rows in
  let metrics = Toss_obs.Metrics.to_json (Toss_obs.Metrics.snapshot ()) in
  let paths = Toss_eval.Series.save_all ~dir:results_dir ~metrics [ series ] in
  Toss_obs.Metrics.reset ();
  Printf.printf "(artifacts: %s)\n" (String.concat ", " paths)

(* ------------------------------------------------------------------ *)
(* Shared data preparation                                              *)
(* ------------------------------------------------------------------ *)

(* Bench collections are write-once: build, then hand the executor an
   immutable snapshot (the only form it accepts since the MVCC split). *)
let collection_of_tree name tree =
  let c = Collection.create name in
  ignore (Collection.add_document c tree);
  Collection.snapshot c

let collection_of_trees name trees =
  let c = Collection.create name in
  List.iter (fun t -> ignore (Collection.add_document c t)) trees;
  Collection.snapshot c

let seo_of_docs ?lexicon ?content_tags ?max_content_terms ~eps docs =
  match
    Seo.of_documents ~metric ~eps ?lexicon ?content_tags ?max_content_terms docs
  with
  | Ok seo -> seo
  | Error msg -> failwith ("SEO precomputation failed: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Figure 15: recall / precision / quality on the 12-query workload      *)
(* ------------------------------------------------------------------ *)

type f15_row = {
  dataset : int;
  query_id : int;
  tax : float * float;  (** precision, recall *)
  toss2 : float * float;
  toss3 : float * float;
}

let f15_rows = ref None

let f15_compute () =
  match !f15_rows with
  | Some rows -> rows
  | None ->
      let rows =
        List.concat_map
          (fun ds ->
            (* "3 data sets (each containing 100 random papers)" *)
            let corpus = Corpus.generate ~seed:(100 + ds) ~n_papers:100 () in
            let rendered = Dblp_gen.render ~seed:(100 + ds) corpus in
            let doc = Doc.of_tree rendered.Dblp_gen.tree in
            let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
            (* The queries test author (~) and venue (isa) content, so only
               those tags' values need to enter the ontology. *)
            let seo2 = seo_of_docs ~content_tags:[ "author"; "booktitle" ] ~eps:2.0 [ doc ] in
            let seo3 = seo_of_docs ~content_tags:[ "author"; "booktitle" ] ~eps:3.0 [ doc ] in
            let queries = Workload.selection_queries ~n:4 corpus in
            List.map
              (fun (q : Workload.query) ->
                let run seo mode =
                  let results, _ =
                    Executor.select ~mode seo coll ~pattern:q.Workload.pattern
                      ~sl:q.Workload.sl
                  in
                  let returned = Workload.result_keys results in
                  ( Quality.precision ~correct:q.Workload.correct ~returned,
                    Quality.recall ~correct:q.Workload.correct ~returned )
                in
                {
                  dataset = ds;
                  query_id = q.Workload.query_id;
                  tax = run seo2 Executor.Tax;
                  toss2 = run seo2 Executor.Toss;
                  toss3 = run seo3 Executor.Toss;
                })
              queries)
          [ 1; 2; 3 ]
      in
      f15_rows := Some rows;
      rows

let fig15a () =
  B.print_header
    "Figure 15(a): precision and recall of TAX vs TOSS, 12 selection queries";
  let rows = f15_compute () in
  emit "fig15a"
    ~columns:
      [ "query"; "TAX p"; "TAX r"; "TOSS(2) p"; "TOSS(2) r"; "TOSS(3) p"; "TOSS(3) r" ]
    (List.mapi
       (fun i r ->
         [
           Printf.sprintf "Q%d (ds%d)" (i + 1) r.dataset;
           B.f3 (fst r.tax); B.f3 (snd r.tax);
           B.f3 (fst r.toss2); B.f3 (snd r.toss2);
           B.f3 (fst r.toss3); B.f3 (snd r.toss3);
         ])
       rows);
  let avg f = Quality.mean (List.map f rows) in
  Printf.printf
    "\naverages: TAX p=%s r=%s | TOSS(2) p=%s r=%s | TOSS(3) p=%s r=%s\n"
    (B.f3 (avg (fun r -> fst r.tax))) (B.f3 (avg (fun r -> snd r.tax)))
    (B.f3 (avg (fun r -> fst r.toss2))) (B.f3 (avg (fun r -> snd r.toss2)))
    (B.f3 (avg (fun r -> fst r.toss3))) (B.f3 (avg (fun r -> snd r.toss3)));
  Printf.printf
    "paper: TAX p=1.000 (r<0.5 for 75%% of queries) | TOSS(2) p=0.987 r=0.596 | TOSS(3) p=0.942 r=0.843\n"

let fig15b () =
  B.print_header
    "Figure 15(b): quality sqrt(p*r) against sqrt(TAX recall) per query";
  let rows = f15_compute () in
  let q (p, r) = Quality.quality ~precision:p ~recall:r in
  emit "fig15b"
    ~columns:[ "query"; "sqrt(TAX r)"; "TAX quality"; "TOSS(2) quality"; "TOSS(3) quality" ]
    (List.mapi
       (fun i r ->
         [
           Printf.sprintf "Q%d (ds%d)" (i + 1) r.dataset;
           B.f3 (sqrt (snd r.tax));
           B.f3 (q r.tax); B.f3 (q r.toss2); B.f3 (q r.toss3);
         ])
       rows);
  let dominated =
    List.length
      (List.filter (fun r -> q r.toss3 >= q r.tax -. 1e-9) rows)
  in
  Printf.printf "\nTOSS(3) quality >= TAX quality on %d of %d queries\n" dominated
    (List.length rows);
  Printf.printf "paper: TOSS(3) outperforms TAX on all queries except the 3 with TAX recall 1\n"

let fig15c () =
  B.print_header "Figure 15(c): recall improvement over TAX, normalized by precision";
  let rows = f15_compute () in
  let norm (p, r) = p *. r in
  emit "fig15c"
    ~columns:[ "query"; "TAX p*r"; "TOSS(2) p*r"; "TOSS(3) p*r"; "TOSS(3)/TAX" ]
    (List.mapi
       (fun i r ->
         let base = norm r.tax in
         let ratio =
           if base = 0. then (if norm r.toss3 > 0. then "inf" else "1.00")
           else B.f2 (norm r.toss3 /. base)
         in
         [
           Printf.sprintf "Q%d (ds%d)" (i + 1) r.dataset;
           B.f3 base; B.f3 (norm r.toss2); B.f3 (norm r.toss3); ratio;
         ])
       rows);
  let doubled =
    List.length
      (List.filter (fun r -> norm r.toss3 >= 2. *. norm r.tax && norm r.tax > 0.) rows)
    + List.length (List.filter (fun r -> norm r.tax = 0. && norm r.toss3 > 0.) rows)
  in
  Printf.printf "\nnormalized recall at least doubled on %d of %d queries\n" doubled
    (List.length rows);
  Printf.printf "paper: most queries get their normalized recall more than doubled at eps=3\n"

(* ------------------------------------------------------------------ *)
(* Figure 16(a): selection scalability                                   *)
(* ------------------------------------------------------------------ *)

(* Ontology sizes: the seeded lexicon padded with synthetic concepts, to
   mimic the paper's ~250/1000/1700-term ontologies. *)
let padded_lexicon extra =
  if extra = 0 then Lexicon.seeded
  else begin
    let synth = Lexicon.synthetic ~seed:5 ~n_terms:extra in
    (* Merge by replaying the synthetic isa pairs into the seeded lexicon. *)
    let h = Lexicon.isa_hierarchy synth in
    List.fold_left
      (fun lex (lo, hi) ->
        Lexicon.add_isa
          ~sub:(Toss_hierarchy.Node.representative lo)
          ~super:(Toss_hierarchy.Node.representative hi)
          lex)
      Lexicon.seeded (Hierarchy.edges h)
  end

let fig16a () =
  B.print_header
    "Figure 16(a): selection scalability -- time vs data size, per ontology size";
  let pattern, sl = Workload.scalability_selection () in
  let sizes = [ 500; 1000; 2000; 4000; 8000; 16000 ] in
  let ontologies = [ ("small", 0); ("medium", 750); ("large", 1500) ] in
  (* Venue vocabulary is size-independent, so one SEO per ontology size
     (the paper precomputes the SEO too). *)
  let probe = Dblp_gen.render ~seed:0 (Corpus.generate ~seed:0 ~n_papers:200 ()) in
  let seos =
    List.map
      (fun (name, extra) ->
        let lexicon = padded_lexicon extra in
        let seo =
          seo_of_docs ~lexicon ~content_tags:[ "booktitle" ] ~eps:2.0
            [ Doc.of_tree probe.Dblp_gen.tree ]
        in
        (name, seo))
      ontologies
  in
  let rows =
    List.map
      (fun n_papers ->
        let corpus = Corpus.generate ~seed:16 ~n_papers () in
        let rendered = Dblp_gen.render ~seed:16 corpus in
        let bytes = Printer.byte_size rendered.Dblp_gen.tree in
        let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
        let time_of seo mode =
          let _, stats = Executor.select ~mode seo coll ~pattern ~sl in
          Executor.total_s stats.Executor.phases
        in
        let tax = time_of (snd (List.hd seos)) Executor.Tax in
        let toss_times =
          List.map (fun (name, seo) -> (name, time_of seo Executor.Toss)) seos
        in
        (n_papers, bytes, tax, toss_times))
      sizes
  in
  emit "fig16a"
    ~columns:
      [ "papers"; "KB"; "TAX (s)"; "TOSS small (s)"; "TOSS medium (s)"; "TOSS large (s)" ]
    (List.map
       (fun (n, bytes, tax, toss) ->
         [
           string_of_int n;
           string_of_int (bytes / 1024);
           B.fs tax;
           B.fs (List.assoc "small" toss);
           B.fs (List.assoc "medium" toss);
           B.fs (List.assoc "large" toss);
         ])
       rows);
  Printf.printf
    "\npaper: ~linear in data size; TOSS within a small constant of TAX,\n\
     nearly independent of ontology size; the gap grows with data size\n"

(* ------------------------------------------------------------------ *)
(* Figure 16(b): join scalability                                        *)
(* ------------------------------------------------------------------ *)

let join_setup ~seed ~n_papers ~eps =
  let corpus = Corpus.generate ~seed ~n_papers () in
  let d = Dblp_gen.render ~seed corpus in
  let s = Sigmod_gen.render ~seed corpus in
  let left = collection_of_tree "dblp" d.Dblp_gen.tree in
  let right = collection_of_trees "sigmod" s.Sigmod_gen.trees in
  let bytes =
    Printer.byte_size d.Dblp_gen.tree
    + List.fold_left (fun acc t -> acc + Printer.byte_size t) 0 s.Sigmod_gen.trees
  in
  let docs = Doc.of_tree d.Dblp_gen.tree :: List.map Doc.of_tree s.Sigmod_gen.trees in
  let seo =
    seo_of_docs ~content_tags:[ "booktitle"; "conference" ] ~eps docs
  in
  (left, right, bytes, seo)

(* An equality cross-condition join: the planner lowers it to a hash
   pairing, while [~planner:false] keeps the all-pairs nested loop. The
   planner-sensitive benchmarks self-join DBLP on the paper title --
   each title pairs with only itself, so the nested loop's |L|x|R|
   evaluations dwarf the answer and the hash pairing's advantage is what
   gets measured, not result materialization. *)
let equi_join_pattern ~ltag ~lleaf ~rtag ~rleaf () =
  let open Pattern in
  let left = node 1 [ pc (leaf 2) ] in
  let right = node 3 [ pc (leaf 4) ] in
  let root = node 0 [ ad left; ad right ] in
  let condition =
    Condition.conj
      [
        Condition.tag_eq 0 Toss_tax.Algebra.prod_root_tag;
        Condition.tag_eq 1 ltag;
        Condition.tag_eq 2 lleaf;
        Condition.tag_eq 3 rtag;
        Condition.tag_eq 4 rleaf;
        Condition.Cmp (Condition.Content 2, Condition.Eq, Condition.Content 4);
      ]
  in
  (v root condition, [ 1; 3 ])

let title_self_join () =
  equi_join_pattern ~ltag:"inproceedings" ~lleaf:"title" ~rtag:"inproceedings"
    ~rleaf:"title" ()

(* The similarity twin of [title_self_join]: the cross atom is [~], so
   the planner lowers it to the signature-indexed sim pairing while
   [~simjoin:false] keeps the nested loop. With the titles in the
   ontology each title's cluster is essentially itself, so the answer
   stays linear in the corpus while the pair space grows quadratically
   -- the regime the signature index exists for. *)
let title_sim_self_join () =
  let open Pattern in
  let left = node 1 [ pc (leaf 2) ] in
  let right = node 3 [ pc (leaf 4) ] in
  let root = node 0 [ ad left; ad right ] in
  let condition =
    Condition.conj
      [
        Condition.tag_eq 0 Toss_tax.Algebra.prod_root_tag;
        Condition.tag_eq 1 "inproceedings";
        Condition.tag_eq 2 "title";
        Condition.tag_eq 3 "inproceedings";
        Condition.tag_eq 4 "title";
        Condition.Sim (Condition.Content 2, Condition.Content 4);
      ]
  in
  (v root condition, [ 1; 3 ])

let fig16b () =
  B.print_header "Figure 16(b): join scalability -- time vs total data size";
  let pattern, sl = Workload.join_query () in
  let sizes = [ 100; 200; 400; 800 ] in
  let rows =
    List.map
      (fun n_papers ->
        let left, right, bytes, seo = join_setup ~seed:26 ~n_papers ~eps:2.0 in
        let time_of mode =
          let results, stats = Executor.join ~mode seo left right ~pattern ~sl in
          (List.length results, Executor.total_s stats.Executor.phases)
        in
        let tax_n, tax_t = time_of Executor.Tax in
        let toss_n, toss_t = time_of Executor.Toss in
        (n_papers, bytes, tax_n, tax_t, toss_n, toss_t))
      sizes
  in
  emit "fig16b"
    ~columns:[ "papers/side"; "total KB"; "TAX res"; "TAX (s)"; "TOSS res"; "TOSS (s)" ]
    (List.map
       (fun (n, bytes, tn, tt, on_, ot) ->
         [
           string_of_int n; string_of_int (bytes / 1024);
           string_of_int tn; B.fs tt; string_of_int on_; B.fs ot;
         ])
       rows);
  Printf.printf
    "\npaper: linear until the intermediate result dominates, then superlinear;\n\
     the TAX-TOSS gap grows with data size (more ontology accesses)\n"

(* ------------------------------------------------------------------ *)
(* Figure 16(c): TOSS computation time vs eps                            *)
(* ------------------------------------------------------------------ *)

let fig16c () =
  B.print_header "Figure 16(c): TOSS query time against the similarity threshold eps";
  let eps_values = [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
  (* Selection side: fixed data, ontology rebuilt per eps (the SEO depends
     on eps); only query time is reported, as in the paper. *)
  let sel_pattern, sel_sl = Workload.scalability_selection () in
  let sel_corpus = Corpus.generate ~seed:36 ~n_papers:2000 () in
  let sel_rendered = Dblp_gen.render ~seed:36 sel_corpus in
  let sel_coll = collection_of_tree "dblp" sel_rendered.Dblp_gen.tree in
  let sel_doc = Doc.of_tree sel_rendered.Dblp_gen.tree in
  let join_pattern, join_sl = Workload.join_query () in
  let rows =
    List.map
      (fun eps ->
        let seo =
          seo_of_docs ~content_tags:[ "booktitle" ] ~eps [ sel_doc ]
        in
        let (sel_results, _), sel_t =
          B.time_median ~runs:3 (fun () ->
              Executor.select ~mode:Executor.Toss seo sel_coll ~pattern:sel_pattern
                ~sl:sel_sl)
        in
        let left, right, _, join_seo = join_setup ~seed:36 ~n_papers:300 ~eps in
        let (join_results, _), join_t =
          B.time_median ~runs:3 (fun () ->
              Executor.join ~mode:Executor.Toss join_seo left right
                ~pattern:join_pattern ~sl:join_sl)
        in
        (eps, sel_t, List.length sel_results, join_t, List.length join_results))
      eps_values
  in
  emit "fig16c"
    ~columns:[ "eps"; "selection (s)"; "sel results"; "join (s)"; "join results" ]
    (List.map
       (fun (e, st, sn, jt, jn) ->
         [ B.f2 e; B.fs st; string_of_int sn; B.fs jt; string_of_int jn ])
       rows);
  Printf.printf
    "\npaper: both selection and join time increase approximately linearly\n\
     with eps (larger SEO nodes mean larger expansions and results).\n\
     At eps = 4 the venue vocabulary becomes similarity INCONSISTENT\n\
     (Definition 9): the existential SEA lift cycles, the universal-lift\n\
     fallback drops the venue orderings, and the selection result collapses\n\
     -- the practical reason the paper's thresholds stop at eps = 3.\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                             *)
(* ------------------------------------------------------------------ *)

let abl_sea () =
  B.print_header "Ablation: SEA cost vs ontology size and eps";
  let sizes = [ 200; 400; 800; 1600 ] in
  let rows =
    List.map
      (fun n ->
        let lex = Lexicon.synthetic ~seed:4 ~n_terms:n in
        let h = Lexicon.isa_hierarchy lex in
        let time_at eps =
          let _, t =
            B.time (fun () -> Sea.enhance ~metric:Levenshtein.metric ~eps h)
          in
          t
        in
        (n, time_at 1.0, time_at 2.0))
      sizes
  in
  emit "abl-sea"
    ~columns:[ "terms"; "SEA eps=1 (s)"; "SEA eps=2 (s)" ]
    (List.map (fun (n, t1, t2) -> [ string_of_int n; B.fs t1; B.fs t2 ]) rows);
  Printf.printf
    "\nsupports the paper's architecture: the SEO is precomputed once, so\n\
     this quadratic-ish cost stays out of the per-query path\n"

let abl_fuse () =
  B.print_header "Ablation: fusion cost vs number of hierarchies";
  let make_hierarchy i =
    let corpus = Corpus.generate ~seed:(50 + i) ~n_papers:150 () in
    let rendered = Dblp_gen.render ~seed:(50 + i) corpus in
    let o = Maker.make (Doc.of_tree rendered.Dblp_gen.tree) in
    Ontology.get Ontology.isa o
  in
  let hierarchies = List.init 6 make_hierarchy in
  let rows =
    List.map
      (fun k ->
        let hs = List.filteri (fun i _ -> i < k) hierarchies in
        let terms = List.fold_left (fun n h -> n + List.length (Hierarchy.terms h)) 0 hs in
        let r, t = B.time (fun () -> Fusion.fuse hs []) in
        let fused_nodes =
          match r with Ok { Fusion.fused; _ } -> Hierarchy.n_nodes fused | Error _ -> -1
        in
        (k, terms, fused_nodes, t))
      [ 2; 3; 4; 5; 6 ]
  in
  emit "abl-fuse"
    ~columns:[ "hierarchies"; "input terms"; "fused nodes"; "time (s)" ]
    (List.map
       (fun (k, terms, nodes, t) ->
         [ string_of_int k; string_of_int terms; string_of_int nodes; B.fs t ])
       rows)

let abl_plan () =
  B.print_header
    "Ablation: cost-aware planner on vs off (equality join, hash vs nested loop)";
  let pattern, sl = title_self_join () in
  let rows =
    List.map
      (fun n_papers ->
        let corpus = Corpus.generate ~seed:71 ~n_papers () in
        let rendered = Dblp_gen.render ~seed:71 corpus in
        let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
        let seo =
          seo_of_docs ~content_tags:[ "booktitle" ] ~eps:2.0
            [ Doc.of_tree rendered.Dblp_gen.tree ]
        in
        let time_of planner =
          let (results, _), t =
            B.time_median ~runs:3 (fun () ->
                Executor.join ~mode:Executor.Tax ~planner seo coll coll
                  ~pattern ~sl)
          in
          (List.length results, t)
        in
        let n_naive, naive = time_of false in
        let n_plan, planned = time_of true in
        assert (n_naive = n_plan);
        (n_papers, n_plan, naive, planned))
      [ 200; 400; 800 ]
  in
  emit "abl-plan"
    ~columns:[ "papers/side"; "results"; "nested loop (s)"; "planned (s)"; "speedup" ]
    (List.map
       (fun (n, res, naive, planned) ->
         [
           string_of_int n; string_of_int res; B.fs naive; B.fs planned;
           B.f2 (naive /. planned);
         ])
       rows);
  Printf.printf
    "\nthe gap widens with size: the nested loop evaluates the cross-condition\n\
     on every left x right pair, the hash pairing only on key matches\n"

let abl_simjoin () =
  B.print_header
    "Ablation: similarity-join operator on vs off (sim-pair vs nested loop)";
  let pattern, sl = title_sim_self_join () in
  let rows =
    List.map
      (fun n_papers ->
        let corpus = Corpus.generate ~seed:73 ~n_papers () in
        let rendered = Dblp_gen.render ~seed:73 corpus in
        (* Two documents, not one: the planner's build-side statistic is
           the document count, and a single-document build side takes the
           tiny-build nested-loop fallback. The empty sibling changes no
           results. *)
        let coll =
          collection_of_trees "dblp"
            [ rendered.Dblp_gen.tree; Toss_xml.Parser.parse_exn "<dblp/>" ]
        in
        (* Titles enter the ontology so [~] is judged on SEO clusters,
           not the metric fallback -- the case the signature index
           accelerates. *)
        let seo =
          seo_of_docs ~content_tags:[ "title" ] ~eps:2.0
            [ Doc.of_tree rendered.Dblp_gen.tree ]
        in
        let time_of simjoin =
          let (results, _), t =
            B.time_median ~runs:3 (fun () ->
                Executor.join ~mode:Executor.Toss ~simjoin seo coll coll
                  ~pattern ~sl)
          in
          (results, t)
        in
        let r_naive, naive = time_of false in
        let r_sim, sim = time_of true in
        (* Witness-for-witness: the operator must reproduce the nested
           loop's answer exactly (both paths emit in build order, so
           plain list equality is the strongest available check). *)
        assert (r_naive = r_sim);
        (n_papers, List.length r_sim, naive, sim))
      [ 200; 400; 800 ]
  in
  emit "abl-simjoin"
    ~columns:
      [ "papers/side"; "results"; "nested loop (s)"; "sim-pair (s)"; "speedup" ]
    (List.map
       (fun (n, res, naive, sim) ->
         [
           string_of_int n; string_of_int res; B.fs naive; B.fs sim;
           B.f2 (naive /. sim);
         ])
       rows);
  Printf.printf
    "\nthe nested loop scores every left x right pair; the sim pairing\n\
     probes the frequency-ordered signature prefix index and re-checks\n\
     only the candidates, so its cost tracks the answer, not the pair\n\
     space -- the gap widens quadratically with the corpus\n"

let abl_compile () =
  B.print_header
    "Ablation: compiled single-pass matcher vs interpreted scan/prune/embed";
  let pattern, sl = Workload.scalability_selection () in
  let rows =
    List.map
      (fun n_papers ->
        let corpus = Corpus.generate ~seed:81 ~n_papers () in
        let rendered = Dblp_gen.render ~seed:81 corpus in
        let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
        let seo =
          seo_of_docs ~content_tags:[ "booktitle" ] ~eps:2.0
            [ Doc.of_tree rendered.Dblp_gen.tree ]
        in
        let time_of compile =
          let (results, _), t =
            B.time_median ~runs:5 (fun () ->
                Executor.select ~mode:Executor.Toss ~compile seo coll ~pattern ~sl)
          in
          (List.length results, t)
        in
        let n_i, interp = time_of false in
        let n_c, compiled = time_of true in
        assert (n_i = n_c);
        (n_papers, n_c, interp, compiled))
      [ 500; 1000; 2000 ]
  in
  emit "abl-compile"
    ~columns:[ "papers"; "results"; "interpreted (s)"; "compiled (s)"; "speedup" ]
    (List.map
       (fun (n, res, interp, compiled) ->
         [
           string_of_int n; string_of_int res; B.fs interp; B.fs compiled;
           B.f2 (interp /. compiled);
         ])
       rows);
  Printf.printf
    "\nsame answers by construction (the differential harness holds both\n\
     paths to the oracle); the compiled matcher skips the store scans and\n\
     per-document pruning and decides every pattern node in one arena pass\n"

let abl_idx () =
  B.print_header "Ablation: store value indexes on vs off (Figure 16(a) query)";
  let pattern, sl = Workload.scalability_selection () in
  let rows =
    List.map
      (fun n_papers ->
        let corpus = Corpus.generate ~seed:61 ~n_papers () in
        let rendered = Dblp_gen.render ~seed:61 corpus in
        let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
        let seo =
          seo_of_docs ~content_tags:[ "booktitle" ] ~eps:2.0
            [ Doc.of_tree rendered.Dblp_gen.tree ]
        in
        let time_of use_index =
          let _, stats = Executor.select ~use_index seo coll ~pattern ~sl in
          Executor.total_s stats.Executor.phases
        in
        (n_papers, time_of true, time_of false))
      [ 500; 1000; 2000 ]
  in
  emit "abl-idx"
    ~columns:[ "papers"; "indexed (s)"; "unindexed (s)" ]
    (List.map (fun (n, ti, tu) -> [ string_of_int n; B.fs ti; B.fs tu ]) rows)

(* ------------------------------------------------------------------ *)
(* Serving: the versioned result cache, cold vs warm vs disabled        *)
(* ------------------------------------------------------------------ *)

(* Runs against the server's in-process engine (no socket, no pool), so
   the numbers isolate the cache itself rather than transport costs. *)
let serve_tql =
  "MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa \"database conference\" SELECT #1"

let serve_engine ~seed ~n_papers =
  let eng =
    (* The same measure `toss serve` runs, so the numbers match the
       deployed configuration. *)
    match Engine.create ~metric:Workload.experiment_metric () with
    | Ok eng -> eng
    | Error msg -> failwith ("serve engine creation failed: " ^ msg)
  in
  let rendered = Dblp_gen.render ~seed (Corpus.generate ~seed ~n_papers ()) in
  let xml = Printer.to_string rendered.Dblp_gen.tree in
  (match
     Engine.exec eng ~deadline:None (Protocol.Insert { collection = "dblp"; xml })
   with
  | Ok _ -> ()
  | Error e -> failwith ("serve insert failed: " ^ e.Protocol.message));
  eng

let serve_query ?(cache = true) eng =
  match
    Engine.exec eng ~deadline:None
      (Protocol.Query
         { collection = "dblp"; tql = serve_tql; mode = Executor.Toss; cache })
  with
  | Ok payload -> payload
  | Error e -> failwith ("serve query failed: " ^ e.Protocol.message)

let cache_status payload =
  match Toss_json.member "cache" payload with
  | Some (Toss_json.Str s) -> s
  | _ -> "?"

let serve_cache () =
  B.print_header
    "Serving: result cache cold vs warm vs disabled (in-process engine)";
  let rows =
    List.map
      (fun n_papers ->
        let eng = serve_engine ~seed:91 ~n_papers in
        (* The first query pays the SEO precompute and populates the
           cache for the collection's current version. *)
        let first, cold_t = B.time (fun () -> serve_query eng) in
        assert (cache_status first = "miss");
        (* A single hit is near the clock's resolution; time batches of
           100 and report the per-hit median. *)
        let warm, warm_t =
          B.time_median ~runs:11 (fun () ->
              let last = ref Toss_json.Null in
              for _ = 1 to 100 do last := serve_query eng done;
              !last)
        in
        let warm_t = warm_t /. 100. in
        assert (cache_status warm = "hit");
        let off, off_t =
          B.time_median ~runs:5 (fun () -> serve_query ~cache:false eng)
        in
        assert (cache_status off = "miss");
        (* A write invalidates: the very next cached query misses again,
           at the bumped collection version. *)
        (match
           Engine.exec eng ~deadline:None
             (Protocol.Insert
                {
                  collection = "dblp";
                  xml = "<inproceedings><title>x</title></inproceedings>";
                })
         with
        | Ok _ -> ()
        | Error e -> failwith ("serve invalidating insert failed: " ^ e.Protocol.message));
        let post, post_t = B.time (fun () -> serve_query eng) in
        assert (cache_status post = "miss");
        (n_papers, cold_t, off_t, warm_t, post_t))
      [ 100; 250; 500 ]
  in
  emit "serve-cache"
    ~columns:
      [
        "papers"; "cold (s)"; "uncached (s)"; "warm hit (s)"; "post-insert (s)";
        "hit speedup";
      ]
    (List.map
       (fun (n, cold, off, warm, post) ->
         [
           string_of_int n; B.fs cold; B.fs off; B.fs warm; B.fs post;
           B.f2 (off /. warm);
         ])
       rows);
  Printf.printf
    "\ncold pays the SEO precompute; a warm hit skips execution entirely;\n\
     an insert bumps the collection version so the next query misses --\n\
     a cached result is never served across a write\n"

(* The parallel read path: N worker domains hammer the same collection
   with the uncached query for a fixed window; the row is completed
   queries per second. Every query pins its own MVCC snapshot and runs
   lock-free, so on an M-core machine QPS should scale up to
   min(domains, M). The experiment is also a gate: wherever the core
   count allows real parallelism the rate must climb step to step, and
   where it doesn't (domains > cores) oversubscription must not
   collapse throughput. *)
let serve_parallel_qps eng ~n_domains ~duration_s =
  let stop_at = Unix.gettimeofday () +. duration_s in
  let one () =
    let n = ref 0 in
    while Unix.gettimeofday () < stop_at do
      ignore (serve_query ~cache:false eng);
      incr n
    done;
    !n
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn one) in
  let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  float_of_int total /. duration_s

let serve_parallel () =
  B.print_header
    "Serving: parallel read path -- uncached QPS vs worker domains";
  let eng = serve_engine ~seed:91 ~n_papers:100 in
  (* Pay the SEO precompute once, outside the measured windows. *)
  ignore (serve_query ~cache:false eng);
  let cores = Domain.recommended_domain_count () in
  let duration_s = 0.5 in
  let levels = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun n -> (n, serve_parallel_qps eng ~n_domains:n ~duration_s))
      levels
  in
  let qps1 = match rows with (_, q) :: _ -> q | [] -> 1. in
  emit "serve-parallel"
    ~columns:[ "domains"; "qps"; "speedup vs 1" ]
    (List.map
       (fun (n, qps) -> [ string_of_int n; B.f2 qps; B.f2 (qps /. qps1) ])
       rows);
  Printf.printf
    "\n%d core(s) available: queries pin immutable snapshots and run with\n\
     no lock held, so QPS scales with domains up to the core count\n"
    cores;
  (* The gate. Up to the core count each doubling of domains must
     actually climb (1.2x per step is well under the ~2x ideal, leaving
     room for noise). Past the core count parallelism is fictional --
     domains time-share one core and every minor GC is a cross-domain
     rendezvous -- so the only requirement is that oversubscription
     does not destroy throughput relative to the best honest level. *)
  let capacity_qps =
    List.fold_left
      (fun acc (n, qps) -> if cores >= n then Some qps else acc)
      None rows
  in
  List.iter2
    (fun (n_prev, qps_prev) (n_next, qps_next) ->
      if cores >= n_next && qps_next < qps_prev *. 1.2 then
        failwith
          (Printf.sprintf
             "serve-parallel gate: %d -> %d domains only scaled %.2fx on %d cores"
             n_prev n_next (qps_next /. qps_prev) cores))
    (List.filteri (fun i _ -> i < List.length rows - 1) rows)
    (List.tl rows);
  List.iter
    (fun (n, qps) ->
      match capacity_qps with
      | Some cap when n > cores && qps < cap *. 0.25 ->
          failwith
            (Printf.sprintf
               "serve-parallel gate: %d domains on %d core(s) fell to %.2fx of the \
                in-capacity rate"
               n cores (qps /. cap))
      | _ -> ())
    rows;
  Printf.printf "serve-parallel gate: PASS\n"

(* ------------------------------------------------------------------ *)
(* Serving: scale-out -- router over shards vs a single server           *)
(* ------------------------------------------------------------------ *)

(* In-process deployment helpers: start a server/router thread, wait for
   its ready callback, return the resolved address and a stop function
   (shutdown over the wire + join). *)
(* [Condition] names the TQL predicate module here, so the thread
   primitive needs qualifying. *)
module Condvar = Stdlib.Condition

let spawn_serving run =
  let ready = Mutex.create () in
  let cond = Condvar.create () in
  let started = ref false in
  let resolved = ref "" in
  let outcome = ref (Ok ()) in
  let thread =
    Thread.create
      (fun () ->
        outcome :=
          run (fun addr ->
              Mutex.lock ready;
              resolved := addr;
              started := true;
              Condvar.signal cond;
              Mutex.unlock ready))
      ()
  in
  Mutex.lock ready;
  while not !started do
    Condvar.wait cond ready
  done;
  Mutex.unlock ready;
  let stop () =
    (match Client.connect !resolved with
    | Ok conn ->
        ignore (Client.call conn Protocol.Shutdown);
        Client.close conn
    | Error _ -> ());
    Thread.join thread;
    match !outcome with
    | Ok () -> ()
    | Error msg -> failwith ("serving thread exited with: " ^ msg)
  in
  (!resolved, stop)

let temp_socket prefix =
  let path = Filename.temp_file prefix ".sock" in
  Sys.remove path;
  path

let spawn_server ?(domains = 2) () =
  let listen = Transport.Unix_sock (temp_socket "toss_bench_srv") in
  let config = { (Server.default_config ~listen) with Server.domains } in
  spawn_serving (fun ready -> Server.run ~ready config)

let spawn_router shards =
  let listen = Transport.Unix_sock (temp_socket "toss_bench_rtr") in
  let map =
    match Shard_map.make ~shards ~replicated:[] with
    | Ok m -> m
    | Error msg -> failwith msg
  in
  spawn_serving (fun ready ->
      Router.run ~ready (Router.default_config ~listen ~map))

(* Open-loop latency of a single server vs a router over two shards, at
   the same offered load -- the scale-out acceptance experiment. The
   single server additionally gets a closed-loop [Client.bench] pass
   with the same request count, whose rosy tail illustrates exactly the
   coordinated omission [toss loadgen] exists to avoid (the open-loop
   percentiles are measured from each request's scheduled arrival). *)
let serve_sharded () =
  B.print_header
    "Serving: sharded scatter-gather vs single server (open-loop loadgen)";
  let requests = 300 and qps = 150. in
  let loadgen target =
    let cfg =
      {
        (Loadgen.default_config ~target) with
        Loadgen.requests;
        qps;
        concurrency = 8;
        n_papers = 40;
      }
    in
    match Loadgen.run cfg with
    | Ok r ->
        if Loadgen.failed r then
          failwith
            (Printf.sprintf "serve-sharded: %d transport errors against %s"
               r.Loadgen.transport_errors target);
        r
    | Error msg -> failwith ("serve-sharded loadgen: " ^ msg)
  in
  (* Single server, open loop. *)
  let single_addr, stop_single = spawn_server () in
  let single = loadgen single_addr in
  (* Same server, closed loop, the same template mix the open-loop run
     drew from (the corpus it ingested is still resident): each worker
     waits for its previous response, so queueing delay never accrues
     to any request's latency. *)
  let closed =
    let mix = Loadgen.query_mix ~seed:42 ~n_papers:40 in
    match
      Client.bench ~socket:single_addr ~requests ~concurrency:8 (fun i ->
          Protocol.Query
            {
              collection = "bib";
              tql = mix.(i mod Array.length mix);
              mode = Executor.Toss;
              cache = true;
            })
    with
    | Ok r -> r
    | Error msg -> failwith ("serve-sharded closed-loop bench: " ^ msg)
  in
  stop_single ();
  (* Two shards behind the router, same offered load. *)
  let s1, stop1 = spawn_server () in
  let s2, stop2 = spawn_server () in
  let router_addr, stop_router = spawn_router [ s1; s2 ] in
  let sharded = loadgen router_addr in
  stop_router ();
  stop1 ();
  stop2 ();
  let row name (r : Loadgen.report) =
    [
      name;
      B.f2 r.Loadgen.target_qps;
      B.f2 r.Loadgen.achieved_qps;
      string_of_int r.Loadgen.ok;
      B.f2 r.Loadgen.p50_ms;
      B.f2 r.Loadgen.p99_ms;
      B.f2 r.Loadgen.p999_ms;
    ]
  in
  emit "serve-sharded"
    ~columns:
      [ "deployment"; "target qps"; "achieved"; "ok"; "p50 ms"; "p99 ms"; "p999 ms" ]
    [
      row "single" single;
      row "router+2shards" sharded;
      [
        "single (closed loop)"; "-";
        B.f2 (float_of_int closed.Client.requests /. closed.Client.elapsed_s);
        string_of_int closed.Client.ok;
        B.f2 closed.Client.p50_ms; "-"; B.f2 closed.Client.max_ms;
      ];
    ];
  Printf.printf
    "\nopen-loop latency is measured from each request's scheduled Poisson\n\
     arrival, so backlog a slow answer causes is charged to the requests\n\
     it delays; the closed-loop row issues requests only after the previous\n\
     response (coordinated omission) and its tail is optimistic. The router\n\
     must sustain the same offered load as the single server; its per-request\n\
     floor adds one scatter-gather hop.\n";
  (* The acceptance gate from the issue: the sharded deployment sustains
     the target rate no worse than the single server (5% slack for timer
     jitter at the 1-2 s horizon of this experiment). *)
  if sharded.Loadgen.achieved_qps < 0.95 *. single.Loadgen.achieved_qps then
    failwith
      (Printf.sprintf
         "serve-sharded gate: router sustained %.1f qps < single server's %.1f"
         sharded.Loadgen.achieved_qps single.Loadgen.achieved_qps);
  Printf.printf "serve-sharded gate: PASS\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per figure kernel            *)
(* ------------------------------------------------------------------ *)

let micro () =
  B.print_header "Bechamel micro-benchmarks (one kernel per figure)";
  let open Bechamel in
  let corpus = Corpus.generate ~seed:77 ~n_papers:100 () in
  let rendered = Dblp_gen.render ~seed:77 corpus in
  let doc = Doc.of_tree rendered.Dblp_gen.tree in
  let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
  let seo = seo_of_docs ~eps:2.0 [ doc ] in
  let queries = Workload.selection_queries ~n:1 corpus in
  let q = List.hd queries in
  let sel_pattern, sel_sl = Workload.scalability_selection () in
  let small = Corpus.generate ~seed:78 ~n_papers:30 () in
  let sd = Dblp_gen.render ~seed:78 small in
  let ss = Sigmod_gen.render ~seed:78 small in
  let left = collection_of_tree "dblp" sd.Dblp_gen.tree in
  let right = collection_of_trees "sigmod" ss.Sigmod_gen.trees in
  let join_docs =
    Doc.of_tree sd.Dblp_gen.tree :: List.map Doc.of_tree ss.Sigmod_gen.trees
  in
  let join_seo = seo_of_docs ~content_tags:[ "booktitle"; "conference" ] ~eps:2.0 join_docs in
  let join_pattern, join_sl = Workload.join_query () in
  let sea_h = Lexicon.isa_hierarchy (Lexicon.synthetic ~seed:9 ~n_terms:200) in
  let tests =
    [
      Test.make ~name:"fig15-query-toss" (Staged.stage (fun () ->
           ignore
             (Executor.select ~mode:Executor.Toss seo coll ~pattern:q.Workload.pattern
                ~sl:q.Workload.sl)));
      Test.make ~name:"fig15-query-tax" (Staged.stage (fun () ->
           ignore
             (Executor.select ~mode:Executor.Tax seo coll ~pattern:q.Workload.pattern
                ~sl:q.Workload.sl)));
      Test.make ~name:"fig16a-selection" (Staged.stage (fun () ->
           ignore (Executor.select ~mode:Executor.Toss seo coll ~pattern:sel_pattern ~sl:sel_sl)));
      Test.make ~name:"fig16b-join" (Staged.stage (fun () ->
           ignore
             (Executor.join ~mode:Executor.Toss join_seo left right ~pattern:join_pattern
                ~sl:join_sl)));
      Test.make ~name:"fig16c-sea-enhance" (Staged.stage (fun () ->
           ignore (Sea.enhance ~metric:Levenshtein.metric ~eps:2.0 sea_h)));
      Test.make ~name:"kernel-levenshtein" (Staged.stage (fun () ->
           ignore (Levenshtein.distance "Jeffrey David Ullman" "J. D. Ullmann")));
      Test.make ~name:"kernel-name-rules" (Staged.stage (fun () ->
           ignore
             (Toss_similarity.Name_rules.distance "Jeffrey David Ullman" "J. D. Ullman")));
      Test.make ~name:"kernel-xpath-eval" (Staged.stage (fun () ->
           ignore (Collection.Snapshot.eval_string coll "//inproceedings[booktitle='VLDB']/author")));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      let analysis = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* The perf suite and its regression gate                                *)
(* ------------------------------------------------------------------ *)

(* A small, fast, deterministic suite over the same kernels as [micro],
   measured as wall-clock medians so runs are comparable across commits.
   [--quick] records its medians as the baseline artifact (BENCH_8.json
   at the repo root); [--check] re-measures and fails the process when
   any median regressed beyond the tolerance. Older baselines are kept
   so earlier refactors can still be gated against: BENCH_2.json is
   pre-planner, BENCH_3.json pre-server, BENCH_4.json pre-MVCC,
   BENCH_5.json pre-compilation, BENCH_6.json pre-simjoin,
   BENCH_7.json pre-sharding (the gate only iterates baseline entries,
   so kernels newer than a baseline are ignored when checking against
   it). *)
module Baseline = Toss_eval.Baseline

let baseline_label = "toss-perf-suite"
let default_baseline_path = "BENCH_8.json"

let perf_suite ~slowdown () =
  B.print_header "Perf suite (wall-clock medians for the regression gate)";
  let corpus = Corpus.generate ~seed:77 ~n_papers:100 () in
  let rendered = Dblp_gen.render ~seed:77 corpus in
  let doc = Doc.of_tree rendered.Dblp_gen.tree in
  let coll = collection_of_tree "dblp" rendered.Dblp_gen.tree in
  let seo = seo_of_docs ~eps:2.0 [ doc ] in
  let q = List.hd (Workload.selection_queries ~n:1 corpus) in
  let sel_pattern, sel_sl = Workload.scalability_selection () in
  let small = Corpus.generate ~seed:78 ~n_papers:30 () in
  let sd = Dblp_gen.render ~seed:78 small in
  let ss = Sigmod_gen.render ~seed:78 small in
  let left = collection_of_tree "dblp" sd.Dblp_gen.tree in
  let right = collection_of_trees "sigmod" ss.Sigmod_gen.trees in
  let join_docs =
    Doc.of_tree sd.Dblp_gen.tree :: List.map Doc.of_tree ss.Sigmod_gen.trees
  in
  let join_seo =
    seo_of_docs ~content_tags:[ "booktitle"; "conference" ] ~eps:2.0 join_docs
  in
  let join_pattern, join_sl = Workload.join_query () in
  (* Planner-sensitive kernel: an equality self-join big enough that the
     hash pairing visibly beats the all-pairs nested loop. *)
  let eqj = Corpus.generate ~seed:71 ~n_papers:400 () in
  let eqd = Dblp_gen.render ~seed:71 eqj in
  let eq_coll = collection_of_tree "dblp" eqd.Dblp_gen.tree in
  let eq_seo =
    seo_of_docs ~content_tags:[ "booktitle" ] ~eps:2.0
      [ Doc.of_tree eqd.Dblp_gen.tree ]
  in
  let eq_pattern, eq_sl = title_self_join () in
  (* Matcher kernels: the five-label scalability query over a larger
     corpus, one SEO shared by both paths so the medians isolate the
     single-pass compiled matcher against the interpreted
     scan/prune/embed pipeline. *)
  let mc = Corpus.generate ~seed:81 ~n_papers:400 () in
  let md = Dblp_gen.render ~seed:81 mc in
  let m_coll = collection_of_tree "dblp" md.Dblp_gen.tree in
  let m_seo =
    seo_of_docs ~content_tags:[ "booktitle" ] ~eps:2.0
      [ Doc.of_tree md.Dblp_gen.tree ]
  in
  let sea_h = Lexicon.isa_hierarchy (Lexicon.synthetic ~seed:9 ~n_terms:200) in
  let srv = serve_engine ~seed:91 ~n_papers:100 in
  (* Scale-out kernel deployment: the serve-uncached corpus and query,
     but end to end through the scatter-gather router over two shard
     servers -- so the measured delta over [serve-uncached] is the wire
     framing, the fan-out, and the canonical merge. *)
  let shk_s1, shk_stop1 = spawn_server () in
  let shk_s2, shk_stop2 = spawn_server () in
  let shk_router, shk_stop_router = spawn_router [ shk_s1; shk_s2 ] in
  let shk_conn =
    match Client.connect shk_router with
    | Ok c -> c
    | Error msg -> failwith ("serve-sharded kernel connect: " ^ msg)
  in
  let shk_query =
    Protocol.Query
      { collection = "dblp"; tql = serve_tql; mode = Executor.Toss; cache = false }
  in
  (let rendered = Dblp_gen.render ~seed:91 (Corpus.generate ~seed:91 ~n_papers:100 ()) in
   let xml = Printer.to_string rendered.Dblp_gen.tree in
   match Client.call shk_conn (Protocol.Insert { collection = "dblp"; xml }) with
   | Ok _ -> ()
   | Error f -> failwith ("serve-sharded kernel insert: " ^ Client.failure_to_string f));
  (* Similarity-pairing kernels at the 10k x 10k scale the regression
     gate demands. A full executor join at that scale spends minutes in
     the nested loop's per-pair environment plumbing, so the kernels
     measure the pairing itself over the value arrays the operator sees:
     10k probe values against a 10k-record build side drawn from a
     400-term synthetic vocabulary (every eighth term a near-duplicate
     spelling, so SEA clusters exist), plus a 1% unknown tail that lands
     in the metric-fallback bucket. [join-sim] builds the signature
     prefix index, probes it and re-checks every candidate with the
     exact predicate; [join-sim-naive] is the all-pairs reference
     evaluating the same predicate 10^8 times. *)
  let simk_vocab =
    Array.of_list
      (Hierarchy.terms
         (Lexicon.isa_hierarchy (Lexicon.synthetic ~seed:83 ~n_terms:400)))
  in
  let simk_seo =
    (* The vocabulary must occur in a document for the ontology maker to
       keep it, so render it as one leaf per term. *)
    let xml =
      Buffer.create 8192
    in
    Buffer.add_string xml "<vocab>";
    Array.iter
      (fun t ->
        Buffer.add_string xml "<t>";
        Buffer.add_string xml t;
        Buffer.add_string xml "</t>")
      simk_vocab;
    Buffer.add_string xml "</vocab>";
    seo_of_docs ~content_tags:[ "t" ] ~eps:2.0
      [ Doc.of_tree (Toss_xml.Parser.parse_exn (Buffer.contents xml)) ]
  in
  let simk_n = 10_000 in
  let simk_values seed =
    let rng = Random.State.make [| seed; simk_n |] in
    Array.init simk_n (fun _ ->
        if Random.State.int rng 100 = 0 then
          Some (Printf.sprintf "stray term %02d" (Random.State.int rng 50))
        else Some simk_vocab.(Random.State.int rng (Array.length simk_vocab)))
  in
  let simk_build = simk_values 1 in
  let simk_probe = simk_values 2 in
  let simk_scheme = Simjoin.sim_scheme ~mode:Rewrite.Toss simk_seo in
  (* The exact [~] predicate with the probe value's expansion hoisted out
     of the inner loop -- used identically by both sweeps, so the
     kernels compare candidate generation, not memo-table luck. *)
  let simk_check pv =
    if Seo.knows_term simk_seo pv then
      let cluster = Rewrite.similar_terms simk_seo pv in
      fun bv -> List.mem bv cluster
    else fun bv -> Seo.similar simk_seo pv bv
  in
  let simk_sim () =
    let index = Simjoin.build simk_scheme simk_build in
    let out = ref [] in
    Array.iteri
      (fun i v ->
        match v with
        | None -> ()
        | Some pv ->
            let check = simk_check pv in
            List.iter
              (fun j ->
                match simk_build.(j) with
                | Some bv when check bv -> out := (i, j) :: !out
                | _ -> ())
              (Simjoin.probe index pv))
      simk_probe;
    !out
  in
  let simk_naive () =
    let out = ref [] in
    Array.iteri
      (fun i v ->
        match v with
        | None -> ()
        | Some pv ->
            let check = simk_check pv in
            Array.iteri
              (fun j bv ->
                match bv with
                | Some bv when check bv -> out := (i, j) :: !out
                | None | Some _ -> ())
              simk_build)
      simk_probe;
    !out
  in
  (* The acceptance invariant: identical pair multisets. Both sweeps emit
     in probe-major, build-ordinal order, so plain equality is the
     strongest available check. Running it once here also warms the memo
     tables for both kernels. *)
  assert (simk_sim () = simk_naive ());
  (* 11 runs: the sub-millisecond kernels need the extra samples for the
     median to be stable across invocations. *)
  let runs = 11 in
  let kernels =
    [
      ("select-toss", runs, fun () ->
          ignore
            (Executor.select ~mode:Executor.Toss seo coll ~pattern:q.Workload.pattern
               ~sl:q.Workload.sl));
      ("select-tax", runs, fun () ->
          ignore
            (Executor.select ~mode:Executor.Tax seo coll ~pattern:q.Workload.pattern
               ~sl:q.Workload.sl));
      ("select-scal", runs, fun () ->
          ignore
            (Executor.select ~mode:Executor.Toss seo coll ~pattern:sel_pattern
               ~sl:sel_sl));
      ("join", runs, fun () ->
          ignore
            (Executor.join ~mode:Executor.Toss join_seo left right
               ~pattern:join_pattern ~sl:join_sl));
      ("join-eq-planned", runs, fun () ->
          ignore
            (Executor.join ~mode:Executor.Tax eq_seo eq_coll eq_coll
               ~pattern:eq_pattern ~sl:eq_sl));
      ("join-eq-naive", runs, fun () ->
          ignore
            (Executor.join ~mode:Executor.Tax ~planner:false eq_seo eq_coll
               eq_coll ~pattern:eq_pattern ~sl:eq_sl));
      ("join-sim", runs, fun () -> ignore (simk_sim ()));
      (* One measured sweep: 10^8 predicate evaluations make this a
         multi-second kernel whose variance is negligible at that scale;
         a median over repeats would only slow the suite. The
         witness-equality check above already served as its warm-up. *)
      ("join-sim-naive", 1, fun () -> ignore (simk_naive ()));
      ("match-compiled", runs, fun () ->
          ignore
            (Executor.select ~mode:Executor.Toss m_seo m_coll ~pattern:sel_pattern
               ~sl:sel_sl));
      ("match-interpreted", runs, fun () ->
          ignore
            (Executor.select ~mode:Executor.Toss ~compile:false m_seo m_coll
               ~pattern:sel_pattern ~sl:sel_sl));
      ("xpath-eval", runs, fun () ->
          ignore (Collection.Snapshot.eval_string coll "//inproceedings[booktitle='VLDB']/author"));
      ("sea-enhance", runs, fun () ->
          ignore (Sea.enhance ~metric:Levenshtein.metric ~eps:2.0 sea_h));
      (* Server kernels: the same query through the engine, uncached vs a
         cache hit. The per-kernel warm-up call below pays the SEO
         precompute (uncached) and populates the cache (cached), so the
         measured runs are a pure miss-path / hit-path comparison. *)
      ("serve-uncached", runs, fun () -> ignore (serve_query ~cache:false srv));
      (* A single hit is ~1us -- far too small for a stable median under
         a 20% gate -- so the kernel measures a batch of 500. *)
      ("serve-cached", runs, fun () ->
          for _ = 1 to 500 do ignore (serve_query srv) done);
      (* The parallel read path: 8 uncached queries spread over 4 worker
         domains, all pinning snapshots of the same collection. On one
         core this is the serial cost of 8 queries; on many it shrinks
         toward 2x one query -- either way a regression here means the
         read path started contending. *)
      (* One uncached round trip through the router: JSON framing both
         hops, scatter to both shards, canonical-merge of the answers.
         Compare with serve-uncached (same corpus and query, engine
         only) to read off the serving tier's overhead. *)
      ("serve-sharded", runs, fun () ->
          match Client.call shk_conn shk_query with
          | Ok _ -> ()
          | Error f ->
              failwith ("serve-sharded kernel: " ^ Client.failure_to_string f));
      ("serve-par4", runs, fun () ->
          let domains =
            List.init 4 (fun _ ->
                Domain.spawn (fun () ->
                    for _ = 1 to 2 do ignore (serve_query ~cache:false srv) done))
          in
          List.iter Domain.join domains);
    ]
  in
  let entries =
    List.map
      (fun (name, runs, kernel) ->
        (* Start every kernel from a compacted heap: the pairing sweeps
           above leave tens of MB of floating garbage whose collection
           would otherwise be billed to whichever kernel runs next. *)
        Gc.compact ();
        (* Warm caches and indexes out of the measurement; single-run
           kernels are whole-second sweeps already warmed above. *)
        if runs > 1 then kernel ();
        let (), median_s = B.time_median ~runs kernel in
        let median_s = median_s *. slowdown in
        Printf.printf "  %-16s median %10.3f ms over %d runs\n" name
          (1000. *. median_s) runs;
        (name, { Baseline.median_s; runs }))
      kernels
  in
  Client.close shk_conn;
  shk_stop_router ();
  shk_stop1 ();
  shk_stop2 ();
  Baseline.v ~label:baseline_label entries

(* [--quick]: run the suite and record BENCH_8.json (or --out FILE).
   [--quick --check]: run the suite, save the current measurements to
   bench_results/ (never clobbering the committed baseline), and exit
   non-zero when the gate fails. [--slowdown F] multiplies the measured
   medians -- a self-test hook so the gate's failure path can be
   exercised deterministically ([--check --slowdown 2] must fail). *)
let gate ~check ~baseline_path ~out ~tolerance ~slowdown () =
  let current = perf_suite ~slowdown () in
  if not check then begin
    let path = Option.value out ~default:default_baseline_path in
    Baseline.save ~path current;
    Printf.printf "baseline recorded: %s\n" path;
    0
  end
  else
    match Baseline.load ~path:baseline_path with
    | Error msg ->
        Printf.eprintf "cannot load baseline %s: %s\n" baseline_path msg;
        1
    | Ok baseline ->
        let out_path =
          Option.value out ~default:(Filename.concat results_dir "bench_current.json")
        in
        (match Sys.is_directory results_dir with
        | true -> ()
        | false | (exception Sys_error _) -> Sys.mkdir results_dir 0o755);
        Baseline.save ~path:out_path current;
        let verdicts, ok = Baseline.compare_runs ~tolerance ~baseline ~current () in
        Printf.printf "\ngate (tolerance %+.0f%%) against %s:\n"
          (100. *. tolerance) baseline_path;
        Format.printf "%a@." Baseline.pp_verdicts verdicts;
        Printf.printf "current run saved: %s\n" out_path;
        if ok then begin
          Printf.printf "gate: PASS\n";
          0
        end
        else begin
          Printf.printf "gate: FAIL (median latency regressed beyond tolerance)\n";
          1
        end

(* ------------------------------------------------------------------ *)
(* Driver                                                                *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig15a", fig15a);
    ("fig15b", fig15b);
    ("fig15c", fig15c);
    ("fig16a", fig16a);
    ("fig16b", fig16b);
    ("fig16c", fig16c);
    ("abl-sea", abl_sea);
    ("abl-fuse", abl_fuse);
    ("abl-idx", abl_idx);
    ("abl-plan", abl_plan);
    ("abl-compile", abl_compile);
    ("abl-simjoin", abl_simjoin);
    ("serve-cache", serve_cache);
    ("serve-parallel", serve_parallel);
    ("serve-sharded", serve_sharded);
    ("micro", micro);
  ]

let usage () =
  Printf.eprintf
    "usage: bench [EXPERIMENT...]\n\
    \       bench --quick [--out FILE]                 record BENCH_8.json\n\
    \       bench --quick --check [--baseline FILE]    gate against a baseline\n\
    \            [--tolerance X] [--slowdown F] [--out FILE]\n\
     experiments: %s\n"
    (String.concat ", " (List.map fst experiments))

let () =
  let quick = ref false in
  let check = ref false in
  let baseline_path = ref default_baseline_path in
  let out = ref None in
  let tolerance = ref 0.2 in
  let slowdown = ref 1.0 in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> quick := true; check := true; parse rest
    | "--baseline" :: path :: rest -> baseline_path := path; parse rest
    | "--out" :: path :: rest -> out := Some path; parse rest
    | "--tolerance" :: x :: rest -> tolerance := float_of_string x; parse rest
    | "--slowdown" :: f :: rest -> slowdown := float_of_string f; parse rest
    | ("--help" | "-h") :: _ -> usage (); exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "unknown option %S\n" arg;
        usage ();
        exit 1
    | name :: rest -> names := name :: !names; parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !quick then
    exit
      (gate ~check:!check ~baseline_path:!baseline_path ~out:!out
         ~tolerance:!tolerance ~slowdown:!slowdown ())
  else begin
    let requested =
      match List.rev !names with [] -> List.map fst experiments | names -> names
    in
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f ->
            let (), t = B.time f in
            Printf.printf "[%s completed in %.1fs]\n" name t
        | None ->
            Printf.eprintf "unknown experiment %S; available: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 1)
      requested
  end
