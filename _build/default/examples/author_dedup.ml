(* Author deduplication with a similarity-enhanced ontology.

   A bibliography accumulates many spellings of the same person. The SEO's
   clusters are exactly the maximal sets of pairwise-similar strings, so
   grouping the author strings by cluster is an entity-resolution pass --
   the machinery behind the paper's "J. Ullman / Jeff Ullman / Jeffrey D.
   Ullman" discussion, reusable as a standalone tool.

   Run with: dune exec examples/author_dedup.exe *)

module Doc = Toss_xml.Tree.Doc
module Hierarchy = Toss_hierarchy.Hierarchy
module Node = Toss_hierarchy.Node
module Sea = Toss_similarity.Sea
module Name_rules = Toss_similarity.Name_rules
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Names = Toss_data.Names
module Workload = Toss_data.Workload

let () =
  let corpus = Corpus.generate ~seed:99 ~n_papers:80 ~n_authors:25 () in
  let rendered = Dblp_gen.render ~seed:99 corpus in
  let doc = Doc.of_tree rendered.Dblp_gen.tree in

  (* All author strings as stored. *)
  let strings =
    List.sort_uniq String.compare
      (List.map (fun n -> Doc.content doc n) (Doc.by_tag doc "author"))
  in
  Printf.printf "%d stored author spellings for %d real people\n\n"
    (List.length strings)
    (Array.length corpus.Corpus.authors);

  (* Build a flat hierarchy of the strings and similarity-enhance it. *)
  let h = List.fold_left (fun h s -> Hierarchy.add_term s h) Hierarchy.empty strings in
  let enhancement =
    Sea.enhance_exn ~metric:Name_rules.metric ~eps:2.5 h
  in
  let clusters =
    List.filter (fun c -> Node.cardinal c > 1) (Sea.clusters enhancement)
  in
  Printf.printf "%d multi-spelling clusters found at eps = 2.5, e.g.:\n"
    (List.length clusters);
  List.iteri
    (fun i c ->
      if i < 8 then
        Printf.printf "  { %s }\n" (String.concat " | " (Node.strings c)))
    clusters;

  (* Score the clustering against the ground truth: two spellings are
     truly coreferent iff some author renders to both. *)
  let renders_of aid =
    List.filter_map
      (fun (_, a, s) -> if a = aid then Some s else None)
      rendered.Dblp_gen.author_strings
    |> List.sort_uniq String.compare
  in
  let truth =
    Array.to_list corpus.Corpus.authors
    |> List.concat_map (fun (a : Corpus.author) ->
           let rs = renders_of a.Corpus.author_id in
           List.concat_map (fun x -> List.filter_map (fun y -> if x < y then Some (x, y) else None) rs) rs)
    |> List.sort_uniq compare
  in
  let predicted =
    List.concat_map
      (fun c ->
        let ss = Node.strings c in
        List.concat_map
          (fun x -> List.filter_map (fun y -> if x < y then Some (x, y) else None) ss)
          ss)
      (Sea.clusters enhancement)
    |> List.sort_uniq compare
  in
  let inter = List.filter (fun p -> List.mem p truth) predicted in
  let p = float_of_int (List.length inter) /. float_of_int (max 1 (List.length predicted)) in
  let r = float_of_int (List.length inter) /. float_of_int (max 1 (List.length truth)) in
  Printf.printf
    "\npairwise entity-resolution quality: precision %.3f, recall %.3f\n" p r
