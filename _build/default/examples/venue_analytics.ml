(* Bibliometrics with the full TAX operator set.

   Beyond selection and join, TAX defines grouping, aggregation, renaming
   and reordering; TOSS inherits them unchanged. This example groups a
   generated bibliography by venue, counts and spans the publication years
   per group, and then uses the ontology to aggregate at the *category*
   level (all database conferences together) -- something plain TAX
   grouping cannot express without TOSS's isa reasoning.

   Run with: dune exec examples/venue_analytics.exe *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Extended = Toss_tax.Extended
module Seo = Toss_core.Seo
module Toss_condition = Toss_core.Toss_condition
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Workload = Toss_data.Workload

let () =
  let corpus = Corpus.generate ~seed:12 ~n_papers:120 () in
  let rendered = Dblp_gen.render ~seed:12 corpus in
  (* One tree per paper: grouping operates on collections. *)
  let papers =
    match rendered.Dblp_gen.tree with
    | Tree.Element { children; _ } -> children
    | _ -> []
  in

  let venue_pattern =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
      (Condition.conj
         [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "booktitle" ])
  in

  (* 1. Group by venue string and count each group. *)
  let groups =
    Extended.group_by ~pattern:venue_pattern ~by:[ Condition.Content 2 ] papers
  in
  Printf.printf "%d venue groups over %d papers\n\n" (List.length groups)
    (List.length papers);

  let group_key g =
    Tree.fold
      (fun acc t ->
        match (acc, t) with
        | None, Tree.Element { tag = "key"; _ } -> Some (Tree.string_value t)
        | acc, _ -> acc)
      None g
  in
  let group_size g =
    Tree.fold
      (fun acc t ->
        match t with
        | Tree.Element { tag = "tax_group_subroot"; children; _ } -> List.length children
        | _ -> acc)
      0 g
  in
  let by_size =
    List.sort
      (fun a b -> compare (group_size b) (group_size a))
      groups
  in
  Printf.printf "largest venues:\n";
  List.iteri
    (fun i g ->
      if i < 5 then
        Printf.printf "  %-22s %d papers\n"
          (Option.value ~default:"?" (group_key g))
          (group_size g))
    by_size;

  (* 2. Per-paper aggregates: year span of the whole collection. *)
  let whole = [ rendered.Dblp_gen.tree ] in
  let deep =
    Pattern.v
      (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "dblp"; Condition.tag_eq 2 "year" ])
  in
  let agg a = snd (List.hd (Extended.aggregate ~pattern:deep ~agg:a ~over:(Condition.Content 2) whole)) in
  Printf.printf "\nyears: %.0f-%.0f (avg %.1f over %.0f papers)\n"
    (agg Extended.Min) (agg Extended.Max) (agg Extended.Avg) (agg Extended.Count);

  (* 3. Ontology-level aggregation: count papers per venue *category* by
     evaluating an isa condition under the TOSS semantics. *)
  let seo =
    Result.get_ok
      (Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
         ~content_tags:[ "booktitle" ]
         [ Doc.of_tree rendered.Dblp_gen.tree ])
  in
  let eval = Toss_condition.evaluator seo in
  Printf.printf "\npapers per category (via isa):\n";
  List.iter
    (fun category ->
      let pattern =
        Pattern.v
          (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
          (Condition.conj
             [
               Condition.tag_eq 1 "inproceedings";
               Condition.tag_eq 2 "booktitle";
               Condition.content_isa 2 category;
             ])
      in
      let count =
        List.length
          (List.filter
             (fun (_, n) -> n > 0.)
             (Extended.aggregate ~eval ~pattern ~agg:Extended.Count
                ~over:(Condition.Content 2) papers))
      in
      Printf.printf "  %-36s %d\n" category count)
    [
      "database conference"; "machine learning conference"; "theory conference";
      "data mining conference"; "web conference";
    ]
