(* The paper's introductory motivating example: "find all papers having at
   least one author from the US government". No author lists their
   affiliation as "US government" -- they write "US Census Bureau",
   "US Army", "NASA" and so on -- so TAX's literal matching finds nothing,
   while TOSS answers through the part-of hierarchy of its ontology.

   Run with: dune exec examples/government_authors.exe *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Algebra = Toss_tax.Algebra
module Seo = Toss_core.Seo
module Toss_algebra = Toss_core.Toss_algebra
module Printer = Toss_xml.Printer

let db =
  Toss_xml.Parser.parse_exn
    {|<dblp>
        <inproceedings key="g1">
          <author affiliation="US Census Bureau">Alice Carter</author>
          <title>Estimating Populations from Partial Counts</title>
          <booktitle>KDD</booktitle>
        </inproceedings>
        <inproceedings key="g2">
          <author affiliation="Stanford University">Bob Stone</author>
          <author affiliation="US Army">Carol Diaz</author>
          <title>Robust Route Planning</title>
          <booktitle>ICML</booktitle>
        </inproceedings>
        <inproceedings key="c1">
          <author affiliation="Google">Dan Fox</author>
          <title>Ranking at Scale</title>
          <booktitle>WWW</booktitle>
        </inproceedings>
        <inproceedings key="u1">
          <author affiliation="MIT">Eve Gray</author>
          <title>Streams and Windows</title>
          <booktitle>VLDB</booktitle>
        </inproceedings>
      </dblp>|}

(* Affiliations are element content in this variant of the data so the
   condition language can reach them. *)
let db =
  let rec lift = function
    | Tree.Element { tag = "author"; attrs; children } ->
        let affiliation = Option.value ~default:"" (List.assoc_opt "affiliation" attrs) in
        Tree.element "author"
          (children @ [ Tree.leaf "affiliation" affiliation ])
    | Tree.Element { tag; attrs; children } ->
        Tree.element ~attrs tag (List.map lift children)
    | t -> t
  in
  lift db

(* Pattern: a paper (#1) with an author (#2) whose affiliation (#3) is
   part of the US government. *)
let pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.node 2 [ Pattern.pc (Pattern.leaf 3) ]) ])
    (Condition.conj
       [
         Condition.tag_eq 1 "inproceedings";
         Condition.tag_eq 2 "author";
         Condition.tag_eq 3 "affiliation";
         Condition.Part_of (Condition.Content 3, Condition.Str "US government");
       ])

let titles results =
  List.filter_map
    (fun t ->
      Tree.fold
        (fun acc sub ->
          match (acc, sub) with
          | None, Tree.Element { tag = "title"; _ } -> Some (Tree.string_value sub)
          | acc, _ -> acc)
        None t)
    results

let () =
  (* TAX: part_of degrades to substring containment; "US Census Bureau"
     does not contain "US government", so nothing comes back. *)
  let tax = Algebra.select ~pattern ~sl:[ 1 ] [ db ] in
  Printf.printf "TAX finds %d paper(s)\n" (List.length tax);

  (* TOSS: the seeded lexicon knows the agency -> department -> government
     holonymy, and the Ontology Maker put each affiliation string into the
     instance ontology. *)
  let seo =
    match Seo.of_documents ~eps:0.0 [ Doc.of_tree db ] with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  let toss = Toss_algebra.select seo ~pattern ~sl:[ 1 ] [ db ] in
  Printf.printf "TOSS finds %d paper(s):\n" (List.length toss);
  List.iter (fun t -> Printf.printf "  - %s\n" t) (titles toss);
  Printf.printf
    "\nThe Google, MIT and Stanford-only papers are correctly excluded;\n\
     the Census Bureau and Army papers are found through part-of reasoning.\n"
