(* Quickstart: build a tiny bibliography, ask the same query through TAX
   and through TOSS, and see the recall difference.

   Run with: dune exec examples/quickstart.exe *)

module Tree = Toss_xml.Tree
module Printer = Toss_xml.Printer
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Algebra = Toss_tax.Algebra
module Seo = Toss_core.Seo
module Toss_algebra = Toss_core.Toss_algebra
module Workload = Toss_data.Workload

let db =
  Toss_xml.Parser.parse_exn
    {|<dblp>
        <inproceedings key="u1">
          <author>Jeffrey D. Ullman</author>
          <title>Principles of Database Systems</title>
          <booktitle>PODS</booktitle><year>1998</year>
        </inproceedings>
        <inproceedings key="u2">
          <author>J. D. Ullman</author>
          <title>Querying Semistructured Data</title>
          <booktitle>SIGMOD Conference</booktitle><year>1999</year>
        </inproceedings>
        <inproceedings key="u3">
          <author>Jeffrey Ullman</author>
          <title>Data Integration in Theory</title>
          <booktitle>VLDB</booktitle><year>2000</year>
        </inproceedings>
        <inproceedings key="w1">
          <author>Jennifer Widom</author>
          <title>Active Database Systems</title>
          <booktitle>ICML</booktitle><year>1999</year>
        </inproceedings>
      </dblp>|}

(* Pattern: an inproceedings (#1) with an author child (#2) and a
   booktitle child (#3); the author must be similar to "Jeffrey D.
   Ullman" and the venue must be a database conference. *)
let pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2); Pattern.pc (Pattern.leaf 3) ])
    (Condition.conj
       [
         Condition.tag_eq 1 "inproceedings";
         Condition.tag_eq 2 "author";
         Condition.tag_eq 3 "booktitle";
         Condition.content_sim 2 "Jeffrey D. Ullman";
         Condition.content_isa 3 "database conference";
       ])

let print_results label results =
  Printf.printf "\n%s: %d result(s)\n" label (List.length results);
  List.iter (fun t -> print_string (Printer.to_pretty_string t)) results

let () =
  (* TAX: exact match for ~, substring containment for isa. *)
  let tax_results = Algebra.select ~pattern ~sl:[ 1 ] [ db ] in
  print_results "TAX" tax_results;

  (* TOSS: precompute the similarity-enhanced ontology (Ontology Maker ->
     fusion -> SEA), then run the same query. *)
  let seo =
    match
      Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0
        [ Tree.Doc.of_tree db ]
    with
    | Ok seo -> seo
    | Error msg -> failwith msg
  in
  let toss_results = Toss_algebra.select seo ~pattern ~sl:[ 1 ] [ db ] in
  print_results "TOSS (eps = 2)" toss_results;

  Printf.printf
    "\nTAX misses the initialized and middle-less spellings of the author\n\
     and every venue whose name does not literally contain the words\n\
     \"database conference\"; TOSS recovers them through the similarity-\n\
     enhanced ontology while correctly excluding Jennifer Widom's ICML paper.\n"
