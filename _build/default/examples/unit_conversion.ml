(* Typed values and conversion functions (paper Section 5).

   The ontology-extended data model attaches types to attribute values and
   compares across types through a registry of conversion functions that
   must satisfy closure and coherence conditions (identities exist,
   compositions are derived and must agree). Here two sensor inventories
   store lengths in millimetres and centimetres; a TOSS comparison finds
   the parts that fit a socket even though the numbers differ, and the
   registry's coherence is checked explicitly.

   Run with: dune exec examples/unit_conversion.exe *)

module Conversion = Toss_core.Conversion
module Seo = Toss_core.Seo
module Toss_condition = Toss_core.Toss_condition
module Condition = Toss_tax.Condition
module Pattern = Toss_tax.Pattern
module Tree = Toss_xml.Tree

let inventory =
  Toss_xml.Parser.parse_exn
    {|<inventory>
        <part id="a"><name>rod-long</name><length unit="mm">1500</length></part>
        <part id="b"><name>rod-short</name><length unit="mm">250</length></part>
        <part id="c"><name>beam</name><length unit="cm">150</length></part>
      </inventory>|}

let () =
  (* 1. The registry: mm -> cm -> m with an explicit mm -> m shortcut;
     check_coherence verifies that composing mm->cm->m agrees with the
     shortcut on samples (the paper's composition constraint). *)
  let registry = Conversion.standard in
  (match
     Conversion.check_coherence registry
       ~samples:[ ("mm", "1500"); ("mm", "250"); ("cm", "150") ]
   with
  | Ok () -> print_endline "conversion registry is coherent"
  | Error msgs -> List.iter print_endline msgs);

  Printf.printf "1500 mm = %s cm = %s m\n"
    (Option.get (Conversion.convert registry ~from:"mm" ~into:"cm" "1500"))
    (Option.get (Conversion.convert registry ~from:"mm" ~into:"m" "1500"));

  (* 2. Cross-unit comparison inside a query: find parts whose length
     equals 150 cm, whichever unit they are stored in. The mm-stored rod
     (1500) and the cm-stored beam (150) must both match. *)
  let seo =
    Result.get_ok
      (Seo.of_documents ~conversions:registry ~eps:0.0
         [ Tree.Doc.of_tree inventory ])
  in
  let doc = Tree.Doc.of_tree inventory in
  let matches =
    List.filter
      (fun node ->
        let unit =
          Option.value ~default:"mm" (List.assoc_opt "unit" (Tree.Doc.attrs doc node))
        in
        (* Normalize through the registry, then compare. *)
        let in_cm =
          Option.value
            ~default:(Tree.Doc.content doc node)
            (Conversion.convert registry ~from:unit ~into:"cm"
               (Tree.Doc.content doc node))
        in
        Toss_condition.compare_converted seo Condition.Eq in_cm "150")
      (Tree.Doc.by_tag doc "length")
  in
  Printf.printf "parts measuring 150 cm: %d (expected 2)\n" (List.length matches);
  List.iter
    (fun node ->
      let part = Option.get (Tree.Doc.parent doc node) in
      let name =
        List.find_map
          (fun c ->
            if Tree.Doc.tag doc c = "name" then Some (Tree.Doc.content doc c) else None)
          (Tree.Doc.children doc part)
      in
      Printf.printf "  - %s (%s %s)\n"
        (Option.value ~default:"?" name)
        (Tree.Doc.content doc node)
        (Option.value ~default:"mm" (List.assoc_opt "unit" (Tree.Doc.attrs doc node))))
    matches;

  (* 3. Year/int coercion in ordinary conditions: the inferred types
     differ ("1998" is a year, "1998.0" a float) but conversion makes the
     comparison meaningful. *)
  let equal = Toss_condition.compare_converted seo Condition.Eq "1998" "1998.0" in
  Printf.printf "year 1998 = float 1998.0 after conversion: %b\n" equal
