examples/author_dedup.ml: Array List Printf String Toss_data Toss_hierarchy Toss_similarity Toss_xml
