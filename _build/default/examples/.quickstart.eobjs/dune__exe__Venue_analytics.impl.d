examples/venue_analytics.ml: List Option Printf Result Toss_core Toss_data Toss_tax Toss_xml
