examples/quickstart.mli:
