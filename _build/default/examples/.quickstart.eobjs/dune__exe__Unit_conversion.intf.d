examples/unit_conversion.mli:
