examples/government_authors.ml: List Option Printf Toss_core Toss_tax Toss_xml
