examples/government_authors.mli:
