examples/unit_conversion.ml: List Option Printf Result Toss_core Toss_tax Toss_xml
