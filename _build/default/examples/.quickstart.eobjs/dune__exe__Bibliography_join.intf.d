examples/bibliography_join.mli:
