examples/bibliography_join.ml: Array List Option Printf Toss_core Toss_data Toss_store Toss_xml
