examples/quickstart.ml: List Printf Toss_core Toss_data Toss_tax Toss_xml
