examples/author_dedup.mli:
