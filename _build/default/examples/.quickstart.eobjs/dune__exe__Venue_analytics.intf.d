examples/venue_analytics.mli:
