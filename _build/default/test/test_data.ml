(* Tests for the ground-truth corpus, the two schema renderers, the name
   variant machinery and the experiment workload. *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Printer = Toss_xml.Printer
module Parser = Toss_xml.Parser
module Names = Toss_data.Names
module Variant = Toss_data.Variant
module Titles = Toss_data.Titles
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Sigmod_gen = Toss_data.Sigmod_gen
module Workload = Toss_data.Workload
module Metric = Toss_similarity.Metric

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let corpus = Corpus.generate ~seed:42 ~n_papers:60 ()

(* ------------------------------------------------------------------ *)
(* Names and variants                                                   *)
(* ------------------------------------------------------------------ *)

let test_names_fresh_deterministic () =
  let rng1 = Random.State.make [| 1 |] and rng2 = Random.State.make [| 1 |] in
  checkb "same seed same person" true
    (Names.equal (Names.fresh rng1) (Names.fresh rng2))

let test_names_full () =
  checks "with middle" "Ada B Lovelace"
    (Names.full { Names.first = "Ada"; middle = Some "B"; last = "Lovelace" });
  checks "without middle" "Ada Lovelace"
    (Names.full { Names.first = "Ada"; middle = None; last = "Lovelace" })

let person = { Names.first = "Jeffrey"; middle = Some "David"; last = "Ullman" }
let no_middle = { Names.first = "Gian"; middle = Some "Luigi"; last = "Ferrari" }

let test_variant_render () =
  checks "full" "Jeffrey David Ullman" (Variant.render person Variant.Full);
  checks "first initial" "J. D. Ullman" (Variant.render person Variant.First_initial);
  checks "drop middle" "Jeffrey Ullman" (Variant.render person Variant.Drop_middle);
  checks "concat" "GianLuigi Ferrari" (Variant.render no_middle Variant.Concat);
  checkb "typo changes the string" true
    (Variant.render person (Variant.Typo 1) <> Names.full person)

let test_variant_distances_within_rules () =
  (* The renderings stratify around the paper's thresholds: dropped
     middles and single typos are within eps = 2, double initials and
     double typos fall in (2, 3]. *)
  let canonical = Variant.render person Variant.Full in
  let d s = Toss_similarity.Name_rules.distance canonical s in
  checkb "drop middle within 2" true (d (Variant.render person Variant.Drop_middle) <= 2.);
  checkb "single typo within 2" true (d (Variant.render person (Variant.Typo 1)) <= 2.);
  let initials = d (Variant.render person Variant.First_initial) in
  checkb "double initials beyond 2" true (initials > 2.);
  checkb "double initials within 3" true (initials <= 3.);
  let t2 = d (Variant.render person (Variant.Typo 2)) in
  checkb "two typos beyond 2" true (t2 > 2.);
  checkb "two typos within 3" true (t2 <= 3.3)

let test_random_typo_valid () =
  let rng = Random.State.make [| 9 |] in
  for _ = 1 to 50 do
    let s = Variant.random_typo rng "Jeffrey Ullman" in
    checkb "non-empty" true (String.length s > 0);
    checkb "first char preserved" true (s.[0] = 'J')
  done

(* ------------------------------------------------------------------ *)
(* Titles                                                               *)
(* ------------------------------------------------------------------ *)

let test_titles () =
  let rng = Random.State.make [| 3 |] in
  let t1 = Titles.generate rng 7 in
  checkb "serial embedded" true
    (let needle = "[P0007]" in
     let nh = String.length t1 and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub t1 i nn = needle || go (i + 1)) in
     go 0);
  checkb "topic recognized" true (Titles.topic_of t1 <> None);
  let abbreviated = Titles.abbreviate "Efficient Query Processing" in
  checks "abbreviation applied" "Eff. Query Proc." abbreviated;
  checks "no-op on plain words" "Some Words" (Titles.abbreviate "Some Words")

(* ------------------------------------------------------------------ *)
(* Corpus                                                               *)
(* ------------------------------------------------------------------ *)

let test_corpus_shape () =
  checki "paper count" 60 (Array.length corpus.Corpus.papers);
  checkb "authors default" true (Array.length corpus.Corpus.authors >= 20);
  Array.iter
    (fun (p : Corpus.paper) ->
      checkb "authors non-empty" true (p.Corpus.author_ids <> []);
      checkb "venue in range" true
        (p.Corpus.venue_id >= 0 && p.Corpus.venue_id < Array.length Corpus.venues);
      checkb "year range" true (p.Corpus.year >= 1994 && p.Corpus.year <= 2003);
      checkb "pages ordered" true (fst p.Corpus.pages < snd p.Corpus.pages))
    corpus.Corpus.papers

let test_corpus_deterministic () =
  let again = Corpus.generate ~seed:42 ~n_papers:60 () in
  checkb "same papers" true (corpus.Corpus.papers = again.Corpus.papers);
  let different = Corpus.generate ~seed:43 ~n_papers:60 () in
  checkb "seed changes content" false (corpus.Corpus.papers = different.Corpus.papers)

let test_corpus_unique_author_names () =
  let names =
    Array.to_list corpus.Corpus.authors
    |> List.map (fun (a : Corpus.author) -> Names.full a.Corpus.person)
  in
  checki "canonical names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_corpus_lookups () =
  let p = corpus.Corpus.papers.(0) in
  checkb "paper_by_key" true (Corpus.paper_by_key corpus p.Corpus.key = Some p);
  checkb "unknown key" true (Corpus.paper_by_key corpus "nope" = None);
  let author0 = List.hd p.Corpus.author_ids in
  checkb "papers_by_author includes it" true
    (List.memq p (Corpus.papers_by_author corpus author0));
  let cat = (Corpus.venue corpus p.Corpus.venue_id).Corpus.category in
  checkb "papers_by_venue_category includes it" true
    (List.exists
       (fun (q : Corpus.paper) -> q.Corpus.key = p.Corpus.key)
       (Corpus.papers_by_venue_category corpus cat));
  checkb "correct_keys intersects criteria" true
    (List.for_all
       (fun k ->
         match Corpus.paper_by_key corpus k with
         | Some q ->
             List.mem author0 q.Corpus.author_ids
             && (Corpus.venue corpus q.Corpus.venue_id).Corpus.category = cat
         | None -> false)
       (Corpus.correct_keys corpus ~author:author0 ~category:cat ()))

(* ------------------------------------------------------------------ *)
(* Renderers                                                            *)
(* ------------------------------------------------------------------ *)

let dblp = Dblp_gen.render ~seed:1 corpus
let sigmod = Sigmod_gen.render ~seed:1 corpus

let test_dblp_render_structure () =
  let doc = Doc.of_tree dblp.Dblp_gen.tree in
  checki "one entry per paper" 60 (List.length (Doc.by_tag doc "inproceedings"));
  checkb "root is dblp" true (Doc.tag doc 0 = "dblp");
  (* Every entry carries its corpus key. *)
  List.iter
    (fun n ->
      match List.assoc_opt "key" (Doc.attrs doc n) with
      | Some key -> checkb ("known key " ^ key) true (Corpus.paper_by_key corpus key <> None)
      | None -> Alcotest.fail "inproceedings without key")
    (Doc.by_tag doc "inproceedings")

let test_dblp_parse_roundtrip () =
  let xml = Printer.to_string dblp.Dblp_gen.tree in
  checkb "serialized form parses back" true
    (Tree.equal (Parser.parse_exn xml) dblp.Dblp_gen.tree)

let test_dblp_author_strings_recorded () =
  checkb "every paper-author pair recorded" true
    (List.length dblp.Dblp_gen.author_strings
    = Array.fold_left
        (fun n (p : Corpus.paper) -> n + List.length p.Corpus.author_ids)
        0 corpus.Corpus.papers);
  (* The canonical Full rendering is the single most common style. *)
  let canonical =
    List.filter
      (fun (_, aid, s) ->
        s = Variant.render (Corpus.author corpus aid).Corpus.person Variant.Full)
      dblp.Dblp_gen.author_strings
  in
  checkb "canonical rendering is the plurality" true
    (3 * List.length canonical > List.length dblp.Dblp_gen.author_strings)

let test_sigmod_render_structure () =
  checkb "one page per venue-year group" true (List.length sigmod.Sigmod_gen.trees > 5);
  let total_articles =
    List.fold_left
      (fun n tree -> n + List.length (Doc.by_tag (Doc.of_tree tree) "article"))
      0 sigmod.Sigmod_gen.trees
  in
  checki "every paper on some page" 60 total_articles;
  (* Pages carry the venue's full name, not the DBLP abbreviation. *)
  let first = Doc.of_tree (List.hd sigmod.Sigmod_gen.trees) in
  let conf = Doc.content first (List.hd (Doc.by_tag first "conference")) in
  checkb "full venue name used" true
    (Array.exists (fun (v : Corpus.venue) -> v.Corpus.full_name = conf) Corpus.venues)

let test_sigmod_venue_filter () =
  let only_sigmod = Sigmod_gen.render ~seed:1 ~venue_ids:[ 0 ] corpus in
  List.iter
    (fun tree ->
      let d = Doc.of_tree tree in
      let conf = Doc.content d (List.hd (Doc.by_tag d "conference")) in
      checks "only venue 0" (Corpus.venues.(0)).Corpus.full_name conf)
    only_sigmod.Sigmod_gen.trees

let test_sigmod_initials_dominate () =
  let initials =
    List.filter
      (fun (_, aid, s) ->
        s = Variant.render (Corpus.author corpus aid).Corpus.person Variant.First_initial)
      sigmod.Sigmod_gen.author_strings
  in
  checkb "majority initialized" true
    (2 * List.length initials > List.length sigmod.Sigmod_gen.author_strings)

(* ------------------------------------------------------------------ *)
(* Workload                                                             *)
(* ------------------------------------------------------------------ *)

let test_experiment_metric () =
  let d = Metric.dist Workload.experiment_metric in
  checkb "identity" true (d "x" "x" = 0.);
  checkb "name variant close" true (d "J. Ullman" "Jeffrey Ullman" <= 2.);
  checkb "abbreviated title close" true
    (d "Efficient Query Processing" "Eff. Query Proc." <= 2.);
  checkb "venue acronyms stay apart" true (d "KDD" "ICDE" > 3.);
  checkb "phrase vs head noun apart" true (d "web conference" "conference" > 3.)

let test_selection_queries () =
  let queries = Workload.selection_queries corpus in
  checki "twelve by default" 12 (List.length queries);
  List.iter
    (fun (q : Workload.query) ->
      checkb "correct answers non-empty" true (q.Workload.correct <> []);
      (* Exactly 3 tag conditions, 1 similarTo, 1 isa. *)
      let atoms = Toss_tax.Condition.atoms q.Workload.pattern.Toss_tax.Pattern.condition in
      let count p = List.length (List.filter p atoms) in
      checki "three tag conditions" 3
        (count (function
          | Toss_tax.Condition.Cmp (Toss_tax.Condition.Tag _, _, _) -> true
          | _ -> false));
      checki "one similarTo" 1
        (count (function Toss_tax.Condition.Sim _ -> true | _ -> false));
      checki "one isa" 1
        (count (function Toss_tax.Condition.Isa _ -> true | _ -> false)))
    queries

let test_result_keys () =
  let t1 = Tree.element ~attrs:[ ("key", "p1") ] "inproceedings" [] in
  let t2 = Tree.element "wrapper" [ Tree.element ~attrs:[ ("key", "p2") ] "x" [] ] in
  Alcotest.(check (list string)) "keys collected" [ "p1"; "p2" ]
    (Workload.result_keys [ t1; t2; t1 ]);
  let join_result =
    Tree.element "tax_prod_root"
      [
        Tree.element ~attrs:[ ("key", "l") ] "a" [];
        Tree.element ~attrs:[ ("key", "r") ] "b" [];
      ]
  in
  Alcotest.(check (list (pair string string))) "pairs" [ ("l", "r") ]
    (Workload.result_key_pairs [ join_result ])

let test_join_query_shape () =
  let pattern, sl = Workload.join_query () in
  checki "five labels" 5 (List.length (Toss_tax.Pattern.labels pattern));
  Alcotest.(check (list int)) "sl returns both papers" [ 1; 3 ] sl;
  let atoms = Toss_tax.Condition.atoms pattern.Toss_tax.Pattern.condition in
  checki "five tag + one sim" 6 (List.length atoms)

let () =
  Alcotest.run "toss_data"
    [
      ( "names and variants",
        [
          Alcotest.test_case "deterministic drawing" `Quick test_names_fresh_deterministic;
          Alcotest.test_case "full rendering" `Quick test_names_full;
          Alcotest.test_case "variant rendering" `Quick test_variant_render;
          Alcotest.test_case "variant distances" `Quick test_variant_distances_within_rules;
          Alcotest.test_case "random typos valid" `Quick test_random_typo_valid;
          Alcotest.test_case "titles" `Quick test_titles;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "shape invariants" `Quick test_corpus_shape;
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "unique canonical names" `Quick test_corpus_unique_author_names;
          Alcotest.test_case "ground-truth lookups" `Quick test_corpus_lookups;
        ] );
      ( "renderers",
        [
          Alcotest.test_case "dblp structure" `Quick test_dblp_render_structure;
          Alcotest.test_case "dblp xml roundtrip" `Quick test_dblp_parse_roundtrip;
          Alcotest.test_case "dblp author strings" `Quick test_dblp_author_strings_recorded;
          Alcotest.test_case "sigmod structure" `Quick test_sigmod_render_structure;
          Alcotest.test_case "sigmod venue filter" `Quick test_sigmod_venue_filter;
          Alcotest.test_case "sigmod initials dominate" `Quick test_sigmod_initials_dominate;
        ] );
      ( "workload",
        [
          Alcotest.test_case "experiment metric calibration" `Quick test_experiment_metric;
          Alcotest.test_case "selection queries" `Quick test_selection_queries;
          Alcotest.test_case "result keys" `Quick test_result_keys;
          Alcotest.test_case "join query shape" `Quick test_join_query_shape;
        ] );
    ]
