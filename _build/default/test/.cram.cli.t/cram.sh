  $ toss generate --papers 8 --seed 3 -o demo.xml
  $ toss info demo.xml
  $ toss xpath demo.xml "//inproceedings[1]/title"
  $ toss ontology demo.xml --relation part-of | head -3
  $ toss query demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  $ toss query --mode tax demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  $ toss dot demo.xml | head -1
