(* Tests for ontologies, interoperation constraints, canonical fusion
   (paper Definitions 4-6, Examples 9-10), the lexicon, and the Ontology
   Maker. *)

module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy
module Ontology = Toss_ontology.Ontology
module Interop = Toss_ontology.Interop
module Fusion = Toss_ontology.Fusion
module Lexicon = Toss_ontology.Lexicon
module Maker = Toss_ontology.Maker
module Tree = Toss_xml.Tree
module Doc = Tree.Doc

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_sl = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Ontology maps                                                        *)
(* ------------------------------------------------------------------ *)

let test_ontology_defaults () =
  checkb "isa defined on empty" true (Ontology.find Ontology.isa Ontology.empty <> None);
  checkb "part-of defined on empty" true
    (Ontology.find Ontology.part_of Ontology.empty <> None);
  checkb "get of unknown relation is empty" true
    (Hierarchy.is_empty (Ontology.get "color-of" Ontology.empty))

let test_ontology_add_update () =
  let h = Hierarchy.of_pairs [ ("a", "b") ] in
  let o = Ontology.add "custom" h Ontology.empty in
  checkb "added" true (Ontology.find "custom" o <> None);
  let o = Ontology.update "custom" (Hierarchy.add_leq ~lower:"c" ~upper:"a") o in
  checkb "updated" true (Hierarchy.leq (Ontology.get "custom" o) "c" "b");
  Alcotest.(check (list string)) "relations sorted"
    [ "custom"; "isa"; "part-of" ] (Ontology.relations o);
  checki "term count" 3 (Ontology.n_terms o)

(* ------------------------------------------------------------------ *)
(* Interoperation constraints                                           *)
(* ------------------------------------------------------------------ *)

let test_interop_expand () =
  let eq = Interop.eq ("booktitle", 0) ("conference", 1) in
  match Interop.expand [ eq ] with
  | [ Interop.Leq (a, b); Interop.Leq (c, d) ] ->
      checkb "first direction" true (a.Interop.term = "booktitle" && b.Interop.term = "conference");
      checkb "second direction" true (c.Interop.term = "conference" && d.Interop.term = "booktitle")
  | _ -> Alcotest.fail "Eq must expand to two Leqs"

let test_interop_neq_passthrough () =
  let neq = Interop.neq ("a", 0) ("b", 1) in
  checki "neq unchanged" 1 (List.length (Interop.expand [ neq ]))

(* ------------------------------------------------------------------ *)
(* Fusion (the paper's Example 10: SIGMOD + DBLP part-of hierarchies)    *)
(* ------------------------------------------------------------------ *)

(* Figure 9(a): the SIGMOD proceedings-page hierarchy. *)
let sigmod_h =
  Hierarchy.of_pairs
    [
      ("article", "articles");
      ("author", "article");
      ("title", "article");
      ("conference", "article");
      ("confYear", "article");
    ]

(* Figure 9(b): the DBLP hierarchy. *)
let dblp_h =
  Hierarchy.of_pairs
    [
      ("author", "inproceedings");
      ("title", "inproceedings");
      ("booktitle", "inproceedings");
      ("year", "inproceedings");
      ("pages", "inproceedings");
    ]

(* Example 10's constraints, adapted to sources 0 (SIGMOD) and 1 (DBLP). *)
let example10_constraints =
  [
    Interop.eq ("conference", 0) ("booktitle", 1);
    Interop.eq ("title", 0) ("title", 1);
    Interop.eq ("author", 0) ("author", 1);
    Interop.eq ("confYear", 0) ("year", 1);
  ]

let test_fusion_example10 () =
  let { Fusion.fused; witness } =
    Fusion.fuse_exn ~auto_equate:false [ sigmod_h; dblp_h ] example10_constraints
  in
  (* The equated pairs are merged into single nodes. *)
  let node_of term = Hierarchy.nodes_of term fused in
  (match node_of "conference" with
  | [ n ] -> check_sl "conference+booktitle merged" [ "booktitle"; "conference" ] (Node.strings n)
  | _ -> Alcotest.fail "conference should be in exactly one fused node");
  (match node_of "confYear" with
  | [ n ] -> check_sl "confYear+year merged" [ "confYear"; "year" ] (Node.strings n)
  | _ -> Alcotest.fail "confYear should be in one fused node");
  (* Orderings from both sources survive. *)
  checkb "sigmod ordering preserved" true (Hierarchy.leq fused "author" "articles");
  checkb "dblp ordering preserved" true (Hierarchy.leq fused "booktitle" "inproceedings");
  checkb "cross-source through merged node" true (Hierarchy.leq fused "year" "article");
  (* Witness maps each input node into the fusion. *)
  (match Fusion.psi witness ~source:0 (Node.singleton "conference") with
  | Some n -> checkb "psi lands in merged node" true (Node.mem "booktitle" n)
  | None -> Alcotest.fail "psi undefined on an input node");
  checkb "psi_term" true
    (Fusion.psi_term witness ~source:1 "pages" <> None);
  checkb "psi on unknown node" true
    (Fusion.psi witness ~source:0 (Node.singleton "zzz") = None)

let test_fusion_axioms () =
  let result =
    Fusion.fuse_exn ~auto_equate:false [ sigmod_h; dblp_h ] example10_constraints
  in
  match
    Fusion.check_integration [ sigmod_h; dblp_h ] example10_constraints result
  with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs)

let test_fusion_auto_equate () =
  (* Without constraints but with auto-equate, same-spelled terms merge. *)
  let { Fusion.fused; _ } = Fusion.fuse_exn [ sigmod_h; dblp_h ] [] in
  checki "one author node" 1 (List.length (Hierarchy.nodes_of "author" fused));
  checkb "author below both roots" true
    (Hierarchy.leq fused "author" "articles" && Hierarchy.leq fused "author" "inproceedings");
  (* Without auto-equate and no constraints the sources stay disjoint
     except for colliding spellings, which share a node value. *)
  let { Fusion.fused = manual; _ } =
    Fusion.fuse_exn ~auto_equate:false [ sigmod_h; dblp_h ] example10_constraints
  in
  checkb "booktitle below articles via constraint" true
    (Hierarchy.leq manual "booktitle" "articles")

let test_fusion_leq_constraint () =
  let h1 = Hierarchy.of_pairs [ ("a", "b") ] in
  let h2 = Hierarchy.of_pairs [ ("x", "y") ] in
  let { Fusion.fused; _ } =
    Fusion.fuse_exn ~auto_equate:false [ h1; h2 ] [ Interop.leq ("b", 0) ("x", 1) ]
  in
  checkb "leq creates ordering not merge" true (Hierarchy.leq fused "a" "y");
  checki "b stays its own node" 1 (List.length (Hierarchy.nodes_of "b" fused));
  checkb "b and x distinct" false
    (Node.equal
       (List.hd (Hierarchy.nodes_of "b" fused))
       (List.hd (Hierarchy.nodes_of "x" fused)))

let test_fusion_neq_violation () =
  let h1 = Hierarchy.of_pairs [ ("a", "b") ] in
  let h2 = Hierarchy.of_pairs [ ("a", "c") ] in
  (* auto-equate merges the two spellings of a, violating the Neq. *)
  match Fusion.fuse [ h1; h2 ] [ Interop.neq ("a", 0) ("a", 1) ] with
  | Error (Fusion.Neq_violated _) -> ()
  | Error e -> Alcotest.fail (Format.asprintf "unexpected error %a" Fusion.pp_error e)
  | Ok _ -> Alcotest.fail "Neq violation not detected"

let test_fusion_unknown_source () =
  match Fusion.fuse [ sigmod_h ] [ Interop.eq ("a", 0) ("b", 7) ] with
  | Error (Fusion.Unknown_source _) -> ()
  | _ -> Alcotest.fail "out-of-range source not detected"

let test_fusion_cycle_of_equalities_is_fine () =
  (* a <= b in source 0, b' <= a' in source 1, with a=a' and b=b':
     the constraint cycle collapses a and b into ONE node rather than
     failing (SCC condensation). *)
  let h1 = Hierarchy.of_pairs [ ("p", "q") ] in
  let h2 = Hierarchy.of_pairs [ ("q", "p") ] in
  let { Fusion.fused; _ } = Fusion.fuse_exn [ h1; h2 ] [] in
  match Hierarchy.nodes_of "p" fused with
  | [ n ] -> check_sl "p and q merged" [ "p"; "q" ] (Node.strings n)
  | _ -> Alcotest.fail "expected a single merged node"

let test_fuse_ontologies () =
  let o1 = Ontology.add Ontology.part_of sigmod_h Ontology.empty in
  let o2 = Ontology.add Ontology.part_of dblp_h Ontology.empty in
  match
    Fusion.fuse_ontologies [ o1; o2 ] [ (Ontology.part_of, example10_constraints) ]
  with
  | Ok fused ->
      checkb "part-of fused" true
        (Hierarchy.leq (Ontology.get Ontology.part_of fused) "year" "article")
  | Error (rel, e) ->
      Alcotest.fail (Format.asprintf "fusion failed on %s: %a" rel Fusion.pp_error e)

(* ------------------------------------------------------------------ *)
(* Lexicon                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexicon_synsets () =
  let lex = Lexicon.empty |> Lexicon.add_synset [ "car"; "automobile" ] in
  check_sl "synonyms" [ "automobile"; "car" ]
    (List.sort String.compare (Lexicon.synonyms lex "car"));
  check_sl "unknown term is its own synonym" [ "ufo" ] (Lexicon.synonyms lex "ufo");
  checkb "mem" true (Lexicon.mem lex "automobile")

let test_lexicon_synset_merge () =
  let lex =
    Lexicon.empty
    |> Lexicon.add_synset [ "a"; "b" ]
    |> Lexicon.add_synset [ "c"; "d" ]
    |> Lexicon.add_synset [ "b"; "c" ]
  in
  check_sl "merged synset" [ "a"; "b"; "c"; "d" ]
    (List.sort String.compare (Lexicon.synonyms lex "a"))

let test_lexicon_hypernyms () =
  let lex =
    Lexicon.empty
    |> Lexicon.add_isa ~sub:"dog" ~super:"canine"
    |> Lexicon.add_isa ~sub:"canine" ~super:"animal"
    |> Lexicon.add_synset [ "dog"; "hound" ]
  in
  check_sl "direct hypernyms" [ "canine" ] (Lexicon.hypernyms lex "dog");
  check_sl "closure" [ "animal"; "canine" ] (Lexicon.hypernym_closure lex "hound");
  check_sl "roots have none" [] (Lexicon.hypernyms lex "animal")

let test_lexicon_hierarchies () =
  let lex =
    Lexicon.empty
    |> Lexicon.add_isa ~sub:"dog" ~super:"animal"
    |> Lexicon.add_isa ~sub:"cat" ~super:"animal"
    |> Lexicon.add_part ~part:"wheel" ~whole:"car"
  in
  let isa = Lexicon.isa_hierarchy lex in
  checkb "isa edge" true (Hierarchy.leq isa "dog" "animal");
  checkb "no part edge in isa" false (Hierarchy.leq isa "wheel" "car");
  let part = Lexicon.part_hierarchy lex in
  checkb "part edge" true (Hierarchy.leq part "wheel" "car");
  (* Restriction keeps the chosen terms and their ancestors only. *)
  let restricted = Lexicon.isa_hierarchy ~restrict_to:[ "dog" ] lex in
  checkb "dog kept" true (Hierarchy.mem_term "dog" restricted);
  checkb "ancestor kept" true (Hierarchy.mem_term "animal" restricted);
  checkb "cat dropped" false (Hierarchy.mem_term "cat" restricted)

let test_lexicon_seeded () =
  let lex = Lexicon.seeded in
  checkb "US Census Bureau part of US government" true
    (Hierarchy.leq (Lexicon.part_hierarchy lex) "US Census Bureau" "US government");
  checkb "VLDB isa database conference" true
    (Hierarchy.leq (Lexicon.isa_hierarchy lex) "VLDB" "database conference");
  checkb "database conference isa conference" true
    (Hierarchy.leq (Lexicon.isa_hierarchy lex) "database conference" "conference");
  checkb "booktitle and conference synonymous" true
    (List.mem "conference" (Lexicon.synonyms lex "booktitle"));
  checkb "Google under company" true
    (Hierarchy.leq (Lexicon.isa_hierarchy lex) "Google" "company");
  checkb "inproceedings isa document" true
    (Hierarchy.leq (Lexicon.isa_hierarchy lex) "inproceedings" "document");
  checkb "reasonably sized" true (Lexicon.n_terms lex > 100)

let test_lexicon_seeded_extended () =
  let lex = Lexicon.seeded in
  let isa = Lexicon.isa_hierarchy lex in
  let part = Lexicon.part_hierarchy lex in
  checkb "journal taxonomy" true (Hierarchy.leq isa "TODS" "journal");
  checkb "journals are documents" true (Hierarchy.leq isa "TKDE" "document");
  checkb "topic chain" true (Hierarchy.leq isa "B-tree" "data management");
  checkb "record linkage under data integration" true
    (Hierarchy.leq isa "record linkage" "data integration");
  checkb "TAX is a tree algebra" true (Hierarchy.leq isa "TAX" "semistructured data");
  checkb "research labs" true (Hierarchy.leq isa "IBM Almaden" "research lab");
  checkb "lab part of company" true (Hierarchy.leq part "IBM Almaden" "IBM");
  checkb "city part of country" true (Hierarchy.leq part "San Diego" "USA");
  checkb "country synonyms" true (List.mem "United States" (Lexicon.synonyms lex "USA"));
  checkb "both hierarchies acyclic" true
    (Hierarchy.is_consistent isa && Hierarchy.is_consistent part)

let test_lexicon_synthetic () =
  let lex = Lexicon.synthetic ~seed:7 ~n_terms:300 in
  checki "requested size" 300 (Lexicon.n_terms lex);
  (* Deterministic given the seed. *)
  let lex' = Lexicon.synthetic ~seed:7 ~n_terms:300 in
  check_sl "deterministic" (Lexicon.terms lex) (Lexicon.terms lex');
  (* The isa graph is a usable hierarchy (acyclic by construction). *)
  let h = Lexicon.isa_hierarchy lex in
  checkb "consistent" true (Hierarchy.is_consistent h);
  checkb "has edges" true (Hierarchy.n_edges h > 100)

(* ------------------------------------------------------------------ *)
(* Ontology Maker                                                       *)
(* ------------------------------------------------------------------ *)

let dblp_doc =
  Doc.of_tree
    (Toss_xml.Parser.parse_exn
       {|<dblp>
           <inproceedings key="p1">
             <author>Jeff Ullman</author>
             <title>Principles</title>
             <booktitle>VLDB</booktitle>
             <year>1998</year>
           </inproceedings>
         </dblp>|})

let test_maker_part_of_from_nesting () =
  let o = Maker.make dblp_doc in
  let part = Ontology.get Ontology.part_of o in
  checkb "author part of inproceedings" true (Hierarchy.leq part "author" "inproceedings");
  checkb "inproceedings part of dblp" true (Hierarchy.leq part "inproceedings" "dblp");
  checkb "transitive" true (Hierarchy.leq part "author" "dblp");
  checkb "not reversed" false (Hierarchy.leq part "dblp" "author")

let test_maker_isa_content_below_tag () =
  let o = Maker.make dblp_doc in
  let isa = Ontology.get Ontology.isa o in
  checkb "content value below its tag" true (Hierarchy.leq isa "Jeff Ullman" "author");
  checkb "venue below booktitle tag" true (Hierarchy.leq isa "VLDB" "booktitle");
  checkb "lexicon links venue to category" true
    (Hierarchy.leq isa "VLDB" "database conference")

let test_maker_content_tags_filter () =
  let o = Maker.make ~content_tags:[ "author" ] dblp_doc in
  let isa = Ontology.get Ontology.isa o in
  checkb "author content kept" true (Hierarchy.mem_term "Jeff Ullman" isa);
  checkb "title content dropped" false (Hierarchy.mem_term "Principles" isa)

let test_maker_max_content_terms () =
  let o = Maker.make ~max_content_terms:0 dblp_doc in
  let isa = Ontology.get Ontology.isa o in
  checkb "no content terms" false (Hierarchy.mem_term "Jeff Ullman" isa)

let test_maker_auto_constraints () =
  let sigmod_doc =
    Doc.of_tree
      (Toss_xml.Parser.parse_exn
         {|<proceedings>
             <conference>International Conference on Very Large Data Bases</conference>
             <confYear>1998</confYear>
           </proceedings>|})
  in
  let ontologies = Maker.make_all [ dblp_doc; sigmod_doc ] in
  let constraints = Maker.auto_constraints ontologies in
  let all = List.concat_map snd constraints in
  (* booktitle (source 0) and conference (source 1) are lexicon synonyms
     spelled differently, so an equality constraint must be emitted. *)
  checkb "booktitle=conference emitted" true
    (List.exists
       (fun c ->
         match c with
         | Interop.Eq (a, b) ->
             (a.Interop.term = "booktitle" && b.Interop.term = "conference")
             || (a.Interop.term = "conference" && b.Interop.term = "booktitle")
         | _ -> false)
       all);
  (* The fused ontology relates terms across the two schemas. *)
  match Fusion.fuse_ontologies ontologies constraints with
  | Ok fused ->
      let isa = Ontology.get Ontology.isa fused in
      checkb "cross-schema tag equivalence" true (Hierarchy.leq isa "VLDB" "conference")
  | Error (rel, e) ->
      Alcotest.fail (Format.asprintf "fusion failed on %s: %a" rel Fusion.pp_error e)

let test_maker_handles_recursive_nesting () =
  let doc =
    Doc.of_tree (Toss_xml.Parser.parse_exn "<a><b><a><b>x</b></a></b></a>")
  in
  let o = Maker.make doc in
  (* b inside a and a inside b: the cycle guard must keep the hierarchy a
     DAG (one direction wins). *)
  checkb "part-of stays consistent" true
    (Hierarchy.is_consistent (Ontology.get Ontology.part_of o))

(* ------------------------------------------------------------------ *)
(* Random fusion properties                                             *)
(* ------------------------------------------------------------------ *)

(* Random acyclic hierarchies over overlapping per-source term pools, so
   auto-equate has real work to do. *)
let random_hierarchy_gen source =
  QCheck2.Gen.(
    let pool = Array.init 8 (fun i -> Printf.sprintf "t%d" (i + (source * 4))) in
    let n = Array.length pool in
    let* edges =
      list_size (int_range 1 10)
        (let* i = int_range 0 (n - 1) in
         let* j = int_range 0 (n - 1) in
         return (min i j, max i j))
    in
    let pairs =
      List.filter_map
        (fun (i, j) -> if i = j then None else Some (pool.(i), pool.(j)))
        edges
    in
    return (Hierarchy.of_pairs pairs))

let random_hierarchies_gen =
  QCheck2.Gen.(
    let* k = int_range 2 3 in
    flatten_l (List.init k random_hierarchy_gen))

let prop_fusion_axioms =
  QCheck2.Test.make ~name:"fusion satisfies the definition 5 axioms" ~count:100
    random_hierarchies_gen (fun hs ->
      match Fusion.fuse hs [] with
      | Error _ -> false
      | Ok result -> (
          match Fusion.check_integration hs [] result with
          | Ok () -> true
          | Error _ -> false))

let prop_fusion_with_constraints =
  QCheck2.Test.make ~name:"Leq constraints are honoured by the fusion" ~count:100
    QCheck2.Gen.(
      pair random_hierarchies_gen
        (list_size (int_range 0 4)
           (let* x = int_range 0 7 in
            let* y = int_range 0 7 in
            let* i = int_range 0 1 in
            let* j = int_range 0 1 in
            return (Printf.sprintf "t%d" (x + (i * 4)), i, Printf.sprintf "t%d" (y + (j * 4)), j))))
    (fun (hs, raw) ->
      let constraints =
        List.filter_map
          (fun (x, i, y, j) ->
            if i <> j && i < List.length hs && j < List.length hs then
              Some (Interop.leq (x, i) (y, j))
            else None)
          raw
      in
      match Fusion.fuse hs constraints with
      | Error _ -> false
      | Ok result -> (
          match Fusion.check_integration hs constraints result with
          | Ok () -> true
          | Error _ -> false))

let prop_fusion_result_is_hierarchy =
  QCheck2.Test.make ~name:"fused result is an acyclic Hasse diagram" ~count:100
    random_hierarchies_gen (fun hs ->
      match Fusion.fuse hs [] with
      | Error _ -> false
      | Ok { Fusion.fused; _ } ->
          Hierarchy.is_consistent fused
          && Hierarchy.equal fused (Hierarchy.normalize fused))

let () =
  Alcotest.run "toss_ontology"
    [
      ( "ontology",
        [
          Alcotest.test_case "defaults" `Quick test_ontology_defaults;
          Alcotest.test_case "add and update" `Quick test_ontology_add_update;
        ] );
      ( "interop",
        [
          Alcotest.test_case "Eq expands to two Leqs" `Quick test_interop_expand;
          Alcotest.test_case "Neq passes through" `Quick test_interop_neq_passthrough;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "paper example 10" `Quick test_fusion_example10;
          Alcotest.test_case "definition 5 axioms" `Quick test_fusion_axioms;
          Alcotest.test_case "auto-equate" `Quick test_fusion_auto_equate;
          Alcotest.test_case "Leq constraint orders without merging" `Quick
            test_fusion_leq_constraint;
          Alcotest.test_case "Neq violation detected" `Quick test_fusion_neq_violation;
          Alcotest.test_case "unknown source rejected" `Quick test_fusion_unknown_source;
          Alcotest.test_case "equality cycles condense" `Quick
            test_fusion_cycle_of_equalities_is_fine;
          Alcotest.test_case "ontology-level fusion" `Quick test_fuse_ontologies;
          QCheck_alcotest.to_alcotest prop_fusion_axioms;
          QCheck_alcotest.to_alcotest prop_fusion_with_constraints;
          QCheck_alcotest.to_alcotest prop_fusion_result_is_hierarchy;
        ] );
      ( "lexicon",
        [
          Alcotest.test_case "synsets" `Quick test_lexicon_synsets;
          Alcotest.test_case "synset merging" `Quick test_lexicon_synset_merge;
          Alcotest.test_case "hypernyms" `Quick test_lexicon_hypernyms;
          Alcotest.test_case "hierarchies and restriction" `Quick test_lexicon_hierarchies;
          Alcotest.test_case "seeded domain entries" `Quick test_lexicon_seeded;
          Alcotest.test_case "seeded extended vocabulary" `Quick
            test_lexicon_seeded_extended;
          Alcotest.test_case "synthetic generator" `Quick test_lexicon_synthetic;
        ] );
      ( "maker",
        [
          Alcotest.test_case "part-of from nesting" `Quick test_maker_part_of_from_nesting;
          Alcotest.test_case "isa with content below tags" `Quick
            test_maker_isa_content_below_tag;
          Alcotest.test_case "content tag filter" `Quick test_maker_content_tags_filter;
          Alcotest.test_case "content term cap" `Quick test_maker_max_content_terms;
          Alcotest.test_case "auto constraints from lexicon" `Quick
            test_maker_auto_constraints;
          Alcotest.test_case "recursive nesting stays acyclic" `Quick
            test_maker_handles_recursive_nesting;
        ] );
    ]
