(* Tests for the TAX baseline: pattern trees, selection conditions,
   embeddings, witness trees, and the algebra (paper Section 2,
   Examples 2-6). *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Printer = Toss_xml.Printer
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Embedding = Toss_tax.Embedding
module Witness = Toss_tax.Witness
module Algebra = Toss_tax.Algebra

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* A small DBLP-like instance in the spirit of the paper's Figure 1. *)
let dblp =
  Toss_xml.Parser.parse_exn
    {|<dblp>
        <inproceedings key="c1">
          <author>Paolo Ciancarini</author>
          <title>A Case Study in Coordination</title>
          <booktitle>SIGMOD Conference</booktitle>
          <year>1999</year>
        </inproceedings>
        <inproceedings key="f1">
          <author>Elena Ferrari</author>
          <author>Ernesto Damiani</author>
          <title>Securing XML Documents</title>
          <booktitle>EDBT</booktitle>
          <year>2000</year>
        </inproceedings>
        <inproceedings key="a1">
          <author>Sanjay Agrawal</author>
          <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000</title>
          <booktitle>SIGMOD Conference</booktitle>
          <year>2000</year>
        </inproceedings>
      </dblp>|}

let dblp_doc = Doc.of_tree dblp

(* Figure 3-style pattern: #1 inproceedings with a #2 year child equal to
   1999. *)
let p1 =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
    (Condition.conj
       [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "year";
         Condition.content_eq 2 "1999" ])

(* ------------------------------------------------------------------ *)
(* Pattern trees                                                        *)
(* ------------------------------------------------------------------ *)

let test_pattern_labels () =
  Alcotest.(check (list int)) "preorder labels" [ 1; 2 ] (Pattern.labels p1);
  checki "n_nodes" 2 (Pattern.n_nodes p1);
  checkb "find existing" true (Pattern.find p1 2 <> None);
  checkb "find missing" true (Pattern.find p1 9 = None);
  checkb "parent of 2" true (Pattern.parent_label p1 2 = Some (1, Pattern.Pc));
  checkb "root has no parent" true (Pattern.parent_label p1 1 = None)

let test_pattern_distinct_labels_enforced () =
  Alcotest.check_raises "duplicate labels"
    (Invalid_argument "Pattern.v: node labels must be distinct") (fun () ->
      ignore
        (Pattern.v (Pattern.node 1 [ Pattern.pc (Pattern.leaf 1) ]) Condition.True))

(* ------------------------------------------------------------------ *)
(* Conditions                                                           *)
(* ------------------------------------------------------------------ *)

let env_of_nodes pairs label =
  Option.map (fun n -> (dblp_doc, n)) (List.assoc_opt label pairs)

let first_inproc = List.hd (Doc.by_tag dblp_doc "inproceedings")
let first_year = List.hd (Doc.by_tag dblp_doc "year")

let test_condition_cmp () =
  let env = env_of_nodes [ (1, first_inproc); (2, first_year) ] in
  checkb "tag equality" true (Condition.eval_tax env (Condition.tag_eq 1 "inproceedings"));
  checkb "tag inequality" false (Condition.eval_tax env (Condition.tag_eq 1 "article"));
  checkb "content equality" true (Condition.eval_tax env (Condition.content_eq 2 "1999"));
  checkb "numeric comparison" true
    (Condition.eval_tax env
       (Condition.Cmp (Condition.Content 2, Condition.Le, Condition.Str "2000")));
  checkb "numeric not lexicographic" true
    (Condition.compare_values Condition.Lt "9" "10");
  checkb "lexicographic fallback" true (Condition.compare_values Condition.Lt "abc" "abd")

let test_condition_boolean () =
  let env = env_of_nodes [ (1, first_inproc) ] in
  let t = Condition.tag_eq 1 "inproceedings" in
  let f = Condition.tag_eq 1 "nope" in
  checkb "and" true (Condition.eval_tax env (Condition.And (t, t)));
  checkb "and short" false (Condition.eval_tax env (Condition.And (t, f)));
  checkb "or" true (Condition.eval_tax env (Condition.Or (f, t)));
  checkb "not" true (Condition.eval_tax env (Condition.Not f));
  checkb "true" true (Condition.eval_tax env Condition.True);
  checkb "unbound label fails atoms" false
    (Condition.eval_tax env (Condition.tag_eq 9 "x"))

let test_condition_tax_degradations () =
  let env = env_of_nodes [ (2, first_year) ] in
  (* ~ degrades to exact equality. *)
  checkb "sim exact hit" true (Condition.eval_tax env (Condition.content_sim 2 "1999"));
  checkb "sim near miss" false (Condition.eval_tax env (Condition.content_sim 2 "1998"));
  (* isa degrades to substring containment. *)
  checkb "isa contains" true
    (Condition.eval_tax env (Condition.Isa (Condition.Content 2, Condition.Str "99")));
  checkb "isa not contained" false
    (Condition.eval_tax env (Condition.content_isa 2 "conference"))

let test_condition_helpers () =
  let c =
    Condition.conj
      [ Condition.tag_eq 1 "a"; Condition.content_sim 2 "x"; Condition.content_isa 3 "y" ]
  in
  Alcotest.(check (list int)) "labels used" [ 1; 2; 3 ] (Condition.labels_used c);
  checki "atoms" 3 (List.length (Condition.atoms c));
  checki "local atoms of 2" 1 (List.length (Condition.local_atoms c 2));
  (* An atom under a disjunction is not a usable local prefilter. *)
  let c2 = Condition.Or (Condition.tag_eq 1 "a", Condition.tag_eq 1 "b") in
  checki "disjunction not local" 0 (List.length (Condition.local_atoms c2 1));
  checkb "disj of none is false" false (Condition.eval_tax (fun _ -> None) (Condition.disj []))

(* ------------------------------------------------------------------ *)
(* Embeddings                                                           *)
(* ------------------------------------------------------------------ *)

let test_embeddings_basic () =
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p1 in
  checki "one 1999 paper" 1 (List.length bindings);
  let binding = List.hd bindings in
  checks "root image key" "c1"
    (List.assoc "key" (Doc.attrs dblp_doc (List.assoc 1 binding)))

let test_embeddings_multiple () =
  (* Pattern matching any inproceedings-author pair. *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "author" ])
  in
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p in
  checki "four author embeddings" 4 (List.length bindings)

let test_embeddings_ad_edge () =
  (* dblp //author via an ancestor-descendant edge from the root. *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "dblp"; Condition.tag_eq 2 "author" ])
  in
  checki "ad reaches grandchildren" 4
    (List.length (Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p));
  (* With a pc edge instead, authors are not direct children of dblp. *)
  let p_pc =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "dblp"; Condition.tag_eq 2 "author" ])
  in
  checki "pc does not" 0
    (List.length (Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p_pc))

let test_embeddings_cross_label_condition () =
  (* Two siblings with identical content: none here, so no embedding. *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2); Pattern.pc (Pattern.leaf 3) ])
      (Condition.conj
         [
           Condition.tag_eq 2 "author";
           Condition.tag_eq 3 "title";
           Condition.Cmp (Condition.Content 2, Condition.Eq, Condition.Content 3);
         ])
  in
  checki "no equal author/title" 0
    (List.length (Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p))

let test_embeddings_candidates_narrow () =
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "author" ])
  in
  let only_first = List.hd (Doc.by_tag dblp_doc "author") in
  let candidates label = if label = 2 then Some [ only_first ] else None in
  checki "candidate restriction honoured" 1
    (List.length (Embedding.enumerate ~candidates ~eval:Condition.eval_tax dblp_doc p))

(* ------------------------------------------------------------------ *)
(* Witness trees                                                        *)
(* ------------------------------------------------------------------ *)

let test_witness_shape () =
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p1 in
  let w = Witness.of_binding dblp_doc (List.hd bindings) ~sl:[] in
  (* Only the matched inproceedings and year survive. *)
  checkb "witness shape" true
    (Tree.equal w
       (Tree.element ~attrs:[ ("key", "c1") ] "inproceedings" [ Tree.leaf "year" "1999" ]))

let test_witness_sl_expands () =
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p1 in
  let w = Witness.of_binding dblp_doc (List.hd bindings) ~sl:[ 1 ] in
  (* SL = [1]: the whole inproceedings subtree is included (Example 3). *)
  checki "full subtree" 5 (Tree.n_elements w);
  checkb "title included" true
    (Tree.fold
       (fun acc t -> acc || Tree.tag t = Some "title")
       false w)

let test_witness_order_preserved () =
  (* Match title and author of the same paper: in the witness they must
     appear in document order (author before title). *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2); Pattern.pc (Pattern.leaf 3) ])
      (Condition.conj
         [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "title";
           Condition.tag_eq 3 "author" ])
  in
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p in
  let w = Witness.of_binding dblp_doc (List.hd bindings) ~sl:[] in
  match w with
  | Tree.Element { children = [ c1; c2 ]; _ } ->
      checkb "author first" true (Tree.tag c1 = Some "author");
      checkb "title second" true (Tree.tag c2 = Some "title")
  | _ -> Alcotest.fail "expected two children"

let test_witness_forest_of_disjoint_nodes () =
  let authors = Doc.by_tag dblp_doc "author" in
  let forest = Witness.forest_of dblp_doc authors in
  checki "one tree per author" 4 (List.length forest);
  checkb "authors materialized with content" true
    (Tree.equal (List.hd forest) (Tree.leaf "author" "Paolo Ciancarini"))

(* ------------------------------------------------------------------ *)
(* Algebra                                                              *)
(* ------------------------------------------------------------------ *)

let test_select () =
  let results = Algebra.select ~pattern:p1 ~sl:[ 1 ] [ dblp ] in
  checki "one witness" 1 (List.length results);
  checkb "full paper returned" true
    (String.length (Printer.to_string (List.hd results)) > 50)

let test_select_duplicate_witnesses_collapsed () =
  (* A pattern with one node matching inproceedings twice through
     different embeddings of a second node would duplicate witnesses;
     selection must deduplicate equal trees. *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "author" ])
  in
  let with_sl = Algebra.select ~pattern:p ~sl:[ 1 ] [ dblp ] in
  (* f1 has two authors but its full subtree is returned once. *)
  checki "three distinct papers" 3 (List.length with_sl)

let test_project_example5 () =
  (* Example 5: authors of papers published in 1999. *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2); Pattern.pc (Pattern.leaf 3) ])
      (Condition.conj
         [
           Condition.tag_eq 1 "inproceedings";
           Condition.tag_eq 2 "year";
           Condition.content_eq 2 "1999";
           Condition.tag_eq 3 "author";
         ])
  in
  let results = Algebra.project ~pattern:p ~pl:[ 3 ] [ dblp ] in
  checki "one author" 1 (List.length results);
  checkb "author node only" true
    (Tree.equal (List.hd results) (Tree.leaf "author" "Paolo Ciancarini"))

let test_project_keeps_hierarchy () =
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "author" ])
  in
  let results = Algebra.project ~pattern:p ~pl:[ 1; 2 ] [ dblp ] in
  (* Two papers have authors; both projected inproceedings keep their
     author children (f1 keeps both authors in one tree). *)
  checki "three papers with authors" 3 (List.length results);
  let f1 = List.nth results 1 in
  match f1 with
  | Tree.Element { children; _ } -> checki "both authors kept" 2 (List.length children)
  | _ -> Alcotest.fail "expected element"

let test_product () =
  let c1 = [ Tree.leaf "a" "1"; Tree.leaf "a" "2" ] in
  let c2 = [ Tree.leaf "b" "3" ] in
  let prod = Algebra.product c1 c2 in
  checki "cardinality multiplies" 2 (List.length prod);
  match List.hd prod with
  | Tree.Element { tag; children = [ l; r ]; _ } ->
      checks "root tag" "tax_prod_root" tag;
      checkb "left then right" true
        (Tree.tag l = Some "a" && Tree.tag r = Some "b")
  | _ -> Alcotest.fail "expected product node"

let test_join () =
  (* Join papers with an equal-year pair from a second collection. *)
  let years = [ Tree.leaf "y" "1999"; Tree.leaf "y" "1975" ] in
  let p =
    Pattern.v
      (Pattern.node 0
         [
           Pattern.pc (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2) ]);
           Pattern.pc (Pattern.leaf 3);
         ])
      (Condition.conj
         [
           Condition.tag_eq 0 Algebra.prod_root_tag;
           Condition.tag_eq 1 "dblp";
           Condition.tag_eq 2 "year";
           Condition.tag_eq 3 "y";
           Condition.Cmp (Condition.Content 2, Condition.Eq, Condition.Content 3);
         ])
  in
  let results = Algebra.join ~pattern:p ~sl:[] [ dblp ] years in
  checki "only 1999 joins" 1 (List.length results)

let test_set_operations () =
  let a = Tree.leaf "x" "1" in
  let b = Tree.leaf "x" "2" in
  let c = Tree.leaf "x" "3" in
  checki "union dedups" 3 (List.length (Algebra.union [ a; b ] [ b; c ]));
  checki "intersect" 1 (List.length (Algebra.intersect [ a; b ] [ b; c ]));
  checki "difference" 1 (List.length (Algebra.difference [ a; b ] [ b; c ]));
  checkb "difference keeps the right tree" true
    (Tree.equal (List.hd (Algebra.difference [ a; b ] [ b; c ])) a);
  checki "empty difference" 0 (List.length (Algebra.difference [ a ] [ a ]))

let test_witness_mixed_matches () =
  (* A pattern matching both a shallow and a deep node: the witness tree
     connects them through closest-ancestor, skipping unmatched levels. *)
  let doc2 = Doc.of_tree (Toss_xml.Parser.parse_exn "<a><skip><b>x</b></skip></a>") in
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "a"; Condition.tag_eq 2 "b" ])
  in
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax doc2 p in
  checki "one embedding" 1 (List.length bindings);
  let w = Witness.of_binding doc2 (List.hd bindings) ~sl:[] in
  checkb "skip level elided" true
    (Tree.equal w (Tree.element "a" [ Tree.leaf "b" "x" ]))

let test_embedding_not_injective () =
  (* Two pattern nodes may map to the same data node (TAX embeddings are
     total mappings, not injections). *)
  let p =
    Pattern.v
      (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2); Pattern.ad (Pattern.leaf 3) ])
      (Condition.conj
         [ Condition.tag_eq 1 "dblp"; Condition.tag_eq 2 "author";
           Condition.tag_eq 3 "author" ])
  in
  let bindings = Embedding.enumerate ~eval:Condition.eval_tax dblp_doc p in
  checkb "non-injective embeddings included" true
    (List.exists (fun b -> List.assoc 2 b = List.assoc 3 b) bindings);
  checki "4x4 combinations" 16 (List.length bindings)

(* ------------------------------------------------------------------ *)
(* Extended operators: grouping, aggregation, renaming, reordering      *)
(* ------------------------------------------------------------------ *)

module Extended = Toss_tax.Extended

(* Split dblp into one tree per paper to exercise collection operators. *)
let papers =
  match dblp with
  | Tree.Element { children; _ } -> children
  | _ -> assert false

let venue_pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
    (Condition.conj [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "booktitle" ])

let test_group_by () =
  let groups =
    Extended.group_by ~pattern:venue_pattern ~by:[ Condition.Content 2 ] papers
  in
  (* Venues: EDBT and SIGMOD Conference (twice). *)
  checki "two groups" 2 (List.length groups);
  let keys =
    List.filter_map
      (fun g ->
        Tree.fold
          (fun acc t ->
            match (acc, t) with
            | None, Tree.Element { tag = "key"; _ } -> Some (Tree.string_value t)
            | acc, _ -> acc)
          None g)
      groups
  in
  Alcotest.(check (list string)) "group keys sorted" [ "EDBT"; "SIGMOD Conference" ] keys;
  let sizes =
    List.map
      (fun g ->
        Tree.fold
          (fun acc t ->
            match t with
            | Tree.Element { tag = "tax_group_subroot"; children; _ } ->
                List.length children
            | _ -> acc)
          0 g)
      groups
  in
  Alcotest.(check (list int)) "group sizes" [ 1; 2 ] sizes

let test_group_by_no_embedding () =
  let stray = Tree.leaf "misc" "x" in
  let groups =
    Extended.group_by ~pattern:venue_pattern ~by:[ Condition.Content 2 ]
      (stray :: papers)
  in
  (* The stray tree groups under the empty key. *)
  checki "three groups" 3 (List.length groups)

let year_pattern =
  Pattern.v
    (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
    (Condition.conj [ Condition.tag_eq 1 "inproceedings"; Condition.tag_eq 2 "year" ])

let test_aggregate () =
  let whole = [ dblp ] in
  let deep_year =
    Pattern.v
      (Pattern.node 1 [ Pattern.ad (Pattern.leaf 2) ])
      (Condition.conj [ Condition.tag_eq 1 "dblp"; Condition.tag_eq 2 "year" ])
  in
  let agg a = snd (List.hd (Extended.aggregate ~pattern:deep_year ~agg:a ~over:(Condition.Content 2) whole)) in
  Alcotest.(check (float 1e-9)) "count" 3.0 (agg Extended.Count);
  Alcotest.(check (float 1e-9)) "sum" 5999.0 (agg Extended.Sum);
  Alcotest.(check (float 1e-9)) "min" 1999.0 (agg Extended.Min);
  Alcotest.(check (float 1e-9)) "max" 2000.0 (agg Extended.Max);
  Alcotest.(check (float 1e-6)) "avg" (5999.0 /. 3.0) (agg Extended.Avg)

let test_aggregate_empty () =
  let none =
    Pattern.v (Pattern.leaf 1) (Condition.tag_eq 1 "nonexistent")
  in
  let count = snd (List.hd (Extended.aggregate ~pattern:none ~agg:Extended.Count ~over:(Condition.Content 1) [ dblp ])) in
  Alcotest.(check (float 1e-9)) "count of nothing" 0.0 count;
  let m = snd (List.hd (Extended.aggregate ~pattern:none ~agg:Extended.Min ~over:(Condition.Content 1) [ dblp ])) in
  checkb "min of nothing is nan" true (Float.is_nan m)

let test_aggregate_trees () =
  let result =
    Extended.aggregate_trees ~pattern:year_pattern ~agg:Extended.Count
      ~over:(Condition.Content 2) papers
  in
  checki "one output per input" (List.length papers) (List.length result);
  let first = List.hd result in
  checkb "count node appended" true
    (Tree.fold
       (fun acc t ->
         acc || match t with Tree.Element { tag = "count"; _ } -> true | _ -> false)
       false first)

let test_rename () =
  let renamed =
    Extended.rename ~pattern:venue_pattern ~label:2 ~to_:"venue" papers
  in
  let count_tag tag trees =
    List.fold_left
      (fun acc t ->
        Tree.fold
          (fun acc t -> if Tree.tag t = Some tag then acc + 1 else acc)
          acc t)
      0 trees
  in
  checki "booktitle gone" 0 (count_tag "booktitle" renamed);
  checki "venue present" 3 (count_tag "venue" renamed);
  (* Contents survive. *)
  checkb "content preserved" true
    (List.exists
       (fun t ->
         Tree.fold
           (fun acc s ->
             acc
             || match s with
                | Tree.Element { tag = "venue"; _ } -> Tree.string_value s = "EDBT"
                | _ -> false)
           false t)
       renamed)

let test_sort_children () =
  let paper_pattern = Pattern.v (Pattern.leaf 1) (Condition.tag_eq 1 "inproceedings") in
  let sorted =
    Extended.sort_children ~pattern:paper_pattern ~label:1 ~key:`Tag papers
  in
  List.iter
    (fun t ->
      match t with
      | Tree.Element { children; _ } ->
          let tags = List.filter_map Tree.tag children in
          Alcotest.(check (list string)) "children sorted by tag"
            (List.sort String.compare tags) tags
      | _ -> ())
    sorted;
  (* Sorting by tag is stable for equal tags: the two authors of the
     second paper keep their order. *)
  match List.nth sorted 1 with
  | Tree.Element { children; _ } ->
      let authors =
        List.filter (fun c -> Tree.tag c = Some "author") children
        |> List.map Tree.string_value
      in
      Alcotest.(check (list string)) "stable for equal keys"
        [ "Elena Ferrari"; "Ernesto Damiani" ] authors
  | _ -> Alcotest.fail "expected element"

let test_delete_matched () =
  let updated = Extended.delete_matched ~pattern:year_pattern ~label:2 papers in
  checki "collection size unchanged" (List.length papers) (List.length updated);
  let count_tag tag trees =
    List.fold_left
      (fun acc t ->
        Tree.fold (fun acc t -> if Tree.tag t = Some tag then acc + 1 else acc) acc t)
      0 trees
  in
  checki "years gone" 0 (count_tag "year" updated);
  checki "titles kept" 3 (count_tag "title" updated)

let test_delete_root () =
  let sigmod_pattern =
    Pattern.v
      (Pattern.node 1 [ Pattern.pc (Pattern.leaf 2) ])
      (Condition.conj
         [
           Condition.tag_eq 1 "inproceedings";
           Condition.tag_eq 2 "booktitle";
           Condition.content_eq 2 "SIGMOD Conference";
         ])
  in
  let updated = Extended.delete_matched ~pattern:sigmod_pattern ~label:1 papers in
  checki "the two SIGMOD papers dropped" 1 (List.length updated)

let test_insert_child () =
  let paper_pattern = Pattern.v (Pattern.leaf 1) (Condition.tag_eq 1 "inproceedings") in
  let stamp = Tree.leaf "reviewed" "yes" in
  let updated =
    Extended.insert_child ~pattern:paper_pattern ~label:1 stamp papers
  in
  List.iter
    (fun t ->
      match t with
      | Tree.Element { children; _ } -> (
          match List.rev children with
          | last :: _ -> checkb "stamp appended last" true (Tree.equal last stamp)
          | [] -> Alcotest.fail "no children")
      | _ -> ())
    updated;
  let first_pos =
    Extended.insert_child ~pattern:paper_pattern ~label:1 ~position:`First stamp papers
  in
  match List.hd first_pos with
  | Tree.Element { children = c :: _; _ } ->
      checkb "stamp prepended" true (Tree.equal c stamp)
  | _ -> Alcotest.fail "expected children"

let () =
  Alcotest.run "toss_tax"
    [
      ( "pattern",
        [
          Alcotest.test_case "labels and lookup" `Quick test_pattern_labels;
          Alcotest.test_case "distinct labels enforced" `Quick
            test_pattern_distinct_labels_enforced;
        ] );
      ( "condition",
        [
          Alcotest.test_case "comparisons" `Quick test_condition_cmp;
          Alcotest.test_case "boolean connectives" `Quick test_condition_boolean;
          Alcotest.test_case "TAX degradations of ontology operators" `Quick
            test_condition_tax_degradations;
          Alcotest.test_case "helpers" `Quick test_condition_helpers;
        ] );
      ( "embedding",
        [
          Alcotest.test_case "basic" `Quick test_embeddings_basic;
          Alcotest.test_case "multiple embeddings" `Quick test_embeddings_multiple;
          Alcotest.test_case "ancestor-descendant edges" `Quick test_embeddings_ad_edge;
          Alcotest.test_case "cross-label conditions" `Quick
            test_embeddings_cross_label_condition;
          Alcotest.test_case "candidate narrowing" `Quick test_embeddings_candidates_narrow;
        ] );
      ( "witness",
        [
          Alcotest.test_case "shape" `Quick test_witness_shape;
          Alcotest.test_case "SL expands subtrees" `Quick test_witness_sl_expands;
          Alcotest.test_case "document order preserved" `Quick test_witness_order_preserved;
          Alcotest.test_case "forest of disjoint nodes" `Quick
            test_witness_forest_of_disjoint_nodes;
          Alcotest.test_case "intermediate levels elided" `Quick test_witness_mixed_matches;
          Alcotest.test_case "non-injective embeddings" `Quick
            test_embedding_not_injective;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "selection" `Quick test_select;
          Alcotest.test_case "duplicate witnesses collapse" `Quick
            test_select_duplicate_witnesses_collapsed;
          Alcotest.test_case "projection (example 5)" `Quick test_project_example5;
          Alcotest.test_case "projection keeps hierarchy" `Quick test_project_keeps_hierarchy;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "set operations" `Quick test_set_operations;
        ] );
      ( "extended operators",
        [
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "group with no embedding" `Quick test_group_by_no_embedding;
          Alcotest.test_case "aggregates" `Quick test_aggregate;
          Alcotest.test_case "aggregates of nothing" `Quick test_aggregate_empty;
          Alcotest.test_case "aggregate trees" `Quick test_aggregate_trees;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "sort children" `Quick test_sort_children;
          Alcotest.test_case "delete" `Quick test_delete_matched;
          Alcotest.test_case "delete whole trees" `Quick test_delete_root;
          Alcotest.test_case "insert" `Quick test_insert_child;
        ] );
    ]
