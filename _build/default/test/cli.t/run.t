The toss CLI end to end: generate a small deterministic bibliography,
inspect it, and query it under both semantics.

  $ toss generate --papers 8 --seed 3 -o demo.xml
  $ toss info demo.xml
  root tag:  dblp
  elements:  61
  bytes:     2174
  tags:      author, booktitle, dblp, inproceedings, pages, title, year

XPath goes straight to the store:

  $ toss xpath demo.xml "//inproceedings[1]/title"
  1 node(s)
  <title>Scalable Indexing for Graph Data in Peer-to-Peer Networks [P0000]</title>

The Ontology Maker derives part-of from nesting:

  $ toss ontology demo.xml --relation part-of | head -3
  part-of hierarchy: 14 nodes, 6 edges
    {author, writer} <= {conference paper, inproceedings}
    {booktitle, conference, venue} <= {conference paper, inproceedings}

A TQL query under TOSS reaches venues through the isa hierarchy; the
same query under TAX returns nothing (no stored venue literally contains
the words "database conference"):

  $ toss query demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  6 result(s)
  $ toss query --mode tax demo.xml 'MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1' | head -1 | cut -d' ' -f1-2
  0 result(s)

Graphviz export:

  $ toss dot demo.xml | head -1
  digraph "isa" {
