(* Tests for the digraph algorithms, term-cluster nodes and Hasse-diagram
   hierarchies that underpin ontologies, fusion and the SEA algorithm. *)

module Digraph = Toss_hierarchy.Digraph
module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy

module SG = Digraph.Make (struct
  type t = string

  let compare = String.compare
  let pp = Format.pp_print_string
end)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_sl = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Digraph basics                                                       *)
(* ------------------------------------------------------------------ *)

let diamond = SG.of_edges [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]

let test_add_and_membership () =
  checkb "empty has no vertex" false (SG.mem_vertex "x" SG.empty);
  let g = SG.add_edge "x" "y" SG.empty in
  checkb "edge endpoints become vertices" true (SG.mem_vertex "x" g && SG.mem_vertex "y" g);
  checkb "edge present" true (SG.mem_edge "x" "y" g);
  checkb "edge is directed" false (SG.mem_edge "y" "x" g);
  checki "n_vertices" 2 (SG.n_vertices g);
  checki "n_edges" 1 (SG.n_edges g)

let test_remove () =
  let g = SG.remove_edge "a" "b" diamond in
  checkb "removed edge gone" false (SG.mem_edge "a" "b" g);
  checkb "other edges stay" true (SG.mem_edge "a" "c" g);
  let g = SG.remove_vertex "d" diamond in
  checkb "vertex gone" false (SG.mem_vertex "d" g);
  checkb "incident edges gone" false (SG.mem_edge "b" "d" g);
  checki "three vertices left" 3 (SG.n_vertices g)

let test_degrees () =
  checki "out degree of a" 2 (SG.out_degree "a" diamond);
  checki "in degree of d" 2 (SG.in_degree "d" diamond);
  checki "in degree of a" 0 (SG.in_degree "a" diamond)

let test_reachability () =
  checkb "a reaches d" true (SG.has_path "a" "d" diamond);
  checkb "d does not reach a" false (SG.has_path "d" "a" diamond);
  checkb "reflexive" true (SG.has_path "b" "b" diamond);
  checki "reachable from a" 4 (SG.Vset.cardinal (SG.reachable "a" diamond));
  checki "reachable from unknown" 0 (SG.Vset.cardinal (SG.reachable "zz" diamond))

let test_topological_sort () =
  match SG.topological_sort diamond with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
      let pos v =
        let rec go i = function
          | [] -> Alcotest.fail (v ^ " missing from order")
          | x :: rest -> if x = v then i else go (i + 1) rest
        in
        go 0 order
      in
      checkb "a before b" true (pos "a" < pos "b");
      checkb "b before d" true (pos "b" < pos "d");
      checkb "c before d" true (pos "c" < pos "d")

let test_cycle_detection () =
  let cyclic = SG.add_edge "d" "a" diamond in
  checkb "diamond acyclic" true (SG.is_acyclic diamond);
  checkb "with back edge cyclic" false (SG.is_acyclic cyclic);
  checkb "topological sort refuses cycles" true (SG.topological_sort cyclic = None);
  checkb "self-loop is a cycle" false (SG.is_acyclic (SG.add_edge "x" "x" SG.empty))

let test_scc () =
  let g =
    SG.of_edges
      [ ("a", "b"); ("b", "a"); ("b", "c"); ("c", "d"); ("d", "c"); ("d", "e") ]
  in
  let comps = List.map (List.sort String.compare) (SG.scc g) in
  let comps = List.sort compare comps in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "components" [ [ "a"; "b" ]; [ "c"; "d" ]; [ "e" ] ] comps

let test_condensation () =
  let g = SG.of_edges [ ("a", "b"); ("b", "a"); ("b", "c") ] in
  let comps, edges = SG.condensation g in
  checki "two components" 2 (List.length comps);
  checki "one inter-edge" 1 (List.length edges)

let test_transitive_closure () =
  let chain = SG.of_edges [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let closed = SG.transitive_closure chain in
  checkb "a->c added" true (SG.mem_edge "a" "c" closed);
  checkb "a->d added" true (SG.mem_edge "a" "d" closed);
  checkb "no reverse edges" false (SG.mem_edge "d" "a" closed);
  checki "closure edge count" 6 (SG.n_edges closed)

let test_transitive_reduction () =
  let g = SG.add_edge "a" "d" diamond in
  let reduced = SG.transitive_reduction g in
  checkb "redundant a->d removed" false (SG.mem_edge "a" "d" reduced);
  checkb "hasse edges kept" true (SG.mem_edge "a" "b" reduced && SG.mem_edge "b" "d" reduced);
  (* Reduction must preserve reachability. *)
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          checkb
            (Printf.sprintf "reachability %s->%s preserved" u v)
            (SG.has_path u v g) (SG.has_path u v reduced))
        (SG.vertices g))
    (SG.vertices g)

let test_reduction_rejects_cycles () =
  let cyclic = SG.of_edges [ ("a", "b"); ("b", "a") ] in
  Alcotest.check_raises "reduction raises on cycle"
    (Invalid_argument "Digraph.transitive_reduction: graph has a cycle") (fun () ->
      ignore (SG.transitive_reduction cyclic))

let test_map_vertices () =
  let g = SG.map_vertices String.uppercase_ascii diamond in
  checkb "renamed edge" true (SG.mem_edge "A" "B" g);
  checki "same vertex count" 4 (SG.n_vertices g);
  (*

     Identifying vertices merges their adjacency. *)
  let merged = SG.map_vertices (fun _ -> "z") diamond in
  checki "all merged" 1 (SG.n_vertices merged)

(* Random-graph properties. *)
let random_dag_gen =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let* edges =
      list_size (int_range 0 30)
        (let* i = int_range 0 (n - 1) in
         let* j = int_range 0 (n - 1) in
         return (min i j, max i j))
    in
    (* Edges go from smaller to larger index: always a DAG (self-loops
       filtered). *)
    return
      (List.filter (fun (i, j) -> i <> j) edges
      |> List.map (fun (i, j) -> (Printf.sprintf "v%d" i, Printf.sprintf "v%d" j))))

let prop_reduction_preserves_reachability =
  QCheck2.Test.make ~name:"transitive reduction preserves reachability" ~count:100
    random_dag_gen (fun edges ->
      let g = SG.of_edges edges in
      let r = SG.transitive_reduction g in
      List.for_all
        (fun u ->
          List.for_all (fun v -> SG.has_path u v g = SG.has_path u v r) (SG.vertices g))
        (SG.vertices g))

let prop_closure_is_idempotent =
  QCheck2.Test.make ~name:"transitive closure is idempotent" ~count:100 random_dag_gen
    (fun edges ->
      let g = SG.transitive_closure (SG.of_edges edges) in
      SG.n_edges (SG.transitive_closure g) = SG.n_edges g)

let prop_topo_respects_edges =
  QCheck2.Test.make ~name:"topological sort respects edges" ~count:100 random_dag_gen
    (fun edges ->
      let g = SG.of_edges edges in
      match SG.topological_sort g with
      | None -> false
      | Some order ->
          let index = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.replace index v i) order;
          List.for_all (fun (u, v) -> Hashtbl.find index u < Hashtbl.find index v)
            (SG.edges g))

(* ------------------------------------------------------------------ *)
(* Node clusters                                                        *)
(* ------------------------------------------------------------------ *)

let test_node_canonical () =
  let n = Node.of_list [ "b"; "a"; "b" ] in
  check_sl "sorted, deduped" [ "a"; "b" ] (Node.strings n);
  checkb "equal regardless of order" true
    (Node.equal n (Node.of_list [ "a"; "b"; "a" ]));
  checki "cardinal" 2 (Node.cardinal n);
  check Alcotest.string "representative" "a" (Node.representative n)

let test_node_empty_rejected () =
  Alcotest.check_raises "empty cluster" (Invalid_argument "Node.of_list: empty cluster")
    (fun () -> ignore (Node.of_list []))

let test_node_ops () =
  let a = Node.of_list [ "x"; "y" ] in
  let b = Node.of_list [ "y"; "z" ] in
  check_sl "union" [ "x"; "y"; "z" ] (Node.strings (Node.union a b));
  checkb "mem" true (Node.mem "x" a);
  checkb "not mem" false (Node.mem "z" a);
  checkb "subset" true (Node.subset (Node.singleton "y") a);
  checkb "not subset" false (Node.subset a b)

(* ------------------------------------------------------------------ *)
(* Hierarchies                                                          *)
(* ------------------------------------------------------------------ *)

(* The paper's Example 7: author and title are part of article. *)
let example7 = Hierarchy.of_pairs [ ("author", "article"); ("title", "article") ]

let test_hierarchy_example7 () =
  checki "three nodes" 3 (Hierarchy.n_nodes example7);
  checki "two edges" 2 (Hierarchy.n_edges example7);
  checkb "author <= article" true (Hierarchy.leq example7 "author" "article");
  checkb "article not <= author" false (Hierarchy.leq example7 "article" "author");
  checkb "reflexive" true (Hierarchy.leq example7 "author" "author");
  checkb "unknown term" false (Hierarchy.leq example7 "zzz" "article")

let test_hierarchy_below_above () =
  let h = Hierarchy.of_pairs [ ("a", "b"); ("b", "c"); ("x", "c") ] in
  check_sl "below c" [ "a"; "b"; "c"; "x" ] (Hierarchy.below "c" h);
  check_sl "above a" [ "a"; "b"; "c" ] (Hierarchy.above "a" h);
  check_sl "below a" [ "a" ] (Hierarchy.below "a" h)

let test_hierarchy_of_pairs_reduces () =
  (* A transitive edge must be dropped: Hasse diagrams are minimal. *)
  let h = Hierarchy.of_pairs [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  checki "only the two covering edges" 2 (Hierarchy.n_edges h);
  checkb "ordering kept" true (Hierarchy.leq h "a" "c")

let test_hierarchy_cycle_rejected () =
  Alcotest.check_raises "cyclic ordering"
    (Invalid_argument "Hierarchy.of_pairs: cyclic ordering") (fun () ->
      ignore (Hierarchy.of_pairs [ ("a", "b"); ("b", "a") ]))

let test_hierarchy_lub () =
  let h = Hierarchy.of_pairs [ ("a", "c"); ("b", "c"); ("c", "d") ] in
  (match Hierarchy.least_upper_bound h "a" "b" with
  | Some n -> check_sl "lub is c" [ "c" ] (Node.strings n)
  | None -> Alcotest.fail "expected a unique lub");
  (* Two incomparable upper bounds: no least one. *)
  let h2 =
    Hierarchy.of_pairs [ ("a", "c"); ("b", "c"); ("a", "d"); ("b", "d") ]
  in
  checkb "no unique lub" true (Hierarchy.least_upper_bound h2 "a" "b" = None);
  checki "two minimal upper bounds" 2 (List.length (Hierarchy.upper_bounds h2 "a" "b"))

let test_hierarchy_roots_leaves () =
  let h = Hierarchy.of_pairs [ ("a", "b"); ("b", "c") ] in
  check_sl "root" [ "c" ] (List.concat_map Node.strings (Hierarchy.roots h));
  check_sl "leaf" [ "a" ] (List.concat_map Node.strings (Hierarchy.leaves h))

let test_hierarchy_cluster_nodes () =
  (* A node holding several strings: lookups work through any of them. *)
  let n = Node.of_list [ "booktitle"; "conference" ] in
  let h =
    Hierarchy.empty |> Hierarchy.add_node n
    |> Hierarchy.add_edge (Node.singleton "SIGMOD") n
  in
  checkb "leq via cluster member" true (Hierarchy.leq h "SIGMOD" "conference");
  checkb "leq via other member" true (Hierarchy.leq h "SIGMOD" "booktitle");
  check_sl "below conference" [ "SIGMOD"; "booktitle"; "conference" ]
    (Hierarchy.below "conference" h)

let test_hierarchy_terms_and_mem () =
  checkb "mem" true (Hierarchy.mem_term "author" example7);
  checkb "not mem" false (Hierarchy.mem_term "zzz" example7);
  check_sl "terms" [ "article"; "author"; "title" ] (Hierarchy.terms example7)

let test_hierarchy_equal () =
  let h1 = Hierarchy.of_pairs [ ("a", "b") ] in
  let h2 = Hierarchy.of_pairs [ ("a", "b") ] in
  let h3 = Hierarchy.of_pairs [ ("a", "c") ] in
  checkb "equal" true (Hierarchy.equal h1 h2);
  checkb "not equal" false (Hierarchy.equal h1 h3)

(* ------------------------------------------------------------------ *)
(* Editing operations (the paper's DBA refinement)                      *)
(* ------------------------------------------------------------------ *)

let test_merge_terms () =
  let h = Hierarchy.of_pairs [ ("a", "c"); ("b", "d") ] in
  let h = Hierarchy.merge_terms "a" "b" h in
  (match Hierarchy.nodes_of "a" h with
  | [ n ] -> check_sl "merged cluster" [ "a"; "b" ] (Node.strings n)
  | _ -> Alcotest.fail "expected one node for a");
  checkb "inherits both edge sets" true
    (Hierarchy.leq h "a" "d" && Hierarchy.leq h "b" "c");
  checkb "still consistent" true (Hierarchy.is_consistent h);
  (* Merging within one node is a no-op. *)
  checkb "idempotent" true (Hierarchy.equal h (Hierarchy.merge_terms "b" "a" h))

let test_merge_ordered_terms () =
  (* Merging strictly ordered terms collapses the chain into a cycle. *)
  let h = Hierarchy.of_pairs [ ("a", "m"); ("m", "b") ] in
  let merged = Hierarchy.merge_terms "a" "b" h in
  checkb "cycle detected" false (Hierarchy.is_consistent merged)

let test_remove_singleton () =
  let h = Hierarchy.of_pairs [ ("a", "m"); ("m", "b") ] in
  let h = Hierarchy.remove_term "m" h in
  checkb "term gone" false (Hierarchy.mem_term "m" h);
  checkb "ordering bridged" true (Hierarchy.leq h "a" "b")

let test_remove_cluster_member () =
  let n = Node.of_list [ "x"; "y" ] in
  let h =
    Hierarchy.empty |> Hierarchy.add_node n
    |> Hierarchy.add_edge (Node.singleton "z") n
  in
  let h = Hierarchy.remove_term "x" h in
  checkb "x gone" false (Hierarchy.mem_term "x" h);
  checkb "cluster survives with y" true (Hierarchy.leq h "z" "y")

let test_glb () =
  let h = Hierarchy.of_pairs [ ("bot", "a"); ("bot", "b"); ("a", "top"); ("b", "top") ] in
  (match Hierarchy.greatest_lower_bound h "a" "b" with
  | Some n -> check_sl "glb" [ "bot" ] (Node.strings n)
  | None -> Alcotest.fail "expected a glb");
  checkb "no glb for unrelated" true
    (Hierarchy.greatest_lower_bound h "top" "zzz" = None)

let test_depth () =
  let h = Hierarchy.of_pairs [ ("a", "b"); ("b", "c"); ("x", "c") ] in
  checki "root depth 0" 0 (Hierarchy.depth h (Node.singleton "c"));
  checki "mid depth" 1 (Hierarchy.depth h (Node.singleton "b"));
  checki "leaf depth" 2 (Hierarchy.depth h (Node.singleton "a"));
  checki "short branch" 1 (Hierarchy.depth h (Node.singleton "x"))

let test_to_dot () =
  let h = Hierarchy.of_pairs [ ("a", "b") ] in
  let dot = Hierarchy.to_dot h in
  let has needle =
    let nh = String.length dot and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub dot i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "digraph" true (has "digraph");
  checkb "labels" true (has "label=\"a\"" && has "label=\"b\"");
  checkb "edge" true (has "->")

let () =
  Alcotest.run "toss_hierarchy"
    [
      ( "digraph",
        [
          Alcotest.test_case "add and membership" `Quick test_add_and_membership;
          Alcotest.test_case "remove edge and vertex" `Quick test_remove;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "strongly connected components" `Quick test_scc;
          Alcotest.test_case "condensation" `Quick test_condensation;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
          Alcotest.test_case "reduction rejects cycles" `Quick test_reduction_rejects_cycles;
          Alcotest.test_case "map vertices" `Quick test_map_vertices;
          QCheck_alcotest.to_alcotest prop_reduction_preserves_reachability;
          QCheck_alcotest.to_alcotest prop_closure_is_idempotent;
          QCheck_alcotest.to_alcotest prop_topo_respects_edges;
        ] );
      ( "node",
        [
          Alcotest.test_case "canonical form" `Quick test_node_canonical;
          Alcotest.test_case "empty rejected" `Quick test_node_empty_rejected;
          Alcotest.test_case "set operations" `Quick test_node_ops;
        ] );
      ( "hierarchy editing",
        [
          Alcotest.test_case "merge terms" `Quick test_merge_terms;
          Alcotest.test_case "merge can create inconsistency" `Quick
            test_merge_ordered_terms;
          Alcotest.test_case "remove singleton bridges" `Quick test_remove_singleton;
          Alcotest.test_case "remove cluster member" `Quick test_remove_cluster_member;
          Alcotest.test_case "glb" `Quick test_glb;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "example 7 (part-of)" `Quick test_hierarchy_example7;
          Alcotest.test_case "below and above" `Quick test_hierarchy_below_above;
          Alcotest.test_case "of_pairs reduces to Hasse form" `Quick
            test_hierarchy_of_pairs_reduces;
          Alcotest.test_case "cycles rejected" `Quick test_hierarchy_cycle_rejected;
          Alcotest.test_case "least upper bounds" `Quick test_hierarchy_lub;
          Alcotest.test_case "roots and leaves" `Quick test_hierarchy_roots_leaves;
          Alcotest.test_case "cluster nodes" `Quick test_hierarchy_cluster_nodes;
          Alcotest.test_case "terms and membership" `Quick test_hierarchy_terms_and_mem;
          Alcotest.test_case "structural equality" `Quick test_hierarchy_equal;
        ] );
    ]
