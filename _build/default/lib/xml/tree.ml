type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

let element ?(attrs = []) tag children = Element { tag; attrs; children }
let text s = Text s
let leaf ?attrs tag s = element ?attrs tag [ text s ]
let tag = function Element { tag; _ } -> Some tag | Text _ -> None

let string_value t =
  let buf = Buffer.create 64 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element { children; _ } -> List.iter go children
  in
  go t;
  Buffer.contents buf

let rec size = function
  | Text _ -> 1
  | Element { children; _ } -> 1 + List.fold_left (fun n c -> n + size c) 0 children

let rec n_elements = function
  | Text _ -> 0
  | Element { children; _ } ->
      1 + List.fold_left (fun n c -> n + n_elements c) 0 children

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let rec map_tags f = function
  | Text s -> Text s
  | Element { tag; attrs; children } ->
      Element { tag = f tag; attrs; children = List.map (map_tags f) children }

let rec fold f acc t =
  match t with
  | Text _ -> f acc t
  | Element { children; _ } -> List.fold_left (fold f) (f acc t) children

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Element { tag; children = []; _ } -> Format.fprintf ppf "<%s/>" tag
  | Element { tag; children = [ Text s ]; _ } -> Format.fprintf ppf "<%s>%S" tag s
  | Element { tag; children; _ } ->
      Format.fprintf ppf "@[<v 2><%s>%a@]" tag
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf c ->
             Format.fprintf ppf "@,%a" pp c))
        children

module Doc = struct
  type tree = t

  type t = {
    tags : string array;
    attributes : (string * string) list array;
    contents : string array;
    kids : int list array;
    parents : int array;  (** -1 for the root *)
    depths : int array;
    last_desc : int array;  (** greatest preorder id within the subtree *)
    by_tag_index : (string, int list) Hashtbl.t;
  }

  type node = int

  let of_tree tree =
    let n =
      match tree with
      | Text _ -> invalid_arg "Doc.of_tree: root must be an element"
      | Element _ -> n_elements tree
    in
    let tags = Array.make n "" in
    let attributes = Array.make n [] in
    let contents = Array.make n "" in
    let kids = Array.make n [] in
    let parents = Array.make n (-1) in
    let depths = Array.make n 0 in
    let last_desc = Array.make n 0 in
    let counter = ref 0 in
    let rec assign parent depth = function
      | Text _ -> None
      | Element { tag; attrs; children } as el ->
          let id = !counter in
          incr counter;
          tags.(id) <- tag;
          attributes.(id) <- attrs;
          contents.(id) <- string_value el;
          parents.(id) <- parent;
          depths.(id) <- depth;
          let child_ids = List.filter_map (assign id (depth + 1)) children in
          kids.(id) <- child_ids;
          last_desc.(id) <- !counter - 1;
          Some id
    in
    ignore (assign (-1) 0 tree);
    let by_tag_index = Hashtbl.create 64 in
    for id = n - 1 downto 0 do
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_tag_index tags.(id)) in
      Hashtbl.replace by_tag_index tags.(id) (id :: existing)
    done;
    { tags; attributes; contents; kids; parents; depths; last_desc; by_tag_index }

  let root _ = 0
  let size d = Array.length d.tags
  let nodes d = List.init (size d) Fun.id
  let tag d n = d.tags.(n)
  let attrs d n = d.attributes.(n)
  let content d n = d.contents.(n)
  let children d n = d.kids.(n)
  let parent d n = if d.parents.(n) < 0 then None else Some d.parents.(n)
  let depth d n = d.depths.(n)
  let is_child d ~parent ~child = d.parents.(child) = parent
  let is_descendant d ~anc ~desc = anc < desc && desc <= d.last_desc.(anc)

  let descendants d n =
    let rec range i acc = if i > d.last_desc.(n) then List.rev acc else range (i + 1) (i :: acc) in
    range (n + 1) []

  let precedes _ a b = a < b
  let by_tag d t = Option.value ~default:[] (Hashtbl.find_opt d.by_tag_index t)

  let tags d =
    Hashtbl.fold (fun t _ acc -> t :: acc) d.by_tag_index []
    |> List.sort String.compare

  let subtree d n =
    (* Reconstruct from the arrays. Direct text is recovered as the node's
       string-value minus its element children's string-values only when
       the node has no element children; mixed content loses text ordering
       around child elements, which the algebra never relies on. *)
    let rec build n =
      match d.kids.(n) with
      | [] ->
          let c = d.contents.(n) in
          element ~attrs:d.attributes.(n) d.tags.(n) (if c = "" then [] else [ text c ])
      | ids -> element ~attrs:d.attributes.(n) d.tags.(n) (List.map build ids)
    in
    build n

  let to_tree d = subtree d 0
end
