(** Content-type inference for object attributes.

    Definition 1 assigns a type to every object's tag and content; the
    ontology-extended model (Section 5) compares typed values through
    conversion functions. This module infers the primitive type of a text
    content string. *)

type t = Int | Float | Year | String

val infer : string -> t
(** [Year] for four-digit integers in 1000–2999, [Int] for other integers,
    [Float] for decimal numbers, otherwise [String]. *)

val name : t -> string
val of_name : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
