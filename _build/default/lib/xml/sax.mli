(** Event-based (SAX-style) XML processing.

    Bibliographic dumps are large (the paper's DBLP file is 188 MB while
    Xindice accepts 5 MB); an event stream lets callers filter or truncate
    while parsing instead of materializing the whole document. The event
    vocabulary matches the tree model: start/end element, character data.
    {!fold} drives a callback over the events; {!trees_where} rebuilds
    only the subtrees whose root tag satisfies a predicate — how one
    extracts "all proceedings records" from a huge dump. *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string

val fold :
  ?keep_whitespace:bool ->
  string ->
  init:'a ->
  f:('a -> event -> 'a) ->
  ('a, Parser.error) result
(** Runs the callback over the document's events in order. Whitespace-only
    text is dropped unless [keep_whitespace]. *)

val events : ?keep_whitespace:bool -> string -> (event list, Parser.error) result
(** All events, materialized (mostly for tests). *)

val trees_where :
  ?limit:int -> (string -> bool) -> string -> (Tree.t list, Parser.error) result
(** [trees_where p input] rebuilds every maximal subtree whose root tag
    satisfies [p] (subtrees nested inside an already-matching element are
    not reported separately), stopping after [limit] matches if given. *)

val count : (string -> bool) -> string -> (int, Parser.error) result
(** Number of elements whose tag satisfies the predicate, without building
    any tree. *)
