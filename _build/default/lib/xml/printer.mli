(** XML serialization. *)

val escape_text : string -> string
(** Escapes [&], [<] and [>]. *)

val escape_attr : string -> string
(** Escapes ampersand, angle brackets and both quote characters. *)

val to_string : ?decl:bool -> Tree.t -> string
(** Compact, single-line serialization. [decl] prepends the XML
    declaration (default false). Round-trips with {!Parser.parse} up to
    whitespace normalization. *)

val to_pretty_string : ?decl:bool -> ?indent:int -> Tree.t -> string
(** Indented serialization; elements with only text content stay on one
    line. [indent] defaults to 2. *)

val byte_size : Tree.t -> int
(** Size in bytes of {!to_string} output, without the declaration — used
    by the scalability experiments to report data-set sizes the way the
    paper does. *)
