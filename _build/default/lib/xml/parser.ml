type error = { line : int; column : int; message : string }

exception Parse_error of error

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.column e.message

let wrap f =
  try f ()
  with Lexer.Lex_error { line; column; message } ->
    raise (Parse_error { line; column; message })

let rec parse_element st =
  Lexer.expect st "<";
  let tag = Lexer.name st in
  let attrs = Lexer.attributes st in
  Lexer.skip_whitespace st;
  if Lexer.looking_at st "/>" then begin
    Lexer.expect st "/>";
    Tree.element ~attrs tag []
  end
  else begin
    Lexer.expect st ">";
    let children = parse_content st tag in
    Tree.element ~attrs tag children
  end

and parse_content st tag =
  let children = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if Lexer.keep_whitespace st || not (Lexer.is_blank s) then
        children := Tree.text s :: !children
    end
  in
  let rec go () =
    if Lexer.eof st then
      Lexer.fail st (Printf.sprintf "unterminated element <%s>" tag)
    else if Lexer.looking_at st "</" then begin
      flush_text ();
      Lexer.expect st "</";
      let closing = Lexer.name st in
      if closing <> tag then
        Lexer.fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
      Lexer.skip_whitespace st;
      Lexer.expect st ">"
    end
    else if Lexer.looking_at st "<!--" then begin
      Lexer.skip_comment st;
      go ()
    end
    else if Lexer.looking_at st "<![CDATA[" then begin
      Buffer.add_string buf (Lexer.cdata st);
      go ()
    end
    else if Lexer.peek st = '<' then begin
      flush_text ();
      children := parse_element st :: !children;
      go ()
    end
    else if Lexer.peek st = '&' then begin
      Buffer.add_string buf (Lexer.entity st);
      go ()
    end
    else begin
      Buffer.add_char buf (Lexer.peek st);
      Lexer.advance st;
      go ()
    end
  in
  go ();
  List.rev !children

let parse_exn ?keep_whitespace input =
  wrap (fun () ->
      let st = Lexer.make ?keep_whitespace input in
      Lexer.skip_prolog st;
      let root = parse_element st in
      Lexer.skip_trailing st;
      root)

let parse ?keep_whitespace input =
  match parse_exn ?keep_whitespace input with
  | tree -> Ok tree
  | exception Parse_error e -> Error e

let parse_fragment input =
  match
    wrap (fun () ->
        let st = Lexer.make input in
        Lexer.skip_prolog st;
        let rec go acc =
          Lexer.skip_whitespace st;
          if Lexer.eof st then List.rev acc
          else if Lexer.looking_at st "<!--" then begin
            Lexer.skip_comment st;
            go acc
          end
          else if Lexer.peek st = '<' then go (parse_element st :: acc)
          else Lexer.fail st "expected an element"
        in
        go [])
  with
  | roots -> Ok roots
  | exception Parse_error e -> Error e
