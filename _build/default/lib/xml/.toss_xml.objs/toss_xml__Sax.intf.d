lib/xml/sax.mli: Parser Tree
