lib/xml/sax.ml: Buffer Lexer List Parser Printf Result Tree
