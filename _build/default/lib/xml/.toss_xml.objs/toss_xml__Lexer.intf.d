lib/xml/lexer.mli:
