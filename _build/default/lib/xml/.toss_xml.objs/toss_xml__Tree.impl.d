lib/xml/tree.ml: Array Buffer Format Fun Hashtbl List Option Stdlib String
