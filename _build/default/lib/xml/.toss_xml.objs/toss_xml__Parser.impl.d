lib/xml/parser.ml: Buffer Format Lexer List Printf Tree
