lib/xml/value_type.ml: Format String
