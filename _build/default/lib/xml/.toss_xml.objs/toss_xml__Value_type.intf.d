lib/xml/value_type.mli: Format
