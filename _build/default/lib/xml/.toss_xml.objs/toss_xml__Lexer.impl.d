lib/xml/lexer.ml: Buffer List Printf String Uchar
