(** Ordered labelled trees: the semistructured-instance model (Definition 1).

    Two representations are provided. {!t} is a plain constructor tree,
    convenient to build, transform and print — the algebra operators
    produce these. {!Doc} is a frozen, arena-indexed form of a tree that
    supports the constant-time structural tests (parent/child,
    ancestor/descendant via preorder–postorder intervals, document order)
    that pattern-tree embedding needs. *)

type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t
val leaf : ?attrs:(string * string) list -> string -> string -> t
(** [leaf tag s] is [element tag [text s]]. *)

val tag : t -> string option
(** [None] on text nodes. *)

val string_value : t -> string
(** Concatenation of all descendant text, in document order (the XPath
    string-value). *)

val size : t -> int
(** Number of nodes (elements and text nodes). *)

val n_elements : t -> int
val equal : t -> t -> bool
(** Structural equality: same tags, attributes, and ordered children —
    the tree-identity notion TAX's set operations use. *)

val compare : t -> t -> int
val map_tags : (string -> string) -> t -> t
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over all subtrees. *)

val pp : Format.formatter -> t -> unit

(** Frozen, indexed documents. *)
module Doc : sig
  type tree = t
  type t
  type node = int
  (** Node identifiers are the preorder ranks [0 .. size-1]; the root is
      [0]. Identifiers are only meaningful w.r.t. their own document. *)

  val of_tree : tree -> t
  (** @raise Invalid_argument when the tree is a bare text node. *)

  val root : t -> node
  val size : t -> int
  val nodes : t -> node list
  (** All element nodes, in document (preorder) order. *)

  val tag : t -> node -> string
  val attrs : t -> node -> (string * string) list
  val content : t -> node -> string
  (** String-value of the node's subtree. *)

  val children : t -> node -> node list
  (** Element children, in order. *)

  val parent : t -> node -> node option
  val depth : t -> node -> int
  val is_child : t -> parent:node -> child:node -> bool
  val is_descendant : t -> anc:node -> desc:node -> bool
  (** Strict: a node is not its own descendant. O(1). *)

  val descendants : t -> node -> node list
  (** Strict descendants, in document order. *)

  val precedes : t -> node -> node -> bool
  (** Document (preorder) order. *)

  val by_tag : t -> string -> node list
  (** All element nodes with the given tag, in document order. *)

  val tags : t -> string list
  (** Distinct tags, sorted. *)

  val subtree : t -> node -> tree
  (** Rematerializes the subtree rooted at the node. *)

  val to_tree : t -> tree
end
