type t = Int | Float | Year | String

let infer s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n when n >= 1000 && n <= 2999 && String.length s = 4 -> Year
  | Some _ -> Int
  | None -> ( match float_of_string_opt s with Some _ -> Float | None -> String)

let name = function Int -> "int" | Float -> "float" | Year -> "year" | String -> "string"

let of_name = function
  | "int" -> Some Int
  | "float" -> Some Float
  | "year" -> Some Year
  | "string" -> Some String
  | _ -> None

let equal (a : t) (b : t) = a = b
let pp ppf t = Format.pp_print_string ppf (name t)
