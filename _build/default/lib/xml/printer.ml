let escape ~quotes s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quotes -> Buffer.add_string buf "&quot;"
      | '\'' when quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape ~quotes:false
let escape_attr = escape ~quotes:true

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let declaration = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"

let to_string ?(decl = false) tree =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf declaration;
  let rec go = function
    | Tree.Text s -> Buffer.add_string buf (escape_text s)
    | Tree.Element { tag; attrs; children } -> (
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        add_attrs buf attrs;
        match children with
        | [] -> Buffer.add_string buf "/>"
        | _ ->
            Buffer.add_char buf '>';
            List.iter go children;
            Buffer.add_string buf "</";
            Buffer.add_string buf tag;
            Buffer.add_char buf '>')
  in
  go tree;
  Buffer.contents buf

let to_pretty_string ?(decl = false) ?(indent = 2) tree =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf declaration;
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let only_text children = List.for_all (function Tree.Text _ -> true | _ -> false) children in
  let rec go depth = function
    | Tree.Text s ->
        pad depth;
        Buffer.add_string buf (escape_text s);
        Buffer.add_char buf '\n'
    | Tree.Element { tag; attrs; children } -> (
        pad depth;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        add_attrs buf attrs;
        match children with
        | [] -> Buffer.add_string buf "/>\n"
        | _ when only_text children ->
            Buffer.add_char buf '>';
            List.iter
              (function Tree.Text s -> Buffer.add_string buf (escape_text s) | _ -> ())
              children;
            Buffer.add_string buf "</";
            Buffer.add_string buf tag;
            Buffer.add_string buf ">\n"
        | _ ->
            Buffer.add_string buf ">\n";
            List.iter (go (depth + 1)) children;
            pad depth;
            Buffer.add_string buf "</";
            Buffer.add_string buf tag;
            Buffer.add_string buf ">\n")
  in
  go 0 tree;
  Buffer.contents buf

let byte_size tree = String.length (to_string tree)
