(** A parser for the XML 1.0 subset used by bibliographic data sets.

    Supports: an optional XML declaration and DOCTYPE line, elements with
    attributes (single or double quoted), character data, the five
    predefined entities plus decimal/hexadecimal character references,
    comments, CDATA sections, and self-closing tags. Namespaces are not
    interpreted (prefixed names are kept verbatim). *)

type error = { line : int; column : int; message : string }

exception Parse_error of error

val parse : ?keep_whitespace:bool -> string -> (Tree.t, error) result
(** Parses a complete document to its root element. Whitespace-only text
    nodes between elements are dropped unless [keep_whitespace] is true
    (default false). *)

val parse_exn : ?keep_whitespace:bool -> string -> Tree.t
(** @raise Parse_error *)

val parse_fragment : string -> (Tree.t list, error) result
(** Parses a sequence of sibling elements with no single root. *)

val pp_error : Format.formatter -> error -> unit
