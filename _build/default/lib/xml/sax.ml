type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string

let wrap f =
  try Ok (f ())
  with Lexer.Lex_error { line; column; message } ->
    Error { Parser.line; column; message }

(* Drive the scanner, firing [f] per event; [stop] short-circuits. *)
exception Stop

let run ?keep_whitespace input ~init ~f ~stop =
  wrap (fun () ->
      let st = Lexer.make ?keep_whitespace input in
      Lexer.skip_prolog st;
      let acc = ref init in
      let emit event =
        acc := f !acc event;
        if stop !acc then raise Stop
      in
      let buf = Buffer.create 32 in
      let flush_text () =
        if Buffer.length buf > 0 then begin
          let s = Buffer.contents buf in
          Buffer.clear buf;
          if Lexer.keep_whitespace st || not (Lexer.is_blank s) then emit (Text s)
        end
      in
      (* Stack of open tags; empty after the root closes. *)
      let rec element () =
        Lexer.expect st "<";
        let tag = Lexer.name st in
        let attrs = Lexer.attributes st in
        Lexer.skip_whitespace st;
        if Lexer.looking_at st "/>" then begin
          Lexer.expect st "/>";
          emit (Start_element { tag; attrs });
          emit (End_element tag)
        end
        else begin
          Lexer.expect st ">";
          emit (Start_element { tag; attrs });
          content tag;
          emit (End_element tag)
        end
      and content tag =
        if Lexer.eof st then
          Lexer.fail st (Printf.sprintf "unterminated element <%s>" tag)
        else if Lexer.looking_at st "</" then begin
          flush_text ();
          Lexer.expect st "</";
          let closing = Lexer.name st in
          if closing <> tag then
            Lexer.fail st
              (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
          Lexer.skip_whitespace st;
          Lexer.expect st ">"
        end
        else if Lexer.looking_at st "<!--" then begin
          Lexer.skip_comment st;
          content tag
        end
        else if Lexer.looking_at st "<![CDATA[" then begin
          Buffer.add_string buf (Lexer.cdata st);
          content tag
        end
        else if Lexer.peek st = '<' then begin
          flush_text ();
          element ();
          content tag
        end
        else if Lexer.peek st = '&' then begin
          Buffer.add_string buf (Lexer.entity st);
          content tag
        end
        else begin
          Buffer.add_char buf (Lexer.peek st);
          Lexer.advance st;
          content tag
        end
      in
      (try
         element ();
         Lexer.skip_trailing st
       with Stop -> ());
      !acc)

let fold ?keep_whitespace input ~init ~f =
  run ?keep_whitespace input ~init ~f ~stop:(fun _ -> false)

let events ?keep_whitespace input =
  Result.map List.rev
    (fold ?keep_whitespace input ~init:[] ~f:(fun acc e -> e :: acc))

type 'a builder_state = {
  matched : Tree.t list;  (** completed matches, reversed *)
  stack : (string * (string * string) list * Tree.t list) list;
      (** open elements inside a match, children reversed *)
  remaining : int;
}

let trees_where ?(limit = max_int) p input =
  let step st event =
    match (event, st.stack) with
    | Start_element { tag; attrs }, [] ->
        if p tag && st.remaining > 0 then
          { st with stack = [ (tag, attrs, []) ] }
        else st
    | Start_element { tag; attrs }, stack -> { st with stack = (tag, attrs, []) :: stack }
    | Text s, (tag, attrs, children) :: rest ->
        { st with stack = (tag, attrs, Tree.text s :: children) :: rest }
    | Text _, [] -> st
    | End_element _, [] -> st
    | End_element _, [ (tag, attrs, children) ] ->
        {
          matched = Tree.element ~attrs tag (List.rev children) :: st.matched;
          stack = [];
          remaining = st.remaining - 1;
        }
    | End_element _, (tag, attrs, children) :: (ptag, pattrs, pchildren) :: rest ->
        {
          st with
          stack =
            (ptag, pattrs, Tree.element ~attrs tag (List.rev children) :: pchildren)
            :: rest;
        }
  in
  Result.map
    (fun st -> List.rev st.matched)
    (run input
       ~init:{ matched = []; stack = []; remaining = limit }
       ~f:step
       ~stop:(fun st -> st.remaining <= 0 && st.stack = []))

let count p input =
  fold input ~init:0 ~f:(fun n event ->
      match event with Start_element { tag; _ } when p tag -> n + 1 | _ -> n)
