(** Low-level XML scanning shared by the tree parser and the SAX driver:
    position-tracked input, names, quoted attribute values, entity and
    character references, comments, CDATA sections, and prolog/DOCTYPE
    skipping. *)

exception Lex_error of { line : int; column : int; message : string }

type state

val make : ?keep_whitespace:bool -> string -> state
val keep_whitespace : state -> bool

val fail : state -> string -> 'a
(** @raise Lex_error at the current position. *)

val eof : state -> bool

val peek : state -> char
(** ['\000'] at end of input. *)

val advance : state -> unit
val skip_whitespace : state -> unit
val looking_at : state -> string -> bool
val expect : state -> string -> unit
val is_name_start : char -> bool
val name : state -> string

val entity : state -> string
(** Consumes [&...;] and returns the replacement text. *)

val quoted_value : state -> string
val attributes : state -> (string * string) list
val skip_comment : state -> unit
val cdata : state -> string

val skip_prolog : state -> unit
(** XML declaration, leading comments, DOCTYPE. *)

val skip_trailing : state -> unit
(** Whitespace and comments after the root; fails on anything else. *)

val is_blank : string -> bool
