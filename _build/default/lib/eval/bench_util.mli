(** Timing and table-printing utilities for the experiment harness. *)

val time : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)

val time_median : ?runs:int -> (unit -> 'a) -> 'a * float
(** Runs the thunk [runs] times (default 3) and reports the median time
    with the last result. *)

val print_header : string -> unit
(** A titled rule, e.g. ["=== Figure 15(a) ... ==="]. *)

val print_table : columns:string list -> string list list -> unit
(** Fixed-width table with a header row. *)

val fs : float -> string
(** Seconds with 4 decimals. *)

val f2 : float -> string
(** 2 decimals. *)

val f3 : float -> string
(** 3 decimals. *)
