lib/eval/series.ml: Buffer Filename Fun List Printf String Sys
