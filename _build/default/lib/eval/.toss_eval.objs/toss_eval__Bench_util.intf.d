lib/eval/bench_util.mli:
