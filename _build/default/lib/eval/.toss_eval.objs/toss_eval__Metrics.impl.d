lib/eval/metrics.ml: List String
