lib/eval/metrics.mli:
