lib/eval/series.mli:
