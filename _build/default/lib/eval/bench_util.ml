let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let time_median ?(runs = 3) f =
  let runs = max 1 runs in
  let results = List.init runs (fun _ -> time f) in
  let times = List.sort Float.compare (List.map snd results) in
  let median = List.nth times (runs / 2) in
  (fst (List.nth results (runs - 1)), median)

let print_header title =
  let rule = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" rule title rule

let print_table ~columns rows =
  let all = columns :: rows in
  let n_cols = List.length columns in
  let widths =
    List.init n_cols (fun i ->
        List.fold_left
          (fun w row ->
            match List.nth_opt row i with
            | Some cell -> max w (String.length cell)
            | None -> w)
          0 all)
  in
  let print_row row =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Printf.printf "%s%s  " cell (String.make (max 0 (w - String.length cell)) ' '))
      row;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fs t = Printf.sprintf "%.4f" t
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
