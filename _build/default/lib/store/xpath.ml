module Tree = Toss_xml.Tree
module Doc = Tree.Doc

type axis = Child | Descendant
type name_test = Tag of string | Any

type predicate =
  | Content_eq of string
  | Content_contains of string
  | Child_eq of string * string
  | Child_contains of string * string
  | Has_child of string
  | Attr_eq of string * string
  | Position of int
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type step = { axis : axis; test : name_test; predicates : predicate list }
type path = step list
type t = path list

let path steps = [ steps ]
let union ts = List.concat ts
let step ?(axis = Child) ?(predicates = []) tag = { axis; test = Tag tag; predicates }
let any ?(axis = Child) ?(predicates = []) () = { axis; test = Any; predicates }

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0

let rec matches doc node = function
  | Content_eq v -> Doc.content doc node = v
  | Content_contains v -> contains ~needle:v (Doc.content doc node)
  | Child_eq (tag, v) ->
      List.exists
        (fun c -> Doc.tag doc c = tag && Doc.content doc c = v)
        (Doc.children doc node)
  | Child_contains (tag, v) ->
      List.exists
        (fun c -> Doc.tag doc c = tag && contains ~needle:v (Doc.content doc c))
        (Doc.children doc node)
  | Has_child tag -> List.exists (fun c -> Doc.tag doc c = tag) (Doc.children doc node)
  | Attr_eq (a, v) -> List.assoc_opt a (Doc.attrs doc node) = Some v
  | Position _ -> true
  | And (p, q) -> matches doc node p && matches doc node q
  | Or (p, q) -> matches doc node p || matches doc node q
  | Not p -> not (matches doc node p)

let test_ok doc node = function Any -> true | Tag t -> Doc.tag doc node = t

(* Candidates of a step relative to a context node, before predicates.
   [root_step] handles the first step of an absolute path, whose child
   axis selects the document root itself. *)
let step_candidates doc context st ~root_step =
  match (st.axis, root_step) with
  | Child, true -> if test_ok doc context st.test then [ context ] else []
  | Child, false -> List.filter (fun n -> test_ok doc n st.test) (Doc.children doc context)
  | Descendant, true ->
      let self = if test_ok doc context st.test then [ context ] else [] in
      self @ List.filter (fun n -> test_ok doc n st.test) (Doc.descendants doc context)
  | Descendant, false ->
      List.filter (fun n -> test_ok doc n st.test) (Doc.descendants doc context)

let apply_predicates doc st nodes =
  List.fold_left
    (fun nodes pred ->
      match pred with
      | Position k -> (
          (* 1-based position within the candidate list. *)
          match List.nth_opt nodes (k - 1) with Some n -> [ n ] | None -> [])
      | p -> List.filter (fun n -> matches doc n p) nodes)
    nodes st.predicates

let eval_path doc steps =
  let rec go contexts root_step = function
    | [] -> contexts
    | st :: rest ->
        let nexts =
          List.concat_map
            (fun ctx -> apply_predicates doc st (step_candidates doc ctx st ~root_step))
            contexts
        in
        go nexts false rest
  in
  go [ Doc.root doc ] true steps

let eval doc t =
  List.concat_map (eval_path doc) t |> List.sort_uniq Int.compare

let escape_string v =
  (* Single-quoted literal; single quotes inside are not supported by the
     grammar, so replace them defensively. *)
  String.map (fun c -> if c = '\'' then '"' else c) v

let rec predicate_to_string = function
  | Content_eq v -> Printf.sprintf ".='%s'" (escape_string v)
  | Content_contains v -> Printf.sprintf "contains(.,'%s')" (escape_string v)
  | Child_eq (t, v) -> Printf.sprintf "%s='%s'" t (escape_string v)
  | Child_contains (t, v) -> Printf.sprintf "contains(%s,'%s')" t (escape_string v)
  | Has_child t -> t
  | Attr_eq (a, v) -> Printf.sprintf "@%s='%s'" a (escape_string v)
  | Position k -> string_of_int k
  | And (p, q) -> Printf.sprintf "(%s and %s)" (predicate_to_string p) (predicate_to_string q)
  | Or (p, q) -> Printf.sprintf "(%s or %s)" (predicate_to_string p) (predicate_to_string q)
  | Not p -> Printf.sprintf "not(%s)" (predicate_to_string p)

let step_to_string st =
  let axis = match st.axis with Child -> "/" | Descendant -> "//" in
  let test = match st.test with Any -> "*" | Tag t -> t in
  let preds =
    String.concat "" (List.map (fun p -> "[" ^ predicate_to_string p ^ "]") st.predicates)
  in
  axis ^ test ^ preds

let path_to_string steps = String.concat "" (List.map step_to_string steps)
let to_string t = String.concat " | " (List.map path_to_string t)
let pp ppf t = Format.pp_print_string ppf (to_string t)
