(** Document collections, in the style of Xindice.

    A collection is a mutable, named set of XML documents. Documents are
    frozen into {!Toss_xml.Tree.Doc.t} form and value-indexed at insertion time.
    Xindice imposed a 5 MB data-size limit that shaped the paper's
    experiments (they truncated DBLP to 4,753,774 bytes); [max_bytes]
    reproduces that behaviour when set. *)

type t

type doc_id = int

exception Collection_full of { name : string; limit : int }

val create : ?max_bytes:int -> string -> t
val name : t -> string

val add_document : t -> Toss_xml.Tree.t -> doc_id
(** @raise Collection_full when the size limit would be exceeded. *)

val add_xml : t -> string -> (doc_id, Toss_xml.Parser.error) result
(** Parses and inserts. *)

val doc : t -> doc_id -> Toss_xml.Tree.Doc.t
(** @raise Not_found for unknown ids. *)

val index : t -> doc_id -> Index.t
val doc_ids : t -> doc_id list
val n_documents : t -> int
val size_bytes : t -> int
(** Total serialized size of all stored documents. *)

val n_nodes : t -> int

val eval : ?use_index:bool -> t -> Xpath.t -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Evaluates the query against every document, in insertion order. With
    [use_index] (default true), leading [//tag] steps are answered from
    the documents' tag indexes instead of scanning. *)

val eval_string : ?use_index:bool -> t -> string -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Parses the XPath first.
    @raise Xpath_parser.Error on syntax errors. *)

val eq_lookup : t -> tag:string -> value:string -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Indexed exact-content lookup across all documents. *)

val subtrees : t -> (doc_id * Toss_xml.Tree.Doc.node) list -> Toss_xml.Tree.t list
(** Rematerializes result nodes as trees, preserving result order. *)
