exception Error of string

type state = { input : string; mutable pos : int }

let fail st msg = raise (Error (Printf.sprintf "at offset %d: %s" st.pos msg))
let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos]
let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t' || peek st = '\n') do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_string st =
  expect st "'";
  let start = st.pos in
  while (not (eof st)) && peek st <> '\'' do
    advance st
  done;
  if eof st then fail st "unterminated string literal";
  let s = String.sub st.input start (st.pos - start) in
  expect st "'";
  s

let parse_int st =
  let start = st.pos in
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do
    advance st
  done;
  if st.pos = start then fail st "expected an integer";
  int_of_string (String.sub st.input start (st.pos - start))

(* A name inside a predicate may start a comparison, a contains() call, or
   stand alone as an existence test; 'and', 'or' and 'not' are keywords. *)
let rec parse_or st =
  let left = parse_and st in
  skip_ws st;
  if looking_at st "or " || looking_at st "or(" then begin
    expect st "or";
    skip_ws st;
    Xpath.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_unary st in
  skip_ws st;
  if looking_at st "and " || looking_at st "and(" then begin
    expect st "and";
    skip_ws st;
    Xpath.And (left, parse_and st)
  end
  else left

and parse_unary st =
  skip_ws st;
  if looking_at st "not(" then begin
    expect st "not(";
    let inner = parse_or st in
    skip_ws st;
    expect st ")";
    Xpath.Not inner
  end
  else if peek st = '(' then begin
    expect st "(";
    let inner = parse_or st in
    skip_ws st;
    expect st ")";
    inner
  end
  else parse_atom st

and parse_atom st =
  skip_ws st;
  if peek st >= '0' && peek st <= '9' then Xpath.Position (parse_int st)
  else if peek st = '@' then begin
    advance st;
    let name = parse_name st in
    skip_ws st;
    expect st "=";
    skip_ws st;
    Xpath.Attr_eq (name, parse_string st)
  end
  else if peek st = '.' then begin
    advance st;
    skip_ws st;
    expect st "=";
    skip_ws st;
    Xpath.Content_eq (parse_string st)
  end
  else if looking_at st "contains(" then begin
    expect st "contains(";
    skip_ws st;
    let target = if peek st = '.' then (advance st; None) else Some (parse_name st) in
    skip_ws st;
    expect st ",";
    skip_ws st;
    let v = parse_string st in
    skip_ws st;
    expect st ")";
    match target with
    | None -> Xpath.Content_contains v
    | Some t -> Xpath.Child_contains (t, v)
  end
  else begin
    let name = parse_name st in
    skip_ws st;
    if peek st = '=' then begin
      expect st "=";
      skip_ws st;
      Xpath.Child_eq (name, parse_string st)
    end
    else Xpath.Has_child name
  end

let parse_step st =
  let axis =
    if looking_at st "//" then begin
      expect st "//";
      Xpath.Descendant
    end
    else begin
      expect st "/";
      Xpath.Child
    end
  in
  let test =
    if peek st = '*' then begin
      advance st;
      Xpath.Any
    end
    else Xpath.Tag (parse_name st)
  in
  let predicates = ref [] in
  while peek st = '[' do
    expect st "[";
    let p = parse_or st in
    skip_ws st;
    expect st "]";
    predicates := p :: !predicates
  done;
  { Xpath.axis; test; predicates = List.rev !predicates }

let parse_path st =
  let steps = ref [ parse_step st ] in
  while peek st = '/' do
    steps := parse_step st :: !steps
  done;
  List.rev !steps

let parse_exn input =
  let st = { input; pos = 0 } in
  skip_ws st;
  let paths = ref [ parse_path st ] in
  skip_ws st;
  while peek st = '|' do
    expect st "|";
    skip_ws st;
    paths := parse_path st :: !paths;
    skip_ws st
  done;
  if not (eof st) then fail st "trailing input";
  List.rev !paths

let parse input =
  match parse_exn input with t -> Ok t | exception Error msg -> Error msg
