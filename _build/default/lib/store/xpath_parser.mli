(** Parser for the XPath subset's concrete syntax.

    Grammar (whitespace insensitive inside predicates):
    {v
    query := path ('|' path)*
    path  := (('/' | '//') test pred* )+
    test  := NAME | '*'
    pred  := '[' or ']'
    or    := and ('or' and)*
    and   := unary ('and' unary)*
    unary := 'not' '(' or ')' | '(' or ')' | atom
    atom  := INT | '@' NAME '=' STR | '.' '=' STR
           | 'contains' '(' ('.' | NAME) ',' STR ')'
           | NAME '=' STR | NAME
    STR   := single-quoted string
    v} *)

exception Error of string

val parse : string -> (Xpath.t, string) result
val parse_exn : string -> Xpath.t
