(** Filesystem persistence for collections and databases.

    Xindice stored collections as directories of XML documents; this
    module provides the same durable layout: a collection becomes a
    directory with one [NNNNNN.xml] file per document (zero-padded
    insertion order), and a database a directory of collection
    directories. Round-trips preserve document order and content up to
    whitespace normalization. *)

val save_collection : Collection.t -> dir:string -> unit
(** Creates [dir] if needed and (re)writes every document.
    @raise Sys_error on filesystem failures. *)

val load_collection : ?max_bytes:int -> name:string -> string -> (Collection.t, string) result
(** [load_collection ~name dir] loads every [*.xml] file of [dir] in
    lexicographic (= insertion) order. *)

val save_database : Database.t -> dir:string -> unit
(** One subdirectory per collection, named after it. *)

val load_database : dir:string -> (Database.t, string) result
(** Every subdirectory becomes a collection. *)
