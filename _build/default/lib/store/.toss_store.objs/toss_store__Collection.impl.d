lib/store/collection.ml: Array Fun Index Int Lazy List Toss_xml Xpath Xpath_parser
