lib/store/collection.mli: Index Toss_xml Xpath
