lib/store/xpath.mli: Format Toss_xml
