lib/store/xpath_parser.mli: Xpath
