lib/store/database.mli: Collection Toss_xml
