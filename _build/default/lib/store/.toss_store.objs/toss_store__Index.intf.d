lib/store/index.mli: Toss_xml
