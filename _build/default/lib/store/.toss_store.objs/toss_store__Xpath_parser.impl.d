lib/store/xpath_parser.ml: List Printf String Xpath
