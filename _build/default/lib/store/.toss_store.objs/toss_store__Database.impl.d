lib/store/database.ml: Collection Hashtbl List Printf String
