lib/store/xpath.ml: Format Int List Printf String Toss_xml
