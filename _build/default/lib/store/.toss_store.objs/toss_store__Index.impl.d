lib/store/index.ml: Buffer Char Hashtbl List Option String Toss_xml
