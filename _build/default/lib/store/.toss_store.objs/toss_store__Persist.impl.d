lib/store/persist.ml: Array Collection Database Filename Format Fun List Printf String Sys Toss_xml
