lib/store/persist.mli: Collection Database
