module Tree = Toss_xml.Tree
module Parser = Toss_xml.Parser
module Printer = Toss_xml.Printer

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let doc_filename id = Printf.sprintf "%06d.xml" id

let save_collection collection ~dir =
  ensure_dir dir;
  List.iter
    (fun id ->
      let tree = Tree.Doc.to_tree (Collection.doc collection id) in
      let path = Filename.concat dir (doc_filename id) in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Printer.to_string ~decl:true tree)))
    (Collection.doc_ids collection)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_collection ?max_bytes ~name dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort String.compare
    in
    let collection = Collection.create ?max_bytes name in
    let rec load = function
      | [] -> Ok collection
      | file :: rest -> (
          let path = Filename.concat dir file in
          match Collection.add_xml collection (read_file path) with
          | Ok _ -> load rest
          | Error e -> Error (Format.asprintf "%s: %a" path Parser.pp_error e)
          | exception Collection.Collection_full { limit; _ } ->
              Error (Printf.sprintf "%s: collection size limit %d exceeded" path limit))
    in
    load files
  end

let save_database db ~dir =
  ensure_dir dir;
  List.iter
    (fun name ->
      match Database.collection db name with
      | Some c -> save_collection c ~dir:(Filename.concat dir name)
      | None -> ())
    (Database.collection_names db)

let load_database ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let subdirs =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun d -> Sys.is_directory (Filename.concat dir d))
      |> List.sort String.compare
    in
    let db = Database.create () in
    let rec load = function
      | [] -> Ok db
      | name :: rest -> (
          match load_collection ~name (Filename.concat dir name) with
          | Ok collection ->
              (* Re-register under the database. *)
              let target = Database.create_collection db name in
              List.iter
                (fun id ->
                  ignore
                    (Collection.add_document target
                       (Tree.Doc.to_tree (Collection.doc collection id))))
                (Collection.doc_ids collection);
              load rest
          | Error _ as e -> e)
    in
    load subdirs
  end
