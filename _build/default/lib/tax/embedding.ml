module Doc = Toss_xml.Tree.Doc

type binding = (int * Doc.node) list

let env_of doc binding label =
  Option.map (fun n -> (doc, n)) (List.assoc_opt label binding)

(* Environment for prefiltering: only the node under consideration is
   bound, to its own label. *)
let single_env doc label node l = if l = label then Some (doc, node) else None

let enumerate ?(candidates = fun _ -> None) ~eval doc (pattern : Pattern.t) =
  let condition = pattern.Pattern.condition in
  let local_ok label node =
    List.for_all
      (fun atom -> eval (single_env doc label node) atom)
      (Condition.local_atoms condition label)
  in
  (* Candidate lists are turned into hash sets once per label so that
     narrowing a structural candidate list costs O(1) per node. *)
  let candidate_sets = Hashtbl.create 8 in
  let candidate_set label =
    match Hashtbl.find_opt candidate_sets label with
    | Some set -> set
    | None ->
        let set =
          Option.map
            (fun allowed ->
              let tbl = Hashtbl.create (List.length allowed) in
              List.iter (fun n -> Hashtbl.replace tbl n ()) allowed;
              tbl)
            (candidates label)
        in
        Hashtbl.replace candidate_sets label set;
        set
  in
  let narrowed label nodes =
    match candidate_set label with
    | None -> nodes
    | Some allowed -> List.filter (fun n -> Hashtbl.mem allowed n) nodes
  in
  (* Enumerate structural embeddings by walking the pattern in preorder;
     [binding] accumulates in reverse. *)
  let rec extend binding (pnode : Pattern.node) image =
    let binding = (pnode.Pattern.label, image) :: binding in
    let rec over_children binding = function
      | [] -> [ binding ]
      | (kind, child) :: rest ->
          let structural =
            match (kind : Pattern.edge_kind) with
            | Pattern.Pc -> Doc.children doc image
            | Pattern.Ad -> Doc.descendants doc image
          in
          let options =
            narrowed child.Pattern.label structural
            |> List.filter (local_ok child.Pattern.label)
          in
          List.concat_map
            (fun img ->
              List.concat_map
                (fun b -> over_children b rest)
                (extend binding child img))
            options
    in
    over_children binding pnode.Pattern.children
  in
  let root = pattern.Pattern.root in
  let root_candidates =
    (* A fetched candidate list for the root replaces the full node scan. *)
    (match candidates root.Pattern.label with
    | Some allowed -> List.sort_uniq Int.compare allowed
    | None -> Doc.nodes doc)
    |> List.filter (local_ok root.Pattern.label)
  in
  let structural =
    List.concat_map (fun img -> extend [] root img) root_candidates
  in
  structural
  |> List.rev_map List.rev
  |> List.filter (fun binding -> eval (env_of doc binding) condition)
  |> List.sort compare
