module Tree = Toss_xml.Tree
module Doc = Tree.Doc

type agg = Count | Sum | Avg | Min | Max

let group_root_tag = "tax_group_root"

let default_eval = Condition.eval_tax

(* Values of a term under every embedding of the pattern into the tree. *)
let term_values ~eval ~pattern term tree =
  let doc = Doc.of_tree tree in
  Embedding.enumerate ~eval doc pattern
  |> List.filter_map (fun binding ->
         Condition.term_value (Embedding.env_of doc binding) term)

let group_by ?(eval = default_eval) ~pattern ~by collection =
  let key_of tree =
    let doc = Doc.of_tree tree in
    match Embedding.enumerate ~eval doc pattern with
    | [] -> []
    | binding :: _ ->
        List.map
          (fun term ->
            Option.value ~default:""
              (Condition.term_value (Embedding.env_of doc binding) term))
          by
  in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun tree ->
      let key = key_of tree in
      if not (Hashtbl.mem groups key) then order := key :: !order;
      Hashtbl.replace groups key
        (tree :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    collection;
  List.sort compare !order
  |> List.map (fun key ->
         let members = List.rev (Hashtbl.find groups key) in
         Tree.element group_root_tag
           [
             Tree.element "group_key" (List.map (fun v -> Tree.leaf "key" v) key);
             Tree.element "tax_group_subroot" members;
           ])

let numeric_values values = List.filter_map float_of_string_opt values

let apply_agg agg values =
  match agg with
  | Count -> float_of_int (List.length values)
  | Sum -> List.fold_left ( +. ) 0. (numeric_values values)
  | Avg -> (
      match numeric_values values with
      | [] -> 0.
      | nums -> List.fold_left ( +. ) 0. nums /. float_of_int (List.length nums))
  | Min -> (
      match numeric_values values with
      | [] -> nan
      | n :: ns -> List.fold_left Float.min n ns)
  | Max -> (
      match numeric_values values with
      | [] -> nan
      | n :: ns -> List.fold_left Float.max n ns)

let aggregate ?(eval = default_eval) ~pattern ~agg ~over collection =
  List.map
    (fun tree -> (tree, apply_agg agg (term_values ~eval ~pattern over tree)))
    collection

let agg_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Avg -> "avg"
  | Min -> "min"
  | Max -> "max"

let format_number x =
  if Float.is_integer x && Float.abs x < 1e15 then string_of_int (int_of_float x)
  else Printf.sprintf "%g" x

let aggregate_trees ?(eval = default_eval) ~pattern ~agg ~over ?result_tag collection =
  let tag = Option.value ~default:(agg_name agg) result_tag in
  aggregate ~eval ~pattern ~agg ~over collection
  |> List.map (fun (tree, value) ->
         match tree with
         | Tree.Element { tag = root_tag; attrs; children } ->
             Tree.element ~attrs root_tag
               (children @ [ Tree.leaf tag (format_number value) ])
         | Tree.Text _ -> Tree.leaf tag (format_number value))

(* Rebuild a tree, applying [f] at every element whose preorder id is in
   [targets]. Preorder ids are assigned exactly as in Doc.of_tree, so the
   embedding's node ids line up. *)
let rewrite_matched tree targets f =
  let counter = ref (-1) in
  let rec go t =
    match t with
    | Tree.Text _ -> t
    | Tree.Element { tag; attrs; children } ->
        incr counter;
        let id = !counter in
        let children = List.map go children in
        let rebuilt = Tree.element ~attrs tag children in
        if Hashtbl.mem targets id then f rebuilt else rebuilt
  in
  go tree

let matched_nodes ~eval ~pattern ~label tree =
  let doc = Doc.of_tree tree in
  let targets = Hashtbl.create 8 in
  List.iter
    (fun binding ->
      match List.assoc_opt label binding with
      | Some n -> Hashtbl.replace targets n ()
      | None -> ())
    (Embedding.enumerate ~eval doc pattern);
  targets

let rename ?(eval = default_eval) ~pattern ~label ~to_ collection =
  List.map
    (fun tree ->
      let targets = matched_nodes ~eval ~pattern ~label tree in
      rewrite_matched tree targets (fun t ->
          match t with
          | Tree.Element { attrs; children; _ } -> Tree.element ~attrs to_ children
          | Tree.Text _ -> t))
    collection

(* Rebuild, DROPPING every element whose preorder id is matched; returns
   None when the root itself was matched. *)
let prune_matched tree targets =
  let counter = ref (-1) in
  let rec go t =
    match t with
    | Tree.Text _ -> Some t
    | Tree.Element { tag; attrs; children } ->
        incr counter;
        let id = !counter in
        let children = List.filter_map go children in
        if Hashtbl.mem targets id then None else Some (Tree.element ~attrs tag children)
  in
  go tree

let delete_matched ?(eval = default_eval) ~pattern ~label collection =
  List.filter_map
    (fun tree ->
      let targets = matched_nodes ~eval ~pattern ~label tree in
      if Hashtbl.length targets = 0 then Some tree else prune_matched tree targets)
    collection

let insert_child ?(eval = default_eval) ~pattern ~label ?(position = `Last) child
    collection =
  List.map
    (fun tree ->
      let targets = matched_nodes ~eval ~pattern ~label tree in
      rewrite_matched tree targets (fun t ->
          match t with
          | Tree.Element { tag; attrs; children } ->
              let children =
                match position with
                | `Last -> children @ [ child ]
                | `First -> child :: children
              in
              Tree.element ~attrs tag children
          | Tree.Text _ -> t))
    collection

let sort_children ?(eval = default_eval) ~pattern ~label ~key collection =
  let key_of = function
    | Tree.Element { tag; _ } as t -> (
        match key with `Tag -> tag | `Content -> Tree.string_value t)
    | Tree.Text s -> s
  in
  List.map
    (fun tree ->
      let targets = matched_nodes ~eval ~pattern ~label tree in
      rewrite_matched tree targets (fun t ->
          match t with
          | Tree.Element { tag; attrs; children } ->
              Tree.element ~attrs tag
                (List.stable_sort (fun a b -> String.compare (key_of a) (key_of b)) children)
          | Tree.Text _ -> t))
    collection
