(** The TAX algebra (Section 2.1.2): selection, projection, product, join
    and the set operations, over in-memory collections of trees.

    Every operator takes an optional condition evaluator so that the TOSS
    engine can reuse this machinery with ontology-aware satisfaction; the
    default is the baseline {!Condition.eval_tax}. *)

type collection = Toss_xml.Tree.t list
(** A semistructured database: a finite set of rooted ordered trees. *)

type evaluator = Condition.env -> Condition.t -> bool

val select :
  ?eval:evaluator -> pattern:Pattern.t -> sl:int list -> collection -> collection
(** [σ_{P,SL}]: one witness tree per embedding (duplicates collapsed), with
    the full subtrees of SL-matched nodes included (Example 3). *)

val project :
  ?eval:evaluator -> pattern:Pattern.t -> pl:int list -> collection -> collection
(** [π_{P,PL}]: keeps exactly the nodes matched by PL labels under some
    embedding, preserving their hierarchical relationships; each input
    tree contributes the forest of its retained nodes (Example 5). *)

val product : collection -> collection -> collection
(** [×]: every pair of trees under a fresh [tax_prod_root] (Section 2.1.2). *)

val prod_root_tag : string
(** ["tax_prod_root"] *)

val join :
  ?eval:evaluator ->
  pattern:Pattern.t ->
  sl:int list ->
  collection ->
  collection ->
  collection
(** Condition join: product followed by selection (Example 6). *)

val union : collection -> collection -> collection
(** Set union modulo tree equality (ordered isomorphism). *)

val intersect : collection -> collection -> collection
val difference : collection -> collection -> collection

val embeddings_of_tree :
  ?eval:evaluator -> pattern:Pattern.t -> Toss_xml.Tree.t -> Embedding.binding list
(** Convenience used by tests and the executor. *)
