module Tree = Toss_xml.Tree
module Doc = Tree.Doc

let materialize doc node children_rev =
  let tag = Doc.tag doc node in
  let attrs = Doc.attrs doc node in
  match children_rev with
  | [] ->
      let c = Doc.content doc node in
      Tree.element ~attrs tag (if c = "" then [] else [ Tree.text c ])
  | _ -> Tree.element ~attrs tag (List.rev children_rev)

let forest_of doc nodes =
  let sorted = List.sort_uniq Int.compare nodes in
  (* Preorder sweep with an ancestor stack: when the next node is not a
     descendant of the stack top, the top is complete and folds into its
     parent. *)
  let roots = ref [] in
  let stack = ref [] in
  let close_top () =
    match !stack with
    | [] -> ()
    | (top, children_rev) :: rest -> (
        let tree = materialize doc top children_rev in
        match rest with
        | [] ->
            roots := tree :: !roots;
            stack := []
        | (p, p_children) :: more -> stack := (p, tree :: p_children) :: more)
  in
  List.iter
    (fun node ->
      let rec unwind () =
        match !stack with
        | (top, _) :: _ when not (Doc.is_descendant doc ~anc:top ~desc:node) ->
            close_top ();
            unwind ()
        | _ -> ()
      in
      unwind ();
      stack := (node, []) :: !stack)
    sorted;
  while !stack <> [] do
    close_top ()
  done;
  List.rev !roots

let nodes_of_binding doc binding ~sl =
  let images = List.map snd binding in
  let expanded =
    List.concat_map
      (fun (label, node) ->
        if List.mem label sl then node :: Doc.descendants doc node else [ node ])
      binding
  in
  List.sort_uniq Int.compare (images @ expanded)

let of_binding doc binding ~sl =
  match forest_of doc (nodes_of_binding doc binding ~sl) with
  | [ tree ] -> tree
  | trees ->
      (* The pattern root's image is an ancestor of every other image, so
         the forest is always a single tree. *)
      invalid_arg
        (Printf.sprintf "Witness.of_binding: %d roots (expected 1)" (List.length trees))
