lib/tax/condition.ml: Float Format List Option String Toss_xml
