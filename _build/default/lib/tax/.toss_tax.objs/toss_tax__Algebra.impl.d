lib/tax/algebra.ml: Condition Embedding Hashtbl List Toss_xml Witness
