lib/tax/pattern.mli: Condition Format
