lib/tax/pattern.ml: Condition Format Int List
