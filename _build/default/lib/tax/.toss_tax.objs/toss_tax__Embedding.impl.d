lib/tax/embedding.ml: Condition Hashtbl Int List Option Pattern Toss_xml
