lib/tax/extended.ml: Condition Embedding Float Hashtbl List Option Printf String Toss_xml
