lib/tax/witness.ml: Int List Printf Toss_xml
