lib/tax/embedding.mli: Condition Pattern Toss_xml
