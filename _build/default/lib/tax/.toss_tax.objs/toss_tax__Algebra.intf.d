lib/tax/algebra.mli: Condition Embedding Pattern Toss_xml
