lib/tax/extended.mli: Algebra Condition Pattern Toss_xml
