lib/tax/condition.mli: Format Toss_xml
