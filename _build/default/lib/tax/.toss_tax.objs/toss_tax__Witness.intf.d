lib/tax/witness.mli: Embedding Toss_xml
