(** Embeddings of pattern trees into documents (Section 2.1.1).

    An embedding is a total mapping from pattern nodes to document nodes
    that sends pc edges to parent-child pairs and ad edges to
    ancestor-descendant pairs, such that the induced witness tree
    satisfies the pattern's selection condition. The satisfaction notion
    is a parameter ([eval]) so that the same enumeration serves both the
    TAX and the TOSS semantics. *)

type binding = (int * Toss_xml.Tree.Doc.node) list
(** Pattern label to document node, in pattern preorder. *)

val enumerate :
  ?candidates:(int -> Toss_xml.Tree.Doc.node list option) ->
  eval:(Condition.env -> Condition.t -> bool) ->
  Toss_xml.Tree.Doc.t ->
  Pattern.t ->
  binding list
(** All embeddings, in document order of the root image (then
    lexicographically). [candidates ~label] may narrow the structural
    search space for a label (e.g. from an index); [None] means
    unrestricted. Node-local atomic conjuncts of the pattern's condition
    are additionally used as prefilters with the supplied [eval]. *)

val env_of : Toss_xml.Tree.Doc.t -> binding -> Condition.env
