(** Witness trees (Section 2.1.1).

    The witness tree induced by an embedding contains the images of the
    pattern nodes, connected by closest-ancestor edges and ordered by
    document order. Selection additionally copies the full subtrees of the
    nodes matched by labels in the selection list SL. *)

val forest_of : Toss_xml.Tree.Doc.t -> Toss_xml.Tree.Doc.node list -> Toss_xml.Tree.t list
(** Builds the forest induced by a node set: each node's parent is its
    closest ancestor within the set; roots are the set's minimal nodes;
    sibling order is document order. Nodes without element children in the
    set are materialized with their full text content. *)

val of_binding :
  Toss_xml.Tree.Doc.t -> Embedding.binding -> sl:int list -> Toss_xml.Tree.t
(** The witness tree of one embedding; images of labels in [sl] contribute
    their entire subtrees. *)

val nodes_of_binding :
  Toss_xml.Tree.Doc.t -> Embedding.binding -> sl:int list -> Toss_xml.Tree.Doc.node list
(** The node set underlying {!of_binding} (images plus SL descendants),
    sorted in document order. *)
