module Doc = Toss_xml.Tree.Doc

type term = Tag of int | Content of int | Str of string

type cmp = Eq | Neq | Le | Ge | Lt | Gt

type t =
  | True
  | Cmp of term * cmp * term
  | Contains of term * string
  | Sim of term * term
  | Isa of term * term
  | Part_of of term * term
  | Instance_of of term * term
  | Subtype_of of term * term
  | Below of term * term
  | Above of term * term
  | And of t * t
  | Or of t * t
  | Not of t

let conj = function [] -> True | c :: cs -> List.fold_left (fun a b -> And (a, b)) c cs
let disj = function [] -> Not True | c :: cs -> List.fold_left (fun a b -> Or (a, b)) c cs
let tag_eq i s = Cmp (Tag i, Eq, Str s)
let content_eq i s = Cmp (Content i, Eq, Str s)
let content_sim i s = Sim (Content i, Str s)
let content_isa i s = Isa (Content i, Str s)

type env = int -> (Doc.t * Doc.node) option

let term_value env = function
  | Str s -> Some s
  | Tag i -> Option.map (fun (d, n) -> Doc.tag d n) (env i)
  | Content i -> Option.map (fun (d, n) -> Doc.content d n) (env i)

let compare_values cmp a b =
  let order =
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some x, Some y -> Float.compare x y
    | _ -> String.compare a b
  in
  match cmp with
  | Eq -> order = 0
  | Neq -> order <> 0
  | Le -> order <= 0
  | Ge -> order >= 0
  | Lt -> order < 0
  | Gt -> order > 0

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0

let rec eval_tax env c =
  let value t = term_value env t in
  let binary f x y = match (value x, value y) with Some a, Some b -> f a b | _ -> false in
  match c with
  | True -> true
  | Cmp (x, cmp, y) -> binary (compare_values cmp) x y
  | Contains (x, s) -> ( match value x with Some a -> contains ~needle:s a | None -> false)
  | Sim (x, y) -> binary String.equal x y
  | Isa (x, y) | Part_of (x, y) | Instance_of (x, y) | Subtype_of (x, y)
  | Below (x, y) | Above (x, y) ->
      binary (fun a b -> contains ~needle:b a) x y
  | And (p, q) -> eval_tax env p && eval_tax env q
  | Or (p, q) -> eval_tax env p || eval_tax env q
  | Not p -> not (eval_tax env p)

let term_labels = function Tag i | Content i -> [ i ] | Str _ -> []

let rec labels_used = function
  | True -> []
  | Cmp (x, _, y) | Sim (x, y) | Isa (x, y) | Part_of (x, y) | Instance_of (x, y)
  | Subtype_of (x, y) | Below (x, y) | Above (x, y) ->
      term_labels x @ term_labels y
  | Contains (x, _) -> term_labels x
  | And (p, q) | Or (p, q) -> labels_used p @ labels_used q
  | Not p -> labels_used p

let rec atoms = function
  | True -> []
  | And (p, q) | Or (p, q) -> atoms p @ atoms q
  | Not p -> atoms p
  | atom -> [ atom ]

let rec top_conjuncts = function
  | And (p, q) -> top_conjuncts p @ top_conjuncts q
  | c -> [ c ]

let local_atoms c label =
  List.filter
    (fun conjunct ->
      match conjunct with
      | And _ -> assert false (* flattened by top_conjuncts *)
      | Or _ | Not _ | True -> false
      | atom -> labels_used atom = [ label ] || labels_used atom = [ label; label ])
    (top_conjuncts c)

let pp_term ppf = function
  | Tag i -> Format.fprintf ppf "#%d.tag" i
  | Content i -> Format.fprintf ppf "#%d.content" i
  | Str s -> Format.fprintf ppf "%S" s

let cmp_symbol = function
  | Eq -> "=" | Neq -> "!=" | Le -> "<=" | Ge -> ">=" | Lt -> "<" | Gt -> ">"

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Cmp (x, c, y) -> Format.fprintf ppf "%a %s %a" pp_term x (cmp_symbol c) pp_term y
  | Contains (x, s) -> Format.fprintf ppf "contains(%a, %S)" pp_term x s
  | Sim (x, y) -> Format.fprintf ppf "%a ~ %a" pp_term x pp_term y
  | Isa (x, y) -> Format.fprintf ppf "%a isa %a" pp_term x pp_term y
  | Part_of (x, y) -> Format.fprintf ppf "%a part_of %a" pp_term x pp_term y
  | Instance_of (x, y) -> Format.fprintf ppf "%a instance_of %a" pp_term x pp_term y
  | Subtype_of (x, y) -> Format.fprintf ppf "%a subtype_of %a" pp_term x pp_term y
  | Below (x, y) -> Format.fprintf ppf "%a below %a" pp_term x pp_term y
  | Above (x, y) -> Format.fprintf ppf "%a above %a" pp_term x pp_term y
  | And (p, q) -> Format.fprintf ppf "(%a and %a)" pp p pp q
  | Or (p, q) -> Format.fprintf ppf "(%a or %a)" pp p pp q
  | Not p -> Format.fprintf ppf "not(%a)" pp p
