(** The remaining TAX operators: grouping, aggregation, renaming and
    reordering.

    The TAX paper (Jagadish et al., the paper's reference [8]) defines
    these beyond the core selection/projection/product/set operators; TOSS
    inherits them unchanged, so they are implemented here once and both
    semantics reuse them through the [eval] parameter. *)

type agg = Count | Sum | Avg | Min | Max

val group_root_tag : string
(** ["tax_group_root"] *)

val group_by :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  by:Condition.term list ->
  Algebra.collection ->
  Algebra.collection
(** Partitions the collection by the values of the grouping basis [by]
    (terms over the pattern's labels, evaluated under each input tree's
    first embedding; trees with no embedding group under the empty key).
    Each output tree is

    {v
    <tax_group_root>
      <group_key><key>v1</key> ... </group_key>
      <tax_group_subroot> ...member trees... </tax_group_subroot>
    </tax_group_root>
    v}

    Groups are ordered by key; members keep collection order. *)

val aggregate :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  agg:agg ->
  over:Condition.term ->
  Algebra.collection ->
  (Toss_xml.Tree.t * float) list
(** For each input tree, the aggregate of the term's values over all
    embeddings ([Count] counts embeddings; the numeric aggregates skip
    non-numeric values; [Sum]/[Avg] of no values is 0, [Min]/[Max] of no
    values is [nan]). *)

val aggregate_trees :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  agg:agg ->
  over:Condition.term ->
  ?result_tag:string ->
  Algebra.collection ->
  Algebra.collection
(** The XML form: each input tree becomes
    [<result_tag>value</result_tag>] appended as the last child of (a copy
    of) the tree's root. [result_tag] defaults to the lowercase aggregate
    name, e.g. ["count"]. *)

val rename :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  label:int ->
  to_:string ->
  Algebra.collection ->
  Algebra.collection
(** Renames the tag of every node matched by the label under some
    embedding; all other nodes are untouched. *)

val sort_children :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  label:int ->
  key:[ `Tag | `Content ] ->
  Algebra.collection ->
  Algebra.collection
(** Reorders the element children of every node matched by the label, by
    the chosen key (stable; text children keep their positions relative to
    the front). *)

val delete_matched :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  label:int ->
  Algebra.collection ->
  Algebra.collection
(** The TAX deletion operator: removes every node matched by the label
    (with its whole subtree). A tree whose root matches is dropped from
    the collection. *)

val insert_child :
  ?eval:Algebra.evaluator ->
  pattern:Pattern.t ->
  label:int ->
  ?position:[ `First | `Last ] ->
  Toss_xml.Tree.t ->
  Algebra.collection ->
  Algebra.collection
(** The TAX insertion operator: adds a copy of the given tree as the
    first or last (default) child of every node matched by the label. *)
