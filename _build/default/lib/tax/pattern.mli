(** Pattern trees (Definition 2).

    A pattern tree is a node- and edge-labelled tree: every node carries a
    distinct integer label, every edge is parent-child ([Pc]) or
    ancestor-descendant ([Ad]), and a selection condition [F] applies to
    the whole pattern. *)

type edge_kind = Pc | Ad

type node = { label : int; children : (edge_kind * node) list }

type t = { root : node; condition : Condition.t }

val node : int -> (edge_kind * node) list -> node
val leaf : int -> node
val pc : node -> edge_kind * node
val ad : node -> edge_kind * node

val v : node -> Condition.t -> t
(** @raise Invalid_argument when node labels are not distinct. *)

val labels : t -> int list
(** All node labels, in preorder. *)

val n_nodes : t -> int
val find : t -> int -> node option
val parent_label : t -> int -> (int * edge_kind) option
(** The label of a node's parent in the pattern and the connecting edge
    kind; [None] for the root. *)

val pp : Format.formatter -> t -> unit
