type edge_kind = Pc | Ad

type node = { label : int; children : (edge_kind * node) list }

type t = { root : node; condition : Condition.t }

let node label children = { label; children }
let leaf label = { label; children = [] }
let pc n = (Pc, n)
let ad n = (Ad, n)

let rec node_labels n = n.label :: List.concat_map (fun (_, c) -> node_labels c) n.children

let v root condition =
  let labels = node_labels root in
  let distinct = List.sort_uniq Int.compare labels in
  if List.length distinct <> List.length labels then
    invalid_arg "Pattern.v: node labels must be distinct";
  { root; condition }

let labels t = node_labels t.root
let n_nodes t = List.length (labels t)

let find t label =
  let rec go n =
    if n.label = label then Some n
    else List.find_map (fun (_, c) -> go c) n.children
  in
  go t.root

let parent_label t label =
  let rec go n =
    List.find_map
      (fun (kind, c) -> if c.label = label then Some (n.label, kind) else go c)
      n.children
  in
  go t.root

let rec pp_node ppf n =
  match n.children with
  | [] -> Format.fprintf ppf "#%d" n.label
  | cs ->
      Format.fprintf ppf "#%d(%a)" n.label
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (kind, c) ->
             Format.fprintf ppf "%s%a" (match kind with Pc -> "/" | Ad -> "//") pp_node c))
        cs

let pp ppf t = Format.fprintf ppf "@[%a where %a@]" pp_node t.root Condition.pp t.condition
