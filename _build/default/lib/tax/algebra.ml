module Tree = Toss_xml.Tree
module Doc = Tree.Doc

type collection = Tree.t list
type evaluator = Condition.env -> Condition.t -> bool

let default_eval : evaluator = Condition.eval_tax

(* Set semantics, preserving first-occurrence order (witness trees come
   out in document order and the examples rely on it). *)
let dedup trees =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    trees

let select ?(eval = default_eval) ~pattern ~sl collection =
  List.concat_map
    (fun tree ->
      let doc = Doc.of_tree tree in
      Embedding.enumerate ~eval doc pattern
      |> List.map (fun binding -> Witness.of_binding doc binding ~sl)
      |> dedup)
    collection

let project ?(eval = default_eval) ~pattern ~pl collection =
  List.concat_map
    (fun tree ->
      let doc = Doc.of_tree tree in
      let bindings = Embedding.enumerate ~eval doc pattern in
      let kept =
        List.concat_map
          (fun binding ->
            List.filter_map
              (fun (label, node) -> if List.mem label pl then Some node else None)
              binding)
          bindings
      in
      Witness.forest_of doc kept)
    collection

let prod_root_tag = "tax_prod_root"

let product c1 c2 =
  List.concat_map (fun t1 -> List.map (fun t2 -> Tree.element prod_root_tag [ t1; t2 ]) c2) c1

let join ?eval ~pattern ~sl c1 c2 = select ?eval ~pattern ~sl (product c1 c2)

let union c1 c2 = dedup (c1 @ c2)
let intersect c1 c2 = List.filter (fun t -> List.exists (Tree.equal t) c2) (dedup c1)

let difference c1 c2 =
  List.filter (fun t -> not (List.exists (Tree.equal t) c2)) (dedup c1)

let embeddings_of_tree ?(eval = default_eval) ~pattern tree =
  Embedding.enumerate ~eval (Doc.of_tree tree) pattern
