module Algebra = Toss_tax.Algebra

type collection = Toss_xml.Tree.t list

let select seo ~pattern ~sl c =
  Algebra.select ~eval:(Toss_condition.evaluator seo) ~pattern ~sl c

let project seo ~pattern ~pl c =
  Algebra.project ~eval:(Toss_condition.evaluator seo) ~pattern ~pl c

let product = Algebra.product

let join seo ~pattern ~sl c1 c2 =
  Algebra.join ~eval:(Toss_condition.evaluator seo) ~pattern ~sl c1 c2

let union = Algebra.union
let intersect = Algebra.intersect
let difference = Algebra.difference
