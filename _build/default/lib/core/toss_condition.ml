module Condition = Toss_tax.Condition
module Value_type = Toss_xml.Value_type

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0

let compare_converted seo cmp a b =
  let ta = Value_type.name (Value_type.infer a) in
  let tb = Value_type.name (Value_type.infer b) in
  let conversions = Seo.conversions seo in
  let a', b' =
    if ta = tb then (a, b)
    else if Conversion.exists conversions ~from:ta ~into:tb then
      (Option.value ~default:a (Conversion.convert conversions ~from:ta ~into:tb a), b)
    else if Conversion.exists conversions ~from:tb ~into:ta then
      (a, Option.value ~default:b (Conversion.convert conversions ~from:tb ~into:ta b))
    else (a, b)
  in
  Condition.compare_values cmp a' b'

(* X instance_of Y: X's value is below the type Y, or X's inferred
   primitive type is Y (values of a type are types, Section 5). *)
let instance_of seo x_value y_value =
  Seo.leq_isa seo x_value y_value
  || Value_type.name (Value_type.infer x_value) = y_value

let subtype_of seo x_value y_value =
  let h = Seo.isa_hierarchy seo in
  Toss_hierarchy.Hierarchy.mem_term x_value h
  && Toss_hierarchy.Hierarchy.mem_term y_value h
  && Seo.leq_isa seo x_value y_value

let below seo x y = instance_of seo x y || subtype_of seo x y

let rec eval seo env c =
  let value t = Condition.term_value env t in
  let binary f x y =
    match (value x, value y) with Some a, Some b -> f a b | _ -> false
  in
  match c with
  | Condition.True -> true
  | Condition.Cmp (x, cmp, y) -> binary (compare_converted seo cmp) x y
  | Condition.Contains (x, s) -> (
      match value x with Some a -> contains ~needle:s a | None -> false)
  | Condition.Sim (x, y) -> binary (Seo.similar seo) x y
  | Condition.Isa (x, y) -> binary (Seo.leq_isa seo) x y
  | Condition.Part_of (x, y) -> binary (Seo.leq_part seo) x y
  | Condition.Instance_of (x, y) -> binary (instance_of seo) x y
  | Condition.Subtype_of (x, y) -> binary (subtype_of seo) x y
  | Condition.Below (x, y) -> binary (below seo) x y
  | Condition.Above (x, y) -> binary (fun a b -> below seo b a) x y
  | Condition.And (p, q) -> eval seo env p && eval seo env q
  | Condition.Or (p, q) -> eval seo env p || eval seo env q
  | Condition.Not p -> not (eval seo env p)

let evaluator seo env c = eval seo env c

let well_typed seo c =
  let convertible a b =
    let ta = Value_type.name (Value_type.infer a) in
    let tb = Value_type.name (Value_type.infer b) in
    ta = tb
    || Conversion.exists (Seo.conversions seo) ~from:ta ~into:tb
    || Conversion.exists (Seo.conversions seo) ~from:tb ~into:ta
  in
  List.for_all
    (fun atom ->
      match atom with
      | Condition.Cmp (Condition.Str a, _, Condition.Str b) -> convertible a b
      | _ -> true)
    (Condition.atoms c)
