(** Conversion functions between types (Section 5).

    For each pair of types at most one total conversion function
    [τ₁2τ₂ : dom(τ₁) → dom(τ₂)] may exist. The registry enforces the
    paper's closure conditions: identity conversions always exist, and
    compositions are derived automatically (and must be coherent — all
    composition paths between two types denote the same function, which
    {!check_coherence} verifies on samples). Values are carried as
    strings, as in the data model. *)

type t

val empty : t

val register : from:string -> into:string -> (string -> string) -> t -> t
(** @raise Invalid_argument when a different function is already
    registered for the pair. *)

val exists : t -> from:string -> into:string -> bool
(** Including identity and derivable compositions. *)

val convert : t -> from:string -> into:string -> string -> string option
(** Applies the direct, identity, or shortest-composition conversion;
    [None] when no path exists. *)

val types : t -> string list

val check_coherence : t -> samples:(string * string) list -> (unit, string list) result
(** For each [(type, value)] sample, converts along every simple path to
    every reachable type and reports pairs of paths that disagree. *)

val standard : t
(** Identity plus the numeric conversions used by the bibliographic data:
    [int→float], [year→int], [year→float], and metric length units
    ([mm→cm→m]) as a worked example of composition. *)
