lib/core/oes.mli: Toss_ontology Toss_xml
