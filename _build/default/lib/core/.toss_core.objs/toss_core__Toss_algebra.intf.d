lib/core/toss_algebra.mli: Seo Toss_tax Toss_xml
