lib/core/seo.ml: Conversion Format List Toss_hierarchy Toss_ontology Toss_similarity
