lib/core/explain.mli: Format Rewrite Seo Toss_tax
