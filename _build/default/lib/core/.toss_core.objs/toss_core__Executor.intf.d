lib/core/executor.mli: Rewrite Seo Toss_store Toss_tax Toss_xml
