lib/core/explain.ml: Format List Rewrite Seo Toss_store Toss_tax
