lib/core/seo.mli: Conversion Toss_hierarchy Toss_ontology Toss_similarity Toss_xml
