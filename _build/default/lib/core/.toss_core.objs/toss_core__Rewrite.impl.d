lib/core/rewrite.ml: List Option Seo Toss_store Toss_tax
