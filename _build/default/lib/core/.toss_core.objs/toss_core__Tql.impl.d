lib/core/tql.ml: Buffer List Option Printf String Toss_tax
