lib/core/oes.ml: Toss_ontology Toss_xml
