lib/core/session.ml: Executor List Printf Seo Toss_condition Toss_ontology Toss_similarity Toss_store Toss_tax Toss_xml Tql
