lib/core/toss_condition.ml: Conversion List Option Seo String Toss_hierarchy Toss_tax Toss_xml
