lib/core/conversion.ml: Float Fun Hashtbl List Map Option Printf Queue String
