lib/core/conversion.mli:
