lib/core/toss_algebra.ml: Toss_condition Toss_tax Toss_xml
