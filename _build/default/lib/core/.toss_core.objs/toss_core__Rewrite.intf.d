lib/core/rewrite.mli: Seo Toss_store Toss_tax
