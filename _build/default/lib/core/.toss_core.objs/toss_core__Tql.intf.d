lib/core/tql.mli: Toss_tax
