lib/core/toss_condition.mli: Seo Toss_tax
