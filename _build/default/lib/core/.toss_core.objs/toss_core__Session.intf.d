lib/core/session.mli: Executor Seo Toss_ontology Toss_similarity Toss_store Toss_xml
