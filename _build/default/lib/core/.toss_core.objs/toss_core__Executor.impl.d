lib/core/executor.ml: Hashtbl Int List Option Rewrite Toss_condition Toss_store Toss_tax Toss_xml Unix
