(** Ontology-extended semistructured instances (Section 5).

    An OES instance pairs a semistructured instance with its ontology (for
    now the isa and part-of hierarchies produced by the Ontology Maker)
    and the inferred attribute types. A set of OES instances is fused into
    a single {!Seo.t} context for querying. *)

module Ontology = Toss_ontology.Ontology
module Doc = Toss_xml.Tree.Doc
module Value_type = Toss_xml.Value_type

type t

val v : Doc.t -> Ontology.t -> t

val of_doc :
  ?lexicon:Toss_ontology.Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  Doc.t ->
  t
(** Runs the Ontology Maker. *)

val of_tree :
  ?lexicon:Toss_ontology.Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  Toss_xml.Tree.t ->
  t

val doc : t -> Doc.t
val ontology : t -> Ontology.t

val tag_type : t -> Doc.node -> Value_type.t
(** Type of the node's tag attribute (always [String]). *)

val content_type : t -> Doc.node -> Value_type.t
(** Inferred type of the node's content. *)
