(** TQL: a concrete syntax for pattern-tree queries.

    The paper expresses queries as pattern trees plus selection conditions
    drawn as figures; TQL is the equivalent text form, used by the [toss]
    command-line tool and handy in tests:

    {v
    MATCH #1:inproceedings(/#2:author, /#3:booktitle)
    WHERE #2.content ~ "Jeffrey D. Ullman"
      AND #3.content isa "database conference"
    SELECT #1
    v}

    - [MATCH] gives the tree: [#<label>] optionally [:tag] (shorthand for
      a [#n.tag = "tag"] conjunct), children parenthesized and prefixed
      with [/] (parent-child) or [//] (ancestor-descendant).
    - [WHERE] (optional) is a boolean combination ([AND], [OR], [NOT],
      parentheses) of atoms over the terms [#n.tag], [#n.content] and
      string literals: [=], [!=], [<=], [>=], [<], [>], [~], [isa],
      [part_of], [instance_of], [subtype_of], [below], [above], and
      [contains(term, "s")].
    - [SELECT #i, #j] (optional) lists the SL labels whose full subtrees
      selection should include.
    - [PROJECT #i, #j] (optional, exclusive with SELECT) turns the query
      into a projection with the given PL.

    Keywords are case-insensitive; labels must be distinct. *)

type target = Select of int list | Project of int list

type t = { pattern : Toss_tax.Pattern.t; target : target }

val parse : string -> (t, string) result
val parse_exn : string -> t

val to_string : t -> string
(** Concrete syntax that reparses to an equivalent query (tag shorthands
    are emitted as explicit WHERE conjuncts). *)

val sl : t -> int list
(** The SL ([] for projections). *)
