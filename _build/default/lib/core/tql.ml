module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition

type target = Select of int list | Project of int list

type t = { pattern : Pattern.t; target : target }

exception Error of string

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

type token =
  | Hash of int  (** #12 *)
  | Ident of string  (** keyword or operator word; lowercased *)
  | String_lit of string
  | Number of string
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Dot
  | Slash
  | Dslash
  | Op of string  (** = != <= >= < > ~ *)

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  let peek k = if !i + k < n then input.[!i + k] else '\000' in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      incr i;
      let start = !i in
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do
        incr i
      done;
      if !i = start then raise (Error "expected a label number after #");
      push (Hash (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      while !i < n && input.[!i] <> '"' do
        if input.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf input.[!i + 1];
          i := !i + 2
        end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if !i >= n then raise (Error "unterminated string literal");
      incr i;
      push (String_lit (Buffer.contents buf))
    end
    else if (c >= '0' && c <= '9') || (c = '-' && peek 1 >= '0' && peek 1 <= '9')
    then begin
      let start = !i in
      incr i;
      while
        !i < n
        && ((input.[!i] >= '0' && input.[!i] <= '9') || input.[!i] = '.')
      do
        incr i
      done;
      push (Number (String.sub input start (!i - start)))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        && ((input.[!i] >= 'a' && input.[!i] <= 'z')
           || (input.[!i] >= 'A' && input.[!i] <= 'Z')
           || (input.[!i] >= '0' && input.[!i] <= '9')
           || input.[!i] = '_' || input.[!i] = '-')
      do
        incr i
      done;
      push (Ident (String.lowercase_ascii (String.sub input start (!i - start))))
    end
    else begin
      (match c with
      | '(' -> push Lparen
      | ')' -> push Rparen
      | ',' -> push Comma
      | ':' -> push Colon
      | '.' -> push Dot
      | '/' ->
          if peek 1 = '/' then begin
            push Dslash;
            incr i
          end
          else push Slash
      | '=' -> push (Op "=")
      | '~' -> push (Op "~")
      | '!' ->
          if peek 1 = '=' then begin
            push (Op "!=");
            incr i
          end
          else raise (Error "unexpected '!'")
      | '<' ->
          if peek 1 = '=' then begin
            push (Op "<=");
            incr i
          end
          else push (Op "<")
      | '>' ->
          if peek 1 = '=' then begin
            push (Op ">=");
            incr i
          end
          else push (Op ">")
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c)));
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

type state = { mutable tokens : token list }

let peek st = match st.tokens with t :: _ -> Some t | [] -> None

let advance st =
  match st.tokens with
  | t :: rest ->
      st.tokens <- rest;
      t
  | [] -> raise (Error "unexpected end of query")

let expect st tok msg = if advance st <> tok then raise (Error ("expected " ^ msg))

let expect_ident st kw =
  match advance st with
  | Ident id when id = kw -> ()
  | _ -> raise (Error ("expected keyword " ^ String.uppercase_ascii kw))

(* MATCH tree: #n[:tag] [ '(' ('/'|'//') node (',' ('/'|'//') node)* ')' ] *)
let rec parse_node st shorthands =
  let label =
    match advance st with
    | Hash l -> l
    | _ -> raise (Error "expected #label in MATCH")
  in
  (match peek st with
  | Some Colon -> (
      ignore (advance st);
      match advance st with
      | Ident tag -> shorthands := Condition.tag_eq label tag :: !shorthands
      | String_lit tag -> shorthands := Condition.tag_eq label tag :: !shorthands
      | _ -> raise (Error "expected a tag after ':'"))
  | _ -> ());
  let children = ref [] in
  (match peek st with
  | Some Lparen ->
      ignore (advance st);
      let rec child () =
        let kind =
          match advance st with
          | Slash -> Pattern.Pc
          | Dslash -> Pattern.Ad
          | _ -> raise (Error "expected / or // before a child pattern")
        in
        let node = parse_node st shorthands in
        children := (kind, node) :: !children;
        match advance st with
        | Comma -> child ()
        | Rparen -> ()
        | _ -> raise (Error "expected ',' or ')' in MATCH")
      in
      child ()
  | _ -> ());
  Pattern.node label (List.rev !children)

(* WHERE terms and atoms. *)
let parse_term st =
  match advance st with
  | Hash label -> (
      expect st Dot "'.' after #label";
      match advance st with
      | Ident "tag" -> Condition.Tag label
      | Ident "content" -> Condition.Content label
      | _ -> raise (Error "expected .tag or .content"))
  | String_lit s -> Condition.Str s
  | Number x -> Condition.Str x
  | _ -> raise (Error "expected a term (#n.tag, #n.content, string, or number)")

let binary_of_ident name x y =
  match name with
  | "isa" -> Condition.Isa (x, y)
  | "part_of" | "partof" -> Condition.Part_of (x, y)
  | "instance_of" | "instanceof" -> Condition.Instance_of (x, y)
  | "subtype_of" | "subtypeof" -> Condition.Subtype_of (x, y)
  | "below" -> Condition.Below (x, y)
  | "above" -> Condition.Above (x, y)
  | _ -> raise (Error ("unknown operator " ^ name))

let cmp_of_op = function
  | "=" -> Condition.Eq
  | "!=" -> Condition.Neq
  | "<=" -> Condition.Le
  | ">=" -> Condition.Ge
  | "<" -> Condition.Lt
  | ">" -> Condition.Gt
  | op -> raise (Error ("unknown comparison " ^ op))

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Some (Ident "or") ->
      ignore (advance st);
      Condition.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_unary st in
  match peek st with
  | Some (Ident "and") ->
      ignore (advance st);
      Condition.And (left, parse_and st)
  | _ -> left

and parse_unary st =
  match peek st with
  | Some (Ident "not") ->
      ignore (advance st);
      expect st Lparen "'(' after NOT";
      let inner = parse_or st in
      expect st Rparen "')'";
      Condition.Not inner
  | Some Lparen ->
      ignore (advance st);
      let inner = parse_or st in
      expect st Rparen "')'";
      inner
  | Some (Ident "true") ->
      ignore (advance st);
      Condition.True
  | Some (Ident "contains") ->
      ignore (advance st);
      expect st Lparen "'(' after contains";
      let term = parse_term st in
      expect st Comma "','";
      let s =
        match advance st with
        | String_lit s -> s
        | Number x -> x
        | _ -> raise (Error "expected a string in contains()")
      in
      expect st Rparen "')'";
      Condition.Contains (term, s)
  | _ -> parse_atom st

and parse_atom st =
  let x = parse_term st in
  match advance st with
  | Op "~" -> Condition.Sim (x, parse_term st)
  | Op op -> Condition.Cmp (x, cmp_of_op op, parse_term st)
  | Ident name -> binary_of_ident name x (parse_term st)
  | _ -> raise (Error "expected an operator")

let parse_labels st =
  let rec go acc =
    match advance st with
    | Hash l -> (
        match peek st with
        | Some Comma ->
            ignore (advance st);
            go (l :: acc)
        | _ -> List.rev (l :: acc))
    | _ -> raise (Error "expected #label")
  in
  go []

let parse_exn input =
  let st = { tokens = lex input } in
  expect_ident st "match";
  let shorthands = ref [] in
  let root = parse_node st shorthands in
  let where =
    match peek st with
    | Some (Ident "where") ->
        ignore (advance st);
        Some (parse_or st)
    | _ -> None
  in
  let target =
    match peek st with
    | Some (Ident "select") ->
        ignore (advance st);
        Select (parse_labels st)
    | Some (Ident "project") ->
        ignore (advance st);
        Project (parse_labels st)
    | None -> Select []
    | Some _ -> raise (Error "expected WHERE, SELECT, PROJECT or end of query")
  in
  if st.tokens <> [] then raise (Error "trailing input after the query");
  let condition =
    Condition.conj (List.rev !shorthands @ Option.to_list where)
  in
  let pattern =
    try Pattern.v root condition
    with Invalid_argument msg -> raise (Error msg)
  in
  { pattern; target }

let parse input =
  match parse_exn input with
  | t -> Ok t
  | exception Error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)
(* ------------------------------------------------------------------ *)

let term_to_string = function
  | Condition.Tag i -> Printf.sprintf "#%d.tag" i
  | Condition.Content i -> Printf.sprintf "#%d.content" i
  | Condition.Str s -> Printf.sprintf "%S" s

let rec condition_to_string = function
  | Condition.True -> "TRUE"
  | Condition.Cmp (x, c, y) ->
      let op =
        match c with
        | Condition.Eq -> "=" | Condition.Neq -> "!=" | Condition.Le -> "<="
        | Condition.Ge -> ">=" | Condition.Lt -> "<" | Condition.Gt -> ">"
      in
      Printf.sprintf "%s %s %s" (term_to_string x) op (term_to_string y)
  | Condition.Contains (x, s) ->
      Printf.sprintf "CONTAINS(%s, %S)" (term_to_string x) s
  | Condition.Sim (x, y) -> Printf.sprintf "%s ~ %s" (term_to_string x) (term_to_string y)
  | Condition.Isa (x, y) ->
      Printf.sprintf "%s isa %s" (term_to_string x) (term_to_string y)
  | Condition.Part_of (x, y) ->
      Printf.sprintf "%s part_of %s" (term_to_string x) (term_to_string y)
  | Condition.Instance_of (x, y) ->
      Printf.sprintf "%s instance_of %s" (term_to_string x) (term_to_string y)
  | Condition.Subtype_of (x, y) ->
      Printf.sprintf "%s subtype_of %s" (term_to_string x) (term_to_string y)
  | Condition.Below (x, y) ->
      Printf.sprintf "%s below %s" (term_to_string x) (term_to_string y)
  | Condition.Above (x, y) ->
      Printf.sprintf "%s above %s" (term_to_string x) (term_to_string y)
  | Condition.And (p, q) ->
      Printf.sprintf "(%s AND %s)" (condition_to_string p) (condition_to_string q)
  | Condition.Or (p, q) ->
      Printf.sprintf "(%s OR %s)" (condition_to_string p) (condition_to_string q)
  | Condition.Not p -> Printf.sprintf "NOT (%s)" (condition_to_string p)

let rec node_to_string (n : Pattern.node) =
  match n.Pattern.children with
  | [] -> Printf.sprintf "#%d" n.Pattern.label
  | cs ->
      Printf.sprintf "#%d(%s)" n.Pattern.label
        (String.concat ", "
           (List.map
              (fun (kind, c) ->
                (match kind with Pattern.Pc -> "/" | Pattern.Ad -> "//")
                ^ node_to_string c)
              cs))

let to_string t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("MATCH " ^ node_to_string t.pattern.Pattern.root);
  (match t.pattern.Pattern.condition with
  | Condition.True -> ()
  | c -> Buffer.add_string buf ("\nWHERE " ^ condition_to_string c));
  (match t.target with
  | Select [] -> ()
  | Select ls ->
      Buffer.add_string buf
        ("\nSELECT " ^ String.concat ", " (List.map (Printf.sprintf "#%d") ls))
  | Project ls ->
      Buffer.add_string buf
        ("\nPROJECT " ^ String.concat ", " (List.map (Printf.sprintf "#%d") ls)));
  Buffer.contents buf

let sl t = match t.target with Select ls -> ls | Project _ -> []
