module Ontology = Toss_ontology.Ontology
module Maker = Toss_ontology.Maker
module Doc = Toss_xml.Tree.Doc
module Value_type = Toss_xml.Value_type

type t = { doc : Doc.t; ontology : Ontology.t }

let v doc ontology = { doc; ontology }

let of_doc ?lexicon ?content_tags ?max_content_terms doc =
  { doc; ontology = Maker.make ?lexicon ?content_tags ?max_content_terms doc }

let of_tree ?lexicon ?content_tags ?max_content_terms tree =
  of_doc ?lexicon ?content_tags ?max_content_terms (Doc.of_tree tree)

let doc t = t.doc
let ontology t = t.ontology
let tag_type _ _ = Value_type.String
let content_type t node = Value_type.infer (Doc.content t.doc node)
