(** A TOSS session: the assembled system of the paper's Figure 8.

    A session owns a set of named collections (the Xindice role), lazily
    precomputes one similarity-enhanced fused ontology over everything
    stored (Ontology Maker → fusion → SEA), and executes TQL queries in
    either semantics. Adding documents invalidates the precomputed SEO;
    it is rebuilt on the next query. *)

type t

val create :
  ?metric:Toss_similarity.Metric.t ->
  ?eps:float ->
  ?lexicon:Toss_ontology.Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  unit ->
  t
(** The default measure is Levenshtein with [eps = 2]. *)

val add_collection : t -> string -> Toss_store.Collection.t
(** Creates (or returns) a named collection. *)

val add_document : t -> collection:string -> Toss_xml.Tree.t -> unit
val add_xml : t -> collection:string -> string -> (unit, Toss_xml.Parser.error) result
val collection : t -> string -> Toss_store.Collection.t option
val collection_names : t -> string list

val seo : t -> (Seo.t, string) result
(** The precomputed context, rebuilding it if documents changed since the
    last call. *)

type answer = {
  trees : Toss_xml.Tree.t list;
  stats : Executor.stats option;  (** [None] for projections *)
}

val query :
  ?mode:Executor.mode -> t -> collection:string -> string -> (answer, string) result
(** Parses a TQL string and runs it against one collection (selection
    through the store executor, projection through the in-memory
    algebra). *)

val join :
  ?mode:Executor.mode ->
  t ->
  left:string ->
  right:string ->
  string ->
  (answer, string) result
(** A TQL join across two collections; the TQL pattern's root must have
    two children (see {!Executor.join}). *)

val invalidate : t -> unit
(** Forces the SEO to be rebuilt on next use (e.g. after editing the
    lexicon-derived ontology externally). *)
