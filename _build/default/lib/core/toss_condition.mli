(** TOSS satisfaction of selection conditions (Section 5.1.1).

    Interprets the same condition AST as the TAX baseline, but against a
    similarity-enhanced ontology context:

    - [X ~ Y] holds iff some node of the similarity enhancement contains
      both values;
    - [X isa Y] / [X part_of Y] consult the (enhanced) hierarchies;
    - [X instance_of Y] holds when X's value sits below the type Y in the
      isa hierarchy or X's inferred primitive type is Y;
    - [X subtype_of Y] requires both values to be ontology terms with
      X at-or-below Y;
    - [X below Y] is [instance_of or subtype_of]; [X above Y] is
      [Y below X];
    - comparisons convert both sides to a common type through the
      context's conversion functions before comparing. *)

val eval : Seo.t -> Toss_tax.Condition.env -> Toss_tax.Condition.t -> bool

val evaluator : Seo.t -> Toss_tax.Algebra.evaluator
(** Partial application of {!eval}, for plugging into the TAX operators. *)

val well_typed : Seo.t -> Toss_tax.Condition.t -> bool
(** A condition is well-typed when every comparison's two sides have
    convertible primitive types (Section 5.1.1). Conditions over terms
    whose types are only known per-binding are treated optimistically. *)

val compare_converted : Seo.t -> Toss_tax.Condition.cmp -> string -> string -> bool
(** The conversion-aware comparison used for [Cmp] atoms. *)
