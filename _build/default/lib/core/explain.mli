(** Query plans: what the rewriter will send to the store and why.

    Summarizes, for a pattern tree under a given SEO context, the XPath
    query each label gets, the ontology/similarity expansions applied to
    the condition's constants, and which atoms remain for the assembly
    phase. Surfaced by the CLI's [--explain] and useful when judging why a
    TOSS query is slower than its TAX counterpart (more disjuncts = more
    candidates). *)

type expansion = {
  operator : string;  (** "~", "isa", "part_of" *)
  constant : string;
  terms : string list;  (** what the constant expands to *)
}

type t = {
  mode : Rewrite.mode;
  label_queries : (int * string) list;  (** label -> XPath sent to the store *)
  expansions : expansion list;
  residual_atoms : string list;
      (** atoms re-checked during assembly (cross-label or unpushable) *)
}

val explain : ?mode:Rewrite.mode -> ?max_expansion:int -> Seo.t -> Toss_tax.Pattern.t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
