module Smap = Map.Make (String)

type t = { table : (string -> string) Smap.t Smap.t }
(* table.(from).(into) = direct conversion function *)

let empty = { table = Smap.empty }

let direct t ~from ~into =
  Option.bind (Smap.find_opt from t.table) (Smap.find_opt into)

let register ~from ~into f t =
  match direct t ~from ~into with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Conversion.register: %s -> %s already registered" from into)
  | None ->
      let row = Option.value ~default:Smap.empty (Smap.find_opt from t.table) in
      { table = Smap.add from (Smap.add into f row) t.table }

let types t =
  Smap.fold
    (fun from row acc -> from :: Smap.fold (fun into _ acc -> into :: acc) row acc)
    t.table []
  |> List.sort_uniq String.compare

(* Breadth-first search over direct conversions, composing along the
   shortest path; identity for equal types. *)
let path t ~from ~into =
  if from = into then Some []
  else begin
    let visited = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.replace visited from [];
    Queue.add from queue;
    let found = ref None in
    while Option.is_none !found && not (Queue.is_empty queue) do
      let current = Queue.pop queue in
      let fns_so_far = Hashtbl.find visited current in
      match Smap.find_opt current t.table with
      | None -> ()
      | Some row ->
          Smap.iter
            (fun next f ->
              if Option.is_none !found && not (Hashtbl.mem visited next) then begin
                let fns = f :: fns_so_far in
                if next = into then found := Some (List.rev fns)
                else begin
                  Hashtbl.replace visited next fns;
                  Queue.add next queue
                end
              end)
            row
    done;
    !found
  end

let exists t ~from ~into = Option.is_some (path t ~from ~into)

let convert t ~from ~into value =
  match path t ~from ~into with
  | None -> None
  | Some fns -> Some (List.fold_left (fun v f -> f v) value fns)

(* Enumerate simple paths (as function lists) between two types, capped to
   avoid blowup on dense graphs. *)
let all_paths t ~from ~into =
  let results = ref [] in
  let rec go current fns visited =
    if List.length !results >= 16 then ()
    else if current = into then results := List.rev fns :: !results
    else
      match Smap.find_opt current t.table with
      | None -> ()
      | Some row ->
          Smap.iter
            (fun next f ->
              if not (List.mem next visited) then go next (f :: fns) (next :: visited))
            row
  in
  go from [] [ from ];
  !results

let check_coherence t ~samples =
  let errors = ref [] in
  let all_types = types t in
  List.iter
    (fun (ty, value) ->
      List.iter
        (fun target ->
          let outcomes =
            List.map
              (fun fns -> List.fold_left (fun v f -> f v) value fns)
              (all_paths t ~from:ty ~into:target)
          in
          match List.sort_uniq String.compare outcomes with
          | [] | [ _ ] -> ()
          | distinct ->
              errors :=
                Printf.sprintf "incoherent conversions %s -> %s on %S: {%s}" ty target
                  value
                  (String.concat ", " distinct)
                :: !errors)
        all_types)
    samples;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let numeric f s =
  match float_of_string_opt (String.trim s) with
  | Some x ->
      let y = f x in
      if Float.is_integer y && Float.abs y < 1e15 then
        string_of_int (int_of_float y)
      else string_of_float y
  | None -> s

let standard =
  empty
  |> register ~from:"int" ~into:"float" (numeric Fun.id)
  |> register ~from:"year" ~into:"int" (numeric Fun.id)
  |> register ~from:"year" ~into:"float" (numeric Fun.id)
  |> register ~from:"mm" ~into:"cm" (numeric (fun x -> x /. 10.))
  |> register ~from:"cm" ~into:"m" (numeric (fun x -> x /. 100.))
  |> register ~from:"mm" ~into:"m" (numeric (fun x -> x /. 1000.))
