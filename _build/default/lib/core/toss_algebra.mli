(** The TOSS algebra (Section 5.1.2): the TAX operators re-interpreted
    over a similarity-enhanced ontology context.

    Every answer TAX returns is also returned by TOSS (the ontology
    semantics only widens atom satisfaction for positive conditions), and
    at [ε = 0] with an empty ontology the two coincide — both properties
    are exercised by the test suite. *)

type collection = Toss_xml.Tree.t list

val select : Seo.t -> pattern:Toss_tax.Pattern.t -> sl:int list -> collection -> collection
val project : Seo.t -> pattern:Toss_tax.Pattern.t -> pl:int list -> collection -> collection
val product : collection -> collection -> collection
val join :
  Seo.t -> pattern:Toss_tax.Pattern.t -> sl:int list -> collection -> collection -> collection
val union : collection -> collection -> collection
val intersect : collection -> collection -> collection
val difference : collection -> collection -> collection
