(** Name-rendering variants.

    Bibliographic sources store the same person differently — full first
    names in DBLP, initials in the SIGMOD pages, plus entry errors
    (Section 2.2). A {!style} describes one rendering; the recall that
    TOSS gains over TAX at a threshold ε is exactly the set of variants
    whose rule-based distance from the canonical rendering is within ε. *)

type style =
  | Full  (** "Jeffrey David Ullman" — the canonical rendering *)
  | First_initial  (** "J. Ullman" / "J. D. Ullman" *)
  | All_initials  (** "J. D. Ullman" *)
  | Drop_middle  (** "Jeffrey Ullman" *)
  | Concat  (** "GianLuigi Ferrari" -> glued given names *)
  | Typo of int  (** canonical full rendering with n single-char typos *)

val render : Names.person -> style -> string

val random_typo : Random.State.t -> string -> string
(** One random character substitution, deletion, or transposition (never
    in the first character). *)

val render_with_rng : Random.State.t -> Names.person -> style -> string
(** Like {!render}, drawing typo positions from the RNG. *)

val all_styles : style list
(** One of each (with [Typo 1] and [Typo 2]). *)
