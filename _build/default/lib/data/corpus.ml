type venue = {
  venue_id : int;
  abbrev : string;
  full_name : string;
  category : string;
}

type author = { author_id : int; person : Names.person }

type paper = {
  paper_id : int;
  key : string;
  title : string;
  topic : string option;
  author_ids : int list;
  venue_id : int;
  year : int;
  pages : int * int;
}

type t = {
  seed : int;
  venues : venue array;
  authors : author array;
  papers : paper array;
}

let venues =
  let v i a f c = { venue_id = i; abbrev = a; full_name = f; category = c } in
  [|
    v 0 "SIGMOD Conference" "ACM SIGMOD International Conference on Management of Data"
      "database conference";
    v 1 "VLDB" "International Conference on Very Large Data Bases" "database conference";
    v 2 "ICDE" "International Conference on Data Engineering" "database conference";
    v 3 "PODS" "Symposium on Principles of Database Systems" "database conference";
    v 4 "EDBT" "International Conference on Extending Database Technology"
      "database conference";
    v 5 "CIKM" "Conference on Information and Knowledge Management"
      "information systems conference";
    v 6 "KDD" "Knowledge Discovery and Data Mining" "data mining conference";
    v 7 "ICML" "International Conference on Machine Learning" "machine learning conference";
    v 8 "NIPS" "Neural Information Processing Systems" "machine learning conference";
    v 9 "SIGIR" "Conference on Research and Development in Information Retrieval"
      "information retrieval conference";
    v 10 "WWW" "International World Wide Web Conference" "web conference";
    v 11 "SODA" "Symposium on Discrete Algorithms" "theory conference";
    v 12 "STOC" "Symposium on Theory of Computing" "theory conference";
    v 13 "FOCS" "Symposium on Foundations of Computer Science" "theory conference";
  |]

let generate ?n_authors ~seed ~n_papers () =
  let rng = Random.State.make [| seed; n_papers; 0x705 |] in
  let n_authors = match n_authors with Some n -> n | None -> max 20 (n_papers / 2) in
  (* Canonical full names are kept unique so that the TAX baseline's exact
     matches are always semantically correct (precision 1, as the paper
     reports); near-collisions like Marco/Mauro Ferrari remain possible
     and are what costs TOSS precision at larger thresholds. *)
  let authors =
    let seen = Hashtbl.create 97 in
    Array.init n_authors (fun i ->
        let rec draw attempts =
          let person = Names.fresh rng in
          let name = Names.full person in
          if Hashtbl.mem seen name && attempts < 50 then draw (attempts + 1)
          else begin
            Hashtbl.replace seen name ();
            person
          end
        in
        { author_id = i; person = draw 0 })
  in
  let pick_venue () =
    (* Bias towards the database venues, as in the source data sets. *)
    if Random.State.float rng 1.0 < 0.55 then Random.State.int rng 5
    else Random.State.int rng (Array.length venues)
  in
  let papers =
    Array.init n_papers (fun i ->
        let n_auth = 1 + Random.State.int rng 4 in
        let rec draw k acc =
          if k = 0 then List.rev acc
          else
            let a = Random.State.int rng n_authors in
            if List.mem a acc then draw k acc else draw (k - 1) (a :: acc)
        in
        let title = Titles.generate rng i in
        let start_page = 1 + Random.State.int rng 600 in
        {
          paper_id = i;
          key = Printf.sprintf "p%04d" i;
          title;
          topic = Titles.topic_of title;
          author_ids = draw (min n_auth n_authors) [];
          venue_id = pick_venue ();
          year = 1994 + Random.State.int rng 10;
          pages = (start_page, start_page + 8 + Random.State.int rng 20);
        })
  in
  { seed; venues; authors; papers }

let venue t i = t.venues.(i)
let author t i = t.authors.(i)

let paper_by_key t key = Array.find_opt (fun p -> p.key = key) t.papers

let filter_papers t f = Array.to_list t.papers |> List.filter f

let papers_by_author t id = filter_papers t (fun p -> List.mem id p.author_ids)

let papers_by_venue_category t cat =
  filter_papers t (fun p -> (venue t p.venue_id).category = cat)

let papers_by_topic t topic = filter_papers t (fun p -> p.topic = Some topic)
let papers_by_year t year = filter_papers t (fun p -> p.year = year)

let correct_keys t ?author ?category ?topic ?year () =
  filter_papers t (fun p ->
      (match author with Some a -> List.mem a p.author_ids | None -> true)
      && (match category with
         | Some c -> (venue t p.venue_id).category = c
         | None -> true)
      && (match topic with Some tp -> p.topic = Some tp | None -> true)
      && match year with Some y -> p.year = y | None -> true)
  |> List.map (fun p -> p.key)
