type style =
  | Full
  | First_initial
  | All_initials
  | Drop_middle
  | Concat
  | Typo of int

let all_styles = [ Full; First_initial; All_initials; Drop_middle; Concat; Typo 1; Typo 2 ]

let initial s = Printf.sprintf "%c." s.[0]

let deterministic_typo i s =
  (* Substitute the character at a position derived from [i]; used by the
     RNG-free [render]. *)
  let n = String.length s in
  if n < 3 then s
  else begin
    let pos = 1 + (i * 7 mod (n - 2)) in
    let b = Bytes.of_string s in
    let c = Bytes.get b pos in
    let c' = if c = 'z' || c = ' ' then 'q' else Char.chr (Char.code c + 1) in
    Bytes.set b pos c';
    Bytes.to_string b
  end

let render (p : Names.person) = function
  | Full -> Names.full p
  | First_initial -> (
      match p.Names.middle with
      | Some m -> Printf.sprintf "%s %s %s" (initial p.Names.first) (initial m) p.Names.last
      | None -> Printf.sprintf "%s %s" (initial p.Names.first) p.Names.last)
  | All_initials -> (
      match p.Names.middle with
      | Some m -> Printf.sprintf "%s %s %s" (initial p.Names.first) (initial m) p.Names.last
      | None -> Printf.sprintf "%s %s" (initial p.Names.first) p.Names.last)
  | Drop_middle -> Printf.sprintf "%s %s" p.Names.first p.Names.last
  | Concat -> (
      match p.Names.middle with
      | Some m -> Printf.sprintf "%s%s %s" p.Names.first m p.Names.last
      | None -> Printf.sprintf "%s %s" p.Names.first p.Names.last)
  | Typo k ->
      let rec apply i s = if i >= k then s else apply (i + 1) (deterministic_typo i s) in
      apply 0 (Names.full p)

let random_typo rng s =
  let n = String.length s in
  if n < 3 then s
  else begin
    let pos = 1 + Random.State.int rng (n - 2) in
    let b = Bytes.of_string s in
    match Random.State.int rng 3 with
    | 0 ->
        (* substitution *)
        let c = Bytes.get b pos in
        let c' = if c = 'z' then 'a' else if c = ' ' then 'x' else Char.chr (Char.code c + 1) in
        Bytes.set b pos c';
        Bytes.to_string b
    | 1 ->
        (* deletion *)
        String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1)
    | _ ->
        (* transposition with the next character *)
        if pos + 1 >= n then Bytes.to_string b
        else begin
          let c = Bytes.get b pos in
          Bytes.set b pos (Bytes.get b (pos + 1));
          Bytes.set b (pos + 1) c;
          Bytes.to_string b
        end
  end

let render_with_rng rng p = function
  | Typo k ->
      let rec apply i s = if i >= k then s else apply (i + 1) (random_typo rng s) in
      apply 0 (Names.full p)
  | style -> render p style
