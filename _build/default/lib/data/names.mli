(** Person-name pools for the synthetic bibliographic corpus.

    The pools deliberately contain confusable pairs (small edit distances,
    e.g. Marco/Mauro, shared surnames) so that similarity thresholds trade
    precision for recall the way the paper's Figure 15 reports. *)

type person = { first : string; middle : string option; last : string }

val first_names : string array
val last_names : string array

val fresh : Random.State.t -> person
(** Draws a person; ~50% receive a middle name. *)

val full : person -> string
(** "First Middle Last" canonical rendering. *)

val equal : person -> person -> bool
val pp : Format.formatter -> person -> unit
