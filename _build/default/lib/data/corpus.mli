(** The ground-truth corpus model.

    A corpus is the {e semantic} content of a bibliography: papers with
    canonical authors, venues and years. The DBLP- and SIGMOD-style
    generators render the same corpus into XML with different schemas and
    name variants, so every query's semantically correct answer set is
    computable exactly — the role the paper's hand-checked answers play in
    its Figure 15 experiments. *)

type venue = {
  venue_id : int;
  abbrev : string;  (** as stored by DBLP, e.g. "SIGMOD Conference" *)
  full_name : string;  (** as stored by the proceedings pages *)
  category : string;  (** e.g. "database conference" (lexicon isa parent) *)
}

type author = { author_id : int; person : Names.person }

type paper = {
  paper_id : int;
  key : string;  (** stable key, e.g. "p0042" — appears as an XML attribute *)
  title : string;
  topic : string option;
  author_ids : int list;
  venue_id : int;
  year : int;
  pages : int * int;
}

type t = {
  seed : int;
  venues : venue array;
  authors : author array;
  papers : paper array;
}

val venues : venue array
(** The built-in venue table, aligned with [Toss_ontology.Lexicon.seeded]. *)

val generate : ?n_authors:int -> seed:int -> n_papers:int -> unit -> t
(** Deterministic corpus: [n_authors] defaults to [max 20 (n_papers / 2)].
    Papers carry 1–4 authors, venues are drawn with a database-conference
    bias, years span 1994–2003. *)

val venue : t -> int -> venue
val author : t -> int -> author
val paper_by_key : t -> string -> paper option

val papers_by_author : t -> int -> paper list
val papers_by_venue_category : t -> string -> paper list
val papers_by_topic : t -> string -> paper list
val papers_by_year : t -> int -> paper list

val correct_keys : t -> ?author:int -> ?category:string -> ?topic:string -> ?year:int ->
  unit -> string list
(** Keys of the papers satisfying all the provided semantic criteria —
    the denominator of recall. *)
