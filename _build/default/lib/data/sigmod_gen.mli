(** Rendering a corpus in the SIGMOD-proceedings-page schema.

    One document per (venue, year): [<proceedings>] holding
    [<conference>] (the venue's {e full} name), [<confYear>], and an
    [<articles>] list of [<article key="...">] entries with abbreviated
    titles and initialized author names — the heterogeneity that makes
    joining with the DBLP rendering require ontologies (booktitle vs
    conference, full vs abbreviated venue names) and similarity (initials,
    abbreviated titles), per Section 2.2. *)

type t = {
  trees : Toss_xml.Tree.t list;  (** one per (venue, year) group *)
  author_strings : (string * int * string) list;
  title_strings : (string * string) list;  (** (paper key, title as written) *)
}

val render : ?seed:int -> ?venue_ids:int list -> Corpus.t -> t
(** [venue_ids] restricts the pages to some venues (default: all). *)

val style_profile : (Variant.style * float) list
