(** Paper-title generation.

    Titles are built from topic/technique/context pools; every title ends
    with a unique serial so that ground truth can key on it even across
    the small typo variants the SIGMOD-style rendering injects. *)

val generate : Random.State.t -> int -> string
(** [generate rng serial]: a title like
    "Efficient Indexing for XML Queries over Streams [P0042]". *)

val topic_of : string -> string option
(** The topic keyword the title was generated from (e.g. "Indexing"),
    enabling topic-based isa queries. *)

val abbreviate : string -> string
(** The rendering used by the SIGMOD-style pages: common long words
    shortened ("Efficient" -> "Eff.", "Management" -> "Mgmt."), as real
    proceedings pages do. *)
