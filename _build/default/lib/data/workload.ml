module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Metric = Toss_similarity.Metric
module Levenshtein = Toss_similarity.Levenshtein
module Name_rules = Toss_similarity.Name_rules
module Text_rules = Toss_similarity.Text_rules
module Tree = Toss_xml.Tree

(* Person names are capitalized short token sequences; applying the
   name-rules measure (which tolerates dropped middle tokens) to arbitrary
   phrases would make "web conference" similar to "conference" and break
   hierarchies, so it is gated on shape. *)
let looks_like_name s =
  let words = String.split_on_char ' ' (String.trim s) in
  let n = List.length words in
  n >= 1 && n <= 4
  && List.for_all
       (fun w -> String.length w > 0 && w.[0] >= 'A' && w.[0] <= 'Z')
       words

let experiment_distance a b =
  if a = b then 0.
  else begin
    let name_d =
      if looks_like_name a && looks_like_name b then Name_rules.distance a b
      else infinity
    in
    let text_d = Text_rules.distance a b in
    let lev = float_of_int (Levenshtein.distance a b) in
    (* Short strings (venue acronyms, years) need near-exactness. *)
    let lev_d =
      if min (String.length a) (String.length b) >= 6 then lev else 2. *. lev
    in
    Float.min name_d (Float.min text_d lev_d)
  end

(* Threshold test, cheapest component first; agrees with
   [experiment_distance a b <= eps]. *)
let experiment_within ~eps a b =
  a = b
  || (looks_like_name a && looks_like_name b && Name_rules.distance a b <= eps)
  || (let lev_budget =
        if min (String.length a) (String.length b) >= 6 then eps else eps /. 2.
      in
      lev_budget >= 0.
      && Levenshtein.distance_within (int_of_float lev_budget) a b <> None)
  || Text_rules.within ~eps a b

let experiment_metric =
  Metric.v ~name:"toss-experiment" ~strong:false ~within:experiment_within
    experiment_distance

type query = {
  query_id : int;
  description : string;
  pattern : Pattern.t;
  sl : int list;
  correct : string list;
}

(* #1 inproceedings with #2 author, #3 booktitle children:
   3 tag conditions + 1 similarTo + 1 isa. *)
let selection_pattern ~author_name ~isa_term =
  let open Pattern in
  let root = node 1 [ pc (leaf 2); pc (leaf 3) ] in
  let condition =
    Condition.conj
      [
        Condition.tag_eq 1 "inproceedings";
        Condition.tag_eq 2 "author";
        Condition.tag_eq 3 "booktitle";
        Condition.content_sim 2 author_name;
        Condition.content_isa 3 isa_term;
      ]
  in
  v root condition

let selection_queries ?(n = 12) (corpus : Corpus.t) =
  (* Authors ranked by publication count; one query per author. *)
  let count aid = List.length (Corpus.papers_by_author corpus aid) in
  let ranked =
    Array.to_list corpus.Corpus.authors
    |> List.map (fun (a : Corpus.author) -> (count a.Corpus.author_id, a))
    |> List.sort (fun (c1, a1) (c2, a2) ->
           match Int.compare c2 c1 with
           | 0 -> Int.compare a1.Corpus.author_id a2.Corpus.author_id
           | c -> c)
    |> List.map snd
  in
  let chosen = List.filteri (fun i _ -> i < n) ranked in
  List.mapi
    (fun i (a : Corpus.author) ->
      let papers = Corpus.papers_by_author corpus a.Corpus.author_id in
      let author_name = Variant.render a.Corpus.person Variant.Full in
      (* Pick the venue of the author's first paper; alternate between a
         venue-term isa (TAX's contains gets partial recall) and a
         category-term isa (TAX gets almost none). *)
      let sample_venue =
        match papers with
        | p :: _ -> Corpus.venue corpus p.Corpus.venue_id
        | [] -> Corpus.venue corpus 0
      in
      let isa_term, correct =
        if i mod 2 = 0 then
          ( sample_venue.Corpus.abbrev,
            List.filter
              (fun (p : Corpus.paper) -> p.Corpus.venue_id = sample_venue.Corpus.venue_id)
              papers
            |> List.map (fun (p : Corpus.paper) -> p.Corpus.key) )
        else
          ( sample_venue.Corpus.category,
            List.filter
              (fun (p : Corpus.paper) ->
                (Corpus.venue corpus p.Corpus.venue_id).Corpus.category
                = sample_venue.Corpus.category)
              papers
            |> List.map (fun (p : Corpus.paper) -> p.Corpus.key) )
      in
      {
        query_id = i + 1;
        description =
          Printf.sprintf "papers by someone ~ %S at a venue isa %S" author_name isa_term;
        pattern = selection_pattern ~author_name ~isa_term;
        sl = [];
        correct;
      })
    chosen

let scalability_selection () =
  let open Pattern in
  let root = node 1 [ pc (leaf 2); pc (leaf 3); pc (leaf 4); pc (leaf 5) ] in
  let condition =
    Condition.conj
      [
        Condition.Isa (Condition.Tag 1, Condition.Str "paper");
        Condition.tag_eq 2 "author";
        Condition.tag_eq 3 "booktitle";
        Condition.tag_eq 4 "year";
        Condition.tag_eq 5 "title";
        Condition.content_isa 3 "database conference";
      ]
  in
  (v root condition, [])

let join_query () =
  let open Pattern in
  let left = node 1 [ pc (leaf 2) ] in
  let right = node 3 [ pc (leaf 4) ] in
  (* ad edges from the product root, as in the paper's Figure 14: the
     joined elements sit anywhere inside their respective documents. *)
  let root = node 0 [ ad left; ad right ] in
  let condition =
    Condition.conj
      [
        Condition.tag_eq 0 Toss_tax.Algebra.prod_root_tag;
        Condition.tag_eq 1 "inproceedings";
        Condition.tag_eq 2 "title";
        Condition.tag_eq 3 "article";
        Condition.tag_eq 4 "title";
        Condition.Sim (Condition.Content 2, Condition.Content 4);
      ]
  in
  (v root condition, [ 1; 3 ])

let rec collect_keys acc tree =
  match tree with
  | Tree.Text _ -> acc
  | Tree.Element { attrs; children; _ } ->
      let acc =
        match List.assoc_opt "key" attrs with Some k -> k :: acc | None -> acc
      in
      List.fold_left collect_keys acc children

let result_keys trees =
  List.fold_left collect_keys [] trees |> List.sort_uniq String.compare

let result_key_pairs trees =
  List.filter_map
    (fun tree ->
      match tree with
      | Tree.Element { children = [ l; r ]; _ } -> (
          match (collect_keys [] l, collect_keys [] r) with
          | lk :: _, rk :: _ -> Some (lk, rk)
          | _ -> None)
      | _ -> None)
    trees
  |> List.sort_uniq compare
