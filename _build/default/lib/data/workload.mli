(** The paper's query workloads (Section 6).

    - {!selection_queries}: the Figure 15 mix — selection queries with
      exactly 3 tag-matching conditions, 1 similarTo condition (on an
      author name) and 1 isa condition (on the venue or its category),
      each paired with its semantically correct answer keys from the
      ground truth.
    - {!scalability_selection}: the Figure 16(a) shape — conjunctive
      selections with 2 isa and 4 tag-matching conditions.
    - {!join_query}: the Figure 16(b) shape — a join with 5 tag-matching
      and 1 similarTo condition across the DBLP and SIGMOD renderings
      (title similarity, as in the paper's Figure 14). *)

module Pattern = Toss_tax.Pattern
module Metric = Toss_similarity.Metric

val experiment_metric : Metric.t
(** The similarity measure the experiments plug into TOSS: the minimum of
    the rule-based person-name distance, the abbreviation-aware text
    distance, and Levenshtein (doubled for strings shorter than 6
    characters so that short venue acronyms never merge with each
    other). *)

type query = {
  query_id : int;
  description : string;
  pattern : Pattern.t;
  sl : int list;
  correct : string list;  (** keys of the semantically correct papers *)
}

val selection_queries : ?n:int -> Corpus.t -> query list
(** [n] defaults to the paper's 12. Authors are drawn from the most
    published; the isa constant alternates between the paper's venue and
    its category, so that the TAX baseline's recall spreads over a range
    as in Figure 15(a). *)

val scalability_selection : unit -> Pattern.t * int list
(** Pattern and SL for the Figure 16(a) experiment: [#1] any paper-kind
    element with [#2 author], [#3 booktitle], [#4 year], [#5 title]
    children; conditions [#1.tag isa paper], [#3.content isa "database
    conference"] (2 isa) and the four child tag matches. *)

val join_query : unit -> Pattern.t * int list
(** Pattern and SL for Figure 16(b): DBLP [inproceedings/title] joined
    with proceedings-page [article/title] on title similarity. *)

val result_keys : Toss_xml.Tree.t list -> string list
(** The [key] attributes occurring in result trees, deduplicated —
    the identity of the papers an answer contains. *)

val result_key_pairs : Toss_xml.Tree.t list -> (string * string) list
(** For join results: the (left, right) key pairs under each product
    root. *)
