module Tree = Toss_xml.Tree

type t = {
  tree : Tree.t;
  author_strings : (string * int * string) list;
  venue_strings : (string * string) list;
}

let style_profile =
  [
    (Variant.Full, 0.35);
    (* Initialized renderings of two-given-token names sit at rule
       distance 2.5 -- found at eps = 3 but missed at eps = 2, the main
       driver of the paper's recall gap between the two thresholds. *)
    (Variant.First_initial, 0.26);
    (Variant.Drop_middle, 0.10);
    (Variant.Concat, 0.05);
    (Variant.Typo 1, 0.10);
    (Variant.Typo 2, 0.09);
    (* Badly garbled entries sit beyond eps = 3: even TOSS misses them,
       keeping its recall below 1 as in the paper. *)
    (Variant.Typo 3, 0.05);
  ]

let draw_style rng profile =
  let x = Random.State.float rng 1.0 in
  let rec go acc = function
    | [] -> Variant.Full
    | (style, w) :: rest -> if x < acc +. w then style else go (acc +. w) rest
  in
  go 0. profile

let render ?(seed = 0) (corpus : Corpus.t) =
  let rng = Random.State.make [| seed; corpus.Corpus.seed; 0xdb1 |] in
  let author_strings = ref [] in
  let venue_strings = ref [] in
  let entries =
    Array.to_list corpus.Corpus.papers
    |> List.map (fun (p : Corpus.paper) ->
           let authors =
             List.map
               (fun aid ->
                 let person = (Corpus.author corpus aid).Corpus.person in
                 let style = draw_style rng style_profile in
                 let s = Variant.render_with_rng rng person style in
                 author_strings := (p.Corpus.key, aid, s) :: !author_strings;
                 Tree.leaf "author" s)
               p.Corpus.author_ids
           in
           let venue = Corpus.venue corpus p.Corpus.venue_id in
           let venue_string =
             (* Rare entry typos in venue names exercise the similarity
                enhancement on isa conditions. *)
             if Random.State.float rng 1.0 < 0.03 then
               Variant.random_typo rng venue.Corpus.abbrev
             else venue.Corpus.abbrev
           in
           venue_strings := (p.Corpus.key, venue_string) :: !venue_strings;
           let first, last = p.Corpus.pages in
           Tree.element ~attrs:[ ("key", p.Corpus.key) ] "inproceedings"
             (authors
             @ [
                 Tree.leaf "title" p.Corpus.title;
                 Tree.leaf "booktitle" venue_string;
                 Tree.leaf "year" (string_of_int p.Corpus.year);
                 Tree.leaf "pages" (Printf.sprintf "%d-%d" first last);
               ]))
  in
  {
    tree = Tree.element "dblp" entries;
    author_strings = List.rev !author_strings;
    venue_strings = List.rev !venue_strings;
  }
