(** Rendering a corpus in the DBLP schema.

    One document: [<dblp>] with an [<inproceedings key="...">] child per
    paper, each holding [<author>]+, [<title>], [<booktitle>] (abbreviated
    venue name), [<year>] and [<pages>]. Author names are rendered mostly
    in full, with the paper's Section 2.2 variation profile (dropped
    middle names, initials, concatenations, entry typos) injected
    deterministically from the seed. *)

type t = {
  tree : Toss_xml.Tree.t;
  author_strings : (string * int * string) list;
      (** (paper key, author id, string as written) *)
  venue_strings : (string * string) list;  (** (paper key, venue as written) *)
}

val render : ?seed:int -> Corpus.t -> t

val style_profile : (Variant.style * float) list
(** The rendering-style distribution (weights sum to 1). *)
