type person = { first : string; middle : string option; last : string }

let first_names =
  [|
    "James"; "Mary"; "John"; "Patricia"; "Robert"; "Jennifer"; "Michael"; "Linda";
    "David"; "Elizabeth"; "William"; "Barbara"; "Richard"; "Susan"; "Joseph";
    "Jessica"; "Thomas"; "Sarah"; "Charles"; "Karen"; "Christopher"; "Nancy";
    "Daniel"; "Lisa"; "Matthew"; "Betty"; "Anthony"; "Margaret"; "Mark"; "Sandra";
    "Donald"; "Ashley"; "Steven"; "Kimberly"; "Paul"; "Emily"; "Andrew"; "Donna";
    "Joshua"; "Michelle"; "Kenneth"; "Dorothy"; "Kevin"; "Carol"; "Brian";
    "Amanda"; "George"; "Melissa"; "Edward"; "Deborah"; "Ronald"; "Stephanie";
    "Timothy"; "Rebecca"; "Jason"; "Sharon"; "Jeffrey"; "Laura"; "Ryan";
    "Cynthia"; "Jacob"; "Kathleen"; "Gary"; "Amy"; "Nicholas"; "Shirley"; "Eric";
    "Angela"; "Jonathan"; "Helen"; "Stephen"; "Anna"; "Larry"; "Brenda"; "Justin";
    "Pamela"; "Scott"; "Nicole"; "Brandon"; "Emma"; "Benjamin"; "Samantha";
    "Marco"; "Mauro"; "Gianluigi"; "Giovanni"; "Paolo"; "Pietro"; "Stefano";
    "Stefan"; "Johann"; "Johannes"; "Henrik"; "Hendrik"; "Wei"; "Wen"; "Jian";
    "Jun"; "Hiroshi"; "Hiroshi"; "Kenji"; "Kenjiro"; "Rakesh"; "Ramesh";
    "Sergey"; "Sergei"; "Andrei"; "Andrey"; "Divesh"; "Dinesh";
  |]

let last_names =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
    "Davis"; "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez";
    "Wilson"; "Anderson"; "Thomas"; "Taylor"; "Moore"; "Jackson"; "Martin";
    "Lee"; "Perez"; "Thompson"; "White"; "Harris"; "Sanchez"; "Clark";
    "Ramirez"; "Lewis"; "Robinson"; "Walker"; "Young"; "Allen"; "King";
    "Wright"; "Scott"; "Torres"; "Nguyen"; "Hill"; "Flores"; "Green"; "Adams";
    "Nelson"; "Baker"; "Hall"; "Rivera"; "Campbell"; "Mitchell"; "Carter";
    "Roberts"; "Ferrari"; "Ferraro"; "Rossi"; "Russo"; "Bianchi"; "Romano";
    "Colombo"; "Ricci"; "Marino"; "Greco"; "Mueller"; "Muller"; "Schmidt";
    "Schmitt"; "Schneider"; "Fischer"; "Weber"; "Wagner"; "Becker"; "Hoffmann";
    "Hofmann"; "Chen"; "Cheng"; "Zhang"; "Zhao"; "Wang"; "Wong"; "Li"; "Liu";
    "Yang"; "Kim"; "Park"; "Tanaka"; "Tanabe"; "Suzuki"; "Sato"; "Ullman";
    "Widom"; "Agrawal"; "Agarwal"; "Srivastava"; "Shrivastava"; "Ivanov";
    "Petrov"; "Kumar"; "Gupta"; "Sharma"; "Patel";
  |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let fresh rng =
  let first = pick rng first_names in
  let middle =
    if Random.State.float rng 1.0 < 0.5 then begin
      let rec other () =
        let m = pick rng first_names in
        if m = first then other () else m
      in
      Some (other ())
    end
    else None
  in
  { first; middle; last = pick rng last_names }

let full p =
  match p.middle with
  | Some m -> Printf.sprintf "%s %s %s" p.first m p.last
  | None -> Printf.sprintf "%s %s" p.first p.last

let equal a b = a = b

let pp ppf p = Format.pp_print_string ppf (full p)
