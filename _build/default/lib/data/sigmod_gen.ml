module Tree = Toss_xml.Tree

type t = {
  trees : Tree.t list;
  author_strings : (string * int * string) list;
  title_strings : (string * string) list;
}

let style_profile =
  [
    (Variant.First_initial, 0.75);
    (Variant.Full, 0.10);
    (Variant.Drop_middle, 0.08);
    (Variant.Typo 1, 0.05);
    (Variant.Typo 2, 0.02);
  ]

let draw_style rng profile =
  let x = Random.State.float rng 1.0 in
  let rec go acc = function
    | [] -> Variant.First_initial
    | (style, w) :: rest -> if x < acc +. w then style else go (acc +. w) rest
  in
  go 0. profile

let render ?(seed = 0) ?venue_ids (corpus : Corpus.t) =
  let rng = Random.State.make [| seed; corpus.Corpus.seed; 0x516 |] in
  let author_strings = ref [] in
  let title_strings = ref [] in
  let wanted vid = match venue_ids with None -> true | Some ids -> List.mem vid ids in
  (* Group papers by (venue, year). *)
  let groups = Hashtbl.create 32 in
  Array.iter
    (fun (p : Corpus.paper) ->
      if wanted p.Corpus.venue_id then begin
        let k = (p.Corpus.venue_id, p.Corpus.year) in
        Hashtbl.replace groups k
          (p :: Option.value ~default:[] (Hashtbl.find_opt groups k))
      end)
    corpus.Corpus.papers;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) groups [] |> List.sort compare in
  let trees =
    List.map
      (fun (vid, year) ->
        let venue = Corpus.venue corpus vid in
        let papers = List.rev (Hashtbl.find groups (vid, year)) in
        let articles =
          List.map
            (fun (p : Corpus.paper) ->
              let title = Titles.abbreviate p.Corpus.title in
              title_strings := (p.Corpus.key, title) :: !title_strings;
              let authors =
                List.map
                  (fun aid ->
                    let person = (Corpus.author corpus aid).Corpus.person in
                    let style = draw_style rng style_profile in
                    let s = Variant.render_with_rng rng person style in
                    author_strings := (p.Corpus.key, aid, s) :: !author_strings;
                    Tree.leaf "author" s)
                  p.Corpus.author_ids
              in
              let first, last = p.Corpus.pages in
              Tree.element ~attrs:[ ("key", p.Corpus.key) ] "article"
                [
                  Tree.leaf "title" title;
                  Tree.element "authors" authors;
                  Tree.leaf "initPage" (string_of_int first);
                  Tree.leaf "endPage" (string_of_int last);
                ])
            papers
        in
        Tree.element "proceedings"
          [
            Tree.leaf "conference" venue.Corpus.full_name;
            Tree.leaf "confYear" (string_of_int year);
            Tree.element "articles" articles;
          ])
      keys
  in
  {
    trees;
    author_strings = List.rev !author_strings;
    title_strings = List.rev !title_strings;
  }
