lib/data/sigmod_gen.ml: Array Corpus Hashtbl List Option Random Titles Toss_xml Variant
