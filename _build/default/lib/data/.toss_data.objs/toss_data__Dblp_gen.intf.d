lib/data/dblp_gen.mli: Corpus Toss_xml Variant
