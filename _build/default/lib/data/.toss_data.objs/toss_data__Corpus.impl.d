lib/data/corpus.ml: Array Hashtbl List Names Printf Random Titles
