lib/data/sigmod_gen.mli: Corpus Toss_xml Variant
