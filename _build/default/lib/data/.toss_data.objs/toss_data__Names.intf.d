lib/data/names.mli: Format Random
