lib/data/titles.mli: Random
