lib/data/names.ml: Array Format Printf Random
