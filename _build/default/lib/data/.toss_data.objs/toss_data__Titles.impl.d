lib/data/titles.ml: Array List Printf Random String
