lib/data/dblp_gen.ml: Array Corpus List Printf Random Toss_xml Variant
