lib/data/variant.mli: Names Random
