lib/data/workload.mli: Corpus Toss_similarity Toss_tax Toss_xml
