lib/data/workload.ml: Array Corpus Float Int List Printf String Toss_similarity Toss_tax Toss_xml Variant
