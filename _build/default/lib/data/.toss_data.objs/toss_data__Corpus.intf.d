lib/data/corpus.mli: Names
