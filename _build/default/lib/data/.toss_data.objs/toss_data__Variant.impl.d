lib/data/variant.ml: Bytes Char Names Printf Random String
