let adjectives =
  [| "Efficient"; "Scalable"; "Adaptive"; "Incremental"; "Approximate";
     "Distributed"; "Parallel"; "Robust"; "Optimal"; "Dynamic" |]

let techniques =
  [| "Indexing"; "Query Processing"; "Query Optimization"; "View Maintenance";
     "Join Processing"; "Data Integration"; "Schema Matching"; "Clustering";
     "Similarity Search"; "Transaction Management"; "Caching"; "Replication" |]

let objects =
  [| "XML Queries"; "Relational Data"; "Semistructured Data"; "Data Streams";
     "Text Collections"; "Graph Data"; "Spatial Data"; "Temporal Data";
     "Web Data"; "Sensor Data" |]

let contexts =
  [| "over Streams"; "in Distributed Systems"; "for the Web"; "at Scale";
     "with Ontologies"; "under Updates"; "in Peer-to-Peer Networks";
     "on Modern Hardware"; "with Limited Memory"; "in Data Warehouses" |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let generate rng serial =
  Printf.sprintf "%s %s for %s %s [P%04d]" (pick rng adjectives) (pick rng techniques)
    (pick rng objects) (pick rng contexts) serial

let topic_of title =
  Array.fold_left
    (fun acc tech ->
      match acc with
      | Some _ -> acc
      | None ->
          let nh = String.length title and nn = String.length tech in
          let rec go i =
            i + nn <= nh && (String.sub title i nn = tech || go (i + 1))
          in
          if nn > 0 && go 0 then Some tech else None)
    None techniques

let abbreviations =
  [
    ("Efficient", "Eff."); ("Scalable", "Scal."); ("Distributed", "Distr.");
    ("Management", "Mgmt."); ("Processing", "Proc."); ("Optimization", "Opt.");
    ("Incremental", "Incr."); ("Approximate", "Approx.");
  ]

let abbreviate title =
  List.fold_left
    (fun t (long, short) ->
      (* Replace the first occurrence of [long] by [short]. *)
      let nl = String.length long in
      let nt = String.length t in
      let rec find i = if i + nl > nt then None else if String.sub t i nl = long then Some i else find (i + 1) in
      match find 0 with
      | None -> t
      | Some i -> String.sub t 0 i ^ short ^ String.sub t (i + nl) (nt - i - nl))
    title abbreviations
