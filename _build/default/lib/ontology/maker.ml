module Hierarchy = Toss_hierarchy.Hierarchy
module Doc = Toss_xml.Tree.Doc
module Sset = Set.Make (String)

(* Adds [lower <= upper] unless it is a self-loop or would create a cycle
   (recursive element nesting, or a content value spelled like a tag). *)
let add_leq_acyclic ~lower ~upper h =
  if lower = upper then h
  else if Hierarchy.leq h upper lower then h
  else Hierarchy.add_leq ~lower ~upper h

let leaf_tags doc =
  List.fold_left
    (fun acc n -> if Doc.children doc n = [] then Sset.add (Doc.tag doc n) acc else acc)
    Sset.empty (Doc.nodes doc)

let contents_by_tag doc ~tags ~cap =
  List.map
    (fun tag ->
      let values =
        List.fold_left
          (fun acc n ->
            if Doc.tag doc n = tag && Doc.children doc n = [] then
              let c = Doc.content doc n in
              if c = "" then acc else Sset.add c acc
            else acc)
          Sset.empty (Doc.nodes doc)
      in
      let values = Sset.elements values in
      let values =
        match cap with
        | None -> values
        | Some k -> List.filteri (fun i _ -> i < k) values
      in
      (tag, values))
    tags

let make ?(lexicon = Lexicon.seeded) ?content_tags ?max_content_terms doc =
  let tags = Doc.tags doc in
  let content_tags =
    match content_tags with Some ts -> ts | None -> Sset.elements (leaf_tags doc)
  in
  let by_tag = contents_by_tag doc ~tags:content_tags ~cap:max_content_terms in
  let content_values = List.concat_map snd by_tag in
  let all_terms = tags @ content_values in
  (* isa: the lexicon's hypernymy over the document's terms, plus each
     content value below its tag (values of a type are types, Section 5). *)
  let isa_h = Lexicon.isa_hierarchy ~restrict_to:all_terms lexicon in
  let isa_h =
    List.fold_left
      (fun h (tag, values) ->
        List.fold_left (fun h v -> add_leq_acyclic ~lower:v ~upper:tag h) h values)
      isa_h by_tag
  in
  (* part-of: element nesting plus the lexicon's holonymy. *)
  let part_h = Lexicon.part_hierarchy ~restrict_to:all_terms lexicon in
  let part_h =
    List.fold_left
      (fun h n ->
        match Doc.parent doc n with
        | None -> h
        | Some p -> add_leq_acyclic ~lower:(Doc.tag doc n) ~upper:(Doc.tag doc p) h)
      part_h (Doc.nodes doc)
  in
  Ontology.empty
  |> Ontology.add Ontology.isa (Hierarchy.normalize isa_h)
  |> Ontology.add Ontology.part_of (Hierarchy.normalize part_h)

let make_all ?lexicon ?content_tags ?max_content_terms docs =
  List.map (make ?lexicon ?content_tags ?max_content_terms) docs

let auto_constraints ?(lexicon = Lexicon.seeded) ontologies =
  let indexed = List.mapi (fun i o -> (i, o)) ontologies in
  let relations =
    List.sort_uniq String.compare (List.concat_map Ontology.relations ontologies)
  in
  List.map
    (fun rel ->
      let term_sources =
        List.concat_map
          (fun (i, o) ->
            List.map (fun t -> (t, i)) (Hierarchy.terms (Ontology.get rel o)))
          indexed
      in
      (* Equate cross-source terms that share a lexicon synset but are
         spelled differently (identical spellings are auto-equated by the
         fusion itself). *)
      let constraints =
        List.concat_map
          (fun (t1, i) ->
            let syns = Lexicon.synonyms lexicon t1 in
            List.filter_map
              (fun (t2, j) ->
                if i < j && t1 <> t2 && List.mem t2 syns then
                  Some (Interop.eq (t1, i) (t2, j))
                else None)
              term_sources)
          term_sources
      in
      (rel, constraints))
    relations
