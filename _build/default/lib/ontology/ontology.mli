(** Ontologies (Definition 3): partial mappings from relation names to
    hierarchies.

    [Σ] is the set of relation names; the distinguished relations [isa]
    and [part-of] are always defined (as possibly empty hierarchies). *)

module Hierarchy = Toss_hierarchy.Hierarchy

type relation = string

val isa : relation
(** ["isa"] *)

val part_of : relation
(** ["part-of"] *)

type t

val empty : t
(** Maps [isa] and [part-of] to empty hierarchies. *)

val of_list : (relation * Hierarchy.t) list -> t
val add : relation -> Hierarchy.t -> t -> t
(** Replaces any previous hierarchy for the relation. *)

val find : relation -> t -> Hierarchy.t option
val get : relation -> t -> Hierarchy.t
(** The hierarchy for the relation, empty when undefined. *)

val update : relation -> (Hierarchy.t -> Hierarchy.t) -> t -> t
(** Applies the function to the relation's hierarchy (empty if absent). *)

val relations : t -> relation list
val n_terms : t -> int
(** Total number of distinct terms across all hierarchies. *)

val pp : Format.formatter -> t -> unit
