module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy
module Digraph = Toss_hierarchy.Digraph

(* Source-qualified hierarchy nodes: the vertices of the hierarchy graph. *)
module Q = struct
  type t = { source : int; node : Node.t }

  let compare a b =
    match Int.compare a.source b.source with
    | 0 -> Node.compare a.node b.node
    | c -> c

  let pp ppf { source; node } = Format.fprintf ppf "%a:%d" Node.pp node source
end

module QG = Digraph.Make (Q)
module Qmap = Map.Make (Q)

type witness = Node.t Qmap.t

type error = Neq_violated of Interop.t | Unknown_source of Interop.t

type result = { fused : Hierarchy.t; witness : witness }

let pp_error ppf = function
  | Neq_violated c -> Format.fprintf ppf "constraint violated by fusion: %a" Interop.pp c
  | Unknown_source c -> Format.fprintf ppf "constraint references unknown source: %a" Interop.pp c

(* The vertex of source [i] whose node contains [term]; a fresh singleton
   vertex if the term is unknown to that hierarchy. *)
let vertex_of hs i term =
  match Hierarchy.nodes_of term (List.nth hs i) with
  | node :: _ -> { Q.source = i; node }
  | [] -> { Q.source = i; node = Node.singleton term }

let fuse ?(auto_equate = true) hs constraints =
  let n = List.length hs in
  let constraints = Interop.expand constraints in
  let bad_source =
    List.find_opt
      (fun c ->
        let out { Interop.source; _ } = source < 0 || source >= n in
        match c with
        | Interop.Leq (a, b) | Interop.Eq (a, b) | Interop.Neq (a, b) -> out a || out b)
      constraints
  in
  match bad_source with
  | Some c -> Error (Unknown_source c)
  | None ->
      (* 1. Hierarchy graph: per-source vertices and Hasse edges. *)
      let g =
        List.fold_left
          (fun g (i, h) ->
            let g =
              List.fold_left
                (fun g node -> QG.add_vertex { Q.source = i; node } g)
                g (Hierarchy.nodes h)
            in
            List.fold_left
              (fun g (u, v) ->
                QG.add_edge { Q.source = i; node = u } { Q.source = i; node = v } g)
              g (Hierarchy.edges h))
          QG.empty
          (List.mapi (fun i h -> (i, h)) hs)
      in
      (* 2. Constraint edges. *)
      let g =
        List.fold_left
          (fun g c ->
            match c with
            | Interop.Leq (a, b) ->
                QG.add_edge
                  (vertex_of hs a.Interop.source a.Interop.term)
                  (vertex_of hs b.Interop.source b.Interop.term)
                  g
            | Interop.Eq _ -> assert false (* removed by expand *)
            | Interop.Neq _ -> g)
          g constraints
      in
      (* 3. Implicit equalities between identically-spelled terms. *)
      let g =
        if not auto_equate then g
        else begin
          let by_term = Hashtbl.create 97 in
          QG.fold_vertices
            (fun v () ->
              List.iter
                (fun s ->
                  Hashtbl.replace by_term s
                    (v :: Option.value ~default:[] (Hashtbl.find_opt by_term s)))
                (Node.strings v.Q.node))
            g ();
          Hashtbl.fold
            (fun _term vs g ->
              match vs with
              | [] | [ _ ] -> g
              | first :: rest ->
                  List.fold_left
                    (fun g v -> QG.add_edge first v (QG.add_edge v first g))
                    g rest)
            by_term g
        end
      in
      (* 4. Condense: each SCC becomes one fused node. *)
      let components, inter_edges = QG.condensation g in
      let fused_node_of_component comp =
        Node.of_list (List.concat_map (fun v -> Node.strings v.Q.node) comp)
      in
      let witness =
        List.fold_left
          (fun w comp ->
            let fused = fused_node_of_component comp in
            List.fold_left (fun w v -> Qmap.add v fused w) w comp)
          Qmap.empty components
      in
      let fg =
        List.fold_left
          (fun fg comp -> Hierarchy.G.add_vertex (fused_node_of_component comp) fg)
          Hierarchy.G.empty components
      in
      let fg =
        List.fold_left
          (fun fg (u, v) ->
            Hierarchy.G.add_edge (Qmap.find u witness) (Qmap.find v witness) fg)
          fg inter_edges
      in
      let fused = Hierarchy.normalize (Hierarchy.of_graph fg) in
      (* 5. Neq constraints. *)
      let violated =
        List.find_opt
          (fun c ->
            match c with
            | Interop.Neq (a, b) ->
                let na = Qmap.find_opt (vertex_of hs a.Interop.source a.Interop.term) witness in
                let nb = Qmap.find_opt (vertex_of hs b.Interop.source b.Interop.term) witness in
                (match (na, nb) with
                | Some na, Some nb -> Node.equal na nb
                | _ -> false)
            | Interop.Leq _ | Interop.Eq _ -> false)
          constraints
      in
      (match violated with
      | Some c -> Error (Neq_violated c)
      | None -> Ok { fused; witness })

let fuse_exn ?auto_equate hs constraints =
  match fuse ?auto_equate hs constraints with
  | Ok r -> r
  | Error e -> failwith (Format.asprintf "Fusion.fuse_exn: %a" pp_error e)

let psi witness ~source node = Qmap.find_opt { Q.source = source; node } witness

let psi_term witness ~source term =
  (* The witness is keyed by original nodes; scan for one containing the
     term within the given source. *)
  Qmap.fold
    (fun q fused acc ->
      match acc with
      | Some _ -> acc
      | None -> if q.Q.source = source && Node.mem term q.Q.node then Some fused else None)
    witness None

let fuse_ontologies ?auto_equate ontologies constraints_by_relation =
  let relations =
    List.sort_uniq String.compare (List.concat_map Ontology.relations ontologies)
  in
  List.fold_left
    (fun acc rel ->
      match acc with
      | Error _ -> acc
      | Ok fused_ontology -> (
          let hs = List.map (Ontology.get rel) ontologies in
          let cs = Option.value ~default:[] (List.assoc_opt rel constraints_by_relation) in
          match fuse ?auto_equate hs cs with
          | Ok { fused; _ } -> Ok (Ontology.add rel fused fused_ontology)
          | Error e -> Error (rel, e)))
    (Ok Ontology.empty) relations

let check_integration hs constraints { fused; witness } =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Axiom 1: input orderings are preserved. *)
  List.iteri
    (fun i h ->
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              if Hierarchy.node_leq h x y then begin
                match (psi witness ~source:i x, psi witness ~source:i y) with
                | Some fx, Some fy ->
                    if not (Hierarchy.node_leq fused fx fy) then
                      err "axiom 1: %a <= %a in source %d not preserved" Node.pp x
                        Node.pp y i
                | _ -> err "axiom 1: source %d node unmapped" i
              end)
            (Hierarchy.nodes h))
        (Hierarchy.nodes h))
    hs;
  (* Axiom 2: Leq constraints hold in the fusion. *)
  List.iter
    (fun c ->
      match c with
      | Interop.Leq (a, b) -> (
          match
            ( psi_term witness ~source:a.Interop.source a.Interop.term,
              psi_term witness ~source:b.Interop.source b.Interop.term )
          with
          | Some fa, Some fb ->
              if not (Hierarchy.node_leq fused fa fb) then
                err "axiom 2: %a not honoured" Interop.pp c
          | _ -> err "axiom 2: %a references unmapped term" Interop.pp c)
      | Interop.Eq _ | Interop.Neq _ -> ())
    (Interop.expand constraints);
  match !errors with [] -> Ok () | es -> Error (List.rev es)
