type qualified = { term : string; source : int }

type t =
  | Leq of qualified * qualified
  | Eq of qualified * qualified
  | Neq of qualified * qualified

let q term source = { term; source }
let leq (x, i) (y, j) = Leq (q x i, q y j)
let eq (x, i) (y, j) = Eq (q x i, q y j)
let neq (x, i) (y, j) = Neq (q x i, q y j)

let expand cs =
  List.concat_map
    (function
      | Eq (a, b) -> [ Leq (a, b); Leq (b, a) ]
      | (Leq _ | Neq _) as c -> [ c ])
    cs

let pp_q ppf { term; source } = Format.fprintf ppf "%s:%d" term source

let pp ppf = function
  | Leq (a, b) -> Format.fprintf ppf "%a <= %a" pp_q a pp_q b
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_q a pp_q b
  | Neq (a, b) -> Format.fprintf ppf "%a <> %a" pp_q a pp_q b
