(** Canonical fusion of hierarchies (Definitions 5–6).

    The hierarchy graph of the inputs has one vertex per (source,
    hierarchy-node) pair, the within-hierarchy Hasse edges, and one edge
    per [Leq] interoperation constraint. Equality constraints induce
    two-cycles, so condensing the graph's strongly-connected components
    merges equated terms into single nodes; the transitive reduction of
    the condensation is the canonical hierarchy of Calvanese et al. (the
    paper's references [2, 3]). The witness maps each input node to the
    fused node absorbing it, satisfying both integration axioms of
    Definition 5.

    When [auto_equate] is set (the default), terms spelled identically in
    different sources are equated implicitly — the paper's example relies
    on this for [title], [author] and [year]; explicit [Neq] constraints
    override it. *)

module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy

type witness
(** The injective mappings ψ₁ … ψₙ of Definition 5. *)

type error =
  | Neq_violated of Interop.t
  (** A [Neq] constraint's two terms ended up in the same fused node. *)
  | Unknown_source of Interop.t
  (** A constraint references a source index out of range. *)

type result = { fused : Hierarchy.t; witness : witness }

val fuse :
  ?auto_equate:bool -> Hierarchy.t list -> Interop.t list -> (result, error) Stdlib.result

val fuse_exn : ?auto_equate:bool -> Hierarchy.t list -> Interop.t list -> result

val psi : witness -> source:int -> Node.t -> Node.t option
(** The fused node absorbing an input node; [None] when the node is not in
    that source. *)

val psi_term : witness -> source:int -> string -> Node.t option
(** Convenience: the fused node containing the source's term. *)

val fuse_ontologies :
  ?auto_equate:bool ->
  Ontology.t list ->
  (Ontology.relation * Interop.t list) list ->
  (Ontology.t, Ontology.relation * error) Stdlib.result
(** Fuses relation-by-relation: the k-th output hierarchy is the fusion of
    the inputs' k-th hierarchies under that relation's constraints. *)

val check_integration :
  Hierarchy.t list -> Interop.t list -> result -> (unit, string list) Stdlib.result
(** Verifies the two axioms of Definition 5 against a fusion result:
    (1) ordering of every input hierarchy is preserved, (2) every [Leq]
    constraint is honoured. Used by the test suite. *)

val pp_error : Format.formatter -> error -> unit
