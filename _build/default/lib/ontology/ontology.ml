module Hierarchy = Toss_hierarchy.Hierarchy
module Smap = Map.Make (String)

type relation = string

let isa = "isa"
let part_of = "part-of"

type t = Hierarchy.t Smap.t

let empty = Smap.empty |> Smap.add isa Hierarchy.empty |> Smap.add part_of Hierarchy.empty
let add rel h t = Smap.add rel h t
let of_list l = List.fold_left (fun t (rel, h) -> add rel h t) empty l
let find rel t = Smap.find_opt rel t
let get rel t = Option.value ~default:Hierarchy.empty (find rel t)
let update rel f t = Smap.add rel (f (get rel t)) t
let relations t = List.map fst (Smap.bindings t)

let n_terms t =
  Smap.fold (fun _ h acc -> acc + List.length (Hierarchy.terms h)) t 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Smap.iter (fun rel h -> Format.fprintf ppf "@[<v 2>%s:@,%a@]@," rel Hierarchy.pp h) t;
  Format.fprintf ppf "@]"
