lib/ontology/fusion.ml: Format Hashtbl Int Interop List Map Ontology Option String Toss_hierarchy
