lib/ontology/maker.mli: Interop Lexicon Ontology Toss_hierarchy Toss_xml
