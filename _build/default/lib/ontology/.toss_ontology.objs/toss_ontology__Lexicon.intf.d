lib/ontology/lexicon.mli: Toss_hierarchy
