lib/ontology/ontology.ml: Format List Map Option String Toss_hierarchy
