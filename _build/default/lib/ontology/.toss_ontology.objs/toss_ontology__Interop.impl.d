lib/ontology/interop.ml: Format List
