lib/ontology/interop.mli: Format
