lib/ontology/lexicon.ml: Array Int List Map Option Printf Random Set String Toss_hierarchy
