lib/ontology/fusion.mli: Format Interop Ontology Stdlib Toss_hierarchy
