lib/ontology/ontology.mli: Format Toss_hierarchy
