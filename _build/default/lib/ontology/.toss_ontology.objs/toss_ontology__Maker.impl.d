lib/ontology/maker.ml: Interop Lexicon List Ontology Set String Toss_hierarchy Toss_xml
