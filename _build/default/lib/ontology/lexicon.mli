(** A lexical knowledge base: the WordNet substitute.

    The paper's Ontology Maker consults WordNet for isa, part-of and
    synonymy relationships between the terms of a semistructured instance.
    WordNet is not redistributable here, so this module implements the
    same contract — synsets (synonym clusters), hypernymy (isa) and
    holonymy (part-of) between synsets — over (a) a seeded vocabulary for
    the bibliographic/computer-science/organizations domain that the
    DBLP/SIGMOD experiments need, and (b) synthetically generated
    vocabularies of arbitrary size for the scalability experiments (the
    paper sweeps ontologies of about 1000–1700 terms). *)

module Hierarchy = Toss_hierarchy.Hierarchy

type t

val empty : t

val add_synset : string list -> t -> t
(** Declares the terms synonymous. If any of them already belongs to a
    synset, all involved synsets are merged. *)

val add_isa : sub:string -> super:string -> t -> t
(** [sub]'s synset isa [super]'s synset; unknown terms get fresh synsets. *)

val add_part : part:string -> whole:string -> t -> t

val mem : t -> string -> bool
val synonyms : t -> string -> string list
(** The term's synset members (itself included); just the term itself when
    unknown. *)

val hypernyms : t -> string -> string list
(** Direct hypernyms: all members of the synsets directly above. *)

val hypernym_closure : t -> string -> string list
(** All members of all synsets reachable via isa (the term's own synset
    excluded). *)

val n_terms : t -> int
val terms : t -> string list

val isa_hierarchy : ?restrict_to:string list -> t -> Hierarchy.t
(** The isa relation as a hierarchy whose nodes are synsets. With
    [restrict_to], only the synsets of the given terms and their hypernym
    ancestors are kept (what the Ontology Maker extracts for one
    document). *)

val part_hierarchy : ?restrict_to:string list -> t -> Hierarchy.t

val seeded : t
(** The built-in bibliographic / computer-science / organizations
    vocabulary (several hundred terms), including the paper's motivating
    entries: US government agencies (part-of), venue categories (isa) and
    publication-type synonyms. *)

val synthetic : seed:int -> n_terms:int -> t
(** A deterministic random vocabulary with an isa forest, synonym
    clusters, and near-duplicate spellings (so similarity enhancement has
    realistic work to do). Used by the ontology-size scalability sweeps. *)
