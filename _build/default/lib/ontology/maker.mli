(** The Ontology Maker (TOSS architecture component 1, Section 3).

    Automatically associates an ontology with a semistructured instance:

    - the {e part-of} hierarchy is read off the element nesting structure
      (a tag that occurs as a child of another is part of it), enriched
      with the lexicon's holonymy entries for terms that occur in the
      document;
    - the {e isa} hierarchy links the document's terms — tags and the
      content values of the selected tags — into the lexicon's hypernymy
      graph; content values are additionally placed below their tag (each
      value of a type is itself a type, Section 5).

    The result can then be refined by a database administrator via
    {!Ontology.update}, fused across instances with {!Fusion}, and
    similarity-enhanced with [Toss_similarity.Sea]. *)

module Hierarchy = Toss_hierarchy.Hierarchy

val make :
  ?lexicon:Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  Toss_xml.Tree.Doc.t ->
  Ontology.t
(** [lexicon] defaults to {!Lexicon.seeded}. [content_tags] selects the
    tags whose content values become ontology terms (default: every leaf
    tag). [max_content_terms] caps the number of distinct content values
    added per tag (default unlimited). *)

val make_all :
  ?lexicon:Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  Toss_xml.Tree.Doc.t list ->
  Ontology.t list

val auto_constraints :
  ?lexicon:Lexicon.t -> Ontology.t list -> (Ontology.relation * Interop.t list) list
(** Interoperation constraints between the ontologies of different
    sources, derived from the lexicon: terms that are synonyms (same
    synset) are equated across sources, e.g. [booktitle:0 = conference:1]
    when the lexicon declares them synonymous. Identically-spelled terms
    are left to the fusion's [auto_equate]. *)
