module Hierarchy = Toss_hierarchy.Hierarchy
module Node = Toss_hierarchy.Node
module Smap = Map.Make (String)
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type t = {
  synset_of : int Smap.t;
  members : string list Imap.t;
  isa_edges : Iset.t Imap.t;  (** synset -> hypernym synsets *)
  part_edges : Iset.t Imap.t;  (** synset -> holonym synsets *)
  next_id : int;
}

let empty =
  {
    synset_of = Smap.empty;
    members = Imap.empty;
    isa_edges = Imap.empty;
    part_edges = Imap.empty;
    next_id = 0;
  }

let fresh_synset term t =
  let id = t.next_id in
  ( id,
    {
      t with
      synset_of = Smap.add term id t.synset_of;
      members = Imap.add id [ term ] t.members;
      next_id = id + 1;
    } )

let synset_of term t =
  match Smap.find_opt term t.synset_of with
  | Some id -> (id, t)
  | None -> fresh_synset term t

let members_of id t = Option.value ~default:[] (Imap.find_opt id t.members)

(* Merge synset [src] into [dst], rewriting memberships and edges. *)
let merge_synsets dst src t =
  if dst = src then t
  else begin
    let moved = members_of src t in
    let synset_of =
      List.fold_left (fun m term -> Smap.add term dst m) t.synset_of moved
    in
    let members =
      Imap.add dst
        (List.sort_uniq String.compare (members_of dst t @ moved))
        (Imap.remove src t.members)
    in
    let rewrite edges =
      let out_dst = Option.value ~default:Iset.empty (Imap.find_opt dst edges) in
      let out_src = Option.value ~default:Iset.empty (Imap.find_opt src edges) in
      let edges = Imap.remove src edges in
      let edges = Imap.map (fun s -> Iset.map (fun id -> if id = src then dst else id) s) edges in
      let merged = Iset.remove dst (Iset.union out_dst out_src) in
      if Iset.is_empty merged then Imap.remove dst edges else Imap.add dst merged edges
    in
    {
      t with
      synset_of;
      members;
      isa_edges = rewrite t.isa_edges;
      part_edges = rewrite t.part_edges;
    }
  end

let add_synset terms t =
  match terms with
  | [] -> t
  | first :: rest ->
      let id0, t = synset_of first t in
      List.fold_left
        (fun t term ->
          let id, t = synset_of term t in
          merge_synsets id0 id t)
        t rest

let add_edge field ~sub ~super t =
  let sid, t = synset_of sub t in
  let pid, t = synset_of super t in
  if sid = pid then (field t, t)
  else
    let edges = field t in
    let out = Option.value ~default:Iset.empty (Imap.find_opt sid edges) in
    (Imap.add sid (Iset.add pid out) edges, t)

let add_isa ~sub ~super t =
  let edges, t = add_edge (fun t -> t.isa_edges) ~sub ~super t in
  { t with isa_edges = edges }

let add_part ~part ~whole t =
  let edges, t = add_edge (fun t -> t.part_edges) ~sub:part ~super:whole t in
  { t with part_edges = edges }

let mem t term = Smap.mem term t.synset_of

let synonyms t term =
  match Smap.find_opt term t.synset_of with
  | None -> [ term ]
  | Some id -> members_of id t

let direct field t term =
  match Smap.find_opt term t.synset_of with
  | None -> []
  | Some id ->
      Iset.fold
        (fun super acc -> members_of super t @ acc)
        (Option.value ~default:Iset.empty (Imap.find_opt id (field t)))
        []
      |> List.sort_uniq String.compare

let hypernyms = direct (fun t -> t.isa_edges)

let hypernym_closure t term =
  match Smap.find_opt term t.synset_of with
  | None -> []
  | Some id ->
      let rec walk seen frontier =
        match frontier with
        | [] -> seen
        | s :: rest ->
            if Iset.mem s seen then walk seen rest
            else
              let ups =
                Iset.elements (Option.value ~default:Iset.empty (Imap.find_opt s t.isa_edges))
              in
              walk (Iset.add s seen) (ups @ rest)
      in
      let reachable = walk Iset.empty [ id ] in
      Iset.fold (fun s acc -> members_of s t @ acc) (Iset.remove id reachable) []
      |> List.sort_uniq String.compare

let n_terms t = Smap.cardinal t.synset_of
let terms t = List.map fst (Smap.bindings t.synset_of)

let hierarchy_of field ?restrict_to t =
  let keep =
    match restrict_to with
    | None -> None
    | Some terms ->
        (* Synsets of the terms plus all ancestors through this field. *)
        let seeds =
          List.filter_map (fun term -> Smap.find_opt term t.synset_of) terms
        in
        let rec walk seen frontier =
          match frontier with
          | [] -> seen
          | s :: rest ->
              if Iset.mem s seen then walk seen rest
              else
                let ups =
                  Iset.elements
                    (Option.value ~default:Iset.empty (Imap.find_opt s (field t)))
                in
                walk (Iset.add s seen) (ups @ rest)
        in
        Some (walk Iset.empty seeds)
  in
  let kept id = match keep with None -> true | Some s -> Iset.mem id s in
  let node_of id = Node.of_list (members_of id t) in
  let g =
    Imap.fold
      (fun id _members g ->
        if kept id then Hierarchy.G.add_vertex (node_of id) g else g)
      t.members Hierarchy.G.empty
  in
  let g =
    Imap.fold
      (fun sub supers g ->
        if not (kept sub) then g
        else
          Iset.fold
            (fun super g ->
              if kept super then Hierarchy.G.add_edge (node_of sub) (node_of super) g
              else g)
            supers g)
      (field t) g
  in
  Hierarchy.normalize (Hierarchy.of_graph g)

let isa_hierarchy ?restrict_to t = hierarchy_of (fun t -> t.isa_edges) ?restrict_to t
let part_hierarchy ?restrict_to t = hierarchy_of (fun t -> t.part_edges) ?restrict_to t

(* ------------------------------------------------------------------ *)
(* Seeded domain vocabulary.                                           *)
(* ------------------------------------------------------------------ *)

let seeded =
  let syn = add_synset in
  let isa pairs t = List.fold_left (fun t (sub, super) -> add_isa ~sub ~super t) t pairs in
  let part pairs t =
    List.fold_left (fun t (p, w) -> add_part ~part:p ~whole:w t) t pairs
  in
  empty
  (* Publication forms. *)
  |> syn [ "inproceedings"; "conference paper" ]
  |> syn [ "article"; "journal article" ]
  |> syn [ "paper"; "publication" ]
  |> syn [ "proceedings"; "conference proceedings" ]
  |> syn [ "booktitle"; "conference"; "venue" ]
  |> isa
       [
         ("inproceedings", "paper");
         ("article", "paper");
         ("incollection", "paper");
         ("phdthesis", "thesis");
         ("mastersthesis", "thesis");
         ("thesis", "document");
         ("paper", "document");
         ("book", "document");
         ("proceedings", "document");
         ("techreport", "document");
         ("webpage", "document");
       ]
  (* Venues. *)
  |> syn [ "SIGMOD Conference"; "ACM SIGMOD International Conference on Management of Data" ]
  |> syn [ "VLDB"; "International Conference on Very Large Data Bases" ]
  |> syn [ "ICDE"; "International Conference on Data Engineering" ]
  |> syn [ "PODS"; "Symposium on Principles of Database Systems" ]
  |> syn [ "EDBT"; "International Conference on Extending Database Technology" ]
  |> syn [ "CIKM"; "Conference on Information and Knowledge Management" ]
  |> syn [ "KDD"; "Knowledge Discovery and Data Mining" ]
  |> syn [ "ICML"; "International Conference on Machine Learning" ]
  |> syn [ "NIPS"; "Neural Information Processing Systems" ]
  |> syn [ "SIGIR"; "Conference on Research and Development in Information Retrieval" ]
  |> syn [ "WWW"; "International World Wide Web Conference" ]
  |> syn [ "SODA"; "Symposium on Discrete Algorithms" ]
  |> syn [ "STOC"; "Symposium on Theory of Computing" ]
  |> syn [ "FOCS"; "Symposium on Foundations of Computer Science" ]
  |> isa
       [
         ("SIGMOD Conference", "database conference");
         ("VLDB", "database conference");
         ("ICDE", "database conference");
         ("PODS", "database conference");
         ("EDBT", "database conference");
         ("CIKM", "information systems conference");
         ("KDD", "data mining conference");
         ("ICML", "machine learning conference");
         ("NIPS", "machine learning conference");
         ("SIGIR", "information retrieval conference");
         ("WWW", "web conference");
         ("SODA", "theory conference");
         ("STOC", "theory conference");
         ("FOCS", "theory conference");
         ("database conference", "computer science conference");
         ("data mining conference", "computer science conference");
         ("machine learning conference", "computer science conference");
         ("information retrieval conference", "computer science conference");
         ("information systems conference", "computer science conference");
         ("web conference", "computer science conference");
         ("theory conference", "computer science conference");
         ("computer science conference", "conference");
         ("conference", "meeting");
         ("workshop", "meeting");
         ("symposium", "meeting");
       ]
  (* Research topics. *)
  |> syn [ "DBMS"; "database management system" ]
  |> syn [ "IR"; "information retrieval" ]
  |> syn [ "ML"; "machine learning" ]
  |> isa
       [
         ("relational database", "database");
         ("XML database", "database");
         ("object-oriented database", "database");
         ("deductive database", "database");
         ("distributed database", "database");
         ("database", "data management");
         ("query processing", "data management");
         ("query optimization", "query processing");
         ("indexing", "data management");
         ("transaction processing", "data management");
         ("data integration", "data management");
         ("data warehousing", "data management");
         ("data mining", "data management");
         ("data management", "computer science");
         ("information retrieval", "computer science");
         ("machine learning", "artificial intelligence");
         ("knowledge representation", "artificial intelligence");
         ("artificial intelligence", "computer science");
         ("algorithms", "computer science");
         ("computational complexity", "computer science");
         ("computer networks", "computer science");
         ("operating systems", "computer science");
         ("programming languages", "computer science");
         ("software engineering", "computer science");
         ("computer science", "science");
         ("semistructured data", "data management");
         ("XML", "semistructured data");
         ("ontology", "knowledge representation");
         ("similarity search", "information retrieval");
       ]
  (* Organizations: the paper's "US government" motivating example. *)
  |> syn [ "US government"; "United States government" ]
  |> syn [ "US Census Bureau"; "United States Census Bureau" ]
  |> part
       [
         ("US Census Bureau", "US Department of Commerce");
         ("US Department of Commerce", "US government");
         ("US Army", "US Department of Defense");
         ("US Navy", "US Department of Defense");
         ("US Air Force", "US Department of Defense");
         ("US Department of Defense", "US government");
         ("NIST", "US Department of Commerce");
         ("NASA", "US government");
         ("NSF", "US government");
         ("NIH", "US Department of Health");
         ("US Department of Health", "US government");
         ("Army Research Lab", "US Army");
       ]
  |> isa
       [
         ("US government", "government");
         ("government", "organization");
         ("university", "organization");
         ("company", "organization");
         ("web search company", "computer company");
         ("computer company", "company");
         ("database company", "computer company");
         ("Google", "web search company");
         ("Yahoo", "web search company");
         ("Microsoft", "computer company");
         ("IBM", "computer company");
         ("Oracle", "database company");
         ("Sybase", "database company");
         ("Informix", "database company");
         ("Bell Labs", "research lab");
         ("AT&T Labs", "research lab");
         ("research lab", "organization");
         ("Stanford University", "university");
         ("MIT", "university");
         ("University of Maryland", "university");
         ("University of Michigan", "university");
         ("University of Wisconsin", "university");
       ]
  (* Journals and publishers. *)
  |> syn [ "TODS"; "ACM Transactions on Database Systems" ]
  |> syn [ "TKDE"; "IEEE Transactions on Knowledge and Data Engineering" ]
  |> syn [ "VLDB Journal"; "The VLDB Journal" ]
  |> syn [ "CACM"; "Communications of the ACM" ]
  |> syn [ "JACM"; "Journal of the ACM" ]
  |> isa
       [
         ("TODS", "database journal");
         ("TKDE", "database journal");
         ("VLDB Journal", "database journal");
         ("Information Systems", "database journal");
         ("CACM", "computer science journal");
         ("JACM", "computer science journal");
         ("SIGMOD Record", "computer science journal");
         ("database journal", "computer science journal");
         ("computer science journal", "journal");
         ("journal", "periodical");
         ("magazine", "periodical");
         ("periodical", "document");
         ("ACM", "professional society");
         ("IEEE", "professional society");
         ("professional society", "organization");
         ("ACM Press", "publisher");
         ("IEEE Computer Society Press", "publisher");
         ("Springer", "publisher");
         ("Elsevier", "publisher");
         ("Morgan Kaufmann", "publisher");
         ("publisher", "company");
       ]
  (* Deeper topic taxonomy (matches the title generator's vocabulary). *)
  |> isa
       [
         ("B-tree", "index structure");
         ("R-tree", "index structure");
         ("hash index", "index structure");
         ("inverted index", "index structure");
         ("index structure", "indexing");
         ("view maintenance", "materialized views");
         ("materialized views", "query processing");
         ("join processing", "query processing");
         ("schema matching", "data integration");
         ("entity resolution", "data integration");
         ("record linkage", "entity resolution");
         ("duplicate detection", "entity resolution");
         ("clustering", "data mining");
         ("classification", "data mining");
         ("association rules", "data mining");
         ("similarity search", "information retrieval");
         ("nearest neighbor search", "similarity search");
         ("text search", "information retrieval");
         ("ranking", "information retrieval");
         ("caching", "query processing");
         ("replication", "distributed database");
         ("concurrency control", "transaction processing");
         ("recovery", "transaction processing");
         ("logging", "recovery");
         ("XPath", "XML");
         ("XQuery", "XML");
         ("XSLT", "XML");
         ("DTD", "XML");
         ("tree algebra", "semistructured data");
         ("TAX", "tree algebra");
         ("TOSS", "tree algebra");
         ("data streams", "data management");
         ("sensor data", "data streams");
         ("spatial data", "data management");
         ("temporal data", "data management");
         ("graph data", "data management");
         ("web data", "data management");
       ]
  (* More universities and labs (affiliation queries). *)
  |> isa
       [
         ("Carnegie Mellon University", "university");
         ("University of California Berkeley", "university");
         ("Cornell University", "university");
         ("Princeton University", "university");
         ("University of Washington", "university");
         ("University of Toronto", "university");
         ("ETH Zurich", "university");
         ("INRIA", "research lab");
         ("Microsoft Research", "research lab");
         ("IBM Almaden", "research lab");
         ("IBM Research", "research lab");
         ("Xerox PARC", "research lab");
       ]
  |> part
       [
         ("IBM Almaden", "IBM");
         ("Microsoft Research", "Microsoft");
         ("Bell Labs", "AT&T");
         ("computer science department", "university");
       ]
  (* Countries and regions, for affiliation/location reasoning. *)
  |> syn [ "USA"; "United States"; "United States of America" ]
  |> syn [ "UK"; "United Kingdom" ]
  |> isa
       [
         ("USA", "country");
         ("UK", "country");
         ("Germany", "country");
         ("France", "country");
         ("Italy", "country");
         ("Canada", "country");
         ("Japan", "country");
         ("China", "country");
         ("India", "country");
         ("country", "region");
       ]
  |> part
       [
         ("California", "USA");
         ("Maryland", "USA");
         ("Washington", "USA");
         ("San Diego", "California");
         ("San Francisco", "California");
         ("Seattle", "Washington");
         ("College Park", "Maryland");
       ]
  (* Structural/tag vocabulary shared by the two bibliographies. *)
  |> syn [ "author"; "writer" ]
  |> syn [ "year"; "confYear" ]
  |> syn [ "pages"; "page range" ]
  |> syn [ "affiliation"; "institution" ]
  |> isa
       [
         ("title", "metadata");
         ("author", "metadata");
         ("year", "metadata");
         ("pages", "metadata");
         ("volume", "metadata");
         ("number", "metadata");
         ("month", "metadata");
         ("location", "metadata");
         ("affiliation", "metadata");
         ("editor", "metadata");
         ("publisher", "metadata");
         ("isbn", "metadata");
         ("url", "metadata");
       ]

(* ------------------------------------------------------------------ *)
(* Synthetic vocabularies.                                             *)
(* ------------------------------------------------------------------ *)

let synthetic_adjectives =
  [| "amber"; "brisk"; "cobalt"; "dusty"; "ebony"; "feral"; "gilded"; "hollow";
     "ivory"; "jagged"; "keen"; "lucid"; "mellow"; "noble"; "opaque"; "pallid";
     "quaint"; "rustic"; "solemn"; "tepid"; "umber"; "vivid"; "wistful";
     "zealous"; "arcane"; "bleak"; "crimson"; "dormant"; "elder"; "frosty" |]

let synthetic_nouns =
  [| "anchor"; "beacon"; "cradle"; "delta"; "ember"; "fjord"; "grove"; "harbor";
     "inlet"; "jetty"; "knoll"; "lagoon"; "meadow"; "nexus"; "orchard"; "plateau";
     "quarry"; "ridge"; "summit"; "thicket"; "upland"; "valley"; "willow";
     "zenith"; "basin"; "canyon"; "dune"; "estuary"; "floe"; "glacier" |]

let synthetic ~seed ~n_terms =
  let rng = Random.State.make [| seed; n_terms |] in
  let lex = ref empty in
  let names = Array.make (max n_terms 1) "" in
  let count = ref 0 in
  (* Base names combine word pools so that unrelated concepts are far
     apart under edit distance: a dense similarity graph would make the
     maximal-clique step of SEA blow up, which real vocabularies do not. *)
  let base_name i =
    let na = Array.length synthetic_adjectives in
    let nn = Array.length synthetic_nouns in
    let combo = i mod (na * nn) in
    let generation = i / (na * nn) in
    let base =
      Printf.sprintf "%s %s" synthetic_adjectives.(combo mod na)
        synthetic_nouns.(combo / na mod nn)
    in
    if generation = 0 then base else Printf.sprintf "%s gen%d" base generation
  in
  let i = ref 0 in
  while !count < n_terms do
    let name =
      (* Every eighth term is a near-duplicate spelling of an earlier one,
         giving the SEA algorithm realistic merge candidates. *)
      if !i > 0 && !i mod 8 = 0 then begin
        let target = names.(Random.State.int rng !count) in
        match Random.State.int rng 3 with
        | 0 -> target ^ "s"
        | 1 -> String.capitalize_ascii target
        | _ -> target ^ "x"
      end
      else base_name !i
    in
    if not (mem !lex name) then begin
      lex := add_synset [ name ] !lex;
      names.(!count) <- name;
      incr count;
      (* Attach to a random earlier concept, building an isa forest. *)
      if !count > 1 then begin
        let parent = names.(Random.State.int rng (!count - 1)) in
        if parent <> name then lex := add_isa ~sub:name ~super:parent !lex
      end;
      (* Occasional synonym clusters. *)
      if !count mod 17 = 0 then begin
        let alias = name ^ " alias" in
        if (not (mem !lex alias)) && !count < n_terms then begin
          lex := add_synset [ name; alias ] !lex;
          names.(!count) <- alias;
          incr count
        end
      end
    end;
    incr i
  done;
  !lex
