(** Interoperation constraints (Definition 4).

    Constraints relate terms of different source hierarchies: [x:i <= y:j]
    ([Leq]), [x:i = y:j] ([Eq], shorthand for the two [Leq]s), and
    [x:i <> y:j] ([Neq], forbidding the fusion from identifying the two
    terms). Sources are identified by their 0-based position in the list
    of hierarchies being fused. *)

type qualified = { term : string; source : int }

type t =
  | Leq of qualified * qualified
  | Eq of qualified * qualified
  | Neq of qualified * qualified

val q : string -> int -> qualified
(** [q term source] *)

val leq : string * int -> string * int -> t
val eq : string * int -> string * int -> t
val neq : string * int -> string * int -> t

val expand : t list -> t list
(** Rewrites every [Eq] into its two [Leq]s (the note after Definition 4);
    [Neq]s pass through. *)

val pp : Format.formatter -> t -> unit
