(** Persistent directed graphs over an ordered vertex type.

    This module provides the graph algorithms that the rest of the system is
    built on: reachability, Tarjan's strongly-connected components,
    condensation, topological sorting, transitive closure and transitive
    reduction (the Hasse diagram of the induced partial order). All graphs
    are persistent; operations return new graphs. *)

module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type vertex
  type t

  module Vset : Set.S with type elt = vertex
  module Vmap : Map.S with type key = vertex

  val empty : t
  val is_empty : t -> bool
  val add_vertex : vertex -> t -> t

  val add_edge : vertex -> vertex -> t -> t
  (** [add_edge u v g] adds the edge [u -> v], inserting both endpoints as
      vertices if needed. Self-loops are permitted (they make the graph
      cyclic). *)

  val remove_edge : vertex -> vertex -> t -> t

  val remove_vertex : vertex -> t -> t
  (** Removes the vertex and every edge incident to it. *)

  val mem_vertex : vertex -> t -> bool
  val mem_edge : vertex -> vertex -> t -> bool
  val vertices : t -> vertex list
  val edges : t -> (vertex * vertex) list
  val succs : vertex -> t -> Vset.t
  val preds : vertex -> t -> Vset.t
  val out_degree : vertex -> t -> int
  val in_degree : vertex -> t -> int
  val n_vertices : t -> int
  val n_edges : t -> int
  val of_edges : (vertex * vertex) list -> t
  val fold_vertices : (vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val fold_edges : (vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val map_vertices : (vertex -> vertex) -> t -> t
  (** [map_vertices f g] renames every vertex by [f]; edges follow. If [f]
      identifies two vertices their edge sets are merged. *)

  val reachable : vertex -> t -> Vset.t
  (** All vertices reachable from the given vertex by a path of length >= 0
      (the vertex itself is included when it is in the graph). *)

  val has_path : vertex -> vertex -> t -> bool
  (** [has_path u v g] holds iff there is a path of length >= 0 from [u] to
      [v]; both must be vertices of [g]. *)

  val is_acyclic : t -> bool

  val topological_sort : t -> vertex list option
  (** [None] when the graph has a cycle. Sources (no predecessors) first. *)

  val scc : t -> vertex list list
  (** Tarjan's strongly-connected components, in reverse topological order
      of the condensation (i.e. a component precedes the components it can
      reach). Each component is a non-empty list. *)

  val condensation : t -> vertex list list * (vertex * vertex) list
  (** The condensation DAG: its vertices are the SCCs of the input and its
      edges the inter-component edges (deduplicated, no self-loops). *)

  val transitive_closure : t -> t
  (** Adds an edge [u -> v] for every pair with a path of length >= 1. *)

  val transitive_reduction : t -> t
  (** For a DAG, the unique minimal subgraph with the same reachability
      relation (the Hasse diagram).
      @raise Invalid_argument when the graph has a cycle. *)

  val pp : Format.formatter -> t -> unit
end

module Make (V : VERTEX) : S with type vertex = V.t
