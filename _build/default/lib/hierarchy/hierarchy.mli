(** Hierarchies: Hasse diagrams of partial orders over term clusters.

    Following Definition 3 of the paper, a hierarchy for a poset [(S, <=)]
    is its Hasse diagram: a DAG whose vertices are the elements of [S] with
    a minimal edge set such that a path [u ~> v] exists iff [u <= v].

    Vertices are {!Node.t} term clusters. Edges point {e upward}: an edge
    [u -> v] means [u <= v] ([u] is below [v], e.g. ["article" part-of
    "articles"] or ["dog" isa "animal"]).

    In an ordinary or fused hierarchy each term belongs to at most one
    node; a similarity-enhanced hierarchy may place one term in several
    nodes, so term lookups return a list. *)

module G : Digraph.S with type vertex = Node.t

type t

val empty : t
val is_empty : t -> bool

val add_term : string -> t -> t
(** Adds an isolated singleton node for the term if no node contains it. *)

val add_node : Node.t -> t -> t

val add_leq : lower:string -> upper:string -> t -> t
(** Adds a covering edge between the nodes containing the two terms,
    creating singleton nodes for unknown terms. The caller is responsible
    for keeping the diagram acyclic and minimal; use {!normalize} to
    restore Hasse minimality and {!is_consistent} to check acyclicity. *)

val add_edge : Node.t -> Node.t -> t -> t

val of_pairs : (string * string) list -> t
(** [of_pairs pairs] builds a hierarchy from [(lower, upper)] pairs and
    normalizes it.
    @raise Invalid_argument when the pairs induce a cycle. *)

val nodes : t -> Node.t list
val edges : t -> (Node.t * Node.t) list
val terms : t -> string list
val n_nodes : t -> int
val n_edges : t -> int
val mem_term : string -> t -> bool
val nodes_of : string -> t -> Node.t list
(** All nodes containing the term (at most one unless similarity-enhanced). *)

val node_of : string -> t -> Node.t option
(** The unique node containing the term.
    @raise Invalid_argument when the term is in several nodes. *)

val leq : t -> string -> string -> bool
(** [leq h a b] holds iff some node containing [a] reaches some node
    containing [b] (so it is reflexive on known terms). Unknown terms are
    below/above nothing. *)

val node_leq : t -> Node.t -> Node.t -> bool

val below : string -> t -> string list
(** Every term [b] with [leq h b a]; includes the term's own cluster. *)

val above : string -> t -> string list

val upper_bounds : t -> string -> string -> Node.t list
(** Minimal common upper bounds of the two terms. *)

val least_upper_bound : t -> string -> string -> Node.t option
(** [Some n] when the minimal common upper bound is unique. *)

val roots : t -> Node.t list
val leaves : t -> Node.t list

val lower_bounds : t -> string -> string -> Node.t list
(** Maximal common lower bounds of the two terms. *)

val greatest_lower_bound : t -> string -> string -> Node.t option

val merge_terms : string -> string -> t -> t
(** Declares two terms synonymous: their nodes fuse into one cluster that
    inherits both nodes' edges (self-edges dropped). The DBA-refinement
    primitive of the paper's Section 3. May create a cycle if the terms
    were strictly ordered; check with {!is_consistent}. Unknown terms get
    singleton nodes first. *)

val remove_term : string -> t -> t
(** Removes the term. A singleton node disappears and its neighbours are
    bridged (predecessors connect to successors, preserving the ordering
    among the remaining terms); a term inside a cluster just leaves the
    cluster. *)

val depth : t -> Node.t -> int
(** Longest path from a root (a maximal node) down to the node; 0 for
    roots.
    @raise Invalid_argument when the node is absent or the diagram is
    cyclic. *)

val to_dot : ?name:string -> t -> string
(** Graphviz source: one box per node (cluster members joined by
    newlines), edges drawn upward. *)

val normalize : t -> t
(** Transitive reduction; restores Hasse minimality.
    @raise Invalid_argument on a cyclic diagram. *)

val is_consistent : t -> bool
(** Acyclicity. *)

val graph : t -> G.t
val of_graph : G.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
