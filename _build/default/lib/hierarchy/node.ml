type t = string list

let of_list = function
  | [] -> invalid_arg "Node.of_list: empty cluster"
  | ss -> List.sort_uniq String.compare ss

let singleton s = [ s ]
let strings t = t
let mem s t = List.mem s t
let cardinal = List.length
let union a b = List.sort_uniq String.compare (a @ b)

let subset a b = List.for_all (fun s -> List.mem s b) a

let representative = function
  | s :: _ -> s
  | [] -> assert false (* excluded by the smart constructors *)

let compare = compare
let equal a b = compare a b = 0

let pp ppf t =
  match t with
  | [ s ] -> Format.pp_print_string ppf s
  | ss ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        ss

let to_string t = Format.asprintf "%a" pp t
