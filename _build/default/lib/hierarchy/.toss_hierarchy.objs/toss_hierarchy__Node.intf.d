lib/hierarchy/node.mli: Format
