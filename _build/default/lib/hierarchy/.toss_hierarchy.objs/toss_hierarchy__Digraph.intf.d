lib/hierarchy/digraph.mli: Format Map Set
