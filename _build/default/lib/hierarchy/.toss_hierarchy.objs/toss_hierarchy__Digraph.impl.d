lib/hierarchy/digraph.ml: Array Format Hashtbl List Map Option Queue Set
