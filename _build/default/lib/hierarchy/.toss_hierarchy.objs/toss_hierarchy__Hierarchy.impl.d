lib/hierarchy/hierarchy.ml: Buffer Digraph Format Hashtbl List Map Node Option Printf String
