lib/hierarchy/node.ml: Format List String
