lib/hierarchy/hierarchy.mli: Digraph Format Node
