module type VERTEX = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module type S = sig
  type vertex
  type t

  module Vset : Set.S with type elt = vertex
  module Vmap : Map.S with type key = vertex

  val empty : t
  val is_empty : t -> bool
  val add_vertex : vertex -> t -> t
  val add_edge : vertex -> vertex -> t -> t
  val remove_edge : vertex -> vertex -> t -> t
  val remove_vertex : vertex -> t -> t
  val mem_vertex : vertex -> t -> bool
  val mem_edge : vertex -> vertex -> t -> bool
  val vertices : t -> vertex list
  val edges : t -> (vertex * vertex) list
  val succs : vertex -> t -> Vset.t
  val preds : vertex -> t -> Vset.t
  val out_degree : vertex -> t -> int
  val in_degree : vertex -> t -> int
  val n_vertices : t -> int
  val n_edges : t -> int
  val of_edges : (vertex * vertex) list -> t
  val fold_vertices : (vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val fold_edges : (vertex -> vertex -> 'a -> 'a) -> t -> 'a -> 'a
  val map_vertices : (vertex -> vertex) -> t -> t
  val reachable : vertex -> t -> Vset.t
  val has_path : vertex -> vertex -> t -> bool
  val is_acyclic : t -> bool
  val topological_sort : t -> vertex list option
  val scc : t -> vertex list list
  val condensation : t -> vertex list list * (vertex * vertex) list
  val transitive_closure : t -> t
  val transitive_reduction : t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (V : VERTEX) : S with type vertex = V.t = struct
  type vertex = V.t

  module Vset = Set.Make (V)
  module Vmap = Map.Make (V)

  (* Invariant: every vertex appearing in an adjacency set of [succ] or
     [pred] is also a key of both maps; [pred] mirrors [succ] exactly. *)
  type t = { succ : Vset.t Vmap.t; pred : Vset.t Vmap.t }

  let empty = { succ = Vmap.empty; pred = Vmap.empty }
  let is_empty g = Vmap.is_empty g.succ

  let adjacency v m = match Vmap.find_opt v m with Some s -> s | None -> Vset.empty

  let add_vertex v g =
    if Vmap.mem v g.succ then g
    else { succ = Vmap.add v Vset.empty g.succ; pred = Vmap.add v Vset.empty g.pred }

  let add_edge u v g =
    let g = add_vertex u (add_vertex v g) in
    {
      succ = Vmap.add u (Vset.add v (adjacency u g.succ)) g.succ;
      pred = Vmap.add v (Vset.add u (adjacency v g.pred)) g.pred;
    }

  let remove_edge u v g =
    {
      succ = Vmap.update u (Option.map (Vset.remove v)) g.succ;
      pred = Vmap.update v (Option.map (Vset.remove u)) g.pred;
    }

  let remove_vertex v g =
    let drop m = Vmap.map (Vset.remove v) (Vmap.remove v m) in
    { succ = drop g.succ; pred = drop g.pred }

  let mem_vertex v g = Vmap.mem v g.succ
  let mem_edge u v g = Vset.mem v (adjacency u g.succ)
  let vertices g = List.map fst (Vmap.bindings g.succ)

  let edges g =
    Vmap.fold (fun u vs acc -> Vset.fold (fun v acc -> (u, v) :: acc) vs acc) g.succ []
    |> List.rev

  let succs v g = adjacency v g.succ
  let preds v g = adjacency v g.pred
  let out_degree v g = Vset.cardinal (succs v g)
  let in_degree v g = Vset.cardinal (preds v g)
  let n_vertices g = Vmap.cardinal g.succ
  let n_edges g = Vmap.fold (fun _ vs n -> n + Vset.cardinal vs) g.succ 0
  let of_edges pairs = List.fold_left (fun g (u, v) -> add_edge u v g) empty pairs
  let fold_vertices f g acc = Vmap.fold (fun v _ acc -> f v acc) g.succ acc
  let fold_edges f g acc = List.fold_left (fun acc (u, v) -> f u v acc) acc (edges g)

  let map_vertices f g =
    let g' = fold_vertices (fun v acc -> add_vertex (f v) acc) g empty in
    fold_edges (fun u v acc -> add_edge (f u) (f v) acc) g g'

  let reachable start g =
    if not (mem_vertex start g) then Vset.empty
    else
      let rec visit seen v =
        if Vset.mem v seen then seen
        else Vset.fold (fun w seen -> visit seen w) (succs v g) (Vset.add v seen)
      in
      visit Vset.empty start

  let has_path u v g = Vset.mem v (reachable u g)

  (* Kahn's algorithm; also used as the acyclicity test. *)
  let topological_sort g =
    let in_deg = ref (Vmap.map Vset.cardinal g.pred) in
    let queue = Queue.create () in
    Vmap.iter (fun v d -> if d = 0 then Queue.add v queue) !in_deg;
    let order = ref [] in
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr count;
      order := v :: !order;
      Vset.iter
        (fun w ->
          let d = Vmap.find w !in_deg - 1 in
          in_deg := Vmap.add w d !in_deg;
          if d = 0 then Queue.add w queue)
        (succs v g)
    done;
    if !count = n_vertices g then Some (List.rev !order) else None

  let is_acyclic g = Option.is_some (topological_sort g)

  let scc g =
    (* Tarjan's algorithm. *)
    let index = ref 0 in
    let stack = ref [] in
    let components = ref [] in
    let idx = ref Vmap.empty in
    let low = ref Vmap.empty in
    let onstk = ref Vset.empty in
    let rec strongconnect v =
      idx := Vmap.add v !index !idx;
      low := Vmap.add v !index !low;
      incr index;
      stack := v :: !stack;
      onstk := Vset.add v !onstk;
      Vset.iter
        (fun w ->
          match Vmap.find_opt w !idx with
          | None ->
              strongconnect w;
              low := Vmap.add v (min (Vmap.find v !low) (Vmap.find w !low)) !low
          | Some wi ->
              if Vset.mem w !onstk then
                low := Vmap.add v (min (Vmap.find v !low) wi) !low)
        (succs v g);
      if Vmap.find v !low = Vmap.find v !idx then begin
        let rec pop acc =
          match !stack with
          | [] -> acc
          | w :: rest ->
              stack := rest;
              onstk := Vset.remove w !onstk;
              if V.compare w v = 0 then w :: acc else pop (w :: acc)
        in
        components := pop [] :: !components
      end
    in
    List.iter (fun v -> if not (Vmap.mem v !idx) then strongconnect v) (vertices g);
    List.rev !components

  let condensation g =
    let comps = scc g in
    let comp_of = ref Vmap.empty in
    List.iteri (fun i comp -> List.iter (fun v -> comp_of := Vmap.add v i !comp_of) comp) comps;
    let comp_arr = Array.of_list comps in
    let seen = Hashtbl.create 97 in
    let inter_edges =
      fold_edges
        (fun u v acc ->
          let cu = Vmap.find u !comp_of and cv = Vmap.find v !comp_of in
          if cu = cv || Hashtbl.mem seen (cu, cv) then acc
          else begin
            Hashtbl.add seen (cu, cv) ();
            (List.hd comp_arr.(cu), List.hd comp_arr.(cv)) :: acc
          end)
        g []
    in
    (comps, inter_edges)

  let transitive_closure g =
    fold_vertices
      (fun v acc ->
        Vset.fold
          (fun w acc -> if V.compare v w = 0 then acc else add_edge v w acc)
          (reachable v g) acc)
      g g

  let transitive_reduction g =
    if not (is_acyclic g) then
      invalid_arg "Digraph.transitive_reduction: graph has a cycle";
    (* An edge (u, v) is redundant iff some other successor of u reaches v. *)
    let reach = fold_vertices (fun v acc -> Vmap.add v (reachable v g) acc) g Vmap.empty in
    fold_edges
      (fun u v acc ->
        let redundant =
          Vset.exists
            (fun w -> V.compare w v <> 0 && Vset.mem v (Vmap.find w reach))
            (succs u g)
        in
        if redundant then remove_edge u v acc else acc)
      g g

  let pp ppf g =
    Format.fprintf ppf "@[<v>";
    Vmap.iter
      (fun u vs ->
        Format.fprintf ppf "@[%a ->" V.pp u;
        Vset.iter (fun v -> Format.fprintf ppf " %a" V.pp v) vs;
        Format.fprintf ppf "@]@,")
      g.succ;
    Format.fprintf ppf "@]"
end
