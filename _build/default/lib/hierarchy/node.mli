(** Hierarchy nodes: non-empty clusters of terms.

    A node of an ordinary hierarchy holds a single term. Fusing hierarchies
    merges equated terms into one node, and similarity enhancement (the SEA
    algorithm) merges mutually similar terms, so in general a node carries a
    set of strings. Nodes are kept in a canonical form (sorted, without
    duplicates) so that structural equality coincides with set equality. *)

type t = private string list

val of_list : string list -> t
(** Canonicalizes (sorts, dedups).
    @raise Invalid_argument on the empty list. *)

val singleton : string -> t
val strings : t -> string list
val mem : string -> t -> bool
val cardinal : t -> int
val union : t -> t -> t
val subset : t -> t -> bool
val representative : t -> string
(** The least term of the cluster; stable across equal nodes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
