module G = Digraph.Make (Node)
module Smap = Map.Make (String)

(* [index] maps each term to the nodes containing it; it is derived data
   kept in sync with the graph by the constructors below. *)
type t = { graph : G.t; index : Node.t list Smap.t }

let empty = { graph = G.empty; index = Smap.empty }
let is_empty t = G.is_empty t.graph

let index_node node index =
  List.fold_left
    (fun index s ->
      let present = Option.value ~default:[] (Smap.find_opt s index) in
      if List.exists (Node.equal node) present then index
      else Smap.add s (node :: present) index)
    index (Node.strings node)

let add_node node t =
  if G.mem_vertex node t.graph then t
  else { graph = G.add_vertex node t.graph; index = index_node node t.index }

let nodes_of term t = Option.value ~default:[] (Smap.find_opt term t.index)

let node_of term t =
  match nodes_of term t with
  | [] -> None
  | [ n ] -> Some n
  | _ -> invalid_arg ("Hierarchy.node_of: ambiguous term " ^ term)

let add_term term t =
  match nodes_of term t with [] -> add_node (Node.singleton term) t | _ -> t

let add_edge u v t =
  let t = add_node u (add_node v t) in
  { t with graph = G.add_edge u v t.graph }

let resolve term t =
  match nodes_of term t with
  | [] -> Node.singleton term
  | n :: _ -> n

let add_leq ~lower ~upper t =
  let lo = resolve lower t in
  let hi = resolve upper t in
  add_edge lo hi t

let nodes t = G.vertices t.graph
let edges t = G.edges t.graph
let terms t = List.map fst (Smap.bindings t.index)
let n_nodes t = G.n_vertices t.graph
let n_edges t = G.n_edges t.graph
let mem_term term t = Smap.mem term t.index
let graph t = t.graph

let of_graph graph =
  let index = G.fold_vertices index_node graph Smap.empty in
  { graph; index }

let node_leq t a b = G.has_path a b t.graph

let leq t a b =
  List.exists
    (fun na -> List.exists (fun nb -> node_leq t na nb) (nodes_of b t))
    (nodes_of a t)

let below term t =
  let targets = nodes_of term t in
  G.fold_vertices
    (fun v acc ->
      if List.exists (fun n -> G.has_path v n t.graph) targets then
        Node.strings v @ acc
      else acc)
    t.graph []
  |> List.sort_uniq String.compare

let above term t =
  List.concat_map
    (fun n -> G.Vset.fold (fun v acc -> Node.strings v @ acc) (G.reachable n t.graph) [])
    (nodes_of term t)
  |> List.sort_uniq String.compare

let upper_bounds t a b =
  let ups term =
    List.fold_left
      (fun acc n -> G.Vset.union acc (G.reachable n t.graph))
      G.Vset.empty (nodes_of term t)
  in
  let common = G.Vset.inter (ups a) (ups b) in
  (* Keep the minimal elements: those with no other common upper bound
     strictly below them. *)
  G.Vset.elements common
  |> List.filter (fun n ->
         not
           (G.Vset.exists
              (fun m -> (not (Node.equal m n)) && G.has_path m n t.graph)
              common))

let least_upper_bound t a b =
  match upper_bounds t a b with [ n ] -> Some n | _ -> None

let roots t = List.filter (fun n -> G.Vset.is_empty (G.succs n t.graph)) (nodes t)
let leaves t = List.filter (fun n -> G.Vset.is_empty (G.preds n t.graph)) (nodes t)

let lower_bounds t a b =
  let downs term =
    let targets = nodes_of term t in
    G.fold_vertices
      (fun v acc ->
        if List.exists (fun n -> G.has_path v n t.graph) targets then G.Vset.add v acc
        else acc)
      t.graph G.Vset.empty
  in
  let common = G.Vset.inter (downs a) (downs b) in
  (* Keep the maximal elements: those not strictly below another common
     lower bound. *)
  G.Vset.elements common
  |> List.filter (fun n ->
         not
           (G.Vset.exists
              (fun m -> (not (Node.equal m n)) && G.has_path n m t.graph)
              common))

let greatest_lower_bound t a b =
  match lower_bounds t a b with [ n ] -> Some n | _ -> None

let merge_terms a b t =
  let t = add_term a (add_term b t) in
  let na = resolve a t and nb = resolve b t in
  if Node.equal na nb then t
  else begin
    let merged = Node.union na nb in
    let graph =
      G.map_vertices
        (fun v -> if Node.equal v na || Node.equal v nb then merged else v)
        t.graph
    in
    (* map_vertices can leave a self-loop when na and nb were adjacent. *)
    let graph = G.remove_edge merged merged graph in
    of_graph graph
  end

let remove_term term t =
  match nodes_of term t with
  | [] -> t
  | nodes ->
      let graph =
        List.fold_left
          (fun graph node ->
            match Node.strings node with
            | [ _ ] ->
                (* Singleton: bridge predecessors to successors. *)
                let preds = G.preds node graph and succs = G.succs node graph in
                let graph = G.remove_vertex node graph in
                G.Vset.fold
                  (fun p graph ->
                    G.Vset.fold (fun s graph -> G.add_edge p s graph) succs graph)
                  preds graph
            | members ->
                let shrunk = Node.of_list (List.filter (( <> ) term) members) in
                G.map_vertices
                  (fun v -> if Node.equal v node then shrunk else v)
                  graph)
          t.graph nodes
      in
      of_graph graph

let depth t node =
  if not (G.mem_vertex node t.graph) then
    invalid_arg "Hierarchy.depth: unknown node";
  match G.topological_sort t.graph with
  | None -> invalid_arg "Hierarchy.depth: cyclic diagram"
  | Some order ->
      (* Edges point upward, so depth(n) = 1 + max over successors. *)
      let depths = Hashtbl.create 32 in
      List.iter
        (fun v ->
          let d =
            G.Vset.fold
              (fun succ acc -> max acc (1 + Hashtbl.find depths succ))
              (G.succs v t.graph) 0
          in
          Hashtbl.replace depths v d)
        (List.rev order);
      Hashtbl.find depths node

let to_dot ?(name = "hierarchy") t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=BT;\n  node [shape=box];\n" name);
  let id_of = Hashtbl.create 32 in
  List.iteri
    (fun i node ->
      Hashtbl.replace id_of (Node.to_string node) i;
      let label =
        String.concat "\\n" (Node.strings node)
        |> String.map (fun c -> if c = '"' then '\'' else c)
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" i label))
    (nodes t);
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d;\n"
           (Hashtbl.find id_of (Node.to_string u))
           (Hashtbl.find id_of (Node.to_string v))))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let normalize t =
  try { t with graph = G.transitive_reduction t.graph }
  with Invalid_argument _ -> invalid_arg "Hierarchy.normalize: cyclic diagram"

let is_consistent t = G.is_acyclic t.graph

let of_pairs pairs =
  let t =
    List.fold_left (fun t (lower, upper) -> add_leq ~lower ~upper t) empty pairs
  in
  if not (is_consistent t) then invalid_arg "Hierarchy.of_pairs: cyclic ordering";
  normalize t

let equal a b =
  let sorted_nodes t = List.sort Node.compare (nodes t) in
  let sorted_edges t = List.sort compare (edges t) in
  sorted_nodes a = sorted_nodes b && sorted_edges a = sorted_edges b

let pp ppf t =
  Format.fprintf ppf "@[<v>hierarchy (%d nodes, %d edges)@,%a@]" (n_nodes t)
    (n_edges t) G.pp t.graph
