type t = {
  name : string;
  strong : bool;
  dist : string -> string -> float;
  within_opt : (eps:float -> string -> string -> bool) option;
}

let v ~name ~strong ?within dist = { name; strong; dist; within_opt = within }
let dist m a b = m.dist a b

let within m ~eps a b =
  match m.within_opt with
  | Some fast -> fast ~eps a b
  | None -> m.dist a b <= eps

let scale factor m =
  if factor <= 0. then invalid_arg "Metric.scale: factor must be positive";
  {
    name = Printf.sprintf "%gx %s" factor m.name;
    strong = m.strong;
    dist = (fun a b -> factor *. m.dist a b);
    within_opt = Option.map (fun fast ~eps -> fast ~eps:(eps /. factor)) m.within_opt;
  }

let cap bound m =
  {
    name = Printf.sprintf "%s (capped at %g)" m.name bound;
    strong = false;
    dist = (fun a b -> Float.min bound (m.dist a b));
    within_opt =
      Some
        (fun ~eps a b ->
          if eps >= bound then true
          else
            match m.within_opt with
            | Some fast -> fast ~eps a b
            | None -> m.dist a b <= eps);
  }

let min_of ~name = function
  | [] -> invalid_arg "Metric.min_of: empty list"
  | ms ->
      {
        name;
        strong = false;
        dist =
          (fun a b -> List.fold_left (fun acc m -> Float.min acc (m.dist a b)) infinity ms);
        within_opt = Some (fun ~eps a b -> List.exists (fun m -> within m ~eps a b) ms);
      }

let max_of ~name = function
  | [] -> invalid_arg "Metric.max_of: empty list"
  | ms ->
      {
        name;
        strong = List.for_all (fun m -> m.strong) ms;
        dist =
          (fun a b -> List.fold_left (fun acc m -> Float.max acc (m.dist a b)) 0. ms);
        within_opt = Some (fun ~eps a b -> List.for_all (fun m -> within m ~eps a b) ms);
      }

let of_similarity ~name sim =
  {
    name;
    strong = false;
    dist = (fun a b -> Float.max 0. (1. -. sim a b));
    within_opt = None;
  }

let pp ppf m =
  Format.fprintf ppf "%s%s" m.name (if m.strong then " (strong)" else "")
