(** Token- and q-gram-based measures (paper reference [5]): Jaccard,
    cosine over term-frequency vectors, q-gram distance. *)

val tokenize : string -> string list
(** Splits on non-alphanumeric characters and lowercases; drops empties. *)

val jaccard : string -> string -> float
(** Jaccard similarity |S ∩ T| / |S ∪ T| over token sets; 1 when both are
    empty. *)

val cosine : string -> string -> float
(** Cosine similarity of term-frequency vectors; 1 when both are empty, 0
    when exactly one is. *)

val qgrams : int -> string -> string list
(** The q-grams of the [#]-padded string, e.g.
    [qgrams 2 "ab" = ["#a"; "ab"; "b#"]]. *)

val qgram_distance : int -> string -> string -> int
(** Size of the symmetric difference of q-gram multisets; a strong measure. *)

val jaccard_metric : Metric.t
val cosine_metric : Metric.t
val qgram_metric : int -> Metric.t
