let initial_cost = 1.25
let skip_cost = 0.75
let typo_unit = 1.1
let concat_cost = 0.1
let mismatch_cost = 6.5

let tokens s = Token.tokenize s

let is_initial t = String.length t = 1

(* Cost of treating two single name tokens as the same name part. *)
let token_cost a b =
  if a = b then 0.
  else if is_initial a && (not (is_initial b)) && a.[0] = b.[0] then initial_cost
  else if is_initial b && (not (is_initial a)) && b.[0] = a.[0] then initial_cost
  else
    let lev = Levenshtein.distance a b in
    if lev <= 2 && min (String.length a) (String.length b) >= 3 then
      typo_unit *. float_of_int lev
    else mismatch_cost

(* Cost of matching token [a] against the concatenation of [bs]. *)
let concat_match a bs =
  match bs with
  | [] | [ _ ] -> None
  | _ -> if String.concat "" bs = a then Some concat_cost else None

(* Sequence alignment over given-name tokens: exact/initial/typo matches,
   skips, and 1-against-2 concatenation merges. A token may only be
   skipped from the side with more remaining tokens (a dropped middle
   name); equal-length remainders must be matched pairwise, so two
   different given names cannot dodge comparison by skipping both. *)
let align_given xs ys =
  let nx = List.length xs and ny = List.length ys in
  let xa = Array.of_list xs and ya = Array.of_list ys in
  let memo = Array.make_matrix (nx + 1) (ny + 1) nan in
  let rec go i j =
    if Float.is_nan memo.(i).(j) then begin
      let v =
        if i = nx && j = ny then 0.
        else if i = nx then (float_of_int (ny - j) *. skip_cost)
        else if j = ny then (float_of_int (nx - i) *. skip_cost)
        else begin
          let best = token_cost xa.(i) ya.(j) +. go (i + 1) (j + 1) in
          let best =
            if nx - i > ny - j then Float.min best (skip_cost +. go (i + 1) j)
            else best
          in
          let best =
            if ny - j > nx - i then Float.min best (skip_cost +. go i (j + 1))
            else best
          in
          let best =
            if i + 1 < nx then begin
              match concat_match ya.(j) [ xa.(i); xa.(i + 1) ] with
              | Some c -> Float.min best (c +. go (i + 2) (j + 1))
              | None -> best
            end
            else best
          in
          let best =
            if j + 1 < ny then begin
              match concat_match xa.(i) [ ya.(j); ya.(j + 1) ] with
              | Some c -> Float.min best (c +. go (i + 1) (j + 2))
              | None -> best
            end
            else best
          in
          best
        end
      in
      memo.(i).(j) <- v
    end;
    memo.(i).(j)
  in
  go 0 0

let surname_cost a b =
  if a = b then Some 0.
  else
    let lev = Levenshtein.distance a b in
    if lev <= 1 && min (String.length a) (String.length b) >= 4 then
      Some (typo_unit *. float_of_int lev)
    else None

let distance x y =
  match (List.rev (tokens x), List.rev (tokens y)) with
  | [], [] -> 0.
  | [], _ | _, [] -> mismatch_cost
  | sx :: gx_rev, sy :: gy_rev -> (
      let gx = List.rev gx_rev and gy = List.rev gy_rev in
      match surname_cost sx sy with
      | Some c ->
          let given = align_given gx gy in
          Float.min (c +. given) mismatch_cost
      | None ->
          (* Different tokenizations of the same full name, e.g. a surname
             glued to a given name: fall back to comparing the whole names
             with spacing removed. *)
          let flat_x = String.concat "" (gx @ [ sx ]) in
          let flat_y = String.concat "" (gy @ [ sy ]) in
          if flat_x = flat_y then concat_cost else mismatch_cost)

let metric = Metric.v ~name:"name-rules" ~strong:false distance
let compatible ~threshold a b = distance a b <= threshold
