(** TF-IDF and Soft-TFIDF similarity (from the toolkit the paper cites as
    reference [5]).

    A corpus assigns each token an inverse-document-frequency weight;
    strings compare by the cosine of their TF-IDF vectors. Soft-TFIDF
    additionally matches tokens that are merely {e close} under a
    secondary similarity (Jaro–Winkler by default), which handles typos
    inside otherwise rare, highly discriminative tokens. *)

type corpus

val corpus_of : string list -> corpus
(** Builds token document frequencies; each string is one document. *)

val n_documents : corpus -> int

val idf : corpus -> string -> float
(** [log (N / (1 + df))], never negative; unseen tokens get the maximum
    weight. *)

val tfidf : corpus -> string -> string -> float
(** Cosine similarity of TF-IDF vectors, in [0, 1]. *)

val soft_tfidf :
  ?inner:(string -> string -> float) ->
  ?threshold:float ->
  corpus ->
  string ->
  string ->
  float
(** Cohen et al.'s Soft-TFIDF: tokens of the first string match their
    best counterpart in the second when the inner similarity exceeds
    [threshold] (default 0.9, inner Jaro–Winkler); matched pairs
    contribute their weights scaled by the inner score. Symmetrized. *)

val metric : corpus -> Metric.t
(** Soft-TFIDF as a distance ([1 - similarity]). *)
