(** The Jaro metric and the Winkler prefix variant (paper reference [9]).

    Both are similarity scores in [0, 1] with 1 meaning identical; the
    corresponding {!Metric.t} values expose them as distances [1 - score]. *)

val jaro : string -> string -> float
val jaro_winkler : ?prefix_scale:float -> string -> string -> float
(** [prefix_scale] defaults to the standard 0.1 and must lie in [0, 0.25]. *)

val metric : Metric.t
val winkler_metric : Metric.t
