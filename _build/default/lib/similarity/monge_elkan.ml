let directed inner ta tb =
  match ta with
  | [] -> if tb = [] then 1. else 0.
  | _ ->
      let best t = List.fold_left (fun acc u -> Float.max acc (inner t u)) 0. tb in
      let sum = List.fold_left (fun acc t -> acc +. best t) 0. ta in
      sum /. float_of_int (List.length ta)

let similarity ?(inner = fun a b -> Jaro.jaro_winkler a b) a b =
  let ta = Token.tokenize a and tb = Token.tokenize b in
  (directed inner ta tb +. directed inner tb ta) /. 2.

let metric = Metric.of_similarity ~name:"monge-elkan" (similarity ?inner:None)
