let jaro a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.
  else if la = 0 || lb = 0 then 0.
  else begin
    let window = max 0 ((max la lb / 2) - 1) in
    let matched_a = Array.make la false in
    let matched_b = Array.make lb false in
    let matches = ref 0 in
    for i = 0 to la - 1 do
      let lo = max 0 (i - window) and hi = min (lb - 1) (i + window) in
      let rec scan j =
        if j > hi then ()
        else if (not matched_b.(j)) && a.[i] = b.[j] then begin
          matched_a.(i) <- true;
          matched_b.(j) <- true;
          incr matches
        end
        else scan (j + 1)
      in
      scan lo
    done;
    if !matches = 0 then 0.
    else begin
      (* Count transpositions between the two matched subsequences. *)
      let transpositions = ref 0 in
      let j = ref 0 in
      for i = 0 to la - 1 do
        if matched_a.(i) then begin
          while not matched_b.(!j) do
            incr j
          done;
          if a.[i] <> b.[!j] then incr transpositions;
          incr j
        end
      done;
      let m = float_of_int !matches in
      let t = float_of_int (!transpositions / 2) in
      ((m /. float_of_int la) +. (m /. float_of_int lb) +. ((m -. t) /. m)) /. 3.
    end
  end

let jaro_winkler ?(prefix_scale = 0.1) a b =
  if prefix_scale < 0. || prefix_scale > 0.25 then
    invalid_arg "Jaro.jaro_winkler: prefix_scale out of [0, 0.25]";
  let j = jaro a b in
  let max_prefix = min 4 (min (String.length a) (String.length b)) in
  let rec common i = if i < max_prefix && a.[i] = b.[i] then common (i + 1) else i in
  let l = float_of_int (common 0) in
  j +. (l *. prefix_scale *. (1. -. j))

let metric = Metric.of_similarity ~name:"jaro" jaro
let winkler_metric = Metric.of_similarity ~name:"jaro-winkler" (jaro_winkler ?prefix_scale:None)
