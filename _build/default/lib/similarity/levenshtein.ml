let distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    (* Keep the shorter string in the inner dimension to bound memory. *)
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let prev = ref (Array.init (la + 1) Fun.id) in
    let curr = ref (Array.make (la + 1) 0) in
    for j = 1 to lb do
      let prev_row = !prev and curr_row = !curr in
      curr_row.(0) <- j;
      let bj = b.[j - 1] in
      for i = 1 to la do
        (* Explicit int comparisons: the polymorphic [min] costs more than
           the rest of the cell update combined. *)
        let subst = prev_row.(i - 1) + (if a.[i - 1] = bj then 0 else 1) in
        let del = prev_row.(i) + 1 in
        let ins = curr_row.(i - 1) + 1 in
        let best = if del < subst then del else subst in
        let best = if ins < best then ins else best in
        curr_row.(i) <- best
      done;
      prev := curr_row;
      curr := prev_row
    done;
    !prev.(la)
  end

let distance_within k a b =
  if k < 0 then None
  else begin
    let la = String.length a and lb = String.length b in
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    if lb - la > k then None
    else begin
      (* Banded DP: cells farther than k from the diagonal can never lead
         to a result <= k, so they are pinned to infinity. *)
      let inf = max_int / 2 in
      let prev = Array.make (la + 1) inf in
      let curr = Array.make (la + 1) inf in
      for i = 0 to min la k do
        prev.(i) <- i
      done;
      for j = 1 to lb do
        let lo = max 1 (j - k) and hi = min la (j + k) in
        Array.fill curr 0 (la + 1) inf;
        if j <= k then curr.(0) <- j;
        let bj = b.[j - 1] in
        for i = lo to hi do
          let cost = if a.[i - 1] = bj then 0 else 1 in
          let best = prev.(i - 1) + cost in
          let best = if i >= 1 && curr.(i - 1) + 1 < best then curr.(i - 1) + 1 else best in
          let best = if prev.(i) + 1 < best then prev.(i) + 1 else best in
          curr.(i) <- best
        done;
        Array.blit curr 0 prev 0 (la + 1)
      done;
      if prev.(la) <= k then Some prev.(la) else None
    end
  end

let damerau_distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let d = Array.make_matrix (la + 1) (lb + 1) 0 in
    for i = 0 to la do
      d.(i).(0) <- i
    done;
    for j = 0 to lb do
      d.(0).(j) <- j
    done;
    for i = 1 to la do
      for j = 1 to lb do
        let subst = d.(i - 1).(j - 1) + (if a.[i - 1] = b.[j - 1] then 0 else 1) in
        let del = d.(i - 1).(j) + 1 in
        let ins = d.(i).(j - 1) + 1 in
        let best = if del < subst then del else subst in
        let best = if ins < best then ins else best in
        let best =
          if i > 1 && j > 1 && a.[i - 1] = b.[j - 2] && a.[i - 2] = b.[j - 1] then begin
            let transpose = d.(i - 2).(j - 2) + 1 in
            if transpose < best then transpose else best
          end
          else best
        in
        d.(i).(j) <- best
      done
    done;
    d.(la).(lb)
  end

let within_banded ~eps a b =
  eps >= 0. && distance_within (int_of_float eps) a b <> None

let metric =
  Metric.v ~name:"levenshtein" ~strong:true ~within:within_banded (fun a b ->
      float_of_int (distance a b))

let damerau_metric =
  Metric.v ~name:"damerau-levenshtein" ~strong:true (fun a b ->
      float_of_int (damerau_distance a b))

let normalized_metric =
  Metric.v ~name:"normalized levenshtein" ~strong:false (fun a b ->
      let l = max (String.length a) (String.length b) in
      if l = 0 then 0. else float_of_int (distance a b) /. float_of_int l)
