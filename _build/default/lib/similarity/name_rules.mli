(** Rule-based similarity for person names.

    The paper (Sections 1 and 4.3) motivates rule-based measures for proper
    nouns: WordNet-style lexical resources cannot relate "J. Ullman",
    "J.D. Ullman" and "Jeffrey D. Ullman". This measure encodes the domain
    rules for bibliographic author names and is calibrated to the paper's
    running examples:

    - [d "Gian Luigi Ferrari" "GianLuigi Ferrari" = 0.1] (concatenation),
    - [d "Marco Ferrari" "Mauro Ferrari" = 2.2] (near-typo given names),
    - [d "Marco Ferrari" "GianLuigi Ferrari" > 6] (different people).

    Costs: matching an initial against a full given name costs 1.25, a
    dropped middle name 0.75, a typo 1.1 per edit (up to 2 edits), a token
    concatenation split 0.1; incompatible tokens cost 6.5. The initial
    cost places fully-initialized two-given-token renderings
    ("J. D. Ullman" vs "Jeffrey David Ullman", 2.5) just beyond a
    threshold of 2 but within 3 — the gradient behind the paper's
    ε = 2 / ε = 3 recall difference. *)

val distance : string -> string -> float
val metric : Metric.t

val compatible : threshold:float -> string -> string -> bool
(** [distance a b <= threshold]. *)
