let abbrev_cost = 0.5
let typo_unit = 1.1
let mismatch_cost = 5.0

(* Dropping a whole token is almost as bad as a mismatch: "web conference"
   must NOT come out close to "conference", or the similarity enhancement
   of any isa hierarchy containing both becomes cyclic (similarity
   inconsistent). Abbreviations keep the token count, so this does not
   penalize the proceedings-page renderings. *)
let skip_cost = 3.5

(* Tokenize keeping the trailing '.' marker meaningful: "eff." abbreviates
   "efficient". The generic tokenizer drops punctuation, so detect
   abbreviations by prefix relation on the alphanumeric token instead. *)
let is_abbreviation ~short ~long =
  short <> long
  && String.length short >= 2
  && String.length short < String.length long
  && String.sub long 0 (String.length short) = short

let token_cost a b =
  if a = b then 0.
  else if is_abbreviation ~short:a ~long:b || is_abbreviation ~short:b ~long:a then
    abbrev_cost
  else
    let lev = Levenshtein.distance a b in
    if lev <= 2 && min (String.length a) (String.length b) >= 3 then
      typo_unit *. float_of_int lev
    else mismatch_cost

(* Token alignment DP; [cutoff] aborts with infinity as soon as a full DP
   row exceeds it (distances only grow along rows), which makes threshold
   tests on clearly-different phrases cheap. *)
let alignment ?cutoff x y =
  let xs = Array.of_list (Token.tokenize x) in
  let ys = Array.of_list (Token.tokenize y) in
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 && ny = 0 then 0.
  else begin
    match cutoff with
    | Some c when Float.abs (float_of_int (nx - ny)) *. skip_cost > c -> infinity
    | _ ->
        let d = Array.make_matrix (nx + 1) (ny + 1) 0. in
        for i = 1 to nx do
          d.(i).(0) <- float_of_int i *. skip_cost
        done;
        for j = 1 to ny do
          d.(0).(j) <- float_of_int j *. skip_cost
        done;
        let result = ref None in
        let i = ref 1 in
        while !result = None && !i <= nx do
          (* The row minimum must include column 0, which later rows also
             build on. *)
          let row_min = ref d.(!i).(0) in
          for j = 1 to ny do
            let subst = d.(!i - 1).(j - 1) +. token_cost xs.(!i - 1) ys.(j - 1) in
            let del = d.(!i - 1).(j) +. skip_cost in
            let ins = d.(!i).(j - 1) +. skip_cost in
            let best = Float.min subst (Float.min del ins) in
            d.(!i).(j) <- best;
            if best < !row_min then row_min := best
          done;
          (match cutoff with
          | Some c when !row_min > c -> result := Some infinity
          | _ -> ());
          incr i
        done;
        (match !result with Some r -> r | None -> d.(nx).(ny))
  end

let distance x y = alignment x y

let within ~eps x y = alignment ~cutoff:eps x y <= eps

let metric = Metric.v ~name:"text-rules" ~strong:false ~within distance
