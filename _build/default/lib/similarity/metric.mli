(** String similarity measures (Definition 7 of the paper).

    A string similarity measure [d_s] maps two strings to a non-negative
    real with [d_s x x = 0] and [d_s x y = d_s y x]; smaller means more
    similar. A measure is {e strong} when it also satisfies the triangle
    inequality. The TOSS framework is parametric in the measure: anything
    of type {!t} can be plugged into the SEA algorithm and the [~]
    (similarTo) predicate. *)

type t = {
  name : string;
  strong : bool;  (** triangle inequality holds *)
  dist : string -> string -> float;
  within_opt : (eps:float -> string -> string -> bool) option;
      (** optional threshold-test fast path; must agree with
          [dist x y <= eps] *)
}

val v :
  name:string ->
  strong:bool ->
  ?within:(eps:float -> string -> string -> bool) ->
  (string -> string -> float) ->
  t

val dist : t -> string -> string -> float

val within : t -> eps:float -> string -> string -> bool
(** [dist t x y <= eps], via the fast path when one is registered. The
    SEA algorithm's pairwise clustering and the executor's similarity
    fallback call this in tight loops. *)

val scale : float -> t -> t
(** Multiplies every distance by a positive factor (preserves strength). *)

val cap : float -> t -> t
(** Clamps distances to a maximum. Capping preserves symmetry and identity
    but not, in general, the triangle inequality, so the result is marked
    non-strong. *)

val min_of : name:string -> t list -> t
(** Pointwise minimum of several measures. Not strong in general. *)

val max_of : name:string -> t list -> t
(** Pointwise maximum; strong when all components are strong. *)

val of_similarity : name:string -> (string -> string -> float) -> t
(** Wraps a similarity score in [0, 1] (1 = identical) as the distance
    [1 - sim]. Not marked strong. *)

val pp : Format.formatter -> t -> unit
