(** Maximal-clique enumeration (Bron–Kerbosch with pivoting).

    The SEA algorithm's similarity-enhanced nodes are exactly the maximal
    pairwise-similar clusters of hierarchy nodes, i.e. the maximal cliques
    of the ε-similarity graph (Definition 8, conditions 2–4). *)

val maximal_cliques : n:int -> adjacent:(int -> int -> bool) -> int list list
(** [maximal_cliques ~n ~adjacent] enumerates the maximal cliques of the
    undirected graph on vertices [0 .. n-1]. [adjacent] must be symmetric
    and irreflexive; it is queried O(n^2) times up front to build adjacency
    sets. Isolated vertices are returned as singleton cliques. Each clique
    is sorted ascending; the clique list order is unspecified. *)

val maximal_cliques_of_edges : n:int -> (int * int) list -> int list list
