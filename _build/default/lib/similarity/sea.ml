module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy
module G = Hierarchy.G
module Nmap = Map.Make (Node)

type lift = Existential | Universal

type t = {
  hierarchy : Hierarchy.t;
  mu : (Node.t * Node.t list) list;
  eps : float;
  metric : Metric.t;
}

(* The enhanced node induced by a clique of original nodes. *)
let cluster_of original_nodes clique =
  List.fold_left
    (fun acc i -> Node.union acc original_nodes.(i))
    original_nodes.(List.hd clique) (List.tl clique)

let build ?(lift = Existential) ~metric ~eps h =
  if eps < 0. then invalid_arg "Sea.enhance: negative threshold";
  let original = Array.of_list (Hierarchy.nodes h) in
  let n = Array.length original in
  let adjacent i j = Node_dist.within metric ~eps original.(i) original.(j) in
  let cliques = Clique.maximal_cliques ~n ~adjacent in
  let clusters = List.map (fun c -> (c, cluster_of original c)) cliques in
  (* μ: original node index -> enhanced nodes containing it. *)
  let mu_tbl = Array.make (max n 1) [] in
  List.iter
    (fun (clique, node) -> List.iter (fun i -> mu_tbl.(i) <- node :: mu_tbl.(i)) clique)
    clusters;
  let mu =
    List.init n (fun i -> (original.(i), List.sort_uniq Node.compare mu_tbl.(i)))
  in
  (* Lift the ordering of H onto the enhanced nodes. *)
  let base = List.fold_left (fun g (_, node) -> G.add_vertex node g) G.empty clusters in
  let graph =
    match lift with
    | Existential ->
        (* An enhanced edge for every Hasse edge of H between any images. *)
        let images_of =
          let index = ref Nmap.empty in
          Array.iteri (fun i o -> index := Nmap.add o mu_tbl.(i) !index) original;
          fun node -> Option.value ~default:[] (Nmap.find_opt node !index)
        in
        List.fold_left
          (fun g (a, b) ->
            List.fold_left
              (fun g a' ->
                List.fold_left
                  (fun g b' -> if Node.equal a' b' then g else G.add_edge a' b' g)
                  g (images_of b))
              g (images_of a))
          base (Hierarchy.edges h)
    | Universal ->
        (* Edge V -> W iff every member pair is ordered in H. Candidates
           are restricted to pairs connected by at least one Hasse edge. *)
        let member_sets =
          List.map (fun (clique, node) -> (node, List.map (fun i -> original.(i)) clique)) clusters
        in
        let hg = Hierarchy.graph h in
        let all_ordered ms ns =
          List.for_all (fun a -> List.for_all (fun b -> G.has_path a b hg) ns) ms
        in
        List.fold_left
          (fun g (v, ms) ->
            List.fold_left
              (fun g (w, ns) ->
                if Node.equal v w then g
                else if
                  List.exists
                    (fun a -> List.exists (fun b -> G.mem_edge a b hg) ns)
                    ms
                  && all_ordered ms ns
                then G.add_edge v w g
                else g)
              g member_sets)
          base member_sets
  in
  (cliques, mu, graph)

let enhance ?lift ~metric ~eps h =
  let _, mu, graph = build ?lift ~metric ~eps h in
  if not (G.is_acyclic graph) then None
  else
    let hierarchy = Hierarchy.normalize (Hierarchy.of_graph graph) in
    Some { hierarchy; mu; eps; metric }

let enhance_exn ?lift ~metric ~eps h =
  match enhance ?lift ~metric ~eps h with
  | Some t -> t
  | None ->
      failwith
        (Printf.sprintf "Sea.enhance_exn: (H, %s, %g) is similarity inconsistent"
           metric.Metric.name eps)

let is_consistent ?lift ~metric ~eps h = Option.is_some (enhance ?lift ~metric ~eps h)

let mu_of t node =
  match List.find_opt (fun (o, _) -> Node.equal o node) t.mu with
  | Some (_, images) -> images
  | None -> []

let clusters t = Hierarchy.nodes t.hierarchy

(* The enhanced hierarchy's term index gives the clusters containing a
   term directly, so co-residence costs O(clusters containing x) rather
   than a scan of every cluster. *)
let similar t x y =
  List.exists (Node.mem y) (Hierarchy.nodes_of x t.hierarchy)

let similar_terms t x =
  List.concat_map Node.strings (Hierarchy.nodes_of x t.hierarchy)
  |> List.sort_uniq String.compare

let check ~original t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let enhanced = clusters t in
  let originals = Hierarchy.nodes original in
  (* Condition 2: pairwise similarity inside each enhanced node, at the
     granularity of the original nodes it merges. *)
  List.iter
    (fun v ->
      let members = List.filter (fun o -> Node.subset o v) originals in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if not (Node_dist.within t.metric ~eps:t.eps a b) then
                err "condition 2: %a and %a share %a but d > %g" Node.pp a Node.pp b
                  Node.pp v t.eps)
            members)
        members)
    enhanced;
  (* Condition 3: every similar pair shares an enhanced node. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Node_dist.within t.metric ~eps:t.eps a b then begin
            let ia = mu_of t a and ib = mu_of t b in
            let shares =
              List.exists (fun x -> List.exists (Node.equal x) ib) ia
            in
            if not shares then
              err "condition 3: d(%a, %a) <= %g but no shared image" Node.pp a Node.pp
                b t.eps
          end)
        originals)
    originals;
  (* Condition 4: no enhanced node strictly contains another. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if (not (Node.equal a b)) && Node.subset a b then
            err "condition 4: %a subset of %a" Node.pp a Node.pp b)
        enhanced)
    enhanced;
  if not (Hierarchy.is_consistent t.hierarchy) then err "acyclicity violated";
  match !errors with [] -> Ok () | es -> Error (List.rev es)
