(** Distance between hierarchy nodes (clusters of strings).

    Per the paper, [d(A, B) = min] over the string pairs drawn from the two
    clusters. Lemma 1 shows that for a strong measure any single pair gives
    the same value (because co-clustered strings are at distance 0); in
    general the clusters produced by ontology fusion contain strings merged
    by interoperation constraints rather than by similarity, so we always
    take the true minimum but short-circuit threshold tests. *)

val distance : Metric.t -> Toss_hierarchy.Node.t -> Toss_hierarchy.Node.t -> float

val within : Metric.t -> eps:float -> Toss_hierarchy.Node.t -> Toss_hierarchy.Node.t -> bool
(** [within m ~eps a b] iff [distance m a b <= eps]; stops at the first
    string pair within the threshold. *)
