module Iset = Set.Make (Int)

let bron_kerbosch neighbours n =
  let cliques = ref [] in
  (* Bron–Kerbosch with a max-degree pivot: report R as maximal when both
     the candidate set P and the excluded set X are empty. *)
  let rec expand r p x =
    if Iset.is_empty p && Iset.is_empty x then cliques := Iset.elements r :: !cliques
    else begin
      let pivot =
        let candidates = Iset.union p x in
        Iset.fold
          (fun v (best, best_deg) ->
            let deg = Iset.cardinal (Iset.inter neighbours.(v) p) in
            if deg > best_deg then (v, deg) else (best, best_deg))
          candidates
          (Iset.min_elt candidates, -1)
        |> fst
      in
      let without_pivot = Iset.diff p neighbours.(pivot) in
      ignore
        (Iset.fold
           (fun v (p, x) ->
             expand (Iset.add v r) (Iset.inter p neighbours.(v)) (Iset.inter x neighbours.(v));
             (Iset.remove v p, Iset.add v x))
           without_pivot (p, x))
    end
  in
  let all = Iset.of_list (List.init n Fun.id) in
  if n > 0 then expand Iset.empty all Iset.empty;
  !cliques

let maximal_cliques ~n ~adjacent =
  if n < 0 then invalid_arg "Clique.maximal_cliques: negative n";
  let neighbours = Array.make (max n 1) Iset.empty in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if adjacent i j then begin
        neighbours.(i) <- Iset.add j neighbours.(i);
        neighbours.(j) <- Iset.add i neighbours.(j)
      end
    done
  done;
  bron_kerbosch neighbours n

let maximal_cliques_of_edges ~n edges =
  let neighbours = Array.make (max n 1) Iset.empty in
  List.iter
    (fun (i, j) ->
      if i <> j then begin
        neighbours.(i) <- Iset.add j neighbours.(i);
        neighbours.(j) <- Iset.add i neighbours.(j)
      end)
    edges;
  bron_kerbosch neighbours n
