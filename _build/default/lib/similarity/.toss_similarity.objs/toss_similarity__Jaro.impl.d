lib/similarity/jaro.ml: Array Metric String
