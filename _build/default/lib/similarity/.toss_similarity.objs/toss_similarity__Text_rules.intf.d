lib/similarity/text_rules.mli: Metric
