lib/similarity/levenshtein.mli: Metric
