lib/similarity/metric.mli: Format
