lib/similarity/sea.mli: Metric Toss_hierarchy
