lib/similarity/levenshtein.ml: Array Fun Metric String
