lib/similarity/text_rules.ml: Array Float Levenshtein Metric String Token
