lib/similarity/token.mli: Metric
