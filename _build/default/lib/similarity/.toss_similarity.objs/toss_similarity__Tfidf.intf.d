lib/similarity/tfidf.mli: Metric
