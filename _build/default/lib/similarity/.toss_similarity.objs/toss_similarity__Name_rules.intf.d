lib/similarity/name_rules.mli: Metric
