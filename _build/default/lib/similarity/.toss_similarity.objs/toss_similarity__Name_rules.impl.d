lib/similarity/name_rules.ml: Array Float Levenshtein List Metric String Token
