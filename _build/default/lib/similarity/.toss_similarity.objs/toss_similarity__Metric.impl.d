lib/similarity/metric.ml: Float Format List Option Printf
