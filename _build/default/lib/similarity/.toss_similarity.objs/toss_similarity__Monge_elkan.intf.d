lib/similarity/monge_elkan.mli: Metric
