lib/similarity/token.ml: Buffer List Map Metric Option Printf Set String
