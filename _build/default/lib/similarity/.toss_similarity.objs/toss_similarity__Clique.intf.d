lib/similarity/clique.mli:
