lib/similarity/clique.ml: Array Fun Int List Set
