lib/similarity/node_dist.ml: Float List Metric Toss_hierarchy
