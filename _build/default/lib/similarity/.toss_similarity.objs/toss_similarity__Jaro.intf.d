lib/similarity/jaro.mli: Metric
