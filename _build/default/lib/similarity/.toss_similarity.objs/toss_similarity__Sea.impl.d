lib/similarity/sea.ml: Array Clique Format List Map Metric Node_dist Option Printf String Toss_hierarchy
