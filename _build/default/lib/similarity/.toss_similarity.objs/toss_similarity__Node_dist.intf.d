lib/similarity/node_dist.mli: Metric Toss_hierarchy
