lib/similarity/tfidf.ml: Float Jaro List Map Metric Option String Token
