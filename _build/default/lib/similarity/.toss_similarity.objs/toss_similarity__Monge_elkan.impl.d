lib/similarity/monge_elkan.ml: Float Jaro List Metric Token
