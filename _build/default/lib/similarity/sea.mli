(** The Similarity Enhancement Algorithm (SEA, Figure 12 of the paper).

    Given a (fused) hierarchy [H], a similarity measure [d] and a threshold
    [ε >= 0], SEA computes a similarity enhancement [(H', μ)]
    (Definition 8):

    - the nodes of [H'] are the maximal pairwise-ε-similar clusters of
      nodes of [H] (conditions 2–4);
    - [μ] maps each node of [H] to the clusters containing it;
    - the ordering of [H] is lifted to [H'] (condition 1);
    - if the lifted ordering is cyclic, no enhancement exists and the
      triple [(H, d, ε)] is {e similarity inconsistent} (Definition 9).

    Two lifting rules are provided, reflecting an ambiguity in the paper:
    Figure 12's algorithm lifts an edge when {e some} pair of merged
    members is ordered ({!Existential}, the default — this is the variant
    whose failure mode is the acyclicity check the paper describes), while
    the proof of Theorem 1 uses edges present iff {e all} member pairs are
    ordered ({!Universal}, which cannot create cycles but may drop
    orderings). *)

module Node = Toss_hierarchy.Node
module Hierarchy = Toss_hierarchy.Hierarchy

type lift = Existential | Universal

type t = {
  hierarchy : Hierarchy.t;  (** the enhanced hierarchy [H'] *)
  mu : (Node.t * Node.t list) list;  (** [μ]: original node -> enhanced nodes *)
  eps : float;
  metric : Metric.t;
}

val enhance : ?lift:lift -> metric:Metric.t -> eps:float -> Hierarchy.t -> t option
(** [None] when [(H, d, ε)] is similarity inconsistent. [eps] must be
    non-negative. *)

val enhance_exn : ?lift:lift -> metric:Metric.t -> eps:float -> Hierarchy.t -> t
(** @raise Failure on similarity inconsistency. *)

val is_consistent : ?lift:lift -> metric:Metric.t -> eps:float -> Hierarchy.t -> bool

val mu_of : t -> Node.t -> Node.t list
(** [μ(A)]; empty for nodes not in the original hierarchy. *)

val similar : t -> string -> string -> bool
(** The [~] predicate: true iff some node of [H'] contains both strings
    (the paper's semantics of similarTo). *)

val similar_terms : t -> string -> string list
(** Every string co-resident with the argument in some enhanced node,
    including itself when known. The TOSS query rewriter uses this to
    expand a [~] condition into a disjunction of exact conditions. *)

val clusters : t -> Node.t list
(** The nodes of [H'] (each a maximal ε-similar cluster). *)

val check : original:Hierarchy.t -> t -> (unit, string list) result
(** Validates the Definition 8 conditions that the construction must
    guarantee: (2) members of one enhanced node are pairwise ε-similar,
    (3) every ε-similar pair of original nodes shares an enhanced node,
    (4) no enhanced node's member set is a strict subset of another's, and
    acyclicity. Used by the test suite. *)
