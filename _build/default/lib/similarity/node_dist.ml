module Node = Toss_hierarchy.Node

let distance m a b =
  List.fold_left
    (fun acc x ->
      List.fold_left (fun acc y -> Float.min acc (Metric.dist m x y)) acc (Node.strings b))
    infinity (Node.strings a)

let within m ~eps a b =
  List.exists
    (fun x -> List.exists (fun y -> Metric.within m ~eps x y) (Node.strings b))
    (Node.strings a)
