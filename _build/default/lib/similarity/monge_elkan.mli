(** The Monge–Elkan hybrid measure (paper reference [12]).

    Each token of the first string is matched against its best-scoring
    counterpart in the second; the scores are averaged. The inner score is
    a similarity in [0, 1], by default Jaro–Winkler. *)

val similarity : ?inner:(string -> string -> float) -> string -> string -> float
(** Symmetrized: the mean of the two directed Monge–Elkan scores, so the
    result is a valid (symmetric) similarity. *)

val metric : Metric.t
