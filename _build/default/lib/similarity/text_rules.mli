(** Rule-based similarity for titles and other phrases.

    Token-level alignment: identical tokens cost 0, a prefix abbreviation
    ("Eff." / "Efficient", "Mgmt." / "Management") costs 0.5, a token with
    at most two character edits costs 1.1 per edit, a dropped token costs
    3.5, and anything else costs 5.0. This captures how proceedings pages
    abbreviate the titles that bibliographies store in full — the paper's
    Example 13 joins the two sources on title similarity. Dropped tokens
    are nearly as expensive as mismatches so that a phrase never counts as
    similar to its own head noun ("web conference" vs "conference"), which
    would make isa hierarchies similarity inconsistent. *)

val distance : string -> string -> float

val within : eps:float -> string -> string -> bool
(** [distance x y <= eps], aborting the alignment as soon as every
    continuation exceeds the threshold. *)

val metric : Metric.t
