module Smap = Map.Make (String)

type corpus = { df : int Smap.t; n_docs : int }

let corpus_of documents =
  let df =
    List.fold_left
      (fun df doc ->
        let tokens = List.sort_uniq String.compare (Token.tokenize doc) in
        List.fold_left
          (fun df tok -> Smap.update tok (fun c -> Some (1 + Option.value ~default:0 c)) df)
          df tokens)
      Smap.empty documents
  in
  { df; n_docs = List.length documents }

let n_documents c = c.n_docs

let idf c token =
  let df = Option.value ~default:0 (Smap.find_opt token c.df) in
  Float.max 0. (log (float_of_int (max 1 c.n_docs) /. float_of_int (1 + df)))

(* TF-IDF vector of a string: token -> tf * idf, L2-normalized. *)
let vector c s =
  let tf =
    List.fold_left
      (fun m tok -> Smap.update tok (fun x -> Some (1. +. Option.value ~default:0. x)) m)
      Smap.empty (Token.tokenize s)
  in
  let weighted = Smap.mapi (fun tok freq -> freq *. idf c tok) tf in
  let norm = sqrt (Smap.fold (fun _ w acc -> acc +. (w *. w)) weighted 0.) in
  if norm = 0. then weighted else Smap.map (fun w -> w /. norm) weighted

let tfidf c a b =
  if a = b then 1.
  else begin
    let va = vector c a and vb = vector c b in
    Smap.fold
      (fun tok wa acc ->
        match Smap.find_opt tok vb with Some wb -> acc +. (wa *. wb) | None -> acc)
      va 0.
  end

let directed_soft ~inner ~threshold va vb =
  (* For each token of va, its best close counterpart in vb. *)
  Smap.fold
    (fun tok wa acc ->
      let best =
        Smap.fold
          (fun tok' wb (best_sim, best_w) ->
            let sim = if tok = tok' then 1.0 else inner tok tok' in
            if sim > best_sim then (sim, wb) else (best_sim, best_w))
          vb (0., 0.)
      in
      let sim, wb = best in
      if sim >= threshold then acc +. (wa *. wb *. sim) else acc)
    va 0.

let soft_tfidf ?(inner = fun a b -> Jaro.jaro_winkler a b) ?(threshold = 0.9) c a b =
  if a = b then 1.
  else begin
    let va = vector c a and vb = vector c b in
    let s1 = directed_soft ~inner ~threshold va vb in
    let s2 = directed_soft ~inner ~threshold vb va in
    Float.min 1. ((s1 +. s2) /. 2.)
  end

let metric c = Metric.of_similarity ~name:"soft-tfidf" (soft_tfidf c)
