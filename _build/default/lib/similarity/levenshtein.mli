(** Edit distances.

    The Levenshtein distance with unit costs is the paper's running example
    of a {e strong} similarity measure (footnote to Definition 7); it drives
    Example 11 and the experiments' SEO construction. *)

val distance : string -> string -> int
(** Unit-cost insert/delete/substitute edit distance. O(|a|·|b|) time,
    O(min(|a|,|b|)) space. *)

val distance_within : int -> string -> string -> int option
(** [distance_within k a b] is [Some d] when [distance a b = d <= k] and
    [None] otherwise; runs in O(k·min(|a|,|b|)) using the banded DP, which
    the SEA algorithm uses to test pairs against a threshold cheaply. *)

val damerau_distance : string -> string -> int
(** Adds adjacent-transposition as a unit-cost edit (optimal string
    alignment variant). *)

val metric : Metric.t
(** Levenshtein as a strong {!Metric.t}. *)

val damerau_metric : Metric.t

val normalized_metric : Metric.t
(** [distance a b / max |a| |b|], in [0, 1] (0 for two empty strings). Not
    strong. *)
