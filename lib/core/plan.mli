(** Logical query plans and their physical operators.

    The planner ({!Planner}) compiles a pattern-tree query into this IR;
    {!run} interprets it. Splitting the two keeps the executor's
    three-phase contract — the plan is built during the [rewrite] phase,
    and {!run} produces exactly one [execute] span (all label scans) and
    one [assemble] span (pruning, embedding, pairing, deduplication), so
    {!Executor.stats.phases} remains a faithful view over the trace.

    A plan is a small operator tree:

    - [Label_scan] — one XPath query sent to the store for one pattern
      label, carrying the planner's cardinality estimate;
    - [Candidate_filter] — the set of scans feeding one side's
      candidate tables, in execution order;
    - [Doc_prune] — drop documents that lack candidates for a required
      label (an embedding needs every label, so such documents cannot
      contribute results);
    - [Embed] — enumerate pattern embeddings per surviving document;
    - [Nested_loop_pair] / [Hash_pair] / [Sim_pair] — combine the two
      sides of a join, checking the cross condition on every pair, only
      on hash-partitioned key matches, or only on signature-overlap
      candidates of a [~]/[isa] atom ({!Simjoin});
    - [Dedup] — global set semantics over the paired results.

    Plans are pure data: rendering one ({!pp}) performs no store access,
    which is what the CLI's [--explain] shows before running anything. *)

type scan = {
  scan_label : int;  (** the pattern label this scan fetches *)
  xpath : Toss_store.Xpath.t;
  est_rows : int option;
      (** planner estimate from {!Toss_store.Collection.estimate_rows};
          [None] when planning with [optimize:false] (no statistics are
          consulted) *)
}

type side = Single | Left | Right
(** Which candidate table an operator reads: [Single] for selections,
    [Left]/[Right] for the two collections of a join. *)

type embed_spec = {
  side : side;
  sub_pattern : Toss_tax.Pattern.t;
  sub_sl : int list;  (** the SL labels that fall on this side *)
  pin_root : bool;
      (** pin the sub-pattern root to the document root (a pc edge from
          the join product root, as in the paper's Figure 14) *)
}

type node =
  | Label_scan of scan
  | Candidate_filter of { side : side; scans : node list }
      (** [scans] are [Label_scan] nodes, in execution order *)
  | Doc_prune of { required : int list; input : node }
  | Embed of { spec : embed_spec; input : node }
  | Nested_loop_pair of {
      cross_condition : Toss_tax.Condition.t;
      left : node;
      right : node;
    }
  | Hash_pair of {
      keys : (Toss_tax.Condition.term * Toss_tax.Condition.term) list;
          (** equality atoms split across the sides: (left term, right
              term) pairs used to partition; the full [cross_condition]
              is still re-checked on every key match, so the operator is
              an optimization, never a semantic change *)
      cross_condition : Toss_tax.Condition.t;
      left : node;
      right : node;
    }
  | Sim_pair of {
      atom : Toss_tax.Condition.t;
          (** the top-level [~]/[isa] cross conjunct driving the filter
              (for rendering; completeness relies on it being a
              top-level conjunct of [cross_condition]) *)
      lterm : Toss_tax.Condition.term;  (** probe-side (left) atom term *)
      rterm : Toss_tax.Condition.term;  (** build-side (right) atom term *)
      scheme : Simjoin.scheme;
          (** the taxonomic signature scheme ({!Simjoin}) the planner
              derived from the atom kind, mode and SEO *)
      cross_condition : Toss_tax.Condition.t;
      left : node;
      right : node;
    }
      (** the similarity-join operator: the right side is indexed by
          frequency-ordered signature prefixes, the left probes with an
          adaptive overlap constraint, and — exactly as for [Hash_pair]
          — the full [cross_condition] is re-checked on every candidate,
          so the operator is an optimization, never a semantic change *)
  | Dedup of node
  | Compiled_match of { spec : embed_spec; matcher : Compile.t }
      (** the compiled single-pass matcher ({!Compile}): no scans, no
          pruning — every document of the side's snapshot is matched in
          one arena pass, predicates evaluated inline. Produces witness
          trees directly for [Single] sides and bindings for join
          sides, exactly as [Embed] does, so the pairing operators are
          shared between the compiled and interpreted pipelines. *)

type t = { mode : Rewrite.mode; root : node }

val scans : t -> scan list
(** Every [Label_scan] in the plan, left to right (execution order). *)

val label_queries : t -> (int * Toss_store.Xpath.t) list
(** [scans] as (label, query) pairs — what reaches the store. *)

val pp : Format.formatter -> t -> unit
(** Renders the operator tree with estimated cardinalities — the CLI's
    [--explain]. Deterministic; performs no store access. *)

val to_string : t -> string

(** {1 Execution} *)

type exec_stats = { n_candidates : int; n_embeddings : int }

(** {1 Fault injection (testing only)}

    Deliberate sabotage hooks for the differential harness
    ([Toss_check]): each variant breaks one invariant the interpreter
    relies on, so [toss check --inject-fault] can demonstrate that the
    naive oracle catches a broken optimizer and that the shrinker
    minimizes the witness. Production code must leave this at
    {!No_fault}. *)

type fault =
  | No_fault
  | Hash_no_recheck
      (** [Hash_pair] accepts every key match without re-checking the
          full cross condition *)
  | Prune_first_only
      (** [Doc_prune] keeps only the first surviving document *)
  | No_dedup  (** both deduplication sites pass duplicates through *)
  | Compile_skip_descendant_edge
      (** [Compiled_match] stops bubbling ancestor-descendant matches up
          the arena, silently demoting every ad edge to pc semantics —
          matches deeper than one level under their pattern parent's
          image are dropped *)
  | Simjoin_prefix_too_short
      (** [Sim_pair] indexes one prefix token too few per build record
          (see {!Simjoin.build}), making some true pairs unreachable —
          missed results *)
  | Simjoin_no_recheck
      (** [Sim_pair] emits every overlap candidate without re-checking
          the cross condition — false results *)

val fault : fault ref

val run :
  ?check:(unit -> unit) ->
  ?use_index:bool ->
  eval:(Toss_tax.Condition.env -> Toss_tax.Condition.t -> bool) ->
  coll_of:(side -> Toss_store.Collection.Snapshot.t) ->
  t ->
  Toss_xml.Tree.t list * exec_stats
(** Interprets the plan against pinned collection snapshots — the
    interpreter performs no locking of its own and reads only immutable
    version state, so concurrent runs on separate domains are safe and a
    run's results are unaffected by writers advancing the collections
    mid-flight. One [execute] span containing an [xpath] span
    (and [Xpath_exec] event) per scan, then one [assemble] span
    containing the [prune], per-document [embed] and (for joins) [pair]
    spans; compiled plans have no scans (the [execute] span is empty)
    and one per-document [match] span under [assemble] instead of
    [prune]/[embed]. Must be called inside an executor root span for
    the trace to be observable; works standalone too (spans become
    no-ops).

    [check] is a cooperative cancellation checkpoint, called before
    every label scan, every per-document embedding enumeration, and
    every outer pairing iteration — the interpreter's unit-of-work
    boundaries — and, for compiled plans, once per arena node inside
    the matcher's loop. It does nothing by default; the query server passes one
    that raises once the request's deadline has passed, which unwinds
    the interpreter mid-plan (no partial results escape: the exception
    propagates through {!Executor}). Checkpoint granularity bounds how
    long a runaway query can overstay its deadline by the cost of one
    scan or one document's embedding enumeration. *)
