(* Prefix-filtered similarity joins over SEO-derived signatures; see the
   interface for the completeness argument. *)

type scheme = {
  name : string;
  adaptive : bool;
      (* overlap two for multi-token signatures: a similar pair of
         distinct clustered values shares both endpoints, so one token of
         each signature — the globally most frequent — can stay out of
         the index. [false] for isa-style schemes, where one shared token
         is all the atom guarantees. *)
  probe_sig : string -> string list option;
  build_sig : string -> string list option;
      (* [None] routes the value to the metric-fallback bucket. *)
}

let dedup_tokens tokens =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    tokens

let sim_scheme ~mode seo =
  match mode with
  | Rewrite.Tax ->
      (* Tax-mode [~] is string equality: the value is its own signature
         and every value is "known". *)
      let self v = Some [ v ] in
      { name = "equality"; adaptive = false; probe_sig = self; build_sig = self }
  | Rewrite.Toss ->
      (* Known values expand into their similarity cluster; unknown
         values fall back to the metric predicate, which can relate
         values with disjoint token sets, so they bypass the index. *)
      let expand v =
        if Seo.knows_term seo v then
          Some (dedup_tokens (v :: Rewrite.similar_terms seo v))
        else None
      in
      { name = "cluster"; adaptive = true; probe_sig = expand; build_sig = expand }

let isa_scheme ~below seo =
  (* [x isa y] holds iff x = y or x lies below y in the enhanced
     hierarchy, i.e. iff x ∈ below(y): the upper side carries its
     at-or-below set, the lower side itself. Both sides always have a
     finite signature (an unknown term's below-set is the term), so the
     fallback bucket stays empty. *)
  let self v = Some [ v ] in
  let expand v = Some (dedup_tokens (v :: Rewrite.isa_below seo v)) in
  match below with
  | `Probe -> { name = "isa-below"; adaptive = false; probe_sig = self; build_sig = expand }
  | `Build -> { name = "isa-below"; adaptive = false; probe_sig = expand; build_sig = self }

let scheme_name s = s.name
let overlap_name s = if s.adaptive then "adaptive" else "1"

type index = {
  scheme : scheme;
  freq : (string, int) Hashtbl.t;
      (* global build-side token frequencies — the total order both
         prefixes are computed in. Probe tokens absent from the build
         side order first (frequency 0); they cannot hit the index, and
         only shared tokens need a consistent rank. *)
  postings : (string, int list) Hashtbl.t;  (* token -> ordinals, descending *)
  fallback : int list;  (* bucket ordinals, ascending *)
  n_indexed : int;
  n_fallback : int;
}

let token_rank freq t =
  (Option.value ~default:0 (Hashtbl.find_opt freq t), t)

let order_sig freq tokens =
  List.sort (fun a b -> compare (token_rank freq a) (token_rank freq b)) tokens

(* The least-frequent [|sig| - t + 1] tokens, where the required overlap
   t adapts to the signature: two for multi-token signatures under an
   adaptive scheme (distinct similar values share both endpoints of the
   pair), one otherwise. Any pair satisfying the atom shares a token
   within both prefixes. *)
let prefix scheme freq tokens =
  let ordered = order_sig freq tokens in
  let n = List.length ordered in
  let t = if scheme.adaptive then min 2 n else 1 in
  List.filteri (fun i _ -> i <= n - t) ordered

let build ?(check = ignore) ?(drop_last_prefix_token = false) scheme values =
  let sigs = Array.map (Option.map (fun v -> (v, scheme.build_sig v))) values in
  let freq = Hashtbl.create 64 in
  Array.iter
    (function
      | Some (_, Some tokens) ->
          List.iter
            (fun t ->
              Hashtbl.replace freq t
                (1 + Option.value ~default:0 (Hashtbl.find_opt freq t)))
            tokens
      | _ -> ())
    sigs;
  let postings = Hashtbl.create 64 in
  let fallback = ref [] in
  let n_indexed = ref 0 and n_fallback = ref 0 in
  Array.iteri
    (fun i entry ->
      check ();
      match entry with
      | None -> ()  (* unbound term: the atom is false, pairs with nothing *)
      | Some (_, None) ->
          incr n_fallback;
          fallback := i :: !fallback
      | Some (_, Some tokens) ->
          incr n_indexed;
          let pfx = prefix scheme freq tokens in
          let pfx =
            (* simjoin-prefix-too-short fault: lose the last — least
               replaceable — prefix token, so some pairs become
               unreachable. *)
            if drop_last_prefix_token then
              match List.rev pfx with [] -> [] | _ :: rest -> List.rev rest
            else pfx
          in
          List.iter
            (fun t ->
              Hashtbl.replace postings t
                (i :: Option.value ~default:[] (Hashtbl.find_opt postings t)))
            pfx)
    sigs;
  {
    scheme;
    freq;
    postings;
    fallback = List.rev !fallback;
    n_indexed = !n_indexed;
    n_fallback = !n_fallback;
  }

let probe idx v =
  match idx.scheme.probe_sig v with
  | None ->
      (* Metric-fallback probe: only bucket records can match (a known
         and an unknown term are never similar). *)
      idx.fallback
  | Some tokens ->
      let pfx = prefix idx.scheme idx.freq tokens in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun t ->
          List.iter
            (fun i -> Hashtbl.replace seen i ())
            (Option.value ~default:[] (Hashtbl.find_opt idx.postings t)))
        pfx;
      List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) seen [])

let n_indexed idx = idx.n_indexed
let n_fallback idx = idx.n_fallback
