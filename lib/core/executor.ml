module Condition = Toss_tax.Condition
module Collection = Toss_store.Collection
module Xpath = Toss_store.Xpath
module Metrics = Toss_obs.Metrics
module Span = Toss_obs.Span
module Event = Toss_obs.Event
module Names = Toss_obs.Names

type mode = Rewrite.mode = Tax | Toss

type phases = { rewrite_s : float; execute_s : float; assemble_s : float }

type stats = {
  phases : phases;
  n_candidates : int;
  n_embeddings : int;
  n_results : int;
  queries : (int * string) list;
  trace : Span.t;
}

let total_s p = p.rewrite_s +. p.execute_s +. p.assemble_s

(* The phase record is a view over the span tree, so the per-phase
   breakdown printed from the trace and the [stats] fields agree by
   construction. *)
let phases_of_trace trace =
  let dur name =
    match Span.find trace name with Some s -> s.Span.elapsed_s | None -> 0.
  in
  {
    rewrite_s = dur Names.rewrite;
    execute_s = dur Names.execute;
    assemble_s = dur Names.assemble;
  }

let m_selects = Metrics.counter "executor.select.total"
let m_joins = Metrics.counter "executor.join.total"
let m_candidates = Metrics.histogram "executor.candidates"
let m_embeddings = Metrics.histogram "executor.embeddings"
let m_results = Metrics.histogram "executor.results"

(* One labelled series per phase, so the snapshot distinguishes where
   query time goes instead of pooling all three into one distribution. *)
let phase_seconds phase =
  Metrics.histogram ~labels:[ ("phase", phase) ] "executor.phase.seconds"

let ps_rewrite = phase_seconds "rewrite"
let ps_execute = phase_seconds "execute"
let ps_assemble = phase_seconds "assemble"

let note_phases p =
  Metrics.observe ps_rewrite p.rewrite_s;
  Metrics.observe ps_execute p.execute_s;
  Metrics.observe ps_assemble p.assemble_s

let note_sizes ~candidates ~embeddings ~results =
  Metrics.observe_int m_candidates candidates;
  Metrics.observe_int m_embeddings embeddings;
  Metrics.observe_int m_results results

let evaluator_of mode seo =
  match mode with Tax -> Condition.eval_tax | Toss -> Toss_condition.evaluator seo

let mode_name = function Tax -> "tax" | Toss -> "toss"

(* Event-log boundaries of one executor run. Payload construction is
   guarded on [Event.active] so the uninstrumented path allocates
   nothing. *)
let event_query_start ~op ~mode collection =
  if Event.active () then
    Event.emit Event.Query_start
      ~payload:
        [
          ("op", Event.Str op);
          ("mode", Event.Str (mode_name mode));
          ("collection", Event.Str (Collection.Snapshot.name collection));
        ]

let event_rewrite_done ~op queries =
  if Event.active () then
    Event.emit Event.Rewrite_done
      ~payload:
        [ ("op", Event.Str op); ("queries", Event.Int (List.length queries)) ]

let event_query_end ~op ~trace ~phases ~stats:(n_candidates, n_embeddings, n_results) =
  if Event.active () then
    Event.emit Event.Query_end ~trace
      ~payload:
        [
          ("op", Event.Str op);
          ("results", Event.Int n_results);
          ("candidates", Event.Int n_candidates);
          ("embeddings", Event.Int n_embeddings);
          ("elapsed_s", Event.Float (total_s phases));
        ]

(* Both entry points are thin facades now: phase (i) builds a plan (the
   planner rewrites the pattern and consults collection statistics),
   phases (ii)/(iii) are [Plan.run]. [planner:false] executes the same
   query through a naive plan — rewrite-order scans, no pruning,
   nested-loop pairing — preserving the pre-planner strategy. *)

let finish ~op ~plan (results, (exec : Plan.exec_stats)) trace =
  let phases = phases_of_trace trace in
  let n_results = List.length results in
  note_phases phases;
  note_sizes ~candidates:exec.Plan.n_candidates ~embeddings:exec.Plan.n_embeddings
    ~results:n_results;
  event_query_end ~op ~trace ~phases
    ~stats:(exec.Plan.n_candidates, exec.Plan.n_embeddings, n_results);
  let query_strings =
    List.map (fun (l, q) -> (l, Xpath.to_string q)) (Plan.label_queries plan)
  in
  ( results,
    {
      phases;
      n_candidates = exec.Plan.n_candidates;
      n_embeddings = exec.Plan.n_embeddings;
      n_results;
      queries = query_strings;
      trace;
    } )

let select ?(mode = Toss) ?(use_index = true) ?max_expansion ?(planner = true)
    ?(compile = true) ?check seo collection ~pattern ~sl =
  Metrics.incr m_selects;
  event_query_start ~op:"select" ~mode collection;
  let eval = evaluator_of mode seo in
  let (plan, outcome), trace =
    Span.run Names.select_root (fun () ->
        let plan =
          Span.with_ Names.rewrite (fun () ->
              Planner.plan_select ~mode ~use_index ?max_expansion
                ~optimize:planner ~compile seo collection ~pattern ~sl)
        in
        event_rewrite_done ~op:"select" (Plan.label_queries plan);
        (plan, Plan.run ?check ~use_index ~eval ~coll_of:(fun _ -> collection) plan))
  in
  finish ~op:"select" ~plan outcome trace

let join ?(mode = Toss) ?(use_index = true) ?max_expansion ?(planner = true)
    ?(compile = true) ?(simjoin = true) ?check seo left_coll right_coll ~pattern
    ~sl =
  Metrics.incr m_joins;
  event_query_start ~op:"join" ~mode left_coll;
  let eval = evaluator_of mode seo in
  let coll_of = function
    | Plan.Left | Plan.Single -> left_coll
    | Plan.Right -> right_coll
  in
  let (plan, outcome), trace =
    Span.run Names.join_root (fun () ->
        let plan =
          Span.with_ Names.rewrite (fun () ->
              Planner.plan_join ~mode ~use_index ?max_expansion ~optimize:planner
                ~compile ~simjoin seo left_coll right_coll ~pattern ~sl)
        in
        event_rewrite_done ~op:"join" (Plan.label_queries plan);
        (plan, Plan.run ?check ~use_index ~eval ~coll_of plan))
  in
  finish ~op:"join" ~plan outcome trace
