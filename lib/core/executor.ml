module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Embedding = Toss_tax.Embedding
module Witness = Toss_tax.Witness
module Algebra = Toss_tax.Algebra
module Collection = Toss_store.Collection
module Xpath = Toss_store.Xpath
module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Metrics = Toss_obs.Metrics
module Span = Toss_obs.Span
module Event = Toss_obs.Event

type mode = Rewrite.mode = Tax | Toss

type phases = { rewrite_s : float; execute_s : float; assemble_s : float }

type stats = {
  phases : phases;
  n_candidates : int;
  n_embeddings : int;
  n_results : int;
  queries : (int * string) list;
  trace : Span.t;
}

let total_s p = p.rewrite_s +. p.execute_s +. p.assemble_s

(* The phase record is a view over the span tree, so the per-phase
   breakdown printed from the trace and the [stats] fields agree by
   construction. *)
let phases_of_trace trace =
  let dur name =
    match Span.find trace name with Some s -> s.Span.elapsed_s | None -> 0.
  in
  { rewrite_s = dur "rewrite"; execute_s = dur "execute"; assemble_s = dur "assemble" }

let m_selects = Metrics.counter "executor.select.total"
let m_joins = Metrics.counter "executor.join.total"
let m_candidates = Metrics.histogram "executor.candidates"
let m_embeddings = Metrics.histogram "executor.embeddings"
let m_results = Metrics.histogram "executor.results"

let phase_seconds = Metrics.histogram "executor.phase.seconds"

let note_phases p =
  Metrics.observe phase_seconds p.rewrite_s;
  Metrics.observe phase_seconds p.execute_s;
  Metrics.observe phase_seconds p.assemble_s

let note_sizes ~candidates ~embeddings ~results =
  Metrics.observe_int m_candidates candidates;
  Metrics.observe_int m_embeddings embeddings;
  Metrics.observe_int m_results results

let evaluator_of mode seo =
  match mode with Tax -> Condition.eval_tax | Toss -> Toss_condition.evaluator seo

let mode_name = function Tax -> "tax" | Toss -> "toss"

(* Event-log boundaries of one executor run. Payload construction is
   guarded on [Event.active] so the uninstrumented path allocates
   nothing. *)
let event_query_start ~op ~mode collection =
  if Event.active () then
    Event.emit Event.Query_start
      ~payload:
        [
          ("op", Event.Str op);
          ("mode", Event.Str (mode_name mode));
          ("collection", Event.Str (Collection.name collection));
        ]

let event_rewrite_done ~op queries =
  if Event.active () then
    Event.emit Event.Rewrite_done
      ~payload:
        [ ("op", Event.Str op); ("queries", Event.Int (List.length queries)) ]

let event_query_end ~op ~trace ~phases ~stats:(n_candidates, n_embeddings, n_results) =
  if Event.active () then
    Event.emit Event.Query_end ~trace
      ~payload:
        [
          ("op", Event.Str op);
          ("results", Event.Int n_results);
          ("candidates", Event.Int n_candidates);
          ("embeddings", Event.Int n_embeddings);
          ("elapsed_s", Event.Float (total_s phases));
        ]

(* Set semantics preserving first-occurrence (document) order. *)
let dedup trees =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    trees

(* Fetch candidates for every label; returns a lookup
   doc_id -> label -> node list, plus the total candidate count. Each
   label query runs in its own [xpath] span (annotated by the store with
   rows / index hit counts) and emits an [Xpath_exec] event, so EXPLAIN
   ANALYZE and the profiler see one operator per store round-trip. *)
let fetch ~use_index collection queries =
  let table : (int * int, Doc.node list) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun (label, xpath) ->
      Span.with_ ~meta:[ ("label", string_of_int label) ] "xpath" (fun () ->
          let t0 = Unix.gettimeofday () in
          let hits = Collection.eval ~use_index collection xpath in
          (if Event.active () then
             Event.emit Event.Xpath_exec
               ~payload:
                 [
                   ("label", Event.Int label);
                   ("xpath", Event.Str (Xpath.to_string xpath));
                   ("rows", Event.Int (List.length hits));
                   ("elapsed_s", Event.Float (Unix.gettimeofday () -. t0));
                 ]);
          List.iter
            (fun (doc_id, node) ->
              incr total;
              let key = (doc_id, label) in
              Hashtbl.replace table key
                (node :: Option.value ~default:[] (Hashtbl.find_opt table key)))
            hits))
    queries;
  let lookup doc_id label =
    Some (List.rev (Option.value ~default:[] (Hashtbl.find_opt table (doc_id, label))))
  in
  (lookup, !total)

(* One document's share of phase iii, in its own [embed] span: enumerate
   embeddings (the embedder annotates the span with its funnel), build
   witnesses, and emit an [Embed_done] event. *)
let assemble_doc ~eval ~lookup collection pattern ~sl n_embeddings doc_id =
  Span.with_ ~meta:[ ("doc", string_of_int doc_id) ] "embed" (fun () ->
      let doc = Collection.doc collection doc_id in
      let bindings = Embedding.enumerate ~candidates:(lookup doc_id) ~eval doc pattern in
      n_embeddings := !n_embeddings + List.length bindings;
      let witnesses = dedup (List.map (fun b -> Witness.of_binding doc b ~sl) bindings) in
      Span.annotate [ ("witnesses", string_of_int (List.length witnesses)) ];
      (if Event.active () then
         Event.emit Event.Embed_done
           ~payload:
             [
               ("doc", Event.Int doc_id);
               ("embeddings", Event.Int (List.length bindings));
               ("witnesses", Event.Int (List.length witnesses));
             ]);
      witnesses)

let select ?(mode = Toss) ?(use_index = true) ?max_expansion seo collection ~pattern ~sl =
  Metrics.incr m_selects;
  event_query_start ~op:"select" ~mode collection;
  let eval = evaluator_of mode seo in
  let (results, query_strings, n_candidates, n_embeddings), trace =
    Span.run "executor.select" (fun () ->
        (* Phase i: rewrite. *)
        let queries, query_strings =
          Span.with_ "rewrite" (fun () ->
              let queries = Rewrite.label_queries ~mode ?max_expansion seo pattern in
              (queries, List.map (fun (l, q) -> (l, Xpath.to_string q)) queries))
        in
        event_rewrite_done ~op:"select" queries;
        (* Phase ii: execute against the store. *)
        let lookup, n_candidates =
          Span.with_ "execute" (fun () -> fetch ~use_index collection queries)
        in
        (* Phase iii: assemble witness trees. *)
        let n_embeddings = ref 0 in
        let results =
          Span.with_ "assemble" (fun () ->
              List.concat_map
                (assemble_doc ~eval ~lookup collection pattern ~sl n_embeddings)
                (Collection.doc_ids collection))
        in
        (results, query_strings, n_candidates, !n_embeddings))
  in
  let phases = phases_of_trace trace in
  let n_results = List.length results in
  note_phases phases;
  note_sizes ~candidates:n_candidates ~embeddings:n_embeddings ~results:n_results;
  event_query_end ~op:"select" ~trace ~phases
    ~stats:(n_candidates, n_embeddings, n_results);
  ( results,
    { phases; n_candidates; n_embeddings; n_results; queries = query_strings; trace } )

(* The sub-pattern rooted at a child of the join pattern's root, with the
   original condition restricted to the conjuncts local to that side. *)
let side_pattern (pattern : Pattern.t) (child : Pattern.node) =
  let rec labels_of (n : Pattern.node) =
    n.Pattern.label :: List.concat_map (fun (_, c) -> labels_of c) n.Pattern.children
  in
  let side_labels = labels_of child in
  let rec top_conjuncts = function
    | Condition.And (p, q) -> top_conjuncts p @ top_conjuncts q
    | c -> [ c ]
  in
  let local =
    List.filter
      (fun conjunct ->
        let used = Condition.labels_used conjunct in
        used <> [] && List.for_all (fun l -> List.mem l side_labels) used)
      (top_conjuncts pattern.Pattern.condition)
  in
  (Pattern.v child (Condition.conj local), side_labels)

let join ?(mode = Toss) ?(use_index = true) ?max_expansion seo left_coll right_coll
    ~pattern ~sl =
  Metrics.incr m_joins;
  event_query_start ~op:"join" ~mode left_coll;
  let eval = evaluator_of mode seo in
  let root = pattern.Pattern.root in
  let (left_kind, left_child), (right_kind, right_child) =
    match root.Pattern.children with
    | [ l; r ] -> (l, r)
    | _ -> invalid_arg "Executor.join: the pattern root must have exactly two children"
  in
  let (results, query_strings, n_candidates, n_embeddings), trace =
    Span.run "executor.join" (fun () ->
  (* Phase i. *)
  let (left_pattern, left_labels, right_pattern, right_labels, left_queries,
       right_queries, query_strings) =
    Span.with_ "rewrite" (fun () ->
        let left_pattern, left_labels = side_pattern pattern left_child in
        let right_pattern, right_labels = side_pattern pattern right_child in
        let left_queries = Rewrite.label_queries ~mode ?max_expansion seo left_pattern in
        let right_queries = Rewrite.label_queries ~mode ?max_expansion seo right_pattern in
        let query_strings =
          List.map (fun (l, q) -> (l, Xpath.to_string q)) (left_queries @ right_queries)
        in
        (left_pattern, left_labels, right_pattern, right_labels, left_queries,
         right_queries, query_strings))
  in
  event_rewrite_done ~op:"join" (left_queries @ right_queries);
  (* Phase ii. *)
  let (left_lookup, n_left), (right_lookup, n_right) =
    Span.with_ "execute" (fun () ->
        ( fetch ~use_index left_coll left_queries,
          fetch ~use_index right_coll right_queries ))
  in
  Span.with_ "assemble" (fun () ->
  (* Phase iii: embed each side, then pair and check the full condition. *)
  (* A pc edge from the product root pins the side's root to the document
     root (the product's direct child); an ad edge lets it match anywhere,
     as in the paper's Figure 14. *)
  let embeddings_of side coll lookup (sub_pattern : Pattern.t) kind =
    let side_root = sub_pattern.Pattern.root.Pattern.label in
    List.concat_map
      (fun doc_id ->
        Span.with_
          ~meta:[ ("side", side); ("doc", string_of_int doc_id) ]
          "embed"
          (fun () ->
            let doc = Collection.doc coll doc_id in
            let candidates label =
              let fetched = lookup doc_id label in
              match (kind, label = side_root) with
              | Pattern.Pc, true ->
                  Some
                    (List.filter
                       (Int.equal (Doc.root doc))
                       (Option.value ~default:[] fetched))
              | _ -> fetched
            in
            let bindings = Embedding.enumerate ~candidates ~eval doc sub_pattern in
            (if Event.active () then
               Event.emit Event.Embed_done
                 ~payload:
                   [
                     ("side", Event.Str side);
                     ("doc", Event.Int doc_id);
                     ("embeddings", Event.Int (List.length bindings));
                   ]);
            List.map (fun b -> (doc, b)) bindings))
      (Collection.doc_ids coll)
  in
  let lefts = embeddings_of "left" left_coll left_lookup left_pattern left_kind in
  let rights = embeddings_of "right" right_coll right_lookup right_pattern right_kind in
  (* Conjuncts mentioning the product root (e.g. #0.tag = tax_prod_root)
     describe the synthetic product node and are dropped; they hold by
     construction of the result. *)
  let cross_condition =
    let rec top_conjuncts = function
      | Condition.And (p, q) -> top_conjuncts p @ top_conjuncts q
      | c -> [ c ]
    in
    Condition.conj
      (List.filter
         (fun c -> not (List.mem root.Pattern.label (Condition.labels_used c)))
         (top_conjuncts pattern.Pattern.condition))
  in
  let sl_left = List.filter (fun l -> List.mem l left_labels) sl in
  let sl_right = List.filter (fun l -> List.mem l right_labels) sl in
  let results =
    List.concat_map
      (fun (ldoc, lbind) ->
        List.filter_map
          (fun (rdoc, rbind) ->
            let env label =
              match List.assoc_opt label lbind with
              | Some n -> Some (ldoc, n)
              | None -> (
                  match List.assoc_opt label rbind with
                  | Some n -> Some (rdoc, n)
                  | None -> None)
            in
            if eval env cross_condition then
              Some
                (Tree.element Algebra.prod_root_tag
                   [
                     Witness.of_binding ldoc lbind ~sl:sl_left;
                     Witness.of_binding rdoc rbind ~sl:sl_right;
                   ])
            else None)
          rights)
      lefts
    |> dedup
  in
  ( results,
    query_strings,
    n_left + n_right,
    List.length lefts + List.length rights )))
  in
  let phases = phases_of_trace trace in
  let n_results = List.length results in
  note_phases phases;
  note_sizes ~candidates:n_candidates ~embeddings:n_embeddings ~results:n_results;
  event_query_end ~op:"join" ~trace ~phases
    ~stats:(n_candidates, n_embeddings, n_results);
  ( results,
    { phases; n_candidates; n_embeddings; n_results; queries = query_strings; trace } )
