module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Xpath = Toss_store.Xpath

type expansion = { operator : string; constant : string; terms : string list }

type t = {
  mode : Rewrite.mode;
  label_queries : (int * string) list;
  expansions : expansion list;
  residual_atoms : string list;
  plan : Plan.t option;
  trace : Toss_obs.Span.t option;
}

let atom_to_string atom = Format.asprintf "%a" Condition.pp atom

(* An atom is pushable when it is a node-local top-level conjunct; those
   are exactly what [Rewrite] turns into name tests and predicates. *)
let residual_atoms_of (pattern : Pattern.t) =
  let condition = pattern.Pattern.condition in
  let local =
    List.concat_map (Condition.local_atoms condition) (Pattern.labels pattern)
  in
  List.filter (fun atom -> not (List.memq atom local)) (Condition.atoms condition)

let expansions_of ~mode seo (pattern : Pattern.t) =
  if mode = Rewrite.Tax then []
  else
    List.filter_map
      (fun atom ->
        match atom with
        | Condition.Sim (_, Condition.Str s) | Condition.Sim (Condition.Str s, _) ->
            Some { operator = "~"; constant = s; terms = Rewrite.similar_terms seo s }
        | Condition.Isa (_, Condition.Str s) | Condition.Below (_, Condition.Str s) ->
            Some { operator = "isa"; constant = s; terms = Rewrite.isa_below seo s }
        | Condition.Part_of (_, Condition.Str s) ->
            Some { operator = "part_of"; constant = s; terms = Rewrite.part_below seo s }
        | _ -> None)
      (Condition.atoms pattern.Pattern.condition)

let explain ?(mode = Rewrite.Toss) ?max_expansion seo pattern =
  let queries = Rewrite.label_queries ~mode ?max_expansion seo pattern in
  {
    mode;
    label_queries = List.map (fun (l, q) -> (l, Xpath.to_string q)) queries;
    expansions = expansions_of ~mode seo pattern;
    residual_atoms = List.map atom_to_string (residual_atoms_of pattern);
    plan = None;
    trace = None;
  }

let with_trace t trace = { t with trace = Some trace }
let with_plan t plan = { t with plan = Some plan }

let pp ppf t =
  Format.fprintf ppf "@[<v>mode: %s@,"
    (match t.mode with Rewrite.Tax -> "TAX" | Rewrite.Toss -> "TOSS");
  Format.fprintf ppf "store queries:@,";
  List.iter
    (fun (label, q) -> Format.fprintf ppf "  #%d: %s@," label q)
    t.label_queries;
  if t.expansions <> [] then begin
    Format.fprintf ppf "expansions:@,";
    List.iter
      (fun e ->
        Format.fprintf ppf "  %s %S -> %d term(s)@," e.operator e.constant
          (List.length e.terms))
      t.expansions
  end;
  if t.residual_atoms <> [] then begin
    Format.fprintf ppf "re-checked during assembly:@,";
    List.iter (fun a -> Format.fprintf ppf "  %s@," a) t.residual_atoms
  end;
  (match t.plan with
  | None -> ()
  | Some plan ->
      Format.fprintf ppf "physical plan:@,";
      List.iter
        (fun l -> Format.fprintf ppf "  %s@," l)
        (String.split_on_char '\n' (Plan.to_string plan)));
  (match t.trace with
  | None -> ()
  | Some trace ->
      Format.fprintf ppf "execution trace:@,%a@," Toss_obs.Span.pp trace);
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let to_json t =
  let str s = Toss_json.quote s in
  let arr items = "[" ^ String.concat "," items ^ "]" in
  let queries =
    List.map
      (fun (label, q) -> Printf.sprintf "{\"label\":%d,\"xpath\":%s}" label (str q))
      t.label_queries
  in
  let expansions =
    List.map
      (fun e ->
        Printf.sprintf "{\"operator\":%s,\"constant\":%s,\"terms\":%s}"
          (str e.operator) (str e.constant)
          (arr (List.map str e.terms)))
      t.expansions
  in
  Printf.sprintf
    "{\"mode\":%s,\"label_queries\":%s,\"expansions\":%s,\"residual_atoms\":%s%s%s}"
    (str (match t.mode with Rewrite.Tax -> "tax" | Rewrite.Toss -> "toss"))
    (arr queries) (arr expansions)
    (arr (List.map str t.residual_atoms))
    (match t.plan with
    | None -> ""
    | Some plan ->
        ",\"plan\":"
        ^ arr (List.map str (String.split_on_char '\n' (Plan.to_string plan))))
    (match t.trace with
    | None -> ""
    | Some trace -> ",\"trace\":" ^ Toss_obs.Span.to_json trace)
