(** Similarity-enhanced ontology contexts — the precomputed structure every
    TOSS query evaluates against (Sections 3–5).

    A context bundles the fused [isa] and [part-of] hierarchies of a
    semistructured database, the similarity enhancement of the [isa]
    hierarchy (computed once by the SEA algorithm with the configured
    measure and threshold ε), and the conversion-function registry. *)

module Hierarchy = Toss_hierarchy.Hierarchy
module Metric = Toss_similarity.Metric
module Sea = Toss_similarity.Sea
module Ontology = Toss_ontology.Ontology

type t

val create :
  ?conversions:Conversion.t ->
  ?metric:Metric.t ->
  ?eps:float ->
  Ontology.t ->
  (t, string) result
(** Builds a context from an already fused ontology. The default measure
    is Levenshtein with [eps = 0] (pure TAX-compatible semantics). When
    the standard (existential-lift) SEA construction is similarity
    inconsistent — the cycle case of Definition 9 — the context falls back
    to the universal lift, which keeps only unanimously-agreed orderings
    and always yields a DAG. [Error] is reserved for invalid parameters or
    fusion failures. *)

val create_exn :
  ?conversions:Conversion.t -> ?metric:Metric.t -> ?eps:float -> Ontology.t -> t

val of_documents :
  ?conversions:Conversion.t ->
  ?metric:Metric.t ->
  ?eps:float ->
  ?lexicon:Toss_ontology.Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  Toss_xml.Tree.Doc.t list ->
  (t, string) result
(** The full precomputation pipeline of the TOSS architecture: Ontology
    Maker on each document, fusion under the lexicon-derived
    interoperation constraints, then similarity enhancement. *)

val eps : t -> float
val metric : t -> Metric.t
val conversions : t -> Conversion.t
val isa_hierarchy : t -> Hierarchy.t
(** The enhanced isa hierarchy when an enhancement exists, the fused one
    otherwise. *)

val part_of_hierarchy : t -> Hierarchy.t
val enhancement : t -> Sea.t option
val ontology : t -> Ontology.t
(** The fused (pre-enhancement) ontology. *)

val similar : t -> string -> string -> bool
(** The [~] predicate. Equal strings are always similar. Two terms known
    to the (enhanced) isa hierarchy are similar iff they co-reside in an
    enhanced node; two terms both absent from it fall back to a direct
    distance test [d(x, y) <= ε]; a known and an unknown term are never
    similar. The ontology being authoritative for its own terms is what
    makes the rewriter's [~] pushdown (a disjunction of exact tests over
    {!similar_terms}) semantics-preserving. *)

val similar_terms : t -> string -> string list
(** The term plus everything co-resident with it — the expansion the query
    rewriter uses for [~] conditions. *)

val leq_isa : t -> string -> string -> bool
(** [leq_isa t x y]: x isa y (reflexive on known terms), judged on the
    enhanced hierarchy so that similar spellings inherit each other's
    ancestors. *)

val isa_below : t -> string -> string list
(** Every term at-or-below the argument in the (enhanced) isa hierarchy —
    the expansion for [isa]/[below] conditions. *)

val leq_part : t -> string -> string -> bool
val part_below : t -> string -> string list

val knows_term : t -> string -> bool
(** Whether the term occurs in the (enhanced) isa hierarchy. The query
    rewriter only pushes a [~] expansion into XPath when the constant is
    known — for unknown constants the evaluator's direct-distance fallback
    must see every candidate. *)

val n_terms : t -> int
