(** A TOSS session: the assembled system of the paper's Figure 8.

    A session owns a set of named collections (the Xindice role), lazily
    precomputes one similarity-enhanced fused ontology over everything
    stored (Ontology Maker → fusion → SEA), and executes TQL queries in
    either semantics. Adding documents invalidates the precomputed SEO;
    it is rebuilt on the next query.

    {2 Concurrency}

    A session is safe to share across domains. Writes
    ({!insert}/{!add_xml}/{!add_collection}/{!invalidate}) and the
    (SEO, snapshot) capture done by {!pin} are serialized by an internal
    mutex; query {e execution} ({!query_at}) holds no lock at all — it
    reads only the immutable pinned state, so any number of queries run
    in parallel with each other and with one writer. The mutex is never
    held during execution, only during the O(1) pin (plus the SEO
    rebuild on the first pin after a write, which is the one deliberate
    stop-the-world moment: the ontology is global precomputed state). *)

type t

val create :
  ?metric:Toss_similarity.Metric.t ->
  ?eps:float ->
  ?lexicon:Toss_ontology.Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  unit ->
  t
(** The default measure is Levenshtein with [eps = 2]. *)

val add_collection : t -> string -> Toss_store.Collection.t
(** Creates (or returns) a named collection. *)

val add_document : t -> collection:string -> Toss_xml.Tree.t -> unit

val insert :
  t -> collection:string -> Toss_xml.Tree.t -> Toss_store.Collection.doc_id
(** {!add_document} returning the new document's id — the server needs
    it to answer the insert and to append the document file to its
    [--db] directory. Serialized with other writes and with {!pin} by
    the session mutex; in-flight {!query_at} calls are unaffected (they
    keep answering at their pinned version). *)

val version : t -> collection:string -> int
(** The collection's monotonic write counter ({!Toss_store.Collection.version});
    [0] for collections that don't exist yet. Together with the
    collection name this identifies the exact state a query ran
    against — the result-cache key and the anchor of the concurrency
    stress test's replay check. *)

val add_xml : t -> collection:string -> string -> (unit, Toss_xml.Parser.error) result
val collection : t -> string -> Toss_store.Collection.t option
val collection_names : t -> string list

val seo : t -> (Seo.t, string) result
(** The precomputed context, rebuilding it if documents changed since the
    last call. *)

type answer = {
  trees : Toss_xml.Tree.t list;
  stats : Executor.stats option;  (** [None] for projections *)
}

(** {2 Pinned queries}

    The parallel read path: {!pin} captures, atomically with respect to
    writers, the pair (SEO, collection snapshot) — one consistent
    version of the world. {!query_at} then executes against that capture
    with no locking, from whichever domain the caller chooses, and its
    answer is immune to concurrent inserts: a writer publishing version
    [v+1] mid-query never changes what a query pinned at [v] returns. *)

type pinned
(** One collection pinned at one version together with the SEO in force
    at that version. Immutable; may be used from any domain, any number
    of times, and outlives later writes. *)

val pin : t -> collection:string -> (pinned, string) result
(** Captures the collection's current snapshot and the current SEO under
    the session mutex — the linearization point of a read: everything a
    subsequent {!query_at} observes is decided here. Cheap when the SEO
    cache is warm (O(1) plus a mutex acquisition); rebuilds the SEO
    first if a write invalidated it. [Error] for unknown collections. *)

val pinned_version : pinned -> int
(** The pinned {!Toss_store.Collection.Snapshot.version} — what the
    server keys its result cache on and reports in answers. *)

val pinned_snapshot : pinned -> Toss_store.Collection.Snapshot.t
val pinned_seo : pinned -> (Seo.t, string) result
(** The captured SEO ([Error] when ontology construction failed —
    surfaced on use, as {!query} always has). *)

val query_at :
  ?mode:Executor.mode ->
  ?check:(unit -> unit) ->
  pinned ->
  string ->
  (answer, string) result
(** Parses a TQL string and runs it against the pinned version
    (selection through the store executor, projection through the
    in-memory algebra). Takes no lock and touches no mutable session
    state: safe to call concurrently from any domain. [check] is the
    executor's cooperative cancellation checkpoint (see
    {!Executor.select}); anything it raises propagates out of this
    call. It is not consulted on projections, which bypass the plan
    interpreter. *)

val query :
  ?mode:Executor.mode ->
  ?check:(unit -> unit) ->
  t ->
  collection:string ->
  string ->
  (answer, string) result
(** [{!pin} + {!query_at}]: runs against the version current at call
    time. *)

type pinned2
(** Two collections pinned together at one mutually consistent pair of
    versions, with the SEO in force — what a join executes against.
    Immutable and domain-safe, like {!pinned}. *)

val pin2 : t -> left:string -> right:string -> (pinned2, string) result
(** Pins both collections under one mutex acquisition — the
    linearization point of a join read. [Error] names the first unknown
    collection. *)

val pinned2_versions : pinned2 -> int * int
(** The (left, right) pinned versions — the server's join-cache key and
    what it reports in answers. *)

val join_at :
  ?mode:Executor.mode ->
  ?simjoin:bool ->
  ?check:(unit -> unit) ->
  pinned2 ->
  string ->
  (answer, string) result
(** Parses a TQL join (the pattern root must have two children, see
    {!Executor.join}) and runs it against the pinned pair. Lock-free and
    domain-safe as {!query_at}; [simjoin] gates the {!Plan.Sim_pair}
    lowering (see {!Executor.join}); [check] is the cooperative
    cancellation checkpoint, consulted inside the pairing probe loop. *)

val join :
  ?mode:Executor.mode ->
  ?simjoin:bool ->
  ?check:(unit -> unit) ->
  t ->
  left:string ->
  right:string ->
  string ->
  (answer, string) result
(** [{!pin2} + {!join_at}]: a TQL join across two collections at the
    versions current at call time. *)

val invalidate : t -> unit
(** Forces the SEO to be rebuilt on next use (e.g. after editing the
    lexicon-derived ontology externally). *)
