(** A TOSS session: the assembled system of the paper's Figure 8.

    A session owns a set of named collections (the Xindice role), lazily
    precomputes one similarity-enhanced fused ontology over everything
    stored (Ontology Maker → fusion → SEA), and executes TQL queries in
    either semantics. Adding documents invalidates the precomputed SEO;
    it is rebuilt on the next query. *)

type t

val create :
  ?metric:Toss_similarity.Metric.t ->
  ?eps:float ->
  ?lexicon:Toss_ontology.Lexicon.t ->
  ?content_tags:string list ->
  ?max_content_terms:int ->
  unit ->
  t
(** The default measure is Levenshtein with [eps = 2]. *)

val add_collection : t -> string -> Toss_store.Collection.t
(** Creates (or returns) a named collection. *)

val add_document : t -> collection:string -> Toss_xml.Tree.t -> unit

val insert :
  t -> collection:string -> Toss_xml.Tree.t -> Toss_store.Collection.doc_id
(** {!add_document} returning the new document's id — the server needs
    it to answer the insert and to append the document file to its
    [--db] directory. *)

val version : t -> collection:string -> int
(** The collection's monotonic write counter ({!Toss_store.Collection.version});
    [0] for collections that don't exist yet. Together with the
    collection name this identifies the exact state a query ran
    against — the result-cache key and the anchor of the concurrency
    stress test's replay check. *)

val add_xml : t -> collection:string -> string -> (unit, Toss_xml.Parser.error) result
val collection : t -> string -> Toss_store.Collection.t option
val collection_names : t -> string list

val seo : t -> (Seo.t, string) result
(** The precomputed context, rebuilding it if documents changed since the
    last call. *)

type answer = {
  trees : Toss_xml.Tree.t list;
  stats : Executor.stats option;  (** [None] for projections *)
}

val query :
  ?mode:Executor.mode ->
  ?check:(unit -> unit) ->
  t ->
  collection:string ->
  string ->
  (answer, string) result
(** Parses a TQL string and runs it against one collection (selection
    through the store executor, projection through the in-memory
    algebra). [check] is the executor's cooperative cancellation
    checkpoint (see {!Executor.select}); anything it raises propagates
    out of this call. It is not consulted on projections, which bypass
    the plan interpreter. *)

val join :
  ?mode:Executor.mode ->
  ?check:(unit -> unit) ->
  t ->
  left:string ->
  right:string ->
  string ->
  (answer, string) result
(** A TQL join across two collections; the TQL pattern's root must have
    two children (see {!Executor.join}). *)

val invalidate : t -> unit
(** Forces the SEO to be rebuilt on next use (e.g. after editing the
    lexicon-derived ontology externally). *)
