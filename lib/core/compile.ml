module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Doc = Toss_xml.Tree.Doc
module Metrics = Toss_obs.Metrics

let m_matchers = Metrics.counter "compile.matchers"
let m_nodes = Metrics.histogram "compile.nodes.visited"
let m_matches = Metrics.histogram "compile.matches"

(* One pattern node, flattened. [parent]/[children] index into the
   states array (pattern preorder, so state 0 is the pattern root and a
   parent always precedes its children). [edge] is the kind of the edge
   from the parent ([None] for the root). *)
type state = {
  label : int;
  parent : int;
  edge : Pattern.edge_kind option;
  children : int array;
  pred : Rewrite.pred;
}

type t = {
  mode : Rewrite.mode;
  pattern : Pattern.t;
  states : state array;
  eval : Condition.env -> Condition.t -> bool;
  (* Dispatch: a state whose predicate pins the tag ([Rewrite.pred_tag])
     can only match arena nodes carrying that tag, so the matcher looks
     states up by the node's tag instead of testing all of them.
     [untagged] states must still be tried everywhere. [ad_states] are
     the states whose edge is Ad — the only ones the end-of-node merge
     bubbles up. All three are derived from [states] at build time. *)
  tagged : (string, int list) Hashtbl.t;
  untagged : int list;
  ad_states : int list;
  (* The top-level conjuncts the per-state predicates do NOT already
     enforce: cross-label atoms, disjunctions, negations. Only these are
     re-evaluated over complete bindings; when every conjunct is local
     to one pattern label this is [True] and the final filter is free. *)
  residual : Condition.t;
}

type state_info = {
  state_label : int;
  state_parent : (int * Pattern.edge_kind) option;
  state_pred : string list;
}

let build ?(mode = Rewrite.Toss) seo (pattern : Pattern.t) =
  Metrics.incr m_matchers;
  let condition = pattern.Pattern.condition in
  let tbl = Hashtbl.create 8 in
  let count = ref 0 in
  let rec flatten parent edge (node : Pattern.node) =
    let idx = !count in
    incr count;
    let kids =
      List.map (fun (kind, child) -> flatten idx (Some kind) child) node.Pattern.children
    in
    Hashtbl.replace tbl idx (node.Pattern.label, parent, edge, kids);
    idx
  in
  ignore (flatten (-1) None pattern.Pattern.root);
  let states =
    Array.init !count (fun idx ->
        let label, parent, edge, kids = Hashtbl.find tbl idx in
        {
          label;
          parent;
          edge;
          children = Array.of_list kids;
          pred = Rewrite.compile_pred ~mode seo condition label;
        })
  in
  let eval =
    match mode with
    | Rewrite.Tax -> Condition.eval_tax
    | Rewrite.Toss -> Toss_condition.evaluator seo
  in
  let tagged = Hashtbl.create 8 in
  let untagged = ref [] in
  let ad_states = ref [] in
  for s = Array.length states - 1 downto 0 do
    (match Rewrite.pred_tag states.(s).pred with
    | Some tag ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tagged tag) in
        Hashtbl.replace tagged tag (s :: prev)
    | None -> untagged := s :: !untagged);
    if states.(s).edge = Some Pattern.Ad then ad_states := s :: !ad_states
  done;
  let labels = Pattern.labels pattern in
  let enforced_by_states conjunct =
    match conjunct with
    | Condition.True -> true
    | Condition.And _ | Condition.Or _ | Condition.Not _ -> false
    | atom -> (
        match Condition.labels_used atom with
        | [ l ] -> List.mem l labels
        | [ l1; l2 ] -> l1 = l2 && List.mem l1 labels
        | _ -> false)
  in
  let residual =
    Condition.conj
      (List.filter
         (fun c -> not (enforced_by_states c))
         (Condition.top_conjuncts condition))
  in
  {
    mode;
    pattern;
    states;
    eval;
    tagged;
    untagged = !untagged;
    ad_states = !ad_states;
    residual;
  }

let mode t = t.mode
let pattern t = t.pattern
let n_states t = Array.length t.states

let describe t =
  Array.to_list
    (Array.map
       (fun st ->
         {
           state_label = st.label;
           state_parent =
             (match st.edge with
             | None -> None
             | Some kind -> Some (t.states.(st.parent).label, kind));
           state_pred = Rewrite.pred_describe st.pred;
         })
       t.states)

type doc_stats = { nodes_visited : int; structural : int; n_matches : int }

let env_of doc binding label =
  Option.map (fun n -> (doc, n)) (List.assoc_opt label binding)

(* All ways to pick one sub-binding per child, in child order. The empty
   child list yields the single empty choice (a leaf state matches on
   its own predicate alone). *)
let rec product = function
  | [] -> [ [] ]
  | options :: rest ->
      let tails = product rest in
      List.concat_map (fun sub -> List.map (fun tail -> sub :: tail) tails) options

let run_doc ?(check = ignore) ?(pin_root = false) ?(skip_descendant = false) t doc =
  let k = Array.length t.states in
  let n = Doc.size doc in
  (* avail.(s).(m): complete sub-pattern bindings of state [s] available
     to a parent image at arena node [m] — matches at children of [m]
     for pc states, matches anywhere strictly below [m] for ad states
     (descendant matches bubble up via the end-of-node merge). *)
  let avail = Array.init k (fun _ -> Array.make n []) in
  let results = ref [] in
  let structural = ref 0 in
  let root_node = Doc.root doc in
  (* Reverse preorder: every arena descendant of [m] is processed —
     merges included — before [m] itself, so by the time a state is
     evaluated at [m] its children's availability at [m] is complete.
     Within one node the states are independent (a child image is always
     strictly below its parent image). *)
  for m = n - 1 downto 0 do
    check ();
    let parent = Doc.parent doc m in
    let try_state s =
      let st = t.states.(s) in
      if
        (s > 0 || (not pin_root) || m = root_node)
        && Rewrite.pred_test st.pred doc m
      then begin
        let emit =
          if s = 0 then fun binding ->
            incr structural;
            results := binding :: !results
          else
            match parent with
            | None -> fun _ -> ()
            | Some p -> fun binding -> avail.(s).(p) <- binding :: avail.(s).(p)
        in
        match st.children with
        | [||] -> emit [ (st.label, m) ]
        | children ->
            let options =
              Array.to_list (Array.map (fun c -> avail.(c).(m)) children)
            in
            if List.for_all (fun o -> o <> []) options then
              List.iter
                (fun choice -> emit ((st.label, m) :: List.concat choice))
                (product options)
      end
    in
    (* Only states whose pinned tag matches this node can pass their
       predicate, plus the states that pin no tag; within one node the
       order states are tried in is immaterial (a child image is always
       strictly below its parent image, and matches are sorted at the
       end). *)
    (match Hashtbl.find_opt t.tagged (Doc.tag doc m) with
    | Some candidates -> List.iter try_state candidates
    | None -> ());
    List.iter try_state t.untagged;
    (* Bubble ad-state matches found below [m] up to [m]'s parent.
       [skip_descendant] (fault injection) omits exactly this step,
       silently demoting every ad edge to pc semantics. *)
    match parent with
    | None -> ()
    | Some p ->
        if not skip_descendant then
          List.iter
            (fun s ->
              match avail.(s).(m) with
              | [] -> ()
              | below -> avail.(s).(p) <- List.rev_append below avail.(s).(p))
            t.ad_states
  done;
  let matches =
    (if t.residual = Condition.True then !results
     else
       List.filter (fun binding -> t.eval (env_of doc binding) t.residual) !results)
    |> List.sort compare
  in
  let stats =
    { nodes_visited = n; structural = !structural; n_matches = List.length matches }
  in
  Metrics.observe_int m_nodes n;
  Metrics.observe_int m_matches stats.n_matches;
  (matches, stats)
