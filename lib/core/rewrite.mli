(** Pattern-tree to XPath rewriting (Section 6, phase i).

    For every label of a pattern tree, builds the XPath query that fetches
    its candidate nodes from the store: the location path follows the
    pattern chain from the root (pc edges become [/], ad edges and the
    root become [//]); node-local conjuncts become name tests and
    predicates. Under {!Toss} mode, ontology and similarity conditions are
    expanded through the SEO — a [~] condition becomes a disjunction of
    exact tests over every co-similar term, an [isa]/[below]/[part_of]
    condition a disjunction over the ontology's below-set — whereas
    {!Tax} mode uses exact match for [~] and substring containment for the
    ontology operators, exactly how the paper ran its baseline.

    Rewriting is an optimization, and every pushed predicate must be
    implied by the atom it came from (candidates a query drops are never
    seen again): conditions that cannot be pushed into XPath (cross-label
    atoms, disjunctions, oversized expansions) are left to the assembly
    phase, which re-checks the full condition. Three atom families are
    deliberately not pushed because an "obvious" pushdown would be
    unsound — [~] over a constant the ontology does not know (the
    evaluator's raw-distance fallback must see every candidate),
    [below]/[above] over a primitive type name ("1999" is below "year"
    by type inference, not by the isa hierarchy), and [=] against a
    numeric constant (both evaluators compare numerically, so "1999.0"
    equals "1999" while an exact-text store predicate would drop it).
    The differential harness ([Toss_check]) pins all three. *)

type mode =
  | Tax  (** the paper's baseline: exact [~], substring ontology operators *)
  | Toss  (** SEO-expanded semantics *)

val label_queries :
  ?mode:mode ->
  ?max_expansion:int ->
  Seo.t ->
  Toss_tax.Pattern.t ->
  (int * Toss_store.Xpath.t) list
(** One query per pattern label, in preorder. [max_expansion] (default 64)
    caps the size of ontology expansions pushed into a predicate or name
    test; larger expansions degrade to unconstrained steps. *)

(** {1 Memoized SEO expansions}

    The raw {!Seo} expansion walks are memoized per (operator, constant)
    pair: one pattern typically consults the same constant several times
    (tag options, content predicates, both join sides, the explainer).
    The cache is keyed on the physical SEO value, so rebuilding the
    ontology invalidates it wholesale. All rewriting goes through these;
    other layers (e.g. {!Explain}) should too. *)

val similar_terms : Seo.t -> string -> string list
(** Memoized {!Seo.similar_terms}. *)

val isa_below : Seo.t -> string -> string list
(** Memoized {!Seo.isa_below}. *)

val part_below : Seo.t -> string -> string list
(** Memoized {!Seo.part_below}. *)

(** {1 Compiled node predicates}

    The per-label predicate the pattern compiler ({!Compile}) evaluates
    inline during its single arena pass — the same node-local conjuncts
    the interpreter's embedding prefilter checks, but with every SEO
    expansion resolved {e once} at compile time into a closure (a hash-set
    membership test where the expansion is finite and authoritative, the
    mode's evaluator under a single-label environment otherwise) instead
    of being re-expanded per XPath call. Unlike the XPath pushdowns,
    which are one-sided prefilters later re-checked, a compiled predicate
    must be {e exactly} the atom's satisfaction relation; the unsound
    pushdown families (unknown-term [~], type-name [below]/[above],
    numeric [=]) therefore compile to evaluator closures rather than
    being dropped. *)

type pred
(** The compiled node-local predicate of one pattern label. *)

val compile_pred : ?mode:mode -> Seo.t -> Toss_tax.Condition.t -> int -> pred
(** [compile_pred ~mode seo condition label] compiles the node-local
    top-level conjuncts of [label] (per
    {!Toss_tax.Condition.local_atoms}). Expansion sets are built through
    the memoized {!similar_terms}/{!isa_below}/{!part_below}, so a
    pattern's compilation shares hierarchy walks with the explainer and
    any XPath rewriting of the same constants. *)

val pred_test : pred -> Toss_xml.Tree.Doc.t -> Toss_xml.Tree.Doc.node -> bool
(** Whether a node satisfies every compiled conjunct. Agrees with
    evaluating each conjunct under an environment binding only this
    label, by construction. *)

val pred_describe : pred -> string list
(** One line per compiled conjunct, annotated with the chosen strategy:
    [[set:N]] (membership in an [N]-term expansion), [[set:N + type]]
    (expansion plus the type-inference leg), [[const:false]] (statically
    unsatisfiable), [[string-eq]]/[[string-neq]] (plain string
    comparison), or [[direct]] (evaluator closure). Feeds the EXPLAIN
    rendering of compiled plans. *)

val pred_tag : pred -> string option
(** The tag this predicate requires outright, when one of its conjuncts
    is a tag equality against a constant that reduces to plain string
    comparison (see [[string-eq]] above). A node with any other tag is
    guaranteed to fail {!pred_test}, so the matcher can dispatch states
    by arena-node tag instead of testing every state at every node.
    [None] when no conjunct pins the tag. *)

val expand_condition : Seo.t -> Toss_tax.Condition.t -> Toss_tax.Condition.t
(** The condition with every [~] and [isa]-family atom over a constant
    replaced by the equivalent disjunction of exact atoms — what
    Section 3 calls transforming the user query to take the SEO into
    account. [below]/[above] atoms whose constant names a primitive type
    are left alone (their type-inference leg has no finite expansion).
    Used for inspection and testing; the executor evaluates conditions
    directly against the SEO instead. *)
