(** Signature-based similarity joins (prefix filtering with an adaptive
    overlap constraint, after Xu & Lu).

    The nested-loop pairing of a join whose cross condition is a [~] or
    [isa] atom scores every left×right pair — O(n²) predicate
    evaluations. This module replaces the quadratic candidate generation
    with set-overlap filtering over {e taxonomic signatures} derived
    from the SEO:

    - the signature of a value under [~] is its similarity cluster (the
      value plus every co-resident term of the enhanced hierarchy, via
      the memoized {!Rewrite.similar_terms}); two known values are
      similar only if their clusters intersect;
    - the signature of a value under [isa] is its at-or-below set
      ({!Rewrite.isa_below}) on the upper side and the value itself on
      the lower side; [x isa y] holds only if [x ∈ below(y)];
    - in {!Rewrite.Tax} mode [~] is string equality and the signature is
      the value itself.

    Build-side records are indexed under a {e prefix} of their signature
    ordered by ascending global token frequency (rare tokens first), and
    the prefix length adapts per record: a record whose signature is a
    multi-term cluster must share at least two tokens with any distinct
    similar partner (each endpoint occurs in both clusters), so its
    least-frequent [|sig| - 1] tokens suffice; singleton signatures and
    [isa] signatures require overlap one and index in full. Probing
    applies the same rule to the probe signature, so candidate sets
    shrink as ε tightens clusters.

    Values outside the ontology fall back to the metric predicate
    [d(x, y) <= ε], which has no finite signature; the index routes them
    to a brute-force bucket probed only by unknown values (a known and
    an unknown term are never similar — see {!Seo.similar}).

    Candidate generation is {e complete} (a pair the filter skips cannot
    satisfy the atom, hence not the cross condition it is a top-level
    conjunct of) but not sound on its own: the caller must re-check the
    full cross condition on every candidate. {!Plan.Sim_pair} does. *)

type scheme
(** A signature scheme: how probe- and build-side values expand into
    token sets, and which overlap constraint applies. Pure data plus
    memoized SEO walks; cheap to build at plan time. *)

val sim_scheme : mode:Rewrite.mode -> Seo.t -> scheme
(** The scheme for a [~] cross atom. [Toss] mode expands known values
    into their similarity clusters and routes unknown values to the
    metric-fallback bucket; [Tax] mode ([~] = string equality) uses
    singleton signatures throughout. *)

val isa_scheme : below:[ `Probe | `Build ] -> Seo.t -> scheme
(** The scheme for an [isa] cross atom under {!Rewrite.Toss} semantics.
    [below] names the side whose value must lie at-or-below the other's:
    that side keeps singleton signatures while the upper side expands
    into its at-or-below set. Tax-mode [isa] (substring containment)
    admits no finite signature — the planner must not select the
    operator for it. *)

val scheme_name : scheme -> string
(** For plan rendering: ["cluster"], ["equality"] or ["isa-below"]. *)

val overlap_name : scheme -> string
(** For plan rendering: ["adaptive"] when multi-token signatures demand
    overlap two, ["1"] when every signature requires a single shared
    token. *)

type index
(** A frequency-ordered prefix index over the build side of one pairing,
    plus the metric-fallback bucket. Built once per execution; valid for
    the value array it was built from. *)

val build :
  ?check:(unit -> unit) ->
  ?drop_last_prefix_token:bool ->
  scheme ->
  string option array ->
  index
(** [build scheme values] indexes the build side; [values.(i)] is the
    build atom term's value under binding [i] ([None] when unbound — an
    unbound term falsifies the atom, so the binding pairs with nothing
    and is not indexed). [check] is the cooperative cancellation hook,
    called once per record. [drop_last_prefix_token] is the
    [simjoin-prefix-too-short] fault of the differential harness: it
    truncates every indexed prefix by one token, losing pairs. Testing
    only. *)

val probe : index -> string -> int list
(** Ordinals (into the build array) of every candidate partner for a
    probe value, strictly ascending — so verified pairs are emitted in
    build-input order and the operator's output order matches the nested
    loop's. Complete with respect to the scheme's atom; the caller
    re-checks the exact predicate. *)

val n_indexed : index -> int
(** Build records reachable through the prefix index (diagnostics). *)

val n_fallback : index -> int
(** Build records in the metric-fallback bucket (diagnostics). *)
