(** Cost-aware compilation of pattern trees into {!Plan} operator trees.

    The planner runs during the executor's [rewrite] phase: it rewrites
    the pattern into per-label XPath queries (through {!Rewrite}), then
    uses the pinned snapshot's per-term statistics
    ({!Toss_store.Collection.Snapshot.estimate_rows}) to shape the
    physical plan. Planning reads only the immutable snapshot (statistics
    are version-local), so it is safe from any domain and consistent with
    the execution that interprets the plan against the same snapshot:

    - label scans are ordered most-selective-first, so the candidate
      tables that prune hardest are populated cheapest-first;
    - a [Doc_prune] operator drops documents lacking candidates for any
      required label before embedding (an embedding binds every label,
      so those documents cannot contribute);
    - join cross-conditions whose top-level conjuncts include an
      equality split across the two sides are lowered to [Hash_pair]
      (hash-partitioned pairing with a full recheck on key matches);
      otherwise a top-level [~]/[isa] conjunct split across the sides is
      lowered to [Sim_pair] (signature prefix filtering with an adaptive
      overlap constraint — see {!Simjoin} — plus the same full recheck)
      whenever the build side's statistics show at least two documents;
      anything else falls back to [Nested_loop_pair].

    With [optimize:false] the same IR is produced but naively — rewrite
    order, no statistics, no pruning, nested-loop pairing — which is the
    CLI's [--no-planner]: the legacy execution strategy expressed in the
    new engine, used as the equivalence baseline.

    With [compile:true] (the default) the scan/prune/embed pipeline is
    replaced wholesale by a single {!Plan.Compiled_match} leaf per side:
    the pattern is compiled once ({!Compile.build}) and every document
    of the snapshot is matched in one arena pass, with the
    SEO-expanded predicates evaluated inline instead of being lowered
    to XPath scans. [compile:false] (the CLI's [--no-compile]) keeps
    the interpreted pipeline — the in-engine reference the differential
    harness compares against. [use_index], [max_expansion] and
    [optimize]'s scan shaping only affect the interpreted pipeline;
    under a join, [optimize] still picks the pairing strategy either
    way. *)

val plan_select :
  ?mode:Rewrite.mode ->
  ?use_index:bool ->
  ?max_expansion:int ->
  ?optimize:bool ->
  ?compile:bool ->
  Seo.t ->
  Toss_store.Collection.Snapshot.t ->
  pattern:Toss_tax.Pattern.t ->
  sl:int list ->
  Plan.t
(** The plan for [σ_{P,SL}] over the snapshot. [use_index] (default
    true) gates the per-value statistics refinement so planning never
    forces an index build the execution itself would not perform;
    [compile] (default true) selects the compiled matcher over the
    interpreted scan/prune/embed pipeline. *)

val plan_join :
  ?mode:Rewrite.mode ->
  ?use_index:bool ->
  ?max_expansion:int ->
  ?optimize:bool ->
  ?compile:bool ->
  ?simjoin:bool ->
  Seo.t ->
  Toss_store.Collection.Snapshot.t ->
  Toss_store.Collection.Snapshot.t ->
  pattern:Toss_tax.Pattern.t ->
  sl:int list ->
  Plan.t
(** The plan for a condition join. The pattern's root must have exactly
    two children (the left and right sub-patterns); raises
    [Invalid_argument] otherwise, as {!Executor.join} always has. Under
    [compile] each side becomes its own {!Plan.Compiled_match} leaf
    feeding the shared pairing operators. [simjoin] (default true; the
    CLI's [--no-simjoin] when off) gates the [Sim_pair] lowering only —
    with it off, similarity cross-conditions keep the nested-loop
    pairing, the escape hatch and differential reference. *)
