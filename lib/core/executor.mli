(** The Query Executor (TOSS architecture component 3).

    Executes pattern-tree queries against a store collection in the three
    phases the paper times (Section 6): (i) parse/rewrite the pattern tree
    into XPath queries, (ii) execute the XPath queries against the store,
    (iii) assemble the fetched candidates into TAX-form witness trees
    (re-checking the full selection condition). The [mode] selects the
    baseline TAX semantics or the ontology-aware TOSS semantics; both run
    the same pipeline, so measured differences reflect the ontology
    accesses, as in the paper.

    Both entry points are facades over {!Planner.plan_select} /
    {!Planner.plan_join} followed by {!Plan.run}: phase (i) builds the
    physical plan (scan ordering, document pruning, and the join pairing
    strategy are decided here from collection statistics), phases (ii)
    and (iii) interpret it. [planner:false] runs the same query through
    a deliberately naive plan — rewrite-order scans, no pruning,
    nested-loop pairing — which is the pre-planner execution strategy
    and the CLI's [--no-planner]; results are identical either way, only
    the work to produce them changes.

    By default ([compile:true]) the plan's matching side is a
    {!Plan.Compiled_match} leaf: the pattern is compiled once into a
    single-pass arena matcher ({!Compile}) and no XPath scans are
    issued, so phase (ii) is empty and phase (iii) holds one [match]
    span per document. [compile:false] — the CLI's [--no-compile] —
    keeps the interpreted scan/prune/embed pipeline, which doubles as
    the in-engine reference implementation the differential harness
    ([toss check]) compares witness-for-witness against the compiled
    matcher. Results are identical either way. *)

type mode = Rewrite.mode = Tax | Toss

type phases = {
  rewrite_s : float;  (** phase (i) seconds, including planning *)
  execute_s : float;  (** phase (ii) seconds *)
  assemble_s : float;  (** phase (iii) seconds *)
}

type stats = {
  phases : phases;
  n_candidates : int;  (** candidate nodes fetched across labels *)
  n_embeddings : int;  (** pattern embeddings found during assembly *)
  n_results : int;  (** witness trees returned (after deduplication) *)
  queries : (int * string) list;
      (** label -> XPath sent to the store, in scan (execution) order —
          most-selective-first when the planner is on *)
  trace : Toss_obs.Span.t;
      (** the full span tree of this run; [phases] is a view over its
          [rewrite]/[execute]/[assemble] children, so the two always
          agree. Under [execute] there is one [xpath] span per label
          query (annotated with [rows]/[indexed]/[scanned] by the store)
          and under [assemble] a [prune] span per pruned side
          (planner only, annotated [docs_in]/[docs_out]), one [embed]
          span per surviving document (annotated with the enumeration
          funnel) and, for joins, a [pair] span (annotated with the
          [strategy] and pair counts) — the operators EXPLAIN ANALYZE
          renders. Compiled runs (the default) issue no scans: [execute]
          is empty and [assemble] holds one [match] span per document
          (annotated [nodes]/[structural]/[matches]) instead of
          [prune]/[embed]. Allocation deltas are populated when
          [Toss_obs.Span.set_enabled true] was called beforehand.

          When a [Toss_obs.Event] sink is installed, a run additionally
          emits the event stream [query_start], [rewrite_done], one
          [xpath_exec] per label query, one [embed_done] per surviving
          document, and [query_end] (carrying this trace). *)
}

val total_s : phases -> float
(** Sum of the three phase durations — the end-to-end query time the
    paper reports. *)

val select :
  ?mode:mode ->
  ?use_index:bool ->
  ?max_expansion:int ->
  ?planner:bool ->
  ?compile:bool ->
  ?check:(unit -> unit) ->
  Seo.t ->
  Toss_store.Collection.Snapshot.t ->
  pattern:Toss_tax.Pattern.t ->
  sl:int list ->
  Toss_xml.Tree.t list * stats
(** [σ_{P,SL}] over every document of the pinned snapshot. Planning and
    execution both read the same immutable version, so the answer is
    exactly the one a stop-the-world run at that version would produce —
    concurrent writers advancing the underlying collection have no
    effect on an in-flight call. The call itself takes no locks and is
    safe to run on any domain (its observability side effects go to the
    domain-safe {!Toss_obs} registry and the calling domain's span
    context). [planner] (default true) enables cost-based scan ordering
    and candidate-doc pruning; [compile] (default true) runs the
    compiled single-pass matcher instead of the interpreted pipeline.
    [check] is forwarded to {!Plan.run} as its cooperative cancellation
    checkpoint (the query server's per-request deadline — under a
    compiled plan it fires once per arena node); whatever it raises
    propagates out of this call. *)

val join :
  ?mode:mode ->
  ?use_index:bool ->
  ?max_expansion:int ->
  ?planner:bool ->
  ?compile:bool ->
  ?simjoin:bool ->
  ?check:(unit -> unit) ->
  Seo.t ->
  Toss_store.Collection.Snapshot.t ->
  Toss_store.Collection.Snapshot.t ->
  pattern:Toss_tax.Pattern.t ->
  sl:int list ->
  Toss_xml.Tree.t list * stats
(** Condition join of two pinned snapshots (same isolation and
    domain-safety guarantees as {!select}). The pattern's root must have
    exactly two children — the sub-pattern matched in the left collection
    and the one matched in the right (as in the paper's Figure 14); the
    root itself stands for the product node and is not matched against
    either store. An ad edge from the root lets the side match anywhere in
    a document; a pc edge pins it to the document root. Cross-collection
    atoms are evaluated during assembly; with [planner] on, equality
    atoms split across the sides are used to hash-partition the pairing,
    and failing that a [~]/[isa] atom selects the signature-indexed
    similarity pairing ({!Plan.Sim_pair}) when the build side is big
    enough (the full condition is still re-checked on every key match or
    overlap candidate). [simjoin:false] — the CLI's [--no-simjoin] —
    disables only the similarity pairing, keeping the nested-loop path
    as escape hatch and differential reference. *)
