module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Collection = Toss_store.Collection
module Database = Toss_store.Database
module Metric = Toss_similarity.Metric
module Levenshtein = Toss_similarity.Levenshtein

type t = {
  database : Database.t;
  metric : Metric.t;
  eps : float;
  lexicon : Toss_ontology.Lexicon.t option;
  content_tags : string list option;
  max_content_terms : int option;
  mutable cached_seo : (Seo.t, string) result option;
}

let create ?(metric = Levenshtein.metric) ?(eps = 2.0) ?lexicon ?content_tags
    ?max_content_terms () =
  {
    database = Database.create ();
    metric;
    eps;
    lexicon;
    content_tags;
    max_content_terms;
    cached_seo = None;
  }

let invalidate t = t.cached_seo <- None

let add_collection t name =
  match Database.collection t.database name with
  | Some c -> c
  | None -> Database.create_collection t.database name

let insert t ~collection tree =
  let id = Collection.add_document (add_collection t collection) tree in
  invalidate t;
  id

let add_document t ~collection tree = ignore (insert t ~collection tree)

let version t ~collection =
  match Database.collection t.database collection with
  | Some c -> Collection.version c
  | None -> 0

let add_xml t ~collection xml =
  match Collection.add_xml (add_collection t collection) xml with
  | Ok _ ->
      invalidate t;
      Ok ()
  | Error e -> Error e

let collection t name = Database.collection t.database name
let collection_names t = Database.collection_names t.database

let all_docs t =
  List.concat_map
    (fun name ->
      let c = Database.collection_exn t.database name in
      List.map (fun id -> Collection.doc c id) (Collection.doc_ids c))
    (collection_names t)

let seo t =
  match t.cached_seo with
  | Some result -> result
  | None ->
      let result =
        Seo.of_documents ~metric:t.metric ~eps:t.eps ?lexicon:t.lexicon
          ?content_tags:t.content_tags ?max_content_terms:t.max_content_terms
          (all_docs t)
      in
      t.cached_seo <- Some result;
      result

type answer = { trees : Tree.t list; stats : Executor.stats option }

let with_query t text f =
  match Tql.parse text with
  | Error msg -> Error ("TQL: " ^ msg)
  | Ok q -> (
      match seo t with
      | Error msg -> Error msg
      | Ok context -> f q context)

let query ?(mode = Executor.Toss) ?check t ~collection:name text =
  match Database.collection t.database name with
  | None -> Error (Printf.sprintf "unknown collection %S" name)
  | Some coll ->
      with_query t text (fun q context ->
          match q.Tql.target with
          | Tql.Select sl ->
              let trees, stats =
                Executor.select ~mode ?check context coll ~pattern:q.Tql.pattern
                  ~sl
              in
              Ok { trees; stats = Some stats }
          | Tql.Project pl ->
              let eval =
                match mode with
                | Executor.Tax -> Toss_tax.Condition.eval_tax
                | Executor.Toss -> Toss_condition.evaluator context
              in
              let inputs =
                List.map
                  (fun id -> Doc.to_tree (Collection.doc coll id))
                  (Collection.doc_ids coll)
              in
              let trees =
                Toss_tax.Algebra.project ~eval ~pattern:q.Tql.pattern ~pl inputs
              in
              Ok { trees; stats = None })

let join ?(mode = Executor.Toss) ?check t ~left ~right text =
  match (Database.collection t.database left, Database.collection t.database right) with
  | None, _ -> Error (Printf.sprintf "unknown collection %S" left)
  | _, None -> Error (Printf.sprintf "unknown collection %S" right)
  | Some l, Some r ->
      with_query t text (fun q context ->
          match q.Tql.target with
          | Tql.Project _ -> Error "join does not support PROJECT"
          | Tql.Select sl ->
              let trees, stats =
                Executor.join ~mode ?check context l r ~pattern:q.Tql.pattern ~sl
              in
              Ok { trees; stats = Some stats })
