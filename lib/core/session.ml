module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Collection = Toss_store.Collection
module Database = Toss_store.Database
module Metric = Toss_similarity.Metric
module Levenshtein = Toss_similarity.Levenshtein

type t = {
  lock : Mutex.t;
      (* guards [cached_seo] and makes (SEO, snapshot) capture atomic
         with respect to writes; never held while a query executes *)
  database : Database.t;
  metric : Metric.t;
  eps : float;
  lexicon : Toss_ontology.Lexicon.t option;
  content_tags : string list option;
  max_content_terms : int option;
  mutable cached_seo : (Seo.t, string) result option;
}

let create ?(metric = Levenshtein.metric) ?(eps = 2.0) ?lexicon ?content_tags
    ?max_content_terms () =
  {
    lock = Mutex.create ();
    database = Database.create ();
    metric;
    eps;
    lexicon;
    content_tags;
    max_content_terms;
    cached_seo = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let invalidate t = locked t (fun () -> t.cached_seo <- None)

let add_collection_unlocked t name =
  match Database.collection t.database name with
  | Some c -> c
  | None -> Database.create_collection t.database name

let add_collection t name = locked t (fun () -> add_collection_unlocked t name)

let insert t ~collection tree =
  locked t (fun () ->
      let id = Collection.add_document (add_collection_unlocked t collection) tree in
      t.cached_seo <- None;
      id)

let add_document t ~collection tree = ignore (insert t ~collection tree)

let version t ~collection =
  match Database.collection t.database collection with
  | Some c -> Collection.version c
  | None -> 0

let add_xml t ~collection xml =
  locked t (fun () ->
      match Collection.add_xml (add_collection_unlocked t collection) xml with
      | Ok _ ->
          t.cached_seo <- None;
          Ok ()
      | Error e -> Error e)

let collection t name = Database.collection t.database name
let collection_names t = Database.collection_names t.database

let all_docs t =
  List.concat_map
    (fun (_, snap) ->
      List.map
        (fun id -> Collection.Snapshot.doc snap id)
        (Collection.Snapshot.doc_ids snap))
    (Database.snapshot t.database)

let seo_unlocked t =
  match t.cached_seo with
  | Some result -> result
  | None ->
      let result =
        Seo.of_documents ~metric:t.metric ~eps:t.eps ?lexicon:t.lexicon
          ?content_tags:t.content_tags ?max_content_terms:t.max_content_terms
          (all_docs t)
      in
      t.cached_seo <- Some result;
      result

let seo t = locked t (fun () -> seo_unlocked t)

(* ------------------------- pinned queries ------------------------- *)

type pinned = {
  pin_seo : (Seo.t, string) result;
  pin_snap : Collection.Snapshot.t;
}

let pin t ~collection =
  locked t (fun () ->
      match Database.collection t.database collection with
      | None -> Error (Printf.sprintf "unknown collection %S" collection)
      | Some coll ->
          let pin_seo = seo_unlocked t in
          Ok { pin_seo; pin_snap = Collection.snapshot coll })

type pinned2 = {
  pin2_seo : (Seo.t, string) result;
  pin2_left : Collection.Snapshot.t;
  pin2_right : Collection.Snapshot.t;
}

let pin2 t ~left ~right =
  locked t (fun () ->
      match
        (Database.collection t.database left, Database.collection t.database right)
      with
      | None, _ -> Error (Printf.sprintf "unknown collection %S" left)
      | _, None -> Error (Printf.sprintf "unknown collection %S" right)
      | Some l, Some r ->
          let pin2_seo = seo_unlocked t in
          Ok
            {
              pin2_seo;
              pin2_left = Collection.snapshot l;
              pin2_right = Collection.snapshot r;
            })

let pinned_version p = Collection.Snapshot.version p.pin_snap
let pinned_snapshot p = p.pin_snap
let pinned_seo p = p.pin_seo

let pinned2_versions p =
  (Collection.Snapshot.version p.pin2_left, Collection.Snapshot.version p.pin2_right)

type answer = { trees : Tree.t list; stats : Executor.stats option }

let with_query seo_result text f =
  match Tql.parse text with
  | Error msg -> Error ("TQL: " ^ msg)
  | Ok q -> (
      match seo_result with
      | Error msg -> Error msg
      | Ok context -> f q context)

let query_at ?(mode = Executor.Toss) ?check p text =
  let snap = p.pin_snap in
  with_query p.pin_seo text (fun q context ->
      match q.Tql.target with
      | Tql.Select sl ->
          let trees, stats =
            Executor.select ~mode ?check context snap ~pattern:q.Tql.pattern ~sl
          in
          Ok { trees; stats = Some stats }
      | Tql.Project pl ->
          let eval =
            match mode with
            | Executor.Tax -> Toss_tax.Condition.eval_tax
            | Executor.Toss -> Toss_condition.evaluator context
          in
          let inputs =
            List.map
              (fun id -> Doc.to_tree (Collection.Snapshot.doc snap id))
              (Collection.Snapshot.doc_ids snap)
          in
          let trees =
            Toss_tax.Algebra.project ~eval ~pattern:q.Tql.pattern ~pl inputs
          in
          Ok { trees; stats = None })

let query ?mode ?check t ~collection text =
  match pin t ~collection with
  | Error msg -> Error msg
  | Ok p -> query_at ?mode ?check p text

let join_at ?(mode = Executor.Toss) ?(simjoin = true) ?check p text =
  with_query p.pin2_seo text (fun q context ->
      match q.Tql.target with
      | Tql.Project _ -> Error "join does not support PROJECT"
      | Tql.Select sl ->
          let trees, stats =
            Executor.join ~mode ~simjoin ?check context p.pin2_left p.pin2_right
              ~pattern:q.Tql.pattern ~sl
          in
          Ok { trees; stats = Some stats })

let join ?mode ?simjoin ?check t ~left ~right text =
  match pin2 t ~left ~right with
  | Error msg -> Error msg
  | Ok p -> join_at ?mode ?simjoin ?check p text
