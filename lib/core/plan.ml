module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Embedding = Toss_tax.Embedding
module Witness = Toss_tax.Witness
module Algebra = Toss_tax.Algebra
module Collection = Toss_store.Collection
module Xpath = Toss_store.Xpath
module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Metrics = Toss_obs.Metrics
module Span = Toss_obs.Span
module Event = Toss_obs.Event
module Names = Toss_obs.Names

type scan = { scan_label : int; xpath : Xpath.t; est_rows : int option }

type side = Single | Left | Right

type embed_spec = {
  side : side;
  sub_pattern : Pattern.t;
  sub_sl : int list;
  pin_root : bool;
}

type node =
  | Label_scan of scan
  | Candidate_filter of { side : side; scans : node list }
  | Doc_prune of { required : int list; input : node }
  | Embed of { spec : embed_spec; input : node }
  | Nested_loop_pair of {
      cross_condition : Condition.t;
      left : node;
      right : node;
    }
  | Hash_pair of {
      keys : (Condition.term * Condition.term) list;
      cross_condition : Condition.t;
      left : node;
      right : node;
    }
  | Sim_pair of {
      atom : Condition.t;
      lterm : Condition.term;
      rterm : Condition.term;
      scheme : Simjoin.scheme;
      cross_condition : Condition.t;
      left : node;
      right : node;
    }
  | Dedup of node
  | Compiled_match of { spec : embed_spec; matcher : Compile.t }

type t = { mode : Rewrite.mode; root : node }

let scan_of = function
  | Label_scan s -> s
  | _ -> invalid_arg "Plan: Candidate_filter children must be Label_scan nodes"

let rec node_scans = function
  | Label_scan s -> [ s ]
  | Candidate_filter { scans; _ } -> List.concat_map node_scans scans
  | Doc_prune { input; _ } | Embed { input; _ } | Dedup input -> node_scans input
  | Nested_loop_pair { left; right; _ }
  | Hash_pair { left; right; _ }
  | Sim_pair { left; right; _ } ->
      node_scans left @ node_scans right
  | Compiled_match _ -> []

let scans t = node_scans t.root
let label_queries t = List.map (fun s -> (s.scan_label, s.xpath)) (scans t)

(* ------------------------- rendering ------------------------------ *)

let side_suffix = function
  | Single -> ""
  | Left -> " side=left"
  | Right -> " side=right"

let labels_str labels = String.concat "," (List.map string_of_int labels)

let atom_str (l, r) =
  Format.asprintf "%a" Condition.pp (Condition.Cmp (l, Condition.Eq, r))

let to_string t =
  let buf = Buffer.create 256 in
  let line indent fmt =
    Buffer.add_string buf (String.make indent ' ');
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let rec render indent = function
    | Label_scan s ->
        line indent "scan #%d: %s%s" s.scan_label (Xpath.to_string s.xpath)
          (match s.est_rows with
          | None -> ""
          | Some n -> Printf.sprintf "  (~%d rows)" n)
    | Candidate_filter { side; scans } ->
        line indent "candidate-filter%s" (side_suffix side);
        List.iter (render (indent + 2)) scans
    | Doc_prune { required; input } ->
        line indent "doc-prune labels=[%s]" (labels_str required);
        render (indent + 2) input
    | Embed { spec; input } ->
        line indent "embed%s sl=[%s]%s" (side_suffix spec.side)
          (labels_str spec.sub_sl)
          (if spec.pin_root then " pin-root" else "");
        render (indent + 2) input
    | Nested_loop_pair { cross_condition; left; right } ->
        line indent "nested-loop-pair on %s"
          (Format.asprintf "%a" Condition.pp cross_condition);
        render (indent + 2) left;
        render (indent + 2) right
    | Hash_pair { keys; cross_condition; left; right } ->
        line indent "hash-pair keys=[%s] recheck %s"
          (String.concat "; " (List.map atom_str keys))
          (Format.asprintf "%a" Condition.pp cross_condition);
        render (indent + 2) left;
        render (indent + 2) right
    | Sim_pair { atom; scheme; cross_condition; left; right; _ } ->
        line indent "sim-pair on %s sig=%s overlap=%s recheck %s"
          (Format.asprintf "%a" Condition.pp atom)
          (Simjoin.scheme_name scheme)
          (Simjoin.overlap_name scheme)
          (Format.asprintf "%a" Condition.pp cross_condition);
        render (indent + 2) left;
        render (indent + 2) right
    | Dedup input ->
        line indent "dedup";
        render (indent + 2) input
    | Compiled_match { spec; matcher } ->
        line indent "compiled-match%s states=%d sl=[%s]%s" (side_suffix spec.side)
          (Compile.n_states matcher) (labels_str spec.sub_sl)
          (if spec.pin_root then " pin-root" else "");
        List.iter
          (fun (info : Compile.state_info) ->
            line (indent + 2) "state #%d %s: %s" info.Compile.state_label
              (match info.Compile.state_parent with
              | None -> "(root)"
              | Some (parent, Pattern.Pc) -> Printf.sprintf "(pc of #%d)" parent
              | Some (parent, Pattern.Ad) -> Printf.sprintf "(ad of #%d)" parent)
              (match info.Compile.state_pred with
              | [] -> "true"
              | preds -> String.concat "; " preds))
          (Compile.describe matcher)
  in
  line 0 "plan mode=%s" (match t.mode with Rewrite.Tax -> "tax" | Rewrite.Toss -> "toss");
  render 0 t.root;
  (* drop the trailing newline: callers add their own framing *)
  let s = Buffer.contents buf in
  if s <> "" && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------- execution ------------------------------ *)

type exec_stats = { n_candidates : int; n_embeddings : int }

let m_pruned = Metrics.histogram "plan.docs.pruned"

(* Deliberate sabotage for the differential harness (lib/check): each
   variant disables one invariant the operators rely on, so `toss check
   --inject-fault` can prove the oracle actually detects a broken
   interpreter. Never set outside tests. *)
type fault =
  | No_fault
  | Hash_no_recheck
  | Prune_first_only
  | No_dedup
  | Compile_skip_descendant_edge
  | Simjoin_prefix_too_short
  | Simjoin_no_recheck

let fault = ref No_fault

(* Set semantics preserving first-occurrence (document) order. *)
let dedup trees =
  if !fault = No_dedup then trees
  else
    let seen = Hashtbl.create 64 in
    List.filter
      (fun t ->
        if Hashtbl.mem seen t then false
        else begin
          Hashtbl.replace seen t ();
          true
        end)
      trees

(* Hash-partitioning key for one term value. Both evaluators compare
   string values numerically whenever both sides parse as numbers (the
   TOSS evaluator's unit conversions reachable from string-typed values
   are all numeric identities), so mapping every numeric-parsing value
   to a canonical float rendering makes key equality a superset of
   evaluator equality: the hash never drops a pair the nested loop would
   accept, and the full cross-condition recheck discards the rest. *)
let normalize_key s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Printf.sprintf "%.17g" f
  | None -> s

let binding_env doc bind label =
  match List.assoc_opt label bind with Some n -> Some (doc, n) | None -> None

(* The composite key of one binding, [None] when a key term is unbound —
   an unbound term falsifies its (top-level) equality atom, hence the
   whole cross condition, so such bindings pair with nothing. *)
let key_of env terms =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | t :: rest -> (
        match Condition.term_value env t with
        | None -> None
        | Some v -> go (normalize_key v :: acc) rest)
  in
  go [] terms

(* Internal value flowing between operators during interpretation. *)
type value =
  | Docs of side * Collection.doc_id list
  | Bindings of embed_spec * (Doc.t * (int * Doc.node) list) list
  | Trees of Tree.t list

let expect_docs = function
  | Docs (side, ids) -> (side, ids)
  | _ -> invalid_arg "Plan.run: operator expects a document stream"

let expect_bindings = function
  | Bindings (spec, bs) -> (spec, bs)
  | _ -> invalid_arg "Plan.run: pairing expects embedded bindings"

let rec candidate_filters = function
  | Candidate_filter { side; scans } -> [ (side, List.map scan_of scans) ]
  | Label_scan _ | Compiled_match _ -> []
  | Doc_prune { input; _ } | Embed { input; _ } | Dedup input ->
      candidate_filters input
  | Nested_loop_pair { left; right; _ }
  | Hash_pair { left; right; _ }
  | Sim_pair { left; right; _ } ->
      candidate_filters left @ candidate_filters right

(* Phase ii: run every scan of one side, in order, each in its own
   [xpath] span (annotated by the store with rows / index hit counts)
   with an [Xpath_exec] event reusing the span's measured elapsed. *)
let fetch_side ~check ~use_index coll scans =
  let table : (int * int, Doc.node list) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun s ->
      check ();
      let hits, sp =
        Span.timed
          ~meta:[ ("label", string_of_int s.scan_label) ]
          Names.xpath
          (fun () -> Collection.Snapshot.eval ~use_index coll s.xpath)
      in
      (if Event.active () then
         Event.emit Event.Xpath_exec
           ~payload:
             [
               ("label", Event.Int s.scan_label);
               ("xpath", Event.Str (Xpath.to_string s.xpath));
               ("rows", Event.Int (List.length hits));
               ("elapsed_s", Event.Float sp.Span.elapsed_s);
             ]);
      List.iter
        (fun (doc_id, node) ->
          incr total;
          let key = (doc_id, s.scan_label) in
          Hashtbl.replace table key
            (node :: Option.value ~default:[] (Hashtbl.find_opt table key)))
        hits)
    scans;
  (table, !total)

let side_name = function Single -> "single" | Left -> "left" | Right -> "right"

let run ?(check = ignore) ?(use_index = true) ~eval ~coll_of plan =
  (* Phase ii: all label scans, one [execute] span. *)
  let fetched =
    Span.with_ Names.execute (fun () ->
        List.map
          (fun (side, scans) ->
            (side, fetch_side ~check ~use_index (coll_of side) scans))
          (candidate_filters plan.root))
  in
  (* Scans report fetched candidate nodes; compiled matchers report
     arena nodes visited — both feed the same funnel statistic. *)
  let n_candidates =
    ref (List.fold_left (fun acc (_, (_, n)) -> acc + n) 0 fetched)
  in
  let lookup side doc_id label =
    match List.assoc_opt side fetched with
    | None -> Some []
    | Some (table, _) ->
        Some
          (List.rev
             (Option.value ~default:[] (Hashtbl.find_opt table (doc_id, label))))
  in
  (* Phase iii: prune, embed, pair, dedup — one [assemble] span. *)
  let n_embeddings = ref 0 in
  let pair_tree lspec rspec (ldoc, lbind) (rdoc, rbind) =
    Tree.element Algebra.prod_root_tag
      [
        Witness.of_binding ldoc lbind ~sl:lspec.sub_sl;
        Witness.of_binding rdoc rbind ~sl:rspec.sub_sl;
      ]
  in
  let pair_env (ldoc, lbind) (rdoc, rbind) label =
    match List.assoc_opt label lbind with
    | Some n -> Some (ldoc, n)
    | None -> (
        match List.assoc_opt label rbind with
        | Some n -> Some (rdoc, n)
        | None -> None)
  in
  let rec exec_node = function
    | Label_scan _ ->
        invalid_arg "Plan.run: Label_scan outside a Candidate_filter"
    | Candidate_filter { side; _ } ->
        Docs (side, Collection.Snapshot.doc_ids (coll_of side))
    | Doc_prune { required; input } ->
        let side, ids = expect_docs (exec_node input) in
        let meta =
          match side with
          | Single -> []
          | s -> [ ("side", side_name s) ]
        in
        let kept =
          Span.with_ ~meta Names.prune (fun () ->
              let kept =
                List.filter
                  (fun doc_id ->
                    List.for_all
                      (fun label ->
                        Option.value ~default:[] (lookup side doc_id label) <> [])
                      required)
                  ids
              in
              let kept =
                match (!fault, kept) with
                | Prune_first_only, first :: _ :: _ -> [ first ]
                | _ -> kept
              in
              Span.annotate
                [
                  ("docs_in", string_of_int (List.length ids));
                  ("docs_out", string_of_int (List.length kept));
                ];
              Metrics.observe_int m_pruned (List.length ids - List.length kept);
              kept)
        in
        Docs (side, kept)
    | Embed { spec; input } -> (
        let side, ids = expect_docs (exec_node input) in
        let coll = coll_of side in
        match spec.side with
        | Single ->
            (* Selection: witnesses directly, set semantics per document
               (identical subtrees from different documents are distinct
               results, as in TAX). *)
            Trees
              (List.concat_map
                 (fun doc_id ->
                   check ();
                   Span.with_
                     ~meta:[ ("doc", string_of_int doc_id) ]
                     Names.embed
                     (fun () ->
                       let doc = Collection.Snapshot.doc coll doc_id in
                       let bindings =
                         Embedding.enumerate
                           ~candidates:(lookup side doc_id)
                           ~eval doc spec.sub_pattern
                       in
                       n_embeddings := !n_embeddings + List.length bindings;
                       let witnesses =
                         dedup
                           (List.map
                              (fun b -> Witness.of_binding doc b ~sl:spec.sub_sl)
                              bindings)
                       in
                       Span.annotate
                         [ ("witnesses", string_of_int (List.length witnesses)) ];
                       (if Event.active () then
                          Event.emit Event.Embed_done
                            ~payload:
                              [
                                ("doc", Event.Int doc_id);
                                ("embeddings", Event.Int (List.length bindings));
                                ("witnesses", Event.Int (List.length witnesses));
                              ]);
                       witnesses))
                 ids)
        | Left | Right ->
            let name = side_name spec.side in
            let side_root = spec.sub_pattern.Pattern.root.Pattern.label in
            Bindings
              ( spec,
                List.concat_map
                  (fun doc_id ->
                    check ();
                    Span.with_
                      ~meta:[ ("side", name); ("doc", string_of_int doc_id) ]
                      Names.embed
                      (fun () ->
                        let doc = Collection.Snapshot.doc coll doc_id in
                        let candidates label =
                          let fetched = lookup side doc_id label in
                          if spec.pin_root && label = side_root then
                            Some
                              (List.filter
                                 (Int.equal (Doc.root doc))
                                 (Option.value ~default:[] fetched))
                          else fetched
                        in
                        let bindings =
                          Embedding.enumerate ~candidates ~eval doc
                            spec.sub_pattern
                        in
                        n_embeddings := !n_embeddings + List.length bindings;
                        (if Event.active () then
                           Event.emit Event.Embed_done
                             ~payload:
                               [
                                 ("side", Event.Str name);
                                 ("doc", Event.Int doc_id);
                                 ("embeddings", Event.Int (List.length bindings));
                               ]);
                        List.map (fun b -> (doc, b)) bindings))
                  ids ))
    | Nested_loop_pair { cross_condition; left; right } ->
        let lspec, lefts = expect_bindings (exec_node left) in
        let rspec, rights = expect_bindings (exec_node right) in
        Trees
          (Span.with_ ~meta:[ ("strategy", "nested-loop") ] Names.pair (fun () ->
               let results =
                 List.concat_map
                   (fun l ->
                     check ();
                     List.filter_map
                       (fun r ->
                         if eval (pair_env l r) cross_condition then
                           Some (pair_tree lspec rspec l r)
                         else None)
                       rights)
                   lefts
               in
               Span.annotate
                 [
                   ( "pairs",
                     string_of_int (List.length lefts * List.length rights) );
                   ("results", string_of_int (List.length results));
                 ];
               results))
    | Hash_pair { keys; cross_condition; left; right } ->
        let lspec, lefts = expect_bindings (exec_node left) in
        let rspec, rights = expect_bindings (exec_node right) in
        Trees
          (Span.with_ ~meta:[ ("strategy", "hash") ] Names.pair (fun () ->
               let lterms = List.map fst keys and rterms = List.map snd keys in
               let partitions : (string list, (Doc.t * (int * Doc.node) list) list) Hashtbl.t =
                 Hashtbl.create (max 16 (List.length rights))
               in
               List.iter
                 (fun ((rdoc, rbind) as r) ->
                   match key_of (binding_env rdoc rbind) rterms with
                   | None -> ()
                   | Some k ->
                       Hashtbl.replace partitions k
                         (r :: Option.value ~default:[] (Hashtbl.find_opt partitions k)))
                 rights;
               let probed = ref 0 in
               let results =
                 List.concat_map
                   (fun ((ldoc, lbind) as l) ->
                     check ();
                     match key_of (binding_env ldoc lbind) lterms with
                     | None -> []
                     | Some k ->
                         (* rev restores right-side order, so accepted
                            pairs come out exactly as the nested loop
                            would produce them. *)
                         let matches =
                           List.rev
                             (Option.value ~default:[]
                                (Hashtbl.find_opt partitions k))
                         in
                         probed := !probed + List.length matches;
                         List.filter_map
                           (fun r ->
                             if
                               !fault = Hash_no_recheck
                               || eval (pair_env l r) cross_condition
                             then Some (pair_tree lspec rspec l r)
                             else None)
                           matches)
                   lefts
               in
               Span.annotate
                 [
                   ("pairs", string_of_int !probed);
                   ("results", string_of_int (List.length results));
                 ];
               results))
    | Sim_pair { lterm; rterm; scheme; cross_condition; left; right; _ } ->
        let lspec, lefts = expect_bindings (exec_node left) in
        let rspec, rights = expect_bindings (exec_node right) in
        Trees
          (Span.with_ ~meta:[ ("strategy", "sim") ] Names.pair (fun () ->
               let rarr = Array.of_list rights in
               let rvals =
                 Array.map
                   (fun (rdoc, rbind) ->
                     Condition.term_value (binding_env rdoc rbind) rterm)
                   rarr
               in
               let index =
                 Simjoin.build ~check
                   ~drop_last_prefix_token:(!fault = Simjoin_prefix_too_short)
                   scheme rvals
               in
               let n_cands = ref 0 and n_verified = ref 0 in
               let results =
                 List.concat_map
                   (fun ((ldoc, lbind) as l) ->
                     check ();
                     match Condition.term_value (binding_env ldoc lbind) lterm with
                     | None -> []  (* unbound: the atom, hence the cross
                                      condition, is false *)
                     | Some v ->
                         (* candidates come back in ascending build
                            ordinal, so verified pairs are emitted
                            exactly as the nested loop would produce
                            them. *)
                         let cands = Simjoin.probe index v in
                         n_cands := !n_cands + List.length cands;
                         List.filter_map
                           (fun i ->
                             let r = rarr.(i) in
                             if
                               !fault = Simjoin_no_recheck
                               || eval (pair_env l r) cross_condition
                             then begin
                               incr n_verified;
                               Some (pair_tree lspec rspec l r)
                             end
                             else None)
                           cands)
                   lefts
               in
               Span.annotate
                 [
                   ("candidates", string_of_int !n_cands);
                   ("verified", string_of_int !n_verified);
                   ("indexed", string_of_int (Simjoin.n_indexed index));
                   ("fallback", string_of_int (Simjoin.n_fallback index));
                   ("results", string_of_int (List.length results));
                 ];
               results))
    | Dedup input -> (
        match exec_node input with
        | Trees ts -> Trees (dedup ts)
        | v -> v)
    | Compiled_match { spec; matcher } -> (
        let coll = coll_of spec.side in
        let ids = Collection.Snapshot.doc_ids coll in
        let skip_descendant = !fault = Compile_skip_descendant_edge in
        (* One [match] span per document; [check] fires inside the
           matcher's arena loop (once per node), so a deadline unwinds a
           compiled match mid-arena. *)
        let match_doc ~meta doc_id =
          Span.with_ ~meta Names.matcher (fun () ->
              let doc = Collection.Snapshot.doc coll doc_id in
              let bindings, (dstats : Compile.doc_stats) =
                Compile.run_doc ~check ~pin_root:spec.pin_root ~skip_descendant
                  matcher doc
              in
              n_candidates := !n_candidates + dstats.Compile.nodes_visited;
              n_embeddings := !n_embeddings + dstats.Compile.n_matches;
              Span.annotate
                [
                  ("nodes", string_of_int dstats.Compile.nodes_visited);
                  ("structural", string_of_int dstats.Compile.structural);
                  ("matches", string_of_int dstats.Compile.n_matches);
                ];
              (bindings, dstats, doc))
        in
        match spec.side with
        | Single ->
            Trees
              (List.concat_map
                 (fun doc_id ->
                   let bindings, dstats, doc =
                     match_doc ~meta:[ ("doc", string_of_int doc_id) ] doc_id
                   in
                   let witnesses =
                     dedup
                       (List.map
                          (fun b -> Witness.of_binding doc b ~sl:spec.sub_sl)
                          bindings)
                   in
                   (if Event.active () then
                      Event.emit Event.Embed_done
                        ~payload:
                          [
                            ("doc", Event.Int doc_id);
                            ("nodes", Event.Int dstats.Compile.nodes_visited);
                            ("embeddings", Event.Int dstats.Compile.n_matches);
                            ("witnesses", Event.Int (List.length witnesses));
                          ]);
                   witnesses)
                 ids)
        | Left | Right ->
            let name = side_name spec.side in
            Bindings
              ( spec,
                List.concat_map
                  (fun doc_id ->
                    let bindings, dstats, doc =
                      match_doc
                        ~meta:[ ("side", name); ("doc", string_of_int doc_id) ]
                        doc_id
                    in
                    (if Event.active () then
                       Event.emit Event.Embed_done
                         ~payload:
                           [
                             ("side", Event.Str name);
                             ("doc", Event.Int doc_id);
                             ("nodes", Event.Int dstats.Compile.nodes_visited);
                             ("embeddings", Event.Int dstats.Compile.n_matches);
                           ]);
                    List.map (fun b -> (doc, b)) bindings)
                  ids ))
  in
  let results =
    Span.with_ Names.assemble (fun () ->
        match exec_node plan.root with
        | Trees ts -> ts
        | _ -> invalid_arg "Plan.run: plan does not produce result trees")
  in
  (results, { n_candidates = !n_candidates; n_embeddings = !n_embeddings })
