module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Xpath = Toss_store.Xpath
module Metrics = Toss_obs.Metrics

type mode = Tax | Toss

let m_rewrites = Metrics.counter "rewrite.patterns"
let m_queries = Metrics.counter "rewrite.label_queries"
let m_degraded = Metrics.counter "rewrite.degraded"

(* Cache-ability: a label query built from purely structural atoms (tags,
   content equality, containment) is valid under any SEO, so a rewrite
   cache could keep it across ontology rebuilds; one that consulted the
   SEO must be invalidated with it. *)
let m_seo_dependent = Metrics.counter "rewrite.queries.seo_dependent"
let m_cacheable = Metrics.counter "rewrite.queries.seo_independent"

(* Memoized SEO expansions, shared across label queries: one pattern
   typically consults the same constant several times (tag options,
   content predicates, both sides of a join, the explainer), and the
   expansions walk the ontology hierarchies each time. The cache is keyed
   on the physical SEO value — a rebuilt ontology is a new value and
   invalidates it wholesale — and holds a strong reference to the last
   SEO used, which is by design: the SEO is the long-lived precomputed
   artifact of the TOSS architecture.

   The cache lives in domain-local storage: rewrites run concurrently on
   the server's domain pool, and a shared table would need a lock on the
   rewrite hot path. Each domain warms its own copy (the expansions are
   pure, so duplicated work is the only cost) and the owner check
   resets a domain's cache the first time it sees a rebuilt SEO. *)
let m_cache_hits = Metrics.counter "rewrite.cache.hits"
let m_cache_misses = Metrics.counter "rewrite.cache.misses"

type expansion_cache = {
  table : (string * string, string list) Hashtbl.t;
  mutable owner : Seo.t option;
}

let cache_key : expansion_cache Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { table = Hashtbl.create 64; owner = None })

let cached_expansion seo ~op ~constant compute =
  let cache = Domain.DLS.get cache_key in
  (match cache.owner with
  | Some owner when owner == seo -> ()
  | _ ->
      Hashtbl.reset cache.table;
      cache.owner <- Some seo);
  match Hashtbl.find_opt cache.table (op, constant) with
  | Some terms ->
      Metrics.incr m_cache_hits;
      terms
  | None ->
      Metrics.incr m_cache_misses;
      let terms = compute seo constant in
      Hashtbl.replace cache.table (op, constant) terms;
      terms

let similar_terms seo s = cached_expansion seo ~op:"~" ~constant:s Seo.similar_terms
let isa_below seo s = cached_expansion seo ~op:"isa" ~constant:s Seo.isa_below
let part_below seo s = cached_expansion seo ~op:"part_of" ~constant:s Seo.part_below

(* [below] (and its mirror [above]) has a second leg besides the isa
   hierarchy: a value is below a primitive type name whenever its
   inferred type matches ("1999" below "year"). An isa-expansion
   pushdown would drop those candidates, so [below] atoms whose constant
   names a primitive type are never pushed. *)
let is_type_name s = Option.is_some (Toss_xml.Value_type.of_name s)

(* Both evaluators compare [Eq] numerically when the two values parse as
   numbers ("1999.0" = "1999"), so an exact-text [Content_eq] pushdown is
   only sound for constants that are not numbers. *)
let pushable_eq_constant s = Option.is_none (float_of_string_opt s)

let atom_consults_seo = function
  | Condition.Sim _ | Condition.Isa _ | Condition.Below _ | Condition.Above _
  | Condition.Part_of _ | Condition.Instance_of _ | Condition.Subtype_of _ ->
      true
  | _ -> false

(* Tag alternatives for one pattern node: [None] = unconstrained. *)
let tag_options ~mode ~max_expansion seo atoms =
  let constrain current options =
    match current with
    | None -> Some options
    | Some existing -> Some (List.filter (fun t -> List.mem t options) existing)
  in
  List.fold_left
    (fun acc atom ->
      match (atom, mode) with
      | Condition.Cmp (Condition.Tag _, Condition.Eq, Condition.Str s), _
      | Condition.Cmp (Condition.Str s, Condition.Eq, Condition.Tag _), _
        when pushable_eq_constant s ->
          constrain acc [ s ]
      | Condition.Isa (Condition.Tag _, Condition.Str s), Toss ->
          let below = isa_below seo s in
          if List.length below <= max_expansion then constrain acc below else acc
      | Condition.Below (Condition.Tag _, Condition.Str s), Toss
        when not (is_type_name s) ->
          let below = isa_below seo s in
          if List.length below <= max_expansion then constrain acc below else acc
      | Condition.Part_of (Condition.Tag _, Condition.Str s), Toss ->
          let below = part_below seo s in
          if List.length below <= max_expansion then constrain acc below else acc
      | _ -> acc)
    None atoms

(* Content predicates for one pattern node. *)
let content_predicates ~mode ~max_expansion seo atoms =
  let eq_disjunction values =
    match values with
    | [] -> None
    | v :: vs ->
        Some
          (List.fold_left
             (fun p v -> Xpath.Or (p, Xpath.Content_eq v))
             (Xpath.Content_eq v) vs)
  in
  List.filter_map
    (fun atom ->
      match (atom, mode) with
      | Condition.Cmp (Condition.Content _, Condition.Eq, Condition.Str s), _
      | Condition.Cmp (Condition.Str s, Condition.Eq, Condition.Content _), _
        when pushable_eq_constant s ->
          Some (Xpath.Content_eq s)
      | Condition.Contains (Condition.Content _, s), _ ->
          Some (Xpath.Content_contains s)
      | Condition.Sim (Condition.Content _, Condition.Str s), Tax
      | Condition.Sim (Condition.Str s, Condition.Content _), Tax ->
          Some (Xpath.Content_eq s)
      | Condition.Sim (Condition.Content _, Condition.Str s), Toss
      | Condition.Sim (Condition.Str s, Condition.Content _), Toss ->
          (* Only push the expansion when the constant is an ontology term;
             otherwise the evaluator's direct-distance fallback must see
             unrestricted candidates. *)
          if Seo.knows_term seo s then begin
            let terms = similar_terms seo s in
            if List.length terms <= max_expansion then eq_disjunction terms else None
          end
          else None
      | Condition.Isa (Condition.Content _, Condition.Str s), Tax
      | Condition.Below (Condition.Content _, Condition.Str s), Tax ->
          Some (Xpath.Content_contains s)
      | Condition.Isa (Condition.Content _, Condition.Str s), Toss ->
          let terms = isa_below seo s in
          if List.length terms <= max_expansion then eq_disjunction terms else None
      | Condition.Below (Condition.Content _, Condition.Str s), Toss
        when not (is_type_name s) ->
          let terms = isa_below seo s in
          if List.length terms <= max_expansion then eq_disjunction terms else None
      | Condition.Part_of (Condition.Content _, Condition.Str s), Toss ->
          let terms = part_below seo s in
          if List.length terms <= max_expansion then eq_disjunction terms else None
      | _ -> None)
    atoms

(* The chain of pattern nodes from the root down to [label], with the edge
   kinds along the way (one fewer than the nodes). *)
let chain_to (pattern : Pattern.t) label =
  let rec search (node : Pattern.node) =
    if node.Pattern.label = label then Some ([ node ], [])
    else
      List.find_map
        (fun (kind, child) ->
          Option.map
            (fun (nodes, kinds) -> (node :: nodes, kind :: kinds))
            (search child))
        node.Pattern.children
  in
  search pattern.Pattern.root

let label_queries ?(mode = Toss) ?(max_expansion = 64) seo (pattern : Pattern.t) =
  Metrics.incr m_rewrites;
  let condition = pattern.Pattern.condition in
  let step_of (node : Pattern.node) axis =
    let atoms = Condition.local_atoms condition node.Pattern.label in
    let tags = tag_options ~mode ~max_expansion seo atoms in
    let predicates = content_predicates ~mode ~max_expansion seo atoms in
    let tags =
      match tags with
      | Some ts when List.length ts <= max_expansion && ts <> [] -> Some ts
      | Some [] -> Some []
      | _ -> None
    in
    (axis, tags, predicates)
  in
  let query_for label =
    Metrics.incr m_queries;
    let note_cacheability nodes =
      let consults_seo =
        mode = Toss
        && List.exists
             (fun (n : Pattern.node) ->
               List.exists atom_consults_seo
                 (Condition.local_atoms condition n.Pattern.label))
             nodes
      in
      Metrics.incr (if consults_seo then m_seo_dependent else m_cacheable)
    in
    let note_fanout n =
      Metrics.observe_h ~labels:[ ("label", string_of_int label) ] "rewrite.fanout"
        (float_of_int n)
    in
    match chain_to pattern label with
    | None ->
        note_cacheability [];
        note_fanout 1;
        Xpath.path [ Xpath.any ~axis:Xpath.Descendant () ]
    | Some (nodes, kinds) ->
        note_cacheability nodes;
        (* First node uses the descendant axis (a pattern can embed
           anywhere); subsequent axes follow the edge kinds. *)
        let axes =
          Xpath.Descendant
          :: List.map
               (fun kind ->
                 match kind with Pattern.Pc -> Xpath.Child | Pattern.Ad -> Xpath.Descendant)
               kinds
        in
        let steps = List.map2 step_of nodes axes in
        (* Expand tag alternatives into a union of paths, capped. *)
        let paths =
          List.fold_left
            (fun paths (axis, tags, predicates) ->
              let options =
                match tags with
                | None -> [ Xpath.any ~axis ~predicates () ]
                | Some ts -> List.map (fun tg -> Xpath.step ~axis ~predicates tg) ts
              in
              List.concat_map (fun path -> List.map (fun st -> st :: path) options) paths)
            [ [] ] steps
        in
        let paths = List.map List.rev paths in
        note_fanout (List.length paths);
        if List.length paths > max_expansion then begin
          (* Too many alternatives: drop the name tests, keep structure. *)
          Metrics.incr m_degraded;
          Xpath.path
            (List.map (fun (axis, _, predicates) -> Xpath.any ~axis ~predicates ()) steps)
        end
        else paths
  in
  List.map (fun label -> (label, query_for label)) (Pattern.labels pattern)

(* ---------------------- compiled predicates ----------------------- *)

module Doc = Toss_xml.Tree.Doc
module Value_type = Toss_xml.Value_type

type pred = {
  pred_label : int;
  tests : (Doc.t -> Doc.node -> bool) list;
  descriptions : string list;
  required_tag : string option;
}

let set_of terms =
  let tbl = Hashtbl.create (max 8 (List.length terms)) in
  List.iter (fun t -> Hashtbl.replace tbl t ()) terms;
  tbl

(* The value a node-local term takes at one arena node. Only called on
   [Tag]/[Content] terms of the predicate's own label — [local_atoms]
   guarantees no other label appears. *)
let node_value term doc n =
  match term with
  | Condition.Tag _ -> Doc.tag doc n
  | Condition.Content _ -> Doc.content doc n
  | Condition.Str s -> s

let is_node_term = function
  | Condition.Tag _ | Condition.Content _ -> true
  | Condition.Str _ -> false

let atom_str atom = Format.asprintf "%a" Condition.pp atom

(* One node-local atom compiled to a closure. The fast paths replace the
   evaluator's hierarchy walks with a membership test against the
   memoized expansion set; each is used only where it is {e exactly}
   equivalent to the evaluator (the same soundness analysis as the XPath
   pushdowns, but without the one-sided-implication slack: a compiled
   predicate is the final word for its atom, not a prefilter):

   - [~] against a constant the SEO knows: {!Seo.similar} is
     authoritative for known terms, so membership in [similar_terms] is
     the predicate. Unknown constants keep the raw-distance fallback and
     stay on the generic evaluator.
   - [isa]/[part_of]: [v <= s] holds iff [v] is in the below-set of [s]
     (reflexivity and the unknown-term fallback both preserved by
     {!Seo.isa_below}'s own fallback).
   - [below]/[instance_of]/reversed [above]: the isa leg is the
     below-set, the type-inference leg ("1999" below "year") is kept as
     an explicit disjunct — the reason these atoms can never be pushed
     into XPath is precisely that this leg has no finite expansion, but
     a closure can just evaluate it.
   - [subtype_of]: both sides must be known terms, so an unknown
     constant compiles to [false]; a known one to set membership (every
     member of a below-set is a known term).
   - [=]/[<>] against a plain-string constant: both modes compare
     numerically only when the constant parses as a float, and the TOSS
     evaluator converts only between inferred value types with a
     registered conversion path — none of which reach "string" — so the
     comparison reduces to string (in)equality. This is the matcher's
     hottest atom (every tag constraint), evaluated once per arena node
     per state.

   Everything else — order comparisons, containment, unknown-term [~],
   reversed operators, node-to-node atoms like [#1.tag ~ #1.content] —
   compiles to the mode's evaluator under a single-label environment,
   which is the same thing the interpreter's embedding prefilter runs. *)
let plain_string_constant ~mode seo s =
  float_of_string_opt s = None
  &&
  match mode with
  | Tax -> true
  | Toss ->
      Value_type.name (Value_type.infer s) = "string"
      &&
      let conv = Seo.conversions seo in
      List.for_all
        (fun t ->
          t = "string"
          || (not (Conversion.exists conv ~from:t ~into:"string")
             && not (Conversion.exists conv ~from:"string" ~into:t)))
        (Conversion.types conv)

let compile_atom ~mode seo atom =
  let generic_eval =
    match mode with Tax -> Condition.eval_tax | Toss -> Toss_condition.evaluator seo
  in
  let generic label =
    ( atom_str atom ^ " [direct]",
      fun doc n ->
        generic_eval (fun l -> if l = label then Some (doc, n) else None) atom )
  in
  let membership x terms =
    let set = set_of terms in
    ( Printf.sprintf "%s [set:%d]" (atom_str atom) (Hashtbl.length set),
      fun doc n -> Hashtbl.mem set (node_value x doc n) )
  in
  let below_like x s =
    let set = set_of (isa_below seo s) in
    ( Printf.sprintf "%s [set:%d + type]" (atom_str atom) (Hashtbl.length set),
      fun doc n ->
        let v = node_value x doc n in
        Hashtbl.mem set v || Value_type.name (Value_type.infer v) = s )
  in
  let string_cmp x op s =
    let test =
      match op with
      | Condition.Eq -> fun doc n -> String.equal (node_value x doc n) s
      | _ -> fun doc n -> not (String.equal (node_value x doc n) s)
    in
    ( Printf.sprintf "%s [string-%s]" (atom_str atom)
        (if op = Condition.Eq then "eq" else "neq"),
      test )
  in
  let label =
    match Condition.labels_used atom with
    | l :: _ -> l
    | [] -> invalid_arg "Rewrite.compile_pred: constant-only atom"
  in
  match (atom, mode) with
  | Condition.Sim (x, Condition.Str s), Toss
    when is_node_term x && Seo.knows_term seo s ->
      membership x (similar_terms seo s)
  | Condition.Sim (Condition.Str s, x), Toss
    when is_node_term x && Seo.knows_term seo s ->
      membership x (similar_terms seo s)
  | Condition.Isa (x, Condition.Str s), Toss when is_node_term x ->
      membership x (isa_below seo s)
  | Condition.Part_of (x, Condition.Str s), Toss when is_node_term x ->
      membership x (part_below seo s)
  | Condition.Below (x, Condition.Str s), Toss
  | Condition.Instance_of (x, Condition.Str s), Toss
    when is_node_term x ->
      below_like x s
  | Condition.Above (Condition.Str s, x), Toss when is_node_term x ->
      below_like x s
  | Condition.Subtype_of (x, Condition.Str s), Toss when is_node_term x ->
      if Seo.knows_term seo s then membership x (isa_below seo s)
      else (atom_str atom ^ " [const:false]", fun _ _ -> false)
  | Condition.Cmp (x, ((Condition.Eq | Condition.Neq) as op), Condition.Str s), _
    when is_node_term x && plain_string_constant ~mode seo s ->
      string_cmp x op s
  | Condition.Cmp (Condition.Str s, ((Condition.Eq | Condition.Neq) as op), x), _
    when is_node_term x && plain_string_constant ~mode seo s ->
      string_cmp x op s
  | _ -> generic label

let compile_pred ?(mode = Toss) seo condition label =
  let atoms = Condition.local_atoms condition label in
  let compiled = List.map (compile_atom ~mode seo) atoms in
  let required_tag =
    List.find_map
      (function
        | Condition.Cmp (Condition.Tag _, Condition.Eq, Condition.Str s)
        | Condition.Cmp (Condition.Str s, Condition.Eq, Condition.Tag _)
          when plain_string_constant ~mode seo s ->
            Some s
        | _ -> None)
      atoms
  in
  {
    pred_label = label;
    tests = List.map snd compiled;
    descriptions = List.map fst compiled;
    required_tag;
  }

let pred_test p doc n = List.for_all (fun test -> test doc n) p.tests
let pred_describe p = p.descriptions
let pred_tag p = p.required_tag

let rec expand_condition seo c =
  let eq_disj term values =
    Condition.disj
      (List.map (fun v -> Condition.Cmp (term, Condition.Eq, Condition.Str v)) values)
  in
  match c with
  | Condition.Sim (x, Condition.Str s) -> eq_disj x (similar_terms seo s)
  | Condition.Sim (Condition.Str s, x) -> eq_disj x (similar_terms seo s)
  | Condition.Isa (x, Condition.Str s) -> eq_disj x (isa_below seo s)
  | Condition.Below (x, Condition.Str s) when not (is_type_name s) ->
      eq_disj x (isa_below seo s)
  | Condition.Part_of (x, Condition.Str s) -> eq_disj x (part_below seo s)
  | Condition.Above (Condition.Str s, x) when not (is_type_name s) ->
      eq_disj x (isa_below seo s)
  | Condition.And (p, q) -> Condition.And (expand_condition seo p, expand_condition seo q)
  | Condition.Or (p, q) -> Condition.Or (expand_condition seo p, expand_condition seo q)
  | Condition.Not p -> Condition.Not (expand_condition seo p)
  | c -> c
