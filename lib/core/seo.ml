module Hierarchy = Toss_hierarchy.Hierarchy
module Metric = Toss_similarity.Metric
module Sea = Toss_similarity.Sea
module Levenshtein = Toss_similarity.Levenshtein
module Ontology = Toss_ontology.Ontology
module Maker = Toss_ontology.Maker
module Fusion = Toss_ontology.Fusion

type t = {
  fused : Ontology.t;
  enhancement : Sea.t option;
  metric : Metric.t;
  eps : float;
  conversions : Conversion.t;
}

let create ?(conversions = Conversion.standard) ?(metric = Levenshtein.metric)
    ?(eps = 0.) ontology =
  if eps < 0. then Error "Seo.create: negative threshold"
  else begin
    let isa = Ontology.get Ontology.isa ontology in
    let enhancement =
      if eps = 0. then None
      else
        match Sea.enhance ~metric ~eps isa with
        | Some e -> Some e
        | None ->
            (* Figure 12's existential edge lift found a cycle: the triple
               is similarity inconsistent in the strict sense. Fall back
               to the universal lift (the one Theorem 1's proof uses),
               which keeps only the orderings every merged member agrees
               on and therefore always yields a DAG. *)
            Sea.enhance ~lift:Sea.Universal ~metric ~eps isa
    in
    Ok { fused = ontology; enhancement; metric; eps; conversions }
  end

let create_exn ?conversions ?metric ?eps ontology =
  match create ?conversions ?metric ?eps ontology with
  | Ok t -> t
  | Error msg -> failwith msg

let of_documents ?conversions ?metric ?eps ?lexicon ?content_tags ?max_content_terms
    docs =
  let ontologies = Maker.make_all ?lexicon ?content_tags ?max_content_terms docs in
  let constraints = Maker.auto_constraints ?lexicon ontologies in
  match Fusion.fuse_ontologies ontologies constraints with
  | Error (rel, e) ->
      Error (Format.asprintf "fusion failed on relation %s: %a" rel Fusion.pp_error e)
  | Ok fused -> create ?conversions ?metric ?eps fused

let eps t = t.eps
let metric t = t.metric
let conversions t = t.conversions
let enhancement t = t.enhancement
let ontology t = t.fused

let isa_hierarchy t =
  match t.enhancement with
  | Some e -> e.Sea.hierarchy
  | None -> Ontology.get Ontology.isa t.fused

let part_of_hierarchy t = Ontology.get Ontology.part_of t.fused

(* The ontology is authoritative for its own terms: two known terms are
   similar iff they co-reside in an enhanced node, and a known term is
   never similar to an unknown one (otherwise the rewriter's expansion of
   [~] into a disjunction over [similar_terms] would be unsound — the
   differential oracle flags exactly that). The raw-distance fallback
   applies only when both terms are outside the ontology. *)
let similar t x y =
  if x = y then true
  else
    let h = isa_hierarchy t in
    let known s = Hierarchy.mem_term s h in
    match (known x, known y) with
    | true, true -> (
        match t.enhancement with Some e -> Sea.similar e x y | None -> false)
    | false, false -> Metric.within t.metric ~eps:t.eps x y
    | _ -> false

let similar_terms t x =
  match t.enhancement with
  | Some e -> (
      match Sea.similar_terms e x with [] -> [ x ] | ts -> ts)
  | None -> [ x ]

let leq_isa t x y =
  if x = y then true else Hierarchy.leq (isa_hierarchy t) x y

let isa_below t x =
  let h = isa_hierarchy t in
  match Hierarchy.below x h with [] -> [ x ] | below -> below

let leq_part t x y = if x = y then true else Hierarchy.leq (part_of_hierarchy t) x y

let part_below t x =
  match Hierarchy.below x (part_of_hierarchy t) with [] -> [ x ] | below -> below

let knows_term t s = Hierarchy.mem_term s (isa_hierarchy t)

let n_terms t =
  List.length (Hierarchy.terms (isa_hierarchy t))
  + List.length (Hierarchy.terms (part_of_hierarchy t))
