(** Query plans: what the rewriter will send to the store and why.

    Summarizes, for a pattern tree under a given SEO context, the XPath
    query each label gets, the ontology/similarity expansions applied to
    the condition's constants, and which atoms remain for the assembly
    phase. Surfaced by the CLI's [--explain] and useful when judging why a
    TOSS query is slower than its TAX counterpart (more disjuncts = more
    candidates). *)

type expansion = {
  operator : string;  (** "~", "isa", "part_of" *)
  constant : string;
  terms : string list;  (** what the constant expands to *)
}

type t = {
  mode : Rewrite.mode;
  label_queries : (int * string) list;  (** label -> XPath sent to the store *)
  expansions : expansion list;
  residual_atoms : string list;
      (** atoms re-checked during assembly (cross-label or unpushable) *)
  plan : Plan.t option;
      (** the physical plan, when attached via {!with_plan} — scan
          order with estimated cardinalities, pruning, and the join
          pairing strategy; [None] for a rewrite-only explanation *)
  trace : Toss_obs.Span.t option;
      (** the execution trace, when the plan was paired with a run via
          {!with_trace}; [None] for a purely static plan *)
}

val explain : ?mode:Rewrite.mode -> ?max_expansion:int -> Seo.t -> Toss_tax.Pattern.t -> t
(** The static plan for a pattern under the given SEO (no query is run). *)

val with_plan : t -> Plan.t -> t
(** Attaches a physical plan (from {!Planner.plan_select} /
    {!Planner.plan_join}) so {!pp} and {!to_json} also render the
    operator tree with its estimated cardinalities — the CLI's
    [--explain], which shows the plan {e without} executing it. *)

val with_trace : t -> Toss_obs.Span.t -> t
(** Attaches an execution trace (e.g. [stats.trace] from
    {!Executor.select}) so {!pp} and {!to_json} also render the observed
    span tree. A plan paired with its run's trace is EXPLAIN ANALYZE:
    the trace's [xpath] spans carry actual [rows]/[indexed]/[scanned]
    per label query and its [embed] spans the per-document assembly
    funnel, and the [rewrite]/[execute]/[assemble] phase durations are
    the very spans [Executor.stats.phases] is a view over, so the
    rendered totals always equal the stats. *)

val pp : Format.formatter -> t -> unit
(** Renders the plan: store queries, expansions, residual atoms, and —
    when present — the execution span tree with its per-operator
    actuals (the CLI's [--explain-analyze]). *)

val to_string : t -> string

val to_json : t -> string
(** The plan as a JSON object ([mode], [label_queries], [expansions],
    [residual_atoms], plus [trace] when attached) — the machine-readable
    EXPLAIN ANALYZE. *)
