module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Collection = Toss_store.Collection
module Metrics = Toss_obs.Metrics

let m_plans = Metrics.counter "planner.plans"
let m_compiled = Metrics.counter "planner.plans.compiled"
let m_hash_joins = Metrics.counter "planner.joins.hash"
let m_nested_joins = Metrics.counter "planner.joins.nested_loop"
let m_sim_joins = Metrics.counter "planner.joins.sim"

(* Scans for one side's label queries: estimated through the collection
   statistics and ordered most-selective-first under [optimize], left in
   rewrite (pattern preorder) order otherwise. The sort is stable, so
   equally-selective scans keep their rewrite order. *)
let scans_of ~optimize ~use_index coll queries =
  let scans =
    List.map
      (fun (label, xpath) ->
        let est_rows =
          if optimize then
            Some (Collection.Snapshot.estimate_rows ~value_index:use_index coll xpath)
          else None
        in
        { Plan.scan_label = label; xpath; est_rows })
      queries
  in
  if optimize then
    List.stable_sort
      (fun a b ->
        compare
          (Option.value ~default:max_int a.Plan.est_rows)
          (Option.value ~default:max_int b.Plan.est_rows))
      scans
  else scans

let filter_of ~optimize ~use_index coll ~side ~required queries =
  let scans = scans_of ~optimize ~use_index coll queries in
  let filter =
    Plan.Candidate_filter
      { side; scans = List.map (fun s -> Plan.Label_scan s) scans }
  in
  if optimize then Plan.Doc_prune { required; input = filter } else filter

let plan_select ?(mode = Rewrite.Toss) ?(use_index = true) ?max_expansion
    ?(optimize = true) ?(compile = true) seo coll ~pattern ~sl =
  Metrics.incr m_plans;
  let spec =
    { Plan.side = Plan.Single; sub_pattern = pattern; sub_sl = sl; pin_root = false }
  in
  if compile then begin
    Metrics.incr m_compiled;
    let matcher = Compile.build ~mode seo pattern in
    { Plan.mode; root = Plan.Compiled_match { spec; matcher } }
  end
  else
    let queries = Rewrite.label_queries ~mode ?max_expansion seo pattern in
    let input =
      filter_of ~optimize ~use_index coll ~side:Plan.Single
        ~required:(Pattern.labels pattern) queries
    in
    { Plan.mode; root = Plan.Embed { spec; input } }

(* The sub-pattern rooted at a child of the join pattern's root, with the
   original condition restricted to the conjuncts local to that side. *)
let top_conjuncts = Condition.top_conjuncts

let side_pattern (pattern : Pattern.t) (child : Pattern.node) =
  let rec labels_of (n : Pattern.node) =
    n.Pattern.label :: List.concat_map (fun (_, c) -> labels_of c) n.Pattern.children
  in
  let side_labels = labels_of child in
  let local =
    List.filter
      (fun conjunct ->
        let used = Condition.labels_used conjunct in
        used <> [] && List.for_all (fun l -> List.mem l side_labels) used)
      (top_conjuncts pattern.Pattern.condition)
  in
  (Pattern.v child (Condition.conj local), side_labels)

(* Conjuncts mentioning the product root (e.g. #0.tag = tax_prod_root)
   describe the synthetic product node and are dropped; they hold by
   construction of the result. *)
let cross_condition_of (pattern : Pattern.t) =
  let root_label = pattern.Pattern.root.Pattern.label in
  Condition.conj
    (List.filter
       (fun c -> not (List.mem root_label (Condition.labels_used c)))
       (top_conjuncts pattern.Pattern.condition))

let term_label = function
  | Condition.Tag l | Condition.Content l -> Some l
  | Condition.Str _ -> None

(* Top-level equality conjuncts with one term on each side become hash
   partition keys, normalized to (left term, right term). Because each
   is a top-level conjunct of the cross condition, a key mismatch
   implies the condition is false — partitioning only skips pairs the
   nested loop would reject. *)
let hash_keys ~left_labels ~right_labels cross_condition =
  List.filter_map
    (function
      | Condition.Cmp (a, Condition.Eq, b) -> (
          match (term_label a, term_label b) with
          | Some la, Some lb
            when List.mem la left_labels && List.mem lb right_labels ->
              Some (a, b)
          | Some la, Some lb
            when List.mem la right_labels && List.mem lb left_labels ->
              Some (b, a)
          | _ -> None)
      | _ -> None)
    (top_conjuncts cross_condition)

(* The first top-level [~]/[isa] cross conjunct with one node term on
   each side drives the similarity-join operator, normalized to (probe
   term, build term, signature scheme). Tax-mode [isa] is substring
   containment, which admits no finite signature, so only [~] qualifies
   there; the metric fallback inside {!Simjoin} covers terms outside the
   ontology. *)
let sim_atom ~mode ~left_labels ~right_labels seo cross_condition =
  let split a b =
    match (term_label a, term_label b) with
    | Some la, Some lb when List.mem la left_labels && List.mem lb right_labels ->
        Some `Forward
    | Some la, Some lb when List.mem la right_labels && List.mem lb left_labels ->
        Some `Swapped
    | _ -> None
  in
  List.find_map
    (fun conjunct ->
      match conjunct with
      | Toss_tax.Condition.Sim (a, b) as atom -> (
          let scheme () = Simjoin.sim_scheme ~mode seo in
          match split a b with
          | Some `Forward -> Some (atom, a, b, scheme ())
          | Some `Swapped -> Some (atom, b, a, scheme ())
          | None -> None)
      | Toss_tax.Condition.Isa (a, b) as atom when mode = Rewrite.Toss -> (
          (* [a isa b]: a must lie at-or-below b. *)
          match split a b with
          | Some `Forward -> Some (atom, a, b, Simjoin.isa_scheme ~below:`Probe seo)
          | Some `Swapped -> Some (atom, b, a, Simjoin.isa_scheme ~below:`Build seo)
          | None -> None)
      | _ -> None)
    (top_conjuncts cross_condition)

(* Below this many build-side documents the quadratic term is already
   gone and signature construction is pure overhead — and a 1-document
   build side is what the tiny-build-fallback unit test pins. *)
let min_simjoin_build_docs = 2

let plan_join ?(mode = Rewrite.Toss) ?(use_index = true) ?max_expansion
    ?(optimize = true) ?(compile = true) ?(simjoin = true) seo left_coll
    right_coll ~pattern ~sl =
  Metrics.incr m_plans;
  if compile then Metrics.incr m_compiled;
  let root = pattern.Pattern.root in
  let (left_kind, left_child), (right_kind, right_child) =
    match root.Pattern.children with
    | [ l; r ] -> (l, r)
    | _ -> invalid_arg "Executor.join: the pattern root must have exactly two children"
  in
  let left_pattern, left_labels = side_pattern pattern left_child in
  let right_pattern, right_labels = side_pattern pattern right_child in
  let branch side coll kind sub_pattern labels =
    let spec =
      {
        Plan.side;
        sub_pattern;
        sub_sl = List.filter (fun l -> List.mem l labels) sl;
        pin_root = kind = Pattern.Pc;
      }
    in
    if compile then
      Plan.Compiled_match { spec; matcher = Compile.build ~mode seo sub_pattern }
    else
      let queries = Rewrite.label_queries ~mode ?max_expansion seo sub_pattern in
      let input =
        filter_of ~optimize ~use_index coll ~side
          ~required:(Pattern.labels sub_pattern) queries
      in
      Plan.Embed { spec; input }
  in
  let left = branch Plan.Left left_coll left_kind left_pattern left_labels in
  let right = branch Plan.Right right_coll right_kind right_pattern right_labels in
  let cross_condition = cross_condition_of pattern in
  let keys =
    if optimize then hash_keys ~left_labels ~right_labels cross_condition
    else []
  in
  (* Equality keys partition exactly and win outright; a [~]/[isa] atom
     is worth an index only when the build side is big enough for the
     quadratic term to matter. *)
  let sim =
    if
      optimize && simjoin && keys = []
      && Collection.Snapshot.n_documents right_coll >= min_simjoin_build_docs
    then sim_atom ~mode ~left_labels ~right_labels seo cross_condition
    else None
  in
  let pairing =
    if keys <> [] then begin
      Metrics.incr m_hash_joins;
      Plan.Hash_pair { keys; cross_condition; left; right }
    end
    else
      match sim with
      | Some (atom, lterm, rterm, scheme) ->
          Metrics.incr m_sim_joins;
          Plan.Sim_pair
            { atom; lterm; rterm; scheme; cross_condition; left; right }
      | None ->
          Metrics.incr m_nested_joins;
          Plan.Nested_loop_pair { cross_condition; left; right }
  in
  { Plan.mode; root = Plan.Dedup pairing }
