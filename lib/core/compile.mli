(** Pattern compilation: a pattern tree plus its SEO-expanded node
    predicates, compiled into a single-pass bottom-up arena matcher.

    The interpreted pipeline answers a k-node pattern with k XPath
    evaluations plus a structural-join reassembly — k passes over each
    document. A compiled matcher makes {e one} pass instead: it walks a
    document's arena in reverse preorder, evaluates every pattern node's
    compiled predicate ({!Rewrite.compile_pred}) inline at each arena
    node, and propagates partial matches bottom-up along the pattern
    edges. The arena representation makes the propagation cheap — a
    parent-child edge routes a match to [Doc.parent], an
    ancestor-descendant edge additionally bubbles accumulated matches one
    level up per node — and reverse preorder guarantees every descendant
    is fully processed before its ancestor, so a state's child matches
    are always complete when the state is evaluated.

    Produced bindings are exactly {!Toss_tax.Embedding.enumerate}'s:
    the same multiset, the same per-binding label order (pattern
    preorder), the same final sort — the differential harness
    ([Toss_check]) compares the two witness-for-witness, with the
    interpreter demoted to the in-engine reference implementation. *)

type t
(** A compiled matcher: one state per pattern node (in pattern preorder,
    the root first), each carrying its compiled node predicate and its
    edge to the parent. Immutable and reusable across documents and
    domains. *)

val build : ?mode:Rewrite.mode -> Seo.t -> Toss_tax.Pattern.t -> t
(** Compiles the pattern under the given semantics. All SEO expansions
    are resolved here, once, through {!Rewrite.compile_pred}; running
    the matcher performs no hierarchy walks. *)

val mode : t -> Rewrite.mode
val pattern : t -> Toss_tax.Pattern.t
val n_states : t -> int

type state_info = {
  state_label : int;  (** the pattern label this state matches *)
  state_parent : (int * Toss_tax.Pattern.edge_kind) option;
      (** parent pattern label and connecting edge; [None] for the root *)
  state_pred : string list;
      (** the compiled predicate, one described conjunct per line (see
          {!Rewrite.pred_describe}) *)
}

val describe : t -> state_info list
(** The automaton, state by state in pattern preorder — what EXPLAIN
    renders for a compiled plan. *)

type doc_stats = {
  nodes_visited : int;  (** arena nodes visited (= the document size) *)
  structural : int;  (** structural matches before the full-condition filter *)
  n_matches : int;  (** bindings returned *)
}

val run_doc :
  ?check:(unit -> unit) ->
  ?pin_root:bool ->
  ?skip_descendant:bool ->
  t ->
  Toss_xml.Tree.Doc.t ->
  (int * Toss_xml.Tree.Doc.node) list list * doc_stats
(** One pass over one document's arena. Returns the complete bindings
    (label, node) in pattern preorder, filtered by the full pattern
    condition and sorted — bit-for-bit what the interpreter's
    enumeration yields for the same document.

    [check] is the cooperative cancellation checkpoint, called once per
    arena node {e inside} the matching loop, so a server deadline can
    unwind a compiled match mid-arena (the exception propagates; no
    partial results escape). [pin_root] restricts the pattern root to
    the document root (a pc edge from a join's product root).
    [skip_descendant] is the {!Plan.Compile_skip_descendant_edge} fault:
    it drops the upward bubbling of ancestor-descendant matches,
    demoting every ad edge to pc semantics — for the differential
    harness only. *)
