(** Per-document value indexes.

    Xindice lets the administrator declare value indexes on element
    content; our store builds the equivalent structures at insertion time:
    an exact-match index from [(tag, content)] to nodes and a token index
    from [(tag, token)] to nodes, both restricted to {e leaf} elements
    (elements without element children), which is where rewritten TAX and
    TOSS conditions test content. *)

type t

val build : Toss_xml.Tree.Doc.t -> t

val eq_lookup : t -> tag:string -> value:string -> Toss_xml.Tree.Doc.node list
(** Leaf elements with the given tag whose content equals [value]. *)

val token_lookup : t -> tag:string -> token:string -> Toss_xml.Tree.Doc.node list
(** Leaf elements with the given tag whose content contains the (already
    lowercased) token. A superset check: callers must still verify a
    substring condition against the actual content. *)

val n_entries : t -> int

(** {1 Statistics}

    Per-term statistics for the cost-based planner. Unlike the lookups
    above these do not touch the lookup/hit metrics: estimating a plan
    must not perturb the counters that describe executing it. *)

val eq_count : t -> tag:string -> value:string -> int
(** Number of leaf elements with the given tag whose content equals
    [value] — the exact cardinality an {!eq_lookup} would return. *)

val token_count : t -> tag:string -> token:string -> int
(** Number of leaf elements with the given tag containing the (already
    lowercased) token — an upper bound on a containment match. *)
