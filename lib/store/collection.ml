module Printer = Toss_xml.Printer
module Parser = Toss_xml.Parser
module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Metrics = Toss_obs.Metrics

let m_evals = Metrics.counter "store.eval.queries"
let m_indexed_paths = Metrics.counter "store.eval.indexed_paths"
let m_scanned_paths = Metrics.counter "store.eval.scanned_paths"
let m_index_starts = Metrics.histogram "store.eval.index_starts"
let m_results = Metrics.histogram "store.eval.results"
let m_docs = Metrics.counter "store.documents.added"

type doc_id = int

(* The per-document value index is built on first use and published with
   a CAS: two domains racing on a cold entry both build (Index.build is
   pure), one publishes, the loser adopts the winner's value. No lock,
   no Lazy (forcing a Lazy.t concurrently raises
   CamlinternalLazy.Undefined). *)
type entry = { frozen : Doc.t; idx : Index.t option Atomic.t; bytes : int }

(* One immutable version of the collection. Everything reachable from a
   view is either immutable (entries array is never mutated after
   publication, frozen docs are read-only) or monotonic CAS-published
   caches (per-entry indexes, tag stats), so a view can be read from any
   number of domains with no synchronization. *)
type view = {
  snap_name : string;
  snap_version : int;
  entries : entry array;  (* dense: entry i is document i *)
  snap_bytes : int;
  snap_stats : (string, int * int) Hashtbl.t option Atomic.t;
      (* tag -> (nodes, docs); built on demand, published once, read-only
         afterwards *)
}

type t = {
  coll_name : string;
  max_bytes : int option;
  writer : Mutex.t;  (* serializes add_document; readers never take it *)
  current : view Atomic.t;
}

exception Collection_full of { name : string; limit : int }

let create ?max_bytes name =
  {
    coll_name = name;
    max_bytes;
    writer = Mutex.create ();
    current =
      Atomic.make
        {
          snap_name = name;
          snap_version = 0;
          entries = [||];
          snap_bytes = 0;
          snap_stats = Atomic.make None;
        };
  }

let name t = t.coll_name
let snapshot t = Atomic.get t.current

let add_document t tree =
  Mutex.lock t.writer;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.writer)
    (fun () ->
      let v = Atomic.get t.current in
      let bytes = Printer.byte_size tree in
      (match t.max_bytes with
      | Some limit when v.snap_bytes + bytes > limit ->
          raise (Collection_full { name = t.coll_name; limit })
      | _ -> ());
      let frozen = Doc.of_tree tree in
      let entry = { frozen; idx = Atomic.make None; bytes } in
      let n = Array.length v.entries in
      let entries = Array.make (n + 1) entry in
      Array.blit v.entries 0 entries 0 n;
      Atomic.set t.current
        {
          snap_name = t.coll_name;
          snap_version = v.snap_version + 1;
          entries;
          snap_bytes = v.snap_bytes + bytes;
          snap_stats = Atomic.make None;
        };
      Metrics.incr m_docs;
      n)

let of_trees ?(name = "anon") trees =
  let t = create name in
  List.iter (fun tree -> ignore (add_document t tree)) trees;
  t

let add_xml t xml =
  match Parser.parse xml with
  | Ok tree -> Ok (add_document t tree)
  | Error e -> Error e

(* --------------------- reads, against one view --------------------- *)

let v_entry v id =
  if id < 0 || id >= Array.length v.entries then raise Not_found
  else v.entries.(id)

let v_version v = v.snap_version
let v_name v = v.snap_name
let v_doc v id = (v_entry v id).frozen

let force_index (e : entry) =
  match Atomic.get e.idx with
  | Some i -> i
  | None ->
      let built = Index.build e.frozen in
      if Atomic.compare_and_set e.idx None (Some built) then built
      else Option.get (Atomic.get e.idx)

let v_index v id = force_index (v_entry v id)
let v_doc_ids v = List.init (Array.length v.entries) Fun.id
let v_n_documents v = Array.length v.entries
let v_size_bytes v = v.snap_bytes

let v_n_nodes v =
  let total = ref 0 in
  for i = 0 to Array.length v.entries - 1 do
    total := !total + Doc.size v.entries.(i).frozen
  done;
  !total

(* With the index enabled, a query whose first step is [//tag] starts from
   the tag index rather than enumerating every node. [indexed]/[scanned]
   accumulate per-eval path counts for the caller's span annotation on
   top of the process-wide metrics. *)
let eval_in_doc ~use_index ~indexed ~scanned d xpath =
  if not use_index then begin
    Metrics.incr ~by:(List.length xpath) m_scanned_paths;
    scanned := !scanned + List.length xpath;
    Xpath.eval d xpath
  end
  else
    let eval_path path =
      match path with
      | { Xpath.axis = Descendant; test = Tag tag; predicates } :: rest ->
          Metrics.incr m_indexed_paths;
          incr indexed;
          let starts = Doc.by_tag d tag in
          Metrics.observe_int m_index_starts (List.length starts);
          let starts =
            List.fold_left
              (fun nodes pred ->
                match pred with
                | Xpath.Position k -> (
                    match List.nth_opt nodes (k - 1) with Some n -> [ n ] | None -> [])
                | p -> List.filter (fun n -> Xpath.matches d n p) nodes)
              starts predicates
          in
          List.concat_map
            (fun start ->
              (* Evaluate the remaining relative steps from this start. *)
              let rec go contexts = function
                | [] -> contexts
                | (st : Xpath.step) :: more ->
                    let nexts =
                      List.concat_map
                        (fun ctx ->
                          let candidates =
                            match st.Xpath.axis with
                            | Xpath.Child ->
                                List.filter
                                  (fun n ->
                                    match st.Xpath.test with
                                    | Xpath.Any -> true
                                    | Xpath.Tag tg -> Doc.tag d n = tg)
                                  (Doc.children d ctx)
                            | Xpath.Descendant ->
                                List.filter
                                  (fun n ->
                                    match st.Xpath.test with
                                    | Xpath.Any -> true
                                    | Xpath.Tag tg -> Doc.tag d n = tg)
                                  (Doc.descendants d ctx)
                          in
                          List.fold_left
                            (fun nodes pred ->
                              match pred with
                              | Xpath.Position k -> (
                                  match List.nth_opt nodes (k - 1) with
                                  | Some n -> [ n ]
                                  | None -> [])
                              | p -> List.filter (fun n -> Xpath.matches d n p) nodes)
                            candidates st.Xpath.predicates)
                        contexts
                    in
                    go nexts more
              in
              go [ start ] rest)
            starts
      | _ ->
          Metrics.incr m_scanned_paths;
          incr scanned;
          Xpath.eval d [ path ]
    in
    List.concat_map eval_path xpath |> List.sort_uniq Int.compare

let v_eval ?(use_index = true) v xpath =
  Metrics.incr m_evals;
  let indexed = ref 0 and scanned = ref 0 in
  let results = ref [] in
  for id = Array.length v.entries - 1 downto 0 do
    let d = v.entries.(id).frozen in
    let nodes = eval_in_doc ~use_index ~indexed ~scanned d xpath in
    results := List.rev_append (List.rev_map (fun n -> (id, n)) nodes) !results
  done;
  let n = List.length !results in
  Metrics.observe_int m_results n;
  (* Actuals for the executor's per-label [xpath] span (no-op outside
     one); what EXPLAIN ANALYZE renders as rows / index hit counts. *)
  Toss_obs.Span.annotate
    [
      ("rows", string_of_int n);
      ("indexed", string_of_int !indexed);
      ("scanned", string_of_int !scanned);
    ];
  !results

let v_eval_string ?use_index v s = v_eval ?use_index v (Xpath_parser.parse_exn s)

(* ------------------------- statistics ----------------------------- *)

(* Per-tag node and document counts across one view, built on demand
   from the frozen documents' tag tables and published with a CAS. The
   table is never mutated after publication, so concurrent readers share
   it safely; a racing builder's duplicate table is dropped. This is the
   planner's selectivity source: exact for the leading [//tag] step of a
   rewritten query. *)
let tag_table v =
  match Atomic.get v.snap_stats with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 64 in
      for id = 0 to Array.length v.entries - 1 do
        let d = v.entries.(id).frozen in
        List.iter
          (fun tag ->
            let n = List.length (Doc.by_tag d tag) in
            let nodes, docs =
              Option.value ~default:(0, 0) (Hashtbl.find_opt table tag)
            in
            Hashtbl.replace table tag (nodes + n, docs + 1))
          (Doc.tags d)
      done;
      if Atomic.compare_and_set v.snap_stats None (Some table) then table
      else Option.get (Atomic.get v.snap_stats)

let v_tag_count v tag =
  match Hashtbl.find_opt (tag_table v) tag with
  | Some (nodes, _) -> nodes
  | None -> 0

let v_docs_with_tag v tag =
  match Hashtbl.find_opt (tag_table v) tag with
  | Some (_, docs) -> docs
  | None -> 0

let v_eq_count v ~tag ~value =
  let total = ref 0 in
  for id = 0 to Array.length v.entries - 1 do
    total := !total + Index.eq_count (force_index v.entries.(id)) ~tag ~value
  done;
  !total

(* Estimated result cardinality of a query: per union path, the matches
   of the {e last} step (which determines the result arity), refined by
   its exact-content predicates through the value indexes. An estimate,
   not a bound — intermediate steps are ignored — but exact for the
   common rewritten shapes [//tag] and [//a/b[.='v' or ...]], which is
   what the planner orders label scans by. [value_index:false] skips the
   per-value refinement (and so never forces an index build). *)
let v_estimate_rows ?(value_index = true) v xpath =
  let total_nodes = v_n_nodes v in
  let n_docs = Array.length v.entries in
  let rec est_pred ~tag base = function
    | Xpath.Content_eq value -> (
        match tag with
        | Some tg when value_index -> min base (v_eq_count v ~tag:tg ~value)
        | _ -> base)
    | Xpath.And (p, q) -> min (est_pred ~tag base p) (est_pred ~tag base q)
    | Xpath.Or (p, q) -> min base (est_pred ~tag base p + est_pred ~tag base q)
    | Xpath.Position _ -> min base n_docs
    | _ -> base
  in
  let est_path path =
    match List.rev path with
    | [] -> 0
    | (last : Xpath.step) :: _ ->
        let base, tag =
          match last.Xpath.test with
          | Xpath.Tag tg -> (v_tag_count v tg, Some tg)
          | Xpath.Any -> (total_nodes, None)
        in
        List.fold_left
          (fun acc p -> min acc (est_pred ~tag base p))
          base last.Xpath.predicates
  in
  min total_nodes (List.fold_left (fun acc path -> acc + est_path path) 0 xpath)

let v_eq_lookup v ~tag ~value =
  List.concat
    (List.map
       (fun id ->
         List.map (fun n -> (id, n)) (Index.eq_lookup (v_index v id) ~tag ~value))
       (v_doc_ids v))

let v_subtrees v results =
  List.map (fun (id, n) -> Doc.subtree (v_doc v id) n) results

module Snapshot = struct
  type nonrec t = view

  let name = v_name
  let version = v_version
  let doc = v_doc
  let index = v_index
  let doc_ids = v_doc_ids
  let n_documents = v_n_documents
  let size_bytes = v_size_bytes
  let n_nodes = v_n_nodes
  let eval = v_eval
  let eval_string = v_eval_string
  let eq_lookup = v_eq_lookup
  let tag_count = v_tag_count
  let docs_with_tag = v_docs_with_tag
  let eq_count = v_eq_count
  let estimate_rows = v_estimate_rows
  let subtrees = v_subtrees
end

(* Collection-level reads delegate to the current view: each call pins
   its own snapshot, so a single call is internally consistent but two
   consecutive calls may observe different versions. Callers needing
   repeatable reads across calls hold a {!snapshot}. *)

let version t = v_version (snapshot t)
let doc t id = v_doc (snapshot t) id
let index t id = v_index (snapshot t) id
let doc_ids t = v_doc_ids (snapshot t)
let n_documents t = v_n_documents (snapshot t)
let size_bytes t = v_size_bytes (snapshot t)
let n_nodes t = v_n_nodes (snapshot t)
let eval ?use_index t xpath = v_eval ?use_index (snapshot t) xpath
let eval_string ?use_index t s = v_eval_string ?use_index (snapshot t) s
let eq_lookup t ~tag ~value = v_eq_lookup (snapshot t) ~tag ~value
let tag_count t tag = v_tag_count (snapshot t) tag
let docs_with_tag t tag = v_docs_with_tag (snapshot t) tag
let eq_count t ~tag ~value = v_eq_count (snapshot t) ~tag ~value
let estimate_rows ?value_index t xpath =
  v_estimate_rows ?value_index (snapshot t) xpath
let subtrees t results = v_subtrees (snapshot t) results
