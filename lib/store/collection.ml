module Printer = Toss_xml.Printer
module Parser = Toss_xml.Parser
module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Metrics = Toss_obs.Metrics

let m_evals = Metrics.counter "store.eval.queries"
let m_indexed_paths = Metrics.counter "store.eval.indexed_paths"
let m_scanned_paths = Metrics.counter "store.eval.scanned_paths"
let m_index_starts = Metrics.histogram "store.eval.index_starts"
let m_results = Metrics.histogram "store.eval.results"
let m_docs = Metrics.counter "store.documents.added"

type doc_id = int

type entry = { frozen : Doc.t; idx : Index.t Lazy.t; bytes : int }

type t = {
  coll_name : string;
  max_bytes : int option;
  mutable entries : entry array;
  mutable count : int;
  mutable total_bytes : int;
  mutable version : int;
      (* monotonic write counter; every successful mutation bumps it, so
         (name, version) identifies one exact state of the collection —
         the server's result-cache key *)
  mutable tag_stats : (string, int * int) Hashtbl.t option;
      (* tag -> (nodes, docs); rebuilt lazily, dropped on insertion *)
}

exception Collection_full of { name : string; limit : int }

let create ?max_bytes name =
  {
    coll_name = name;
    max_bytes;
    entries = [||];
    count = 0;
    total_bytes = 0;
    version = 0;
    tag_stats = None;
  }

let name t = t.coll_name
let version t = t.version

let add_document t tree =
  let bytes = Printer.byte_size tree in
  (match t.max_bytes with
  | Some limit when t.total_bytes + bytes > limit ->
      raise (Collection_full { name = t.coll_name; limit })
  | _ -> ());
  let frozen = Doc.of_tree tree in
  let entry = { frozen; idx = lazy (Index.build frozen); bytes } in
  if t.count = Array.length t.entries then begin
    let grown = Array.make (max 4 (2 * t.count)) entry in
    Array.blit t.entries 0 grown 0 t.count;
    t.entries <- grown
  end;
  t.entries.(t.count) <- entry;
  t.count <- t.count + 1;
  t.total_bytes <- t.total_bytes + bytes;
  t.version <- t.version + 1;
  t.tag_stats <- None;
  Metrics.incr m_docs;
  t.count - 1

let of_trees ?(name = "anon") trees =
  let t = create name in
  List.iter (fun tree -> ignore (add_document t tree)) trees;
  t

let add_xml t xml =
  match Parser.parse xml with
  | Ok tree -> Ok (add_document t tree)
  | Error e -> Error e

let entry t id = if id < 0 || id >= t.count then raise Not_found else t.entries.(id)
let doc t id = (entry t id).frozen
let index t id = Lazy.force (entry t id).idx
let doc_ids t = List.init t.count Fun.id
let n_documents t = t.count
let size_bytes t = t.total_bytes

let n_nodes t =
  let total = ref 0 in
  for i = 0 to t.count - 1 do
    total := !total + Doc.size t.entries.(i).frozen
  done;
  !total

(* With the index enabled, a query whose first step is [//tag] starts from
   the tag index rather than enumerating every node. [indexed]/[scanned]
   accumulate per-eval path counts for the caller's span annotation on
   top of the process-wide metrics. *)
let eval_in_doc ~use_index ~indexed ~scanned d xpath =
  if not use_index then begin
    Metrics.incr ~by:(List.length xpath) m_scanned_paths;
    scanned := !scanned + List.length xpath;
    Xpath.eval d xpath
  end
  else
    let eval_path path =
      match path with
      | { Xpath.axis = Descendant; test = Tag tag; predicates } :: rest ->
          Metrics.incr m_indexed_paths;
          incr indexed;
          let starts = Doc.by_tag d tag in
          Metrics.observe_int m_index_starts (List.length starts);
          let starts =
            List.fold_left
              (fun nodes pred ->
                match pred with
                | Xpath.Position k -> (
                    match List.nth_opt nodes (k - 1) with Some n -> [ n ] | None -> [])
                | p -> List.filter (fun n -> Xpath.matches d n p) nodes)
              starts predicates
          in
          List.concat_map
            (fun start ->
              (* Evaluate the remaining relative steps from this start. *)
              let rec go contexts = function
                | [] -> contexts
                | (st : Xpath.step) :: more ->
                    let nexts =
                      List.concat_map
                        (fun ctx ->
                          let candidates =
                            match st.Xpath.axis with
                            | Xpath.Child ->
                                List.filter
                                  (fun n ->
                                    match st.Xpath.test with
                                    | Xpath.Any -> true
                                    | Xpath.Tag tg -> Doc.tag d n = tg)
                                  (Doc.children d ctx)
                            | Xpath.Descendant ->
                                List.filter
                                  (fun n ->
                                    match st.Xpath.test with
                                    | Xpath.Any -> true
                                    | Xpath.Tag tg -> Doc.tag d n = tg)
                                  (Doc.descendants d ctx)
                          in
                          List.fold_left
                            (fun nodes pred ->
                              match pred with
                              | Xpath.Position k -> (
                                  match List.nth_opt nodes (k - 1) with
                                  | Some n -> [ n ]
                                  | None -> [])
                              | p -> List.filter (fun n -> Xpath.matches d n p) nodes)
                            candidates st.Xpath.predicates)
                        contexts
                    in
                    go nexts more
              in
              go [ start ] rest)
            starts
      | _ ->
          Metrics.incr m_scanned_paths;
          incr scanned;
          Xpath.eval d [ path ]
    in
    List.concat_map eval_path xpath |> List.sort_uniq Int.compare

let eval ?(use_index = true) t xpath =
  Metrics.incr m_evals;
  let indexed = ref 0 and scanned = ref 0 in
  let results = ref [] in
  for id = t.count - 1 downto 0 do
    let d = t.entries.(id).frozen in
    let nodes = eval_in_doc ~use_index ~indexed ~scanned d xpath in
    results := List.rev_append (List.rev_map (fun n -> (id, n)) nodes) !results
  done;
  let n = List.length !results in
  Metrics.observe_int m_results n;
  (* Actuals for the executor's per-label [xpath] span (no-op outside
     one); what EXPLAIN ANALYZE renders as rows / index hit counts. *)
  Toss_obs.Span.annotate
    [
      ("rows", string_of_int n);
      ("indexed", string_of_int !indexed);
      ("scanned", string_of_int !scanned);
    ];
  !results

let eval_string ?use_index t s = eval ?use_index t (Xpath_parser.parse_exn s)

(* ------------------------- statistics ----------------------------- *)

(* Per-tag node and document counts across the collection, built lazily
   from the frozen documents' tag tables and dropped on insertion. This
   is the planner's selectivity source: cheap enough to rebuild on
   demand, exact for the leading [//tag] step of a rewritten query. *)
let tag_table t =
  match t.tag_stats with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 64 in
      for id = 0 to t.count - 1 do
        let d = t.entries.(id).frozen in
        List.iter
          (fun tag ->
            let n = List.length (Doc.by_tag d tag) in
            let nodes, docs =
              Option.value ~default:(0, 0) (Hashtbl.find_opt table tag)
            in
            Hashtbl.replace table tag (nodes + n, docs + 1))
          (Doc.tags d)
      done;
      t.tag_stats <- Some table;
      table

let tag_count t tag =
  match Hashtbl.find_opt (tag_table t) tag with
  | Some (nodes, _) -> nodes
  | None -> 0

let docs_with_tag t tag =
  match Hashtbl.find_opt (tag_table t) tag with
  | Some (_, docs) -> docs
  | None -> 0

let eq_count t ~tag ~value =
  let total = ref 0 in
  for id = 0 to t.count - 1 do
    total :=
      !total + Index.eq_count (Lazy.force t.entries.(id).idx) ~tag ~value
  done;
  !total

(* Estimated result cardinality of a query: per union path, the matches
   of the {e last} step (which determines the result arity), refined by
   its exact-content predicates through the value indexes. An estimate,
   not a bound — intermediate steps are ignored — but exact for the
   common rewritten shapes [//tag] and [//a/b[.='v' or ...]], which is
   what the planner orders label scans by. [value_index:false] skips the
   per-value refinement (and so never forces a lazy index build). *)
let estimate_rows ?(value_index = true) t xpath =
  let total_nodes = n_nodes t in
  let rec est_pred ~tag base = function
    | Xpath.Content_eq v -> (
        match tag with
        | Some tg when value_index -> min base (eq_count t ~tag:tg ~value:v)
        | _ -> base)
    | Xpath.And (p, q) -> min (est_pred ~tag base p) (est_pred ~tag base q)
    | Xpath.Or (p, q) -> min base (est_pred ~tag base p + est_pred ~tag base q)
    | Xpath.Position _ -> min base t.count
    | _ -> base
  in
  let est_path path =
    match List.rev path with
    | [] -> 0
    | (last : Xpath.step) :: _ ->
        let base, tag =
          match last.Xpath.test with
          | Xpath.Tag tg -> (tag_count t tg, Some tg)
          | Xpath.Any -> (total_nodes, None)
        in
        List.fold_left
          (fun acc p -> min acc (est_pred ~tag base p))
          base last.Xpath.predicates
  in
  min total_nodes (List.fold_left (fun acc path -> acc + est_path path) 0 xpath)

let eq_lookup t ~tag ~value =
  List.concat
    (List.map
       (fun id ->
         List.map (fun n -> (id, n)) (Index.eq_lookup (index t id) ~tag ~value))
       (doc_ids t))

let subtrees t results = List.map (fun (id, n) -> Doc.subtree (doc t id) n) results
