module Tree = Toss_xml.Tree
module Parser = Toss_xml.Parser
module Printer = Toss_xml.Printer

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let doc_filename id = Printf.sprintf "%06d.xml" id

let write_doc ~path tree =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Printer.to_string ~decl:true tree))

let save_collection collection ~dir =
  ensure_dir dir;
  List.iter
    (fun id ->
      let tree = Tree.Doc.to_tree (Collection.doc collection id) in
      write_doc ~path:(Filename.concat dir (doc_filename id)) tree)
    (Collection.doc_ids collection)

let append_document ~dir ~collection id tree =
  ensure_dir dir;
  let coll_dir = Filename.concat dir collection in
  ensure_dir coll_dir;
  write_doc ~path:(Filename.concat coll_dir (doc_filename id)) tree

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every file of the directory is attempted even after a failure, so one
   corrupt document reports alongside every other corrupt document
   instead of masking them; the collection is only returned when all of
   them load (a partial collection would silently renumber ids). *)
let load_collection ?max_bytes ~name dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".xml")
      |> List.sort String.compare
    in
    let collection = Collection.create ?max_bytes name in
    let errors =
      List.filter_map
        (fun file ->
          let path = Filename.concat dir file in
          match Collection.add_xml collection (read_file path) with
          | Ok _ -> None
          | Error e -> Some (Format.asprintf "%s: %a" path Parser.pp_error e)
          | exception Collection.Collection_full { limit; _ } ->
              Some
                (Printf.sprintf "%s: collection size limit %d exceeded" path
                   limit))
        files
    in
    match errors with
    | [] -> Ok collection
    | errors -> Error (String.concat "\n" errors)
  end

let save_database db ~dir =
  ensure_dir dir;
  List.iter
    (fun name ->
      match Database.collection db name with
      | Some c -> save_collection c ~dir:(Filename.concat dir name)
      | None -> ())
    (Database.collection_names db)

(* Like [load_collection], keeps going past a failing collection and
   aggregates every error; one bad collection no longer hides problems
   in its siblings. *)
let load_database ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let subdirs =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun d -> Sys.is_directory (Filename.concat dir d))
      |> List.sort String.compare
    in
    let db = Database.create () in
    let errors =
      List.filter_map
        (fun name ->
          match load_collection ~name (Filename.concat dir name) with
          | Ok collection ->
              Database.register db collection;
              None
          | Error e -> Some e)
        subdirs
    in
    match errors with [] -> Ok db | errors -> Error (String.concat "\n" errors)
  end
