(** XPath subset: abstract syntax and evaluation over frozen documents.

    The paper's prototype executes TAX/TOSS pattern trees by rewriting
    them into XPath queries submitted to the Xindice database (Section 6).
    This module is the corresponding query language for our store. The
    subset covers location paths with child ([/]) and descendant-or-self
    ([//]) axes, name and wildcard node tests, and predicates on content,
    child content, attributes and position, combined with [and]/[or]/
    [not] — enough to express every rewritten pattern tree. Top-level
    queries are unions of paths. *)

type axis = Child | Descendant

type name_test = Tag of string | Any

type predicate =
  | Content_eq of string  (** [[.='v']] *)
  | Content_contains of string  (** [[contains(.,'v')]] *)
  | Child_eq of string * string  (** [[t='v']]: some child [t] has content [v] *)
  | Child_contains of string * string  (** [[contains(t,'v')]] *)
  | Has_child of string  (** [[t]] *)
  | Attr_eq of string * string  (** [[@a='v']] *)
  | Position of int  (** [[n]], 1-based among the step's matches per parent *)
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type step = { axis : axis; test : name_test; predicates : predicate list }

type path = step list
(** Absolute location path; the first step applies to the document root
    (so [/articles] selects the root when tagged [articles], and
    [//author] selects all [author] elements). *)

type t = path list
(** Union query ([p1 | p2 | ...]). Must be non-empty to select anything. *)

val path : step list -> t
(** A single-path query. *)

val union : t list -> t
(** Concatenates the alternatives of several queries into one. *)

val step : ?axis:axis -> ?predicates:predicate list -> string -> step
(** A step testing for the given tag (default axis {!Child}). *)

val any : ?axis:axis -> ?predicates:predicate list -> unit -> step
(** A wildcard ([*]) step (default axis {!Child}). *)

val eval : Toss_xml.Tree.Doc.t -> t -> Toss_xml.Tree.Doc.node list
(** All matching nodes, deduplicated, in document order. *)

val matches : Toss_xml.Tree.Doc.t -> Toss_xml.Tree.Doc.node -> predicate -> bool
(** Predicate satisfaction at a node ({!Position} is context-dependent and
    always true here; it is interpreted during {!eval}). *)

val to_string : t -> string
(** Concrete syntax; parses back with {!Xpath_parser.parse}. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer for the concrete syntax of {!to_string}. *)
