module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Metrics = Toss_obs.Metrics

let m_builds = Metrics.counter "store.index.builds"
let m_eq_lookups = Metrics.counter "store.index.eq_lookups"
let m_eq_hits = Metrics.counter "store.index.eq_hits"
let m_token_lookups = Metrics.counter "store.index.token_lookups"
let m_token_hits = Metrics.counter "store.index.token_hits"

type t = {
  eq : (string * string, Doc.node list) Hashtbl.t;
  tokens : (string * string, Doc.node list) Hashtbl.t;
}

let tokenize s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      let c = Char.lowercase_ascii c in
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then Buffer.add_char buf c
      else flush ())
    s;
  flush ();
  !out

let push tbl key node =
  Hashtbl.replace tbl key (node :: Option.value ~default:[] (Hashtbl.find_opt tbl key))

let build doc =
  Metrics.incr m_builds;
  let eq = Hashtbl.create 256 in
  let tokens = Hashtbl.create 256 in
  List.iter
    (fun n ->
      if Doc.children doc n = [] then begin
        let tag = Doc.tag doc n in
        let content = Doc.content doc n in
        push eq (tag, content) n;
        List.iter
          (fun tok -> push tokens (tag, tok) n)
          (List.sort_uniq String.compare (tokenize content))
      end)
    (Doc.nodes doc);
  { eq; tokens }

let eq_lookup t ~tag ~value =
  Metrics.incr m_eq_lookups;
  match Hashtbl.find_opt t.eq (tag, value) with
  | None -> []
  | Some nodes ->
      Metrics.incr m_eq_hits;
      List.rev nodes

let token_lookup t ~tag ~token =
  Metrics.incr m_token_lookups;
  match Hashtbl.find_opt t.tokens (tag, token) with
  | None -> []
  | Some nodes ->
      Metrics.incr m_token_hits;
      List.rev nodes

let n_entries t = Hashtbl.length t.eq + Hashtbl.length t.tokens

(* Statistics accessors for the planner: plain reads, no lookup/hit
   metrics — estimating a plan must not perturb the counters that
   describe executing it. *)

let eq_count t ~tag ~value =
  match Hashtbl.find_opt t.eq (tag, value) with
  | None -> 0
  | Some nodes -> List.length nodes

let token_count t ~tag ~token =
  match Hashtbl.find_opt t.tokens (tag, token) with
  | None -> 0
  | Some nodes -> List.length nodes
