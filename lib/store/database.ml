type t = { collections : (string, Collection.t) Hashtbl.t }

let create () = { collections = Hashtbl.create 8 }

let create_collection ?max_bytes t name =
  if Hashtbl.mem t.collections name then
    invalid_arg (Printf.sprintf "Database.create_collection: %S already exists" name);
  let c = Collection.create ?max_bytes name in
  Hashtbl.add t.collections name c;
  c

let register t c =
  let name = Collection.name c in
  if Hashtbl.mem t.collections name then
    invalid_arg (Printf.sprintf "Database.register: %S already exists" name);
  Hashtbl.add t.collections name c

let collection t name = Hashtbl.find_opt t.collections name

let collection_exn t name =
  match collection t name with Some c -> c | None -> raise Not_found

let drop_collection t name = Hashtbl.remove t.collections name

let collection_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.collections []
  |> List.sort String.compare

let query ?use_index t ~collection:name q =
  Collection.eval_string ?use_index (collection_exn t name) q
