type t = { lock : Mutex.t; collections : (string, Collection.t) Hashtbl.t }

let create () = { lock = Mutex.create (); collections = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create_collection ?max_bytes t name =
  locked t (fun () ->
      if Hashtbl.mem t.collections name then
        invalid_arg
          (Printf.sprintf "Database.create_collection: %S already exists" name);
      let c = Collection.create ?max_bytes name in
      Hashtbl.add t.collections name c;
      c)

let register t c =
  let name = Collection.name c in
  locked t (fun () ->
      if Hashtbl.mem t.collections name then
        invalid_arg (Printf.sprintf "Database.register: %S already exists" name);
      Hashtbl.add t.collections name c)

let collection t name = locked t (fun () -> Hashtbl.find_opt t.collections name)

let collection_exn t name =
  match collection t name with Some c -> c | None -> raise Not_found

let drop_collection t name = locked t (fun () -> Hashtbl.remove t.collections name)

let collection_names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.collections [])
  |> List.sort String.compare

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, Collection.snapshot c) :: acc)
        t.collections [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let query ?use_index t ~collection:name q =
  Collection.eval_string ?use_index (collection_exn t name) q
