(** A named-collection database, mirroring the slice of Xindice's API the
    paper's prototype uses: create a collection, insert documents, run an
    XPath query against a collection.

    The collection map is guarded by an internal mutex, so lookups,
    creation and registration are safe from any domain or thread. The
    {!Collection.t} values handed out are themselves multi-versioned
    (see {!Collection.snapshot}); the database adds no further locking
    around their contents. *)

type t

val create : unit -> t

val create_collection : ?max_bytes:int -> t -> string -> Collection.t
(** @raise Invalid_argument when the name is already taken. *)

val register : t -> Collection.t -> unit
(** Adopts an existing collection under its own {!Collection.name} —
    how {!Persist.load_database} installs loaded collections without
    copying their documents.
    @raise Invalid_argument when the name is already taken. *)

val collection : t -> string -> Collection.t option
val collection_exn : t -> string -> Collection.t
val drop_collection : t -> string -> unit
val collection_names : t -> string list

val snapshot : t -> (string * Collection.Snapshot.t) list
(** Pins the current version of every collection, sorted by name. The
    collection set is captured atomically (under the database mutex);
    each entry is that collection's {!Collection.snapshot} at capture
    time, so the result is a stable, immutable view of the whole
    database suitable for lock-free multi-domain reads. Collections
    added (or versions published) after the call are not reflected. *)

val query : ?use_index:bool -> t -> collection:string -> string ->
  (Collection.doc_id * Toss_xml.Tree.Doc.node) list
(** Parses and evaluates an XPath query against a collection.
    @raise Not_found for an unknown collection
    @raise Xpath_parser.Error on syntax errors. *)
