(** Document collections, in the style of Xindice — now multi-versioned.

    A collection is a named, insert-only set of XML documents. Documents
    are frozen into {!Toss_xml.Tree.Doc.t} form and value-indexed on
    first use. Xindice imposed a 5 MB data-size limit that shaped the
    paper's experiments (they truncated DBLP to 4,753,774 bytes);
    [max_bytes] reproduces that behaviour when set.

    {2 Concurrency model (MVCC)}

    Internally a collection is an {!Atomic.t} holding one immutable
    {e view} per version. {!add_document} builds a new view
    (copy-on-write over the shared document entries) and publishes it;
    it never mutates a published view. {!snapshot} pins the current view
    in O(1) with no lock. Consequently:

    - {!Snapshot.t} values are immutable and safe to read from any
      number of domains concurrently, with no synchronization, forever —
      a snapshot's answers never change, even while writers advance the
      collection.
    - Writers are serialized by an internal mutex; readers never block
      writers and writers never block readers.
    - The collection-level read functions below ([eval], [doc], …)
      each pin their own snapshot, so a single call is internally
      consistent, but two consecutive calls may observe different
      versions. Hold a {!snapshot} for repeatable reads.

    See [docs/CONCURRENCY.md] for the system-wide picture. *)

type t

type doc_id = int

exception Collection_full of { name : string; limit : int }

val create : ?max_bytes:int -> string -> t
(** An empty named collection, optionally capped at [max_bytes] of
    serialized document data. *)

val name : t -> string
(** The name given at {!create}. *)

val version : t -> int
(** Monotonic write counter: [0] when empty, bumped by every successful
    {!add_document}. [(name, version)] therefore identifies one exact
    state of the collection — what the query server keys its result
    cache on and returns alongside every answer. Equivalent to
    [Snapshot.version (snapshot t)]. *)

(** An immutable view of the collection at one version.

    All functions in this module are pure reads over frozen state and
    are safe to call from any domain or thread without synchronization.
    The only internal mutation is monotonic cache publication (the lazy
    per-document value indexes and the tag-statistics table), done with
    compare-and-set: concurrent first uses may build the same pure value
    twice, one copy wins, results are identical either way. *)
module Snapshot : sig
  type t

  val name : t -> string
  (** The owning collection's name. *)

  val version : t -> int
  (** The version this snapshot pinned. [(name, version)] identifies
      the exact document set every read below answers from. *)

  val doc : t -> doc_id -> Toss_xml.Tree.Doc.t
  (** @raise Not_found for ids not yet inserted at this version. *)

  val index : t -> doc_id -> Index.t
  (** The document's value index, built on first use and shared by all
      later readers of any snapshot containing the document.
      @raise Not_found for unknown ids. *)

  val doc_ids : t -> doc_id list
  (** Every id stored at this version, in insertion order. *)

  val n_documents : t -> int
  val size_bytes : t -> int
  val n_nodes : t -> int

  val eval :
    ?use_index:bool -> t -> Xpath.t -> (doc_id * Toss_xml.Tree.Doc.node) list
  (** Evaluates the query against every document of this version, in
      insertion order. With [use_index] (default true), leading [//tag]
      steps are answered from the documents' tag indexes instead of
      scanning. *)

  val eval_string :
    ?use_index:bool -> t -> string -> (doc_id * Toss_xml.Tree.Doc.node) list
  (** Parses the XPath first.
      @raise Xpath_parser.Error on syntax errors. *)

  val eq_lookup :
    t -> tag:string -> value:string -> (doc_id * Toss_xml.Tree.Doc.node) list
  (** Indexed exact-content lookup across all documents of this
      version. *)

  val tag_count : t -> string -> int
  val docs_with_tag : t -> string -> int

  val eq_count : t -> tag:string -> value:string -> int
  (** Leaf elements with the given tag and exact content, summed across
      all documents (forces the per-document indexes). *)

  val estimate_rows : ?value_index:bool -> t -> Xpath.t -> int
  (** Estimated result cardinality of the query: per union path, the
      number of elements matching the last step's name test, refined by
      its exact-content predicates through the value indexes ([Or] sums,
      [And] takes the minimum), capped at {!n_nodes}. Exact for the
      common rewritten shapes [//tag] and [//a/b[.='v' or ...]]; an
      estimate otherwise (intermediate steps are ignored). With
      [value_index:false] the per-value refinement is skipped, so no
      index build is forced. *)

  val subtrees :
    t -> (doc_id * Toss_xml.Tree.Doc.node) list -> Toss_xml.Tree.t list
  (** Rematerializes result nodes as trees, preserving result order. *)
end

val snapshot : t -> Snapshot.t
(** Pins the current version: an O(1), lock-free read of one atomic
    reference. The returned snapshot is immutable — queries against it
    are unaffected by concurrent or later {!add_document} calls — and
    may outlive any number of writes (it retains the documents of its
    version, which insert-only growth shares structurally with newer
    versions). *)

val add_document : t -> Toss_xml.Tree.t -> doc_id
(** Freezes and stores the tree, returning its id (ids are dense,
    starting at 0, in insertion order), and publishes a new version.
    Writers are serialized by an internal mutex — callers may write from
    any thread or domain — but the store-wide single-writer discipline
    (one logical writer per collection, see [docs/CONCURRENCY.md]) is
    the caller's responsibility where cross-structure atomicity matters
    (e.g. the server also appends to its persistence log).
    @raise Collection_full when the size limit would be exceeded. *)

val add_xml : t -> string -> (doc_id, Toss_xml.Parser.error) result
(** Parses and inserts. *)

val of_trees : ?name:string -> Toss_xml.Tree.t list -> t
(** A fresh collection holding the given trees, in order (so tree [i]
    has id [i]). Convenience for tests and the differential harness. *)

(** {1 Collection-level reads}

    Each call pins its own {!snapshot} and answers from it. Prefer an
    explicit snapshot when several reads must agree on a version. *)

val doc : t -> doc_id -> Toss_xml.Tree.Doc.t
(** @raise Not_found for unknown ids. *)

val index : t -> doc_id -> Index.t
(** The document's value index, built on first use.
    @raise Not_found for unknown ids. *)

val doc_ids : t -> doc_id list
(** Every stored id, in insertion order. *)

val n_documents : t -> int
(** Number of stored documents. *)

val size_bytes : t -> int
(** Total serialized size of all stored documents. *)

val n_nodes : t -> int
(** Total element count across all stored documents. *)

val eval : ?use_index:bool -> t -> Xpath.t -> (doc_id * Toss_xml.Tree.Doc.node) list
(** {!Snapshot.eval} against the current version. *)

val eval_string : ?use_index:bool -> t -> string -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Parses the XPath first.
    @raise Xpath_parser.Error on syntax errors. *)

val eq_lookup : t -> tag:string -> value:string -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Indexed exact-content lookup across all documents. *)

(** {1 Statistics}

    Per-term statistics backing the planner's selectivity estimates,
    cached per version (a new version starts with an empty cache). *)

val tag_count : t -> string -> int
(** Elements with the given tag, summed across all documents. *)

val docs_with_tag : t -> string -> int
(** Documents containing at least one element with the given tag. *)

val eq_count : t -> tag:string -> value:string -> int
(** Leaf elements with the given tag and exact content, summed across
    all documents (forces the per-document indexes). *)

val estimate_rows : ?value_index:bool -> t -> Xpath.t -> int
(** {!Snapshot.estimate_rows} against the current version. *)

val subtrees : t -> (doc_id * Toss_xml.Tree.Doc.node) list -> Toss_xml.Tree.t list
(** Rematerializes result nodes as trees, preserving result order. *)
