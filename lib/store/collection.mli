(** Document collections, in the style of Xindice.

    A collection is a mutable, named set of XML documents. Documents are
    frozen into {!Toss_xml.Tree.Doc.t} form and value-indexed at insertion time.
    Xindice imposed a 5 MB data-size limit that shaped the paper's
    experiments (they truncated DBLP to 4,753,774 bytes); [max_bytes]
    reproduces that behaviour when set. *)

type t

type doc_id = int

exception Collection_full of { name : string; limit : int }

val create : ?max_bytes:int -> string -> t
(** An empty named collection, optionally capped at [max_bytes] of
    serialized document data. *)

val name : t -> string
(** The name given at {!create}. *)

val version : t -> int
(** Monotonic write counter: [0] when empty, bumped by every successful
    {!add_document}. [(name, version)] therefore identifies one exact
    state of the collection — what the query server keys its result
    cache on and returns alongside every answer. *)

val add_document : t -> Toss_xml.Tree.t -> doc_id
(** Freezes and stores the tree, returning its id (ids are dense,
    starting at 0, in insertion order).
    @raise Collection_full when the size limit would be exceeded. *)

val add_xml : t -> string -> (doc_id, Toss_xml.Parser.error) result
(** Parses and inserts. *)

val of_trees : ?name:string -> Toss_xml.Tree.t list -> t
(** A fresh collection holding the given trees, in order (so tree [i]
    has id [i]). Convenience for tests and the differential harness. *)

val doc : t -> doc_id -> Toss_xml.Tree.Doc.t
(** @raise Not_found for unknown ids. *)

val index : t -> doc_id -> Index.t
(** The document's value index, built lazily on first use.
    @raise Not_found for unknown ids. *)

val doc_ids : t -> doc_id list
(** Every stored id, in insertion order. *)

val n_documents : t -> int
(** Number of stored documents. *)

val size_bytes : t -> int
(** Total serialized size of all stored documents. *)

val n_nodes : t -> int
(** Total element count across all stored documents. *)

val eval : ?use_index:bool -> t -> Xpath.t -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Evaluates the query against every document, in insertion order. With
    [use_index] (default true), leading [//tag] steps are answered from
    the documents' tag indexes instead of scanning. *)

val eval_string : ?use_index:bool -> t -> string -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Parses the XPath first.
    @raise Xpath_parser.Error on syntax errors. *)

val eq_lookup : t -> tag:string -> value:string -> (doc_id * Toss_xml.Tree.Doc.node) list
(** Indexed exact-content lookup across all documents. *)

(** {1 Statistics}

    Per-term statistics backing the planner's selectivity estimates.
    Tag counts are cached per collection (rebuilt lazily after an
    insertion); value counts read the per-document indexes without
    touching the lookup/hit metrics. *)

val tag_count : t -> string -> int
(** Elements with the given tag, summed across all documents. *)

val docs_with_tag : t -> string -> int
(** Documents containing at least one element with the given tag. *)

val eq_count : t -> tag:string -> value:string -> int
(** Leaf elements with the given tag and exact content, summed across
    all documents (forces the lazy per-document indexes). *)

val estimate_rows : ?value_index:bool -> t -> Xpath.t -> int
(** Estimated result cardinality of the query: per union path, the
    number of elements matching the last step's name test, refined by
    its exact-content predicates through the value indexes ([Or] sums,
    [And] takes the minimum), capped at {!n_nodes}. Exact for the common
    rewritten shapes [//tag] and [//a/b[.='v' or ...]]; an estimate
    otherwise (intermediate steps are ignored). With
    [value_index:false] the per-value refinement is skipped, so no lazy
    index build is forced. *)

val subtrees : t -> (doc_id * Toss_xml.Tree.Doc.node) list -> Toss_xml.Tree.t list
(** Rematerializes result nodes as trees, preserving result order. *)
