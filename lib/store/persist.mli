(** Filesystem persistence for collections and databases.

    Xindice stored collections as directories of XML documents; this
    module provides the same durable layout: a collection becomes a
    directory with one [NNNNNN.xml] file per document (zero-padded
    insertion order), and a database a directory of collection
    directories. Round-trips preserve document order and content up to
    whitespace normalization. *)

val save_collection : Collection.t -> dir:string -> unit
(** Creates [dir] if needed and (re)writes every document.
    @raise Sys_error on filesystem failures. *)

val append_document :
  dir:string -> collection:string -> Collection.doc_id -> Toss_xml.Tree.t -> unit
(** [append_document ~dir ~collection id tree] writes one document file
    into the database directory [dir] under [collection]'s
    subdirectory, creating both directories if needed — how the query
    server keeps its [--db] directory durable across inserts without
    rewriting the whole database.
    @raise Sys_error on filesystem failures. *)

val load_collection : ?max_bytes:int -> name:string -> string -> (Collection.t, string) result
(** [load_collection ~name dir] loads every [*.xml] file of [dir] in
    lexicographic (= insertion) order. Every file is attempted: on
    failure the error lists {e all} unloadable files (newline-separated,
    each with its path), not just the first. *)

val save_database : Database.t -> dir:string -> unit
(** One subdirectory per collection, named after it. *)

val load_database : dir:string -> (Database.t, string) result
(** Every subdirectory becomes a collection. Like {!load_collection},
    aggregates the errors of every failing collection instead of
    stopping at the first. *)
