module Doc = Toss_xml.Tree.Doc
module Metrics = Toss_obs.Metrics

let m_enumerations = Metrics.counter "tax.embed.enumerations"
let m_candidates = Metrics.histogram "tax.embed.candidates_considered"
let m_structural = Metrics.histogram "tax.embed.structural_bindings"
let m_embeddings = Metrics.histogram "tax.embed.embeddings"

type binding = (int * Doc.node) list

let env_of doc binding label =
  Option.map (fun n -> (doc, n)) (List.assoc_opt label binding)

(* Environment for prefiltering: only the node under consideration is
   bound, to its own label. *)
let single_env doc label node l = if l = label then Some (doc, node) else None

let enumerate ?(candidates = fun _ -> None) ~eval doc (pattern : Pattern.t) =
  Metrics.incr m_enumerations;
  let n_considered = ref 0 in
  let condition = pattern.Pattern.condition in
  let local_ok label node =
    List.for_all
      (fun atom -> eval (single_env doc label node) atom)
      (Condition.local_atoms condition label)
  in
  (* Candidate lists are turned into hash sets once per label so that
     narrowing a structural candidate list costs O(1) per node. *)
  let candidate_sets = Hashtbl.create 8 in
  let candidate_set label =
    match Hashtbl.find_opt candidate_sets label with
    | Some set -> set
    | None ->
        let set =
          Option.map
            (fun allowed ->
              let tbl = Hashtbl.create (List.length allowed) in
              List.iter (fun n -> Hashtbl.replace tbl n ()) allowed;
              tbl)
            (candidates label)
        in
        Hashtbl.replace candidate_sets label set;
        set
  in
  let narrowed label nodes =
    match candidate_set label with
    | None -> nodes
    | Some allowed -> List.filter (fun n -> Hashtbl.mem allowed n) nodes
  in
  (* Enumerate structural embeddings by walking the pattern in preorder;
     [binding] accumulates in reverse. *)
  let rec extend binding (pnode : Pattern.node) image =
    let binding = (pnode.Pattern.label, image) :: binding in
    let rec over_children binding = function
      | [] -> [ binding ]
      | (kind, child) :: rest ->
          let structural =
            match (kind : Pattern.edge_kind) with
            | Pattern.Pc -> Doc.children doc image
            | Pattern.Ad -> Doc.descendants doc image
          in
          let options =
            let narrowed = narrowed child.Pattern.label structural in
            n_considered := !n_considered + List.length narrowed;
            List.filter (local_ok child.Pattern.label) narrowed
          in
          List.concat_map
            (fun img ->
              List.concat_map
                (fun b -> over_children b rest)
                (extend binding child img))
            options
    in
    over_children binding pnode.Pattern.children
  in
  let root = pattern.Pattern.root in
  let root_candidates =
    (* A fetched candidate list for the root replaces the full node scan. *)
    let scanned =
      match candidates root.Pattern.label with
      | Some allowed -> List.sort_uniq Int.compare allowed
      | None -> Doc.nodes doc
    in
    n_considered := !n_considered + List.length scanned;
    List.filter (local_ok root.Pattern.label) scanned
  in
  let structural =
    List.concat_map (fun img -> extend [] root img) root_candidates
  in
  let embeddings =
    structural
    |> List.rev_map List.rev
    |> List.filter (fun binding -> eval (env_of doc binding) condition)
    |> List.sort compare
  in
  Metrics.observe_int m_candidates !n_considered;
  Metrics.observe_int m_structural (List.length structural);
  Metrics.observe_int m_embeddings (List.length embeddings);
  (* Actuals for the executor's per-document [embed] span (no-op outside
     one): how wide this enumeration's backtracking was. *)
  Toss_obs.Span.annotate
    [
      ("considered", string_of_int !n_considered);
      ("structural", string_of_int (List.length structural));
      ("embeddings", string_of_int (List.length embeddings));
    ];
  embeddings
