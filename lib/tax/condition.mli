(** Selection conditions over pattern-tree nodes (Sections 2.1 and 5.1.1).

    Terms reference a pattern node's tag ([Tag i] for [#i.tag]) or content
    ([Content i] for [#i.content]), or are string constants. Atomic
    conditions are comparisons, substring containment, and the ontology
    operators of the TOSS algebra ([~], [isa], [part_of], [instance_of],
    [subtype_of], [above], [below]). One condition AST serves both
    engines: the TAX evaluator ({!eval_tax}) interprets the ontology
    operators the way the paper's baseline does (exact match for [~],
    substring containment for the rest), while the TOSS evaluator
    (in [Toss_core]) consults the similarity-enhanced ontology. *)

type term =
  | Tag of int  (** [#i.tag] *)
  | Content of int  (** [#i.content] *)
  | Str of string  (** a constant *)

type cmp = Eq | Neq | Le | Ge | Lt | Gt

type t =
  | True
  | Cmp of term * cmp * term
  | Contains of term * string  (** substring test *)
  | Sim of term * term  (** [~], similarTo *)
  | Isa of term * term
  | Part_of of term * term
  | Instance_of of term * term
  | Subtype_of of term * term
  | Below of term * term
  | Above of term * term
  | And of t * t
  | Or of t * t
  | Not of t

val conj : t list -> t
val disj : t list -> t
(** [disj [] = Not True]. *)

val tag_eq : int -> string -> t
(** [#i.tag = s] *)

val content_eq : int -> string -> t
val content_sim : int -> string -> t
val content_isa : int -> string -> t

type env = int -> (Toss_xml.Tree.Doc.t * Toss_xml.Tree.Doc.node) option
(** A binding of pattern labels to data nodes. *)

val term_value : env -> term -> string option
(** The string value of a term under a binding ([None] when the label is
    unbound). *)

val compare_values : cmp -> string -> string -> bool
(** Numeric comparison when both strings parse as numbers, lexicographic
    otherwise. *)

val eval_tax : env -> t -> bool
(** Baseline TAX satisfaction: [Sim] is exact equality; [Isa], [Part_of],
    [Instance_of], [Subtype_of], [Below] and [Above] degrade to substring
    containment of the right value in the left (how the paper ran TAX on
    queries containing ontology operators). Unbound terms make atoms
    false. *)

val labels_used : t -> int list
val atoms : t -> t list
(** The atomic subconditions, left to right. *)

val top_conjuncts : t -> t list
(** The maximal conjuncts of the condition, left to right: [And] spines
    are flattened, everything else (atoms, [Or], [Not], [True]) is a
    single conjunct. The planner splits join conditions along these, and
    the differential-testing shrinker drops them one at a time. *)

val local_atoms : t -> int -> t list
(** The top-level conjuncts that mention only the given label (and
    constants) — usable as node-local prefilters during embedding. *)

val pp : Format.formatter -> t -> unit
