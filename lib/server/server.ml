module J = Toss_json
module Metrics = Toss_obs.Metrics

type config = {
  socket_path : string;
  db_dir : string option;
  domains : int;
  max_queue : int;
  default_deadline_ms : int option;
  cache_capacity : int;
  metric : Toss_similarity.Metric.t option;
  eps : float;
}

let default_config ~socket_path =
  {
    socket_path;
    db_dir = None;
    domains = 4;
    max_queue = 64;
    default_deadline_ms = None;
    cache_capacity = 256;
    metric = None;
    eps = 2.0;
  }

type state = {
  engine : Engine.t;
  pool : Pool.t;
  config : config;
  lock : Mutex.t;  (** guards [stopping], [conns] and [threads] *)
  mutable stopping : bool;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let g_connections = Metrics.gauge "server.connections"

let note_error code =
  Metrics.incr_c ~labels:[ ("code", Protocol.code_name code) ] "server.errors.total"

let stopped state =
  Mutex.lock state.lock;
  let s = state.stopping in
  Mutex.unlock state.lock;
  s

let request_stop state =
  Mutex.lock state.lock;
  state.stopping <- true;
  Mutex.unlock state.lock

(* The fd is registered before its thread is spawned, so the thread's
   [remove_conn] always finds it — whoever removes it closes it. *)
let add_conn state fd =
  Mutex.lock state.lock;
  state.conns <- fd :: state.conns;
  Metrics.set g_connections (float_of_int (List.length state.conns));
  Mutex.unlock state.lock

let add_thread state thread =
  Mutex.lock state.lock;
  state.threads <- thread :: state.threads;
  Mutex.unlock state.lock

(* Connection fds have exactly one closer: normally the connection
   side (the reader thread, or the last queued job — see [conn]), but
   shutdown empties [conns] first and then owns them all (see [run]'s
   cleanup), so [remove_conn]'s result says whether the connection side
   still holds the fd. *)
let remove_conn state fd =
  Mutex.lock state.lock;
  let mine = List.memq fd state.conns in
  if mine then state.conns <- List.filter (fun c -> c != fd) state.conns;
  Metrics.set g_connections (float_of_int (List.length state.conns));
  Mutex.unlock state.lock;
  mine

(* A connection shared between its reader thread and the pool jobs it
   queued. [wlock] serializes response lines (pool workers complete out
   of order, and interleaved [output_string]s would shear lines).
   [inflight] counts queued/running jobs that still hold this record:
   the fd is closed by whoever drops the last reference — the reader
   thread at EOF if nothing is queued, otherwise the final job — so a
   late response can never hit a recycled fd number and leak to a
   freshly accepted client. [fd_closed] makes the close idempotent and
   turns any later [send] into a no-op. *)
type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  wlock : Mutex.t;
  mutable inflight : int;
  mutable reader_done : bool;  (** reader owns the fd and wants it closed *)
  mutable fd_closed : bool;
}

let conn_of_fd fd =
  {
    fd;
    oc = Unix.out_channel_of_descr fd;
    wlock = Mutex.create ();
    inflight = 0;
    reader_done = false;
    fd_closed = false;
  }

let send conn resp =
  Mutex.lock conn.wlock;
  (if not conn.fd_closed then
     try
       output_string conn.oc (Protocol.response_to_line resp);
       output_char conn.oc '\n';
       flush conn.oc
     with Sys_error _ -> ());
  Mutex.unlock conn.wlock

let conn_retain conn =
  Mutex.lock conn.wlock;
  conn.inflight <- conn.inflight + 1;
  Mutex.unlock conn.wlock

(* [release_job] / [release_reader] drop one reference; the caller that
   observes [inflight] at zero with the reader gone performs the close
   outside the lock. [release_reader] is only called when the reader
   still owns the fd (see [remove_conn]). *)
let conn_close_if_last conn =
  let close_now = conn.reader_done && conn.inflight = 0 && not conn.fd_closed in
  if close_now then conn.fd_closed <- true;
  close_now

let release_job conn =
  Mutex.lock conn.wlock;
  conn.inflight <- conn.inflight - 1;
  let close_now = conn_close_if_last conn in
  Mutex.unlock conn.wlock;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let release_reader conn =
  Mutex.lock conn.wlock;
  conn.reader_done <- true;
  let close_now = conn_close_if_last conn in
  Mutex.unlock conn.wlock;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* [Engine.exec] can raise (persistence I/O failures, bugs); an
   unanswered request would wedge a pipelining client forever, so every
   escape becomes a typed [internal] response. *)
let exec_guarded state ~deadline request =
  match Engine.exec state.engine ~deadline request with
  | body -> body
  | exception exn ->
      note_error Protocol.Internal;
      Error
        (Protocol.error Protocol.Internal
           ("internal error: " ^ Printexc.to_string exn))

let handle_request state conn (env : Protocol.envelope) =
  let rid = env.id in
  match env.request with
  | Protocol.Ping | Protocol.Stats ->
      (* Answered inline: observability must survive pool saturation. *)
      send conn
        { Protocol.rid; body = exec_guarded state ~deadline:None env.request }
  | Protocol.Shutdown ->
      send conn { Protocol.rid; body = Ok (J.Obj [ ("stopping", J.Bool true) ]) };
      request_stop state
  | Protocol.Insert _ | Protocol.Query _ | Protocol.Explain _ -> (
      let deadline_ms =
        match env.deadline_ms with
        | Some _ as v -> v
        | None -> state.config.default_deadline_ms
      in
      let deadline =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
          deadline_ms
      in
      let job () =
        Fun.protect
          ~finally:(fun () -> release_job conn)
          (fun () ->
            let body =
              match deadline with
              | Some d when Unix.gettimeofday () > d ->
                  (* Died of old age while queued. *)
                  note_error Protocol.Deadline_exceeded;
                  Error
                    (Protocol.error Protocol.Deadline_exceeded
                       "deadline exceeded while queued")
              | _ -> exec_guarded state ~deadline env.request
            in
            send conn { Protocol.rid; body })
      in
      conn_retain conn;
      match Pool.submit state.pool job with
      | Pool.Accepted -> ()
      | Pool.Overloaded ->
          release_job conn;
          note_error Protocol.Overloaded;
          send conn
            {
              Protocol.rid;
              body = Error (Protocol.error Protocol.Overloaded "queue full");
            }
      | Pool.Stopped ->
          release_job conn;
          note_error Protocol.Shutting_down;
          send conn
            {
              Protocol.rid;
              body =
                Error (Protocol.error Protocol.Shutting_down "server stopping");
            })

let handle_conn state conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        (match Protocol.parse_request line with
        | Error e ->
            note_error e.Protocol.code;
            send conn { Protocol.rid = None; body = Error e }
        | Ok env -> handle_request state conn env);
        loop ()
  in
  Fun.protect
    ~finally:(fun () -> if remove_conn state conn.fd then release_reader conn)
    loop

(* A live listener accepts (or queues) a probe connect; a stale socket
   file left by a dead server refuses it with ECONNREFUSED (as does a
   plain file at the path). Only claim the path in the refused case —
   unlinking unconditionally would silently steal the address from a
   running server, leaving it alive but unreachable. *)
let socket_in_use path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception Unix.Unix_error (_, _, _) ->
          (* EACCES, EAGAIN, … — can't prove it's dead, so don't steal. *)
          true)

let bind_socket path =
  (* ADDR_UNIX paths are limited to ~100 bytes by the kernel; fail with
     a real message instead of a truncated bind. *)
  if String.length path > 100 then
    Error (Printf.sprintf "socket path too long (%d bytes): %s" (String.length path) path)
  else if Sys.file_exists path && socket_in_use path then
    Error
      (Printf.sprintf "%S: a server is already listening on this socket" path)
  else begin
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind fd (Unix.ADDR_UNIX path) with
    | () ->
        Unix.listen fd 64;
        Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error
          (Printf.sprintf "cannot bind %S: %s" path (Unix.error_message e))
  end

let run ?(ready = fun () -> ()) config =
  match
    Engine.create ?db_dir:config.db_dir ?metric:config.metric ~eps:config.eps
      ~cache_capacity:config.cache_capacity ()
  with
  | Error msg -> Error msg
  | Ok engine -> (
      match bind_socket config.socket_path with
      | Error msg -> Error msg
      | Ok listen_fd ->
          (* A client disconnecting mid-response must not kill the
             process. *)
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
          let state =
            {
              engine;
              pool = Pool.create ~domains:config.domains ~max_queue:config.max_queue;
              config;
              lock = Mutex.create ();
              stopping = false;
              conns = [];
              threads = [];
            }
          in
          ready ();
          let rec accept_loop () =
            if not (stopped state) then begin
              (* Short select timeout so a shutdown request (set by a
                 connection thread) is noticed promptly. *)
              (match Unix.select [ listen_fd ] [] [] 0.2 with
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                  match Unix.accept listen_fd with
                  | exception Unix.Unix_error (_, _, _) -> ()
                  | fd, _ ->
                      add_conn state fd;
                      let conn = conn_of_fd fd in
                      add_thread state
                        (Thread.create (fun () -> handle_conn state conn) ())));
              accept_loop ()
            end
          in
          accept_loop ();
          Unix.close listen_fd;
          (try Sys.remove config.socket_path with Sys_error _ -> ());
          (* Drain accepted work first — pending responses still flow to
             open connections — then take ownership of every remaining
             fd, wake the readers with a shutdown, and join. *)
          Pool.stop state.pool;
          Mutex.lock state.lock;
          let doomed = state.conns in
          state.conns <- [];
          let threads = state.threads in
          state.threads <- [];
          Mutex.unlock state.lock;
          List.iter
            (fun fd ->
              try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error (_, _, _) -> ())
            doomed;
          List.iter Thread.join threads;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
            doomed;
          Ok ())
