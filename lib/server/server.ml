module J = Toss_json
module Metrics = Toss_obs.Metrics

type config = {
  socket_path : string;
  db_dir : string option;
  workers : int;
  max_queue : int;
  default_deadline_ms : int option;
  cache_capacity : int;
  metric : Toss_similarity.Metric.t option;
  eps : float;
}

let default_config ~socket_path =
  {
    socket_path;
    db_dir = None;
    workers = 4;
    max_queue = 64;
    default_deadline_ms = None;
    cache_capacity = 256;
    metric = None;
    eps = 2.0;
  }

type state = {
  engine : Engine.t;
  pool : Pool.t;
  config : config;
  lock : Mutex.t;  (** guards [stopping], [conns] and [threads] *)
  mutable stopping : bool;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let g_connections = Metrics.gauge "server.connections"

let note_error code =
  Metrics.incr_c ~labels:[ ("code", Protocol.code_name code) ] "server.errors.total"

let stopped state =
  Mutex.lock state.lock;
  let s = state.stopping in
  Mutex.unlock state.lock;
  s

let request_stop state =
  Mutex.lock state.lock;
  state.stopping <- true;
  Mutex.unlock state.lock

(* The fd is registered before its thread is spawned, so the thread's
   [remove_conn] always finds it — whoever removes it closes it. *)
let add_conn state fd =
  Mutex.lock state.lock;
  state.conns <- fd :: state.conns;
  Metrics.set g_connections (float_of_int (List.length state.conns));
  Mutex.unlock state.lock

let add_thread state thread =
  Mutex.lock state.lock;
  state.threads <- thread :: state.threads;
  Mutex.unlock state.lock

(* Connection fds have exactly one closer: normally the connection
   thread, but shutdown empties [conns] first and then owns them all
   (see [run]'s cleanup), so [remove_conn]'s result says whether this
   thread still holds the fd. *)
let remove_conn state fd =
  Mutex.lock state.lock;
  let mine = List.memq fd state.conns in
  if mine then state.conns <- List.filter (fun c -> c != fd) state.conns;
  Metrics.set g_connections (float_of_int (List.length state.conns));
  Mutex.unlock state.lock;
  mine

(* One writer mutex per connection: pool workers complete out of order,
   and interleaved [output_string]s would shear response lines. *)
let sender oc =
  let wlock = Mutex.create () in
  fun resp ->
    Mutex.lock wlock;
    (try
       output_string oc (Protocol.response_to_line resp);
       output_char oc '\n';
       flush oc
     with Sys_error _ -> ());
    Mutex.unlock wlock

let handle_request state ~send (env : Protocol.envelope) =
  let rid = env.id in
  match env.request with
  | Protocol.Ping | Protocol.Stats ->
      (* Answered inline: observability must survive pool saturation. *)
      send { Protocol.rid; body = Engine.exec state.engine ~deadline:None env.request }
  | Protocol.Shutdown ->
      send { Protocol.rid; body = Ok (J.Obj [ ("stopping", J.Bool true) ]) };
      request_stop state
  | Protocol.Insert _ | Protocol.Query _ | Protocol.Explain _ -> (
      let deadline_ms =
        match env.deadline_ms with
        | Some _ as v -> v
        | None -> state.config.default_deadline_ms
      in
      let deadline =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
          deadline_ms
      in
      let job () =
        let body =
          match deadline with
          | Some d when Unix.gettimeofday () > d ->
              (* Died of old age while queued. *)
              note_error Protocol.Deadline_exceeded;
              Error
                (Protocol.error Protocol.Deadline_exceeded
                   "deadline exceeded while queued")
          | _ -> Engine.exec state.engine ~deadline env.request
        in
        send { Protocol.rid; body }
      in
      match Pool.submit state.pool job with
      | Pool.Accepted -> ()
      | Pool.Overloaded ->
          note_error Protocol.Overloaded;
          send
            {
              Protocol.rid;
              body = Error (Protocol.error Protocol.Overloaded "queue full");
            }
      | Pool.Stopped ->
          note_error Protocol.Shutting_down;
          send
            {
              Protocol.rid;
              body =
                Error (Protocol.error Protocol.Shutting_down "server stopping");
            })

let handle_conn state fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send = sender oc in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        (match Protocol.parse_request line with
        | Error e ->
            note_error e.Protocol.code;
            send { Protocol.rid = None; body = Error e }
        | Ok env -> handle_request state ~send env);
        loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      if remove_conn state fd then try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let bind_socket path =
  (* ADDR_UNIX paths are limited to ~100 bytes by the kernel; fail with
     a real message instead of a truncated bind. *)
  if String.length path > 100 then
    Error (Printf.sprintf "socket path too long (%d bytes): %s" (String.length path) path)
  else begin
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind fd (Unix.ADDR_UNIX path) with
    | () ->
        Unix.listen fd 64;
        Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error
          (Printf.sprintf "cannot bind %S: %s" path (Unix.error_message e))
  end

let run ?(ready = fun () -> ()) config =
  match
    Engine.create ?db_dir:config.db_dir ?metric:config.metric ~eps:config.eps
      ~cache_capacity:config.cache_capacity ()
  with
  | Error msg -> Error msg
  | Ok engine -> (
      match bind_socket config.socket_path with
      | Error msg -> Error msg
      | Ok listen_fd ->
          (* A client disconnecting mid-response must not kill the
             process. *)
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
          let state =
            {
              engine;
              pool = Pool.create ~workers:config.workers ~max_queue:config.max_queue;
              config;
              lock = Mutex.create ();
              stopping = false;
              conns = [];
              threads = [];
            }
          in
          ready ();
          let rec accept_loop () =
            if not (stopped state) then begin
              (* Short select timeout so a shutdown request (set by a
                 connection thread) is noticed promptly. *)
              (match Unix.select [ listen_fd ] [] [] 0.2 with
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                  match Unix.accept listen_fd with
                  | exception Unix.Unix_error (_, _, _) -> ()
                  | fd, _ ->
                      add_conn state fd;
                      add_thread state
                        (Thread.create (fun () -> handle_conn state fd) ())));
              accept_loop ()
            end
          in
          accept_loop ();
          Unix.close listen_fd;
          (try Sys.remove config.socket_path with Sys_error _ -> ());
          (* Drain accepted work first — pending responses still flow to
             open connections — then take ownership of every remaining
             fd, wake the readers with a shutdown, and join. *)
          Pool.stop state.pool;
          Mutex.lock state.lock;
          let doomed = state.conns in
          state.conns <- [];
          let threads = state.threads in
          state.threads <- [];
          Mutex.unlock state.lock;
          List.iter
            (fun fd ->
              try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error (_, _, _) -> ())
            doomed;
          List.iter Thread.join threads;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
            doomed;
          Ok ())
