module J = Toss_json
module Metrics = Toss_obs.Metrics
module Trace = Toss_obs.Trace
module Event = Toss_obs.Event
module Span = Toss_obs.Span

type config = {
  listen : Transport.addr;
  db_dir : string option;
  domains : int;
  max_queue : int;
  default_deadline_ms : int option;
  cache_capacity : int;
  metric : Toss_similarity.Metric.t option;
  eps : float;
  access_log : string option;
  trace_sample : int;
}

let default_config ~listen =
  {
    listen;
    db_dir = None;
    domains = 4;
    max_queue = 64;
    default_deadline_ms = None;
    cache_capacity = 256;
    metric = None;
    eps = 2.0;
    access_log = None;
    trace_sample = 0;
  }

(* One line per request, written whole under [alock]: pool domains
   finish out of order, and interleaved writes would shear records. *)
type access_log = { aoc : out_channel; alock : Mutex.t }

type state = {
  engine : Engine.t;
  pool : Pool.t;
  config : config;
  access : access_log option;
  sample_tick : int Atomic.t;  (** head-based sampling counter *)
  lock : Mutex.t;  (** guards [stopping], [conns] and [threads] *)
  mutable stopping : bool;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let g_connections = Metrics.gauge "server.connections"

let note_error code =
  Metrics.incr_c ~labels:[ ("code", Protocol.code_name code) ] "server.errors.total"

let stopped state =
  Mutex.lock state.lock;
  let s = state.stopping in
  Mutex.unlock state.lock;
  s

let request_stop state =
  Mutex.lock state.lock;
  state.stopping <- true;
  Mutex.unlock state.lock

(* The fd is registered before its thread is spawned, so the thread's
   [remove_conn] always finds it — whoever removes it closes it. *)
let add_conn state fd =
  Mutex.lock state.lock;
  state.conns <- fd :: state.conns;
  Metrics.set g_connections (float_of_int (List.length state.conns));
  Mutex.unlock state.lock

let add_thread state thread =
  Mutex.lock state.lock;
  state.threads <- thread :: state.threads;
  Mutex.unlock state.lock

(* Connection fds have exactly one closer: normally the connection
   side (the reader thread, or the last queued job — see [conn]), but
   shutdown empties [conns] first and then owns them all (see [run]'s
   cleanup), so [remove_conn]'s result says whether the connection side
   still holds the fd. *)
let remove_conn state fd =
  Mutex.lock state.lock;
  let mine = List.memq fd state.conns in
  if mine then state.conns <- List.filter (fun c -> c != fd) state.conns;
  Metrics.set g_connections (float_of_int (List.length state.conns));
  Mutex.unlock state.lock;
  mine

(* A connection shared between its reader thread and the pool jobs it
   queued. [wlock] serializes response lines (pool workers complete out
   of order, and interleaved [output_string]s would shear lines).
   [inflight] counts queued/running jobs that still hold this record:
   the fd is closed by whoever drops the last reference — the reader
   thread at EOF if nothing is queued, otherwise the final job — so a
   late response can never hit a recycled fd number and leak to a
   freshly accepted client. [fd_closed] makes the close idempotent and
   turns any later [send] into a no-op. *)
type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  wlock : Mutex.t;
  mutable codec : Protocol.codec;
      (** negotiated by the connection's first byte; set (under [wlock])
          before any request is handled *)
  mutable inflight : int;
  mutable reader_done : bool;  (** reader owns the fd and wants it closed *)
  mutable fd_closed : bool;
}

let conn_of_fd fd =
  {
    fd;
    oc = Unix.out_channel_of_descr fd;
    wlock = Mutex.create ();
    codec = Protocol.Json;
    inflight = 0;
    reader_done = false;
    fd_closed = false;
  }

let set_codec conn codec =
  Mutex.lock conn.wlock;
  conn.codec <- codec;
  Mutex.unlock conn.wlock

let send conn resp =
  Mutex.lock conn.wlock;
  (if not conn.fd_closed then
     try
       Wire.write conn.codec conn.oc (Protocol.response_to_json resp);
       flush conn.oc
     with Sys_error _ -> ());
  Mutex.unlock conn.wlock

let conn_retain conn =
  Mutex.lock conn.wlock;
  conn.inflight <- conn.inflight + 1;
  Mutex.unlock conn.wlock

(* [release_job] / [release_reader] drop one reference; the caller that
   observes [inflight] at zero with the reader gone performs the close
   outside the lock. [release_reader] is only called when the reader
   still owns the fd (see [remove_conn]). *)
let conn_close_if_last conn =
  let close_now = conn.reader_done && conn.inflight = 0 && not conn.fd_closed in
  if close_now then conn.fd_closed <- true;
  close_now

let release_job conn =
  Mutex.lock conn.wlock;
  conn.inflight <- conn.inflight - 1;
  let close_now = conn_close_if_last conn in
  Mutex.unlock conn.wlock;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let release_reader conn =
  Mutex.lock conn.wlock;
  conn.reader_done <- true;
  let close_now = conn_close_if_last conn in
  Mutex.unlock conn.wlock;
  if close_now then try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* [Engine.exec_traced] can raise (persistence I/O failures, bugs); an
   unanswered request would wedge a pipelining client forever, so every
   escape becomes a typed [internal] response. *)
let exec_guarded state ~deadline request =
  match Engine.exec_traced state.engine ~deadline request with
  | body -> body
  | exception exn ->
      note_error Protocol.Internal;
      ( Error
          (Protocol.error Protocol.Internal
             ("internal error: " ^ Printexc.to_string exn)),
        None )

(* One access-log record. Written {e before} the response is sent, so a
   client that has seen its answer can rely on the record being on disk
   (the smoke test counts on it). [collection] comes from the request,
   [version]/[cache] from the result payload when present, [trace] is
   the span tree of a sampled (or explicitly traced) request. *)
let log_access state ~trace_id ~request ~queue_s ~exec_s ~body ~trace =
  match state.access with
  | None -> ()
  | Some al ->
      let opt name = function Some v -> [ (name, v) ] | None -> [] in
      let collection =
        match request with
        | Protocol.Insert { collection; _ }
        | Protocol.Query { collection; _ }
        | Protocol.Explain { collection; _ } ->
            Some (J.Str collection)
        | Protocol.Join { left; right; _ } -> Some (J.Str (left ^ "," ^ right))
        | _ -> None
      in
      let payload_member name =
        match body with
        | Ok p -> Option.map (fun v -> v) (J.member name p)
        | Error _ -> None
      in
      let status =
        match body with
        | Ok _ -> "ok"
        | Error e -> Protocol.code_name e.Protocol.code
      in
      let record =
        J.Obj
          ([
             ("ts", J.Num (Unix.gettimeofday ()));
             ("trace_id", J.Str trace_id);
             ("op", J.Str (Protocol.op_name request));
           ]
          @ opt "collection" collection
          @ opt "version" (payload_member "version")
          @ opt "cache" (payload_member "cache")
          @ [
              ("queue_s", J.Num queue_s);
              ("exec_s", J.Num exec_s);
              ("domain", J.Num (float_of_int (Domain.self () :> int)));
              ("status", J.Str status);
            ]
          @ opt "trace"
              (Option.map (fun sp -> J.parse_exn (Span.to_json sp)) trace))
      in
      Mutex.lock al.alock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock al.alock)
        (fun () ->
          try
            output_string al.aoc (J.to_string record);
            output_char al.aoc '\n';
            flush al.aoc
          with Sys_error _ -> ())

(* Head-based sampling: every [trace_sample]-th pooled request records
   its full span tree into the access log. The tree is built by the
   executor regardless (its phase stats are a view over it), so
   sampling costs serialization only on the sampled request — nothing
   on the rest. *)
let sampled state =
  state.config.trace_sample > 0
  && Atomic.fetch_and_add state.sample_tick 1 mod state.config.trace_sample = 0

let handle_request state conn (env : Protocol.envelope) =
  let rid = env.id in
  let trace_id =
    match env.trace_id with Some id -> id | None -> Trace.generate ()
  in
  let respond ?server_ms ?queue_ms body =
    Protocol.response ?id:rid ~trace_id ?server_ms ?queue_ms body
  in
  match env.request with
  | Protocol.Ping | Protocol.Stats | Protocol.Metrics ->
      (* Answered inline: observability must survive pool saturation.
         The reader systhread shares its domain's DLS with every other
         connection, so the trace id is NOT installed here — inline ops
         emit no events; their records are stamped directly. *)
      let t0 = Unix.gettimeofday () in
      let body, _ = exec_guarded state ~deadline:None env.request in
      let exec_s = Unix.gettimeofday () -. t0 in
      log_access state ~trace_id ~request:env.request ~queue_s:0. ~exec_s
        ~body ~trace:None;
      send conn (respond ~server_ms:(exec_s *. 1000.) ~queue_ms:0. body)
  | Protocol.Shutdown ->
      let body = Ok (J.Obj [ ("stopping", J.Bool true) ]) in
      log_access state ~trace_id ~request:env.request ~queue_s:0. ~exec_s:0.
        ~body ~trace:None;
      send conn (respond ~server_ms:0. ~queue_ms:0. body);
      request_stop state
  | Protocol.Insert _ | Protocol.Query _ | Protocol.Join _ | Protocol.Explain _
    -> (
      let deadline_ms =
        match env.deadline_ms with
        | Some _ as v -> v
        | None -> state.config.default_deadline_ms
      in
      let deadline =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
          deadline_ms
      in
      let want_trace = sampled state in
      let job ~queue_wait_s =
        Fun.protect
          ~finally:(fun () ->
            (* A deadline abort emits Query_start but never Query_end;
               without this the slow-query sink would buffer the
               orphaned stream forever. No-op when already flushed. *)
            Event.drop_trace trace_id;
            release_job conn)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            let body, trace =
              match deadline with
              | Some d when t0 > d ->
                  (* Died of old age while queued. *)
                  note_error Protocol.Deadline_exceeded;
                  ( Error
                      (Protocol.error Protocol.Deadline_exceeded
                         "deadline exceeded while queued"),
                    None )
              | _ ->
                  (* The trace id rides the worker domain's DLS for
                     exactly this request: every span frame and event
                     the engine emits below is stamped with it. *)
                  Trace.with_id trace_id (fun () ->
                      exec_guarded state ~deadline env.request)
            in
            let exec_s = Unix.gettimeofday () -. t0 in
            log_access state ~trace_id ~request:env.request
              ~queue_s:queue_wait_s ~exec_s ~body
              ~trace:(if want_trace then trace else None);
            send conn
              (respond ~server_ms:(exec_s *. 1000.)
                 ~queue_ms:(queue_wait_s *. 1000.) body))
      in
      conn_retain conn;
      let refused body =
        release_job conn;
        log_access state ~trace_id ~request:env.request ~queue_s:0. ~exec_s:0.
          ~body ~trace:None;
        send conn (respond body)
      in
      match Pool.submit state.pool job with
      | Pool.Accepted -> ()
      | Pool.Overloaded ->
          note_error Protocol.Overloaded;
          refused (Error (Protocol.error Protocol.Overloaded "queue full"))
      | Pool.Stopped ->
          note_error Protocol.Shutting_down;
          refused
            (Error (Protocol.error Protocol.Shutting_down "server stopping")))

let handle_conn state conn =
  let reader = Wire.reader (Unix.in_channel_of_descr conn.fd) in
  let handle v =
    match Protocol.request_of_json v with
    | Error e ->
        note_error e.Protocol.code;
        send conn (Protocol.response (Error e))
    | Ok env -> handle_request state conn env
  in
  let rec loop () =
    match Wire.read reader with
    | Wire.Eof -> ()
    | Wire.Msg v ->
        set_codec conn (Wire.codec reader);
        handle v;
        loop ()
    | Wire.Corrupt e ->
        (* The framing survived (bad JSON line, undecodable frame
           payload): answer with the typed error and keep reading. *)
        set_codec conn (Wire.codec reader);
        note_error e.Protocol.code;
        send conn (Protocol.response (Error e));
        loop ()
    | Wire.Broken e ->
        (* Framing lost (truncated frame, oversized length): answer if
           possible, then stop reading — the stream cannot resync. *)
        set_codec conn (Wire.codec reader);
        note_error e.Protocol.code;
        send conn (Protocol.response (Error e))
  in
  Fun.protect
    ~finally:(fun () -> if remove_conn state conn.fd then release_reader conn)
    loop

let run ?(ready = fun (_ : string) -> ()) config =
  match
    Engine.create ?db_dir:config.db_dir ?metric:config.metric ~eps:config.eps
      ~cache_capacity:config.cache_capacity ()
  with
  | Error msg -> Error msg
  | Ok engine -> (
      match
        match config.access_log with
        | None -> Ok None
        | Some path -> (
            try
              let aoc =
                open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
              in
              Ok (Some { aoc; alock = Mutex.create () })
            with Sys_error msg ->
              Error (Printf.sprintf "cannot open access log: %s" msg))
      with
      | Error msg -> Error msg
      | Ok access -> (
      match Transport.listen config.listen with
      | Error msg ->
          Option.iter (fun al -> close_out_noerr al.aoc) access;
          Error msg
      | Ok (listen_fd, resolved) ->
          (* A client disconnecting mid-response must not kill the
             process. *)
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
          let state =
            {
              engine;
              pool = Pool.create ~domains:config.domains ~max_queue:config.max_queue;
              config;
              access;
              sample_tick = Atomic.make 0;
              lock = Mutex.create ();
              stopping = false;
              conns = [];
              threads = [];
            }
          in
          ready resolved;
          let rec accept_loop () =
            if not (stopped state) then begin
              (* Short select timeout so a shutdown request (set by a
                 connection thread) is noticed promptly. *)
              (match Unix.select [ listen_fd ] [] [] 0.2 with
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                  match Unix.accept listen_fd with
                  | exception Unix.Unix_error (_, _, _) -> ()
                  | fd, _ ->
                      add_conn state fd;
                      let conn = conn_of_fd fd in
                      add_thread state
                        (Thread.create (fun () -> handle_conn state conn) ())));
              accept_loop ()
            end
          in
          accept_loop ();
          Unix.close listen_fd;
          Transport.unlisten config.listen;
          (* Drain accepted work first — pending responses still flow to
             open connections — then take ownership of every remaining
             fd, wake the readers with a shutdown, and join. *)
          Pool.stop state.pool;
          Mutex.lock state.lock;
          let doomed = state.conns in
          state.conns <- [];
          let threads = state.threads in
          state.threads <- [];
          Mutex.unlock state.lock;
          List.iter
            (fun fd ->
              try Unix.shutdown fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error (_, _, _) -> ())
            doomed;
          List.iter Thread.join threads;
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
            doomed;
          Option.iter (fun al -> close_out_noerr al.aoc) access;
          Ok ()))
