module J = Toss_json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  codec : Protocol.codec;
}

type failure = Wire of Protocol.error | Transport of string

let failure_to_string = function
  | Wire e -> Printf.sprintf "%s: %s" (Protocol.code_name e.Protocol.code) e.Protocol.message
  | Transport msg -> Printf.sprintf "transport: %s" msg

let connect ?(codec = Protocol.Json) ?retry_ms socket =
  match Transport.parse socket with
  | Error msg -> Error msg
  | Ok addr -> (
      match Transport.connect ?retry_ms addr with
      | Error msg -> Error msg
      | Ok fd ->
          let oc = Unix.out_channel_of_descr fd in
          if codec = Protocol.Binary then Wire.open_binary oc;
          Ok { fd; ic = Unix.in_channel_of_descr fd; oc; codec })
let codec t = t.codec
let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let call_response t ?id ?deadline_ms ?trace_id ?(allow_partial = false) request
    =
  let env = { Protocol.id; deadline_ms; trace_id; allow_partial; request } in
  match
    Wire.write t.codec t.oc (Protocol.request_to_json env);
    flush t.oc;
    Wire.read_known t.codec t.ic
  with
  | exception Sys_error msg -> Error (Transport msg)
  | Wire.Eof -> Error (Transport "connection closed by server")
  | Wire.Corrupt e | Wire.Broken e ->
      Error (Transport ("bad response: " ^ e.Protocol.message))
  | Wire.Msg v -> (
      match Protocol.response_of_json v with
      | Error msg -> Error (Transport ("bad response: " ^ msg))
      | Ok resp -> Ok resp)

let call t ?id ?deadline_ms ?trace_id ?allow_partial request =
  match call_response t ?id ?deadline_ms ?trace_id ?allow_partial request with
  | Error f -> Error f
  | Ok { Protocol.body = Ok payload; _ } -> Ok payload
  | Ok { Protocol.body = Error e; _ } -> Error (Wire e)

type bench_result = {
  requests : int;
  ok : int;
  cache_hits : int;
  errors : (string * int) list;
  transport_errors : int;
  elapsed_s : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  server_p50_ms : float;
  server_p95_ms : float;
  queue_p50_ms : float;
  queue_p95_ms : float;
}

type thread_tally = {
  mutable t_ok : int;
  mutable t_hits : int;
  mutable t_errors : (string * int) list;
  mutable t_transport : int;
  mutable t_latencies : float list;  (** milliseconds, round-trip *)
  mutable t_server_ms : float list;  (** server-reported execution *)
  mutable t_queue_ms : float list;  (** server-reported queue wait *)
}

let count_error tally code =
  let name = Protocol.code_name code in
  let n = try List.assoc name tally.t_errors with Not_found -> 0 in
  tally.t_errors <- (name, n + 1) :: List.remove_assoc name tally.t_errors

let is_cache_hit payload =
  match Option.bind (J.member "cache" payload) J.to_str with
  | Some "hit" -> true
  | _ -> false

let bench_thread ?codec ~socket ?deadline_ms make_request indices tally =
  match connect ?codec socket with
  | Error _ -> tally.t_transport <- tally.t_transport + List.length indices
  | Ok conn ->
      List.iter
        (fun i ->
          let t0 = Unix.gettimeofday () in
          (match call_response conn ?deadline_ms (make_request i) with
          | Ok resp ->
              (match resp.Protocol.body with
              | Ok payload ->
                  tally.t_ok <- tally.t_ok + 1;
                  if is_cache_hit payload then tally.t_hits <- tally.t_hits + 1
              | Error e -> count_error tally e.Protocol.code);
              Option.iter
                (fun ms -> tally.t_server_ms <- ms :: tally.t_server_ms)
                resp.Protocol.server_ms;
              Option.iter
                (fun ms -> tally.t_queue_ms <- ms :: tally.t_queue_ms)
                resp.Protocol.queue_ms
          | Error (Wire e) -> count_error tally e.Protocol.code
          | Error (Transport _) -> tally.t_transport <- tally.t_transport + 1);
          tally.t_latencies <-
            ((Unix.gettimeofday () -. t0) *. 1000.) :: tally.t_latencies)
        indices;
      close conn

let percentile sorted q =
  match sorted with
  | [||] -> 0.
  | a ->
      let n = Array.length a in
      let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) idx))

let bench ?codec ~socket ~requests ~concurrency ?deadline_ms make_request =
  let concurrency = max 1 concurrency in
  (* Probe once so "no server" is an error, not a bench full of zeros. *)
  match connect ?codec socket with
  | Error msg -> Error msg
  | Ok probe ->
      close probe;
      let shares =
        (* round-robin assignment of request indices to threads *)
        Array.make concurrency [] |> fun a ->
        for i = requests - 1 downto 0 do
          a.(i mod concurrency) <- i :: a.(i mod concurrency)
        done;
        a
      in
      let tallies =
        Array.init concurrency (fun _ ->
            {
              t_ok = 0;
              t_hits = 0;
              t_errors = [];
              t_transport = 0;
              t_latencies = [];
              t_server_ms = [];
              t_queue_ms = [];
            })
      in
      let t0 = Unix.gettimeofday () in
      let threads =
        Array.mapi
          (fun i indices ->
            Thread.create
              (fun () ->
                bench_thread ?codec ~socket ?deadline_ms make_request indices
                  tallies.(i))
              ())
          shares
      in
      Array.iter Thread.join threads;
      let elapsed_s = Unix.gettimeofday () -. t0 in
      let merge f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
      let errors =
        Array.fold_left
          (fun acc t ->
            List.fold_left
              (fun acc (name, n) ->
                let prev = try List.assoc name acc with Not_found -> 0 in
                (name, prev + n) :: List.remove_assoc name acc)
              acc t.t_errors)
          [] tallies
      in
      let gather f =
        let a =
          Array.to_list tallies |> List.concat_map f |> Array.of_list
        in
        Array.sort compare a;
        a
      in
      let latencies = gather (fun t -> t.t_latencies) in
      let server_ms = gather (fun t -> t.t_server_ms) in
      let queue_ms = gather (fun t -> t.t_queue_ms) in
      Ok
        {
          requests;
          ok = merge (fun t -> t.t_ok);
          cache_hits = merge (fun t -> t.t_hits);
          errors = List.sort compare errors;
          transport_errors = merge (fun t -> t.t_transport);
          elapsed_s;
          p50_ms = percentile latencies 0.5;
          p95_ms = percentile latencies 0.95;
          max_ms = percentile latencies 1.0;
          server_p50_ms = percentile server_ms 0.5;
          server_p95_ms = percentile server_ms 0.95;
          queue_p50_ms = percentile queue_ms 0.5;
          queue_p95_ms = percentile queue_ms 0.95;
        }

let bench_to_json r =
  J.Obj
    [
      ("requests", J.Num (float_of_int r.requests));
      ("ok", J.Num (float_of_int r.ok));
      ("cache_hits", J.Num (float_of_int r.cache_hits));
      ( "errors",
        J.Obj (List.map (fun (k, n) -> (k, J.Num (float_of_int n))) r.errors) );
      ("transport_errors", J.Num (float_of_int r.transport_errors));
      ("elapsed_s", J.Num r.elapsed_s);
      ("p50_ms", J.Num r.p50_ms);
      ("p95_ms", J.Num r.p95_ms);
      ("max_ms", J.Num r.max_ms);
      ("server_p50_ms", J.Num r.server_p50_ms);
      ("server_p95_ms", J.Num r.server_p95_ms);
      ("queue_p50_ms", J.Num r.queue_p50_ms);
      ("queue_p95_ms", J.Num r.queue_p95_ms);
    ]
