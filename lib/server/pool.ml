module Metrics = Toss_obs.Metrics

type t = {
  lock : Mutex.t;
  wake : Condition.t;
  (* Each job remembers when admission accepted it; the dequeuing
     worker turns the difference into the job's queue wait. *)
  jobs : ((queue_wait_s:float -> unit) * float) Queue.t;
  max_queue : int;
  mutable stopping : bool;
  mutable inflight : int;
  mutable domains : unit Domain.t list;
}

type outcome = Accepted | Overloaded | Stopped

let g_depth = Metrics.gauge "server.queue.depth"
let g_inflight = Metrics.gauge "server.inflight"
let m_shed = Metrics.counter "server.shed.total"
let h_queue_wait = Metrics.histogram "pool.queue_wait.seconds"

let note t =
  Metrics.set g_depth (float_of_int (Queue.length t.jobs));
  Metrics.set g_inflight (float_of_int t.inflight)

(* Workers exit only once the queue is drained AND the pool is stopping,
   so every accepted job runs even across shutdown. Each worker is a
   domain: jobs on different workers execute in parallel (separate
   minor heaps, no shared runtime lock), which is the whole point —
   queries pin immutable snapshots and never contend. *)
let rec worker t =
  Mutex.lock t.lock;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.wake t.lock
  done;
  match Queue.take_opt t.jobs with
  | None ->
      (* stopping && empty *)
      Mutex.unlock t.lock
  | Some (job, submitted_at) ->
      t.inflight <- t.inflight + 1;
      note t;
      Mutex.unlock t.lock;
      let queue_wait_s =
        Float.max 0. (Unix.gettimeofday () -. submitted_at)
      in
      Metrics.observe h_queue_wait queue_wait_s;
      (try job ~queue_wait_s with _ -> ());
      Mutex.lock t.lock;
      t.inflight <- t.inflight - 1;
      note t;
      Mutex.unlock t.lock;
      worker t

let create ~domains ~max_queue =
  let t =
    {
      lock = Mutex.create ();
      wake = Condition.create ();
      jobs = Queue.create ();
      max_queue;
      stopping = false;
      inflight = 0;
      domains = [];
    }
  in
  t.domains <- List.init domains (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t job =
  Mutex.lock t.lock;
  let outcome =
    if t.stopping then Stopped
    else if Queue.length t.jobs >= t.max_queue then (
      Metrics.incr m_shed;
      Overloaded)
    else begin
      Queue.push (job, Unix.gettimeofday ()) t.jobs;
      note t;
      Condition.signal t.wake;
      Accepted
    end
  in
  Mutex.unlock t.lock;
  outcome

let queue_depth t =
  Mutex.lock t.lock;
  let n = Queue.length t.jobs in
  Mutex.unlock t.lock;
  n

let stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.wake;
  let domains = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join domains
