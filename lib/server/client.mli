(** Client for the [toss serve] wire protocol: [toss client]'s engine
    and the in-process harness of the server tests.

    {!call} is synchronous (send one line, read one line). A transport
    failure (connect refused, EOF mid-response, malformed response line)
    is distinguished from a typed wire error so callers can tell "the
    server said no" from "there is no server". *)

type t

type failure =
  | Wire of Protocol.error  (** the server answered [ok:false] *)
  | Transport of string  (** connection or framing failure *)

val failure_to_string : failure -> string

val connect : socket:string -> (t, string) result
val close : t -> unit

val call :
  t -> ?id:int -> ?deadline_ms:int -> Protocol.request -> (Toss_json.t, failure) result

(** {1 Closed-loop load generation} — [toss client --bench] and the CI
    smoke test. *)

type bench_result = {
  requests : int;
  ok : int;
  cache_hits : int;  (** responses whose payload says ["cache":"hit"] *)
  errors : (string * int) list;  (** wire error code -> count *)
  transport_errors : int;
  elapsed_s : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
}

val bench :
  socket:string ->
  requests:int ->
  concurrency:int ->
  ?deadline_ms:int ->
  (int -> Protocol.request) ->
  (bench_result, string) result
(** Runs [requests] requests across [concurrency] threads, each with its
    own connection, each thread issuing its share sequentially (closed
    loop: a thread has at most one request outstanding). The request
    factory is called with the global request index. [Error] only if no
    connection could be established at all. *)

val bench_to_json : bench_result -> Toss_json.t
