(** Client for the [toss serve] wire protocol: [toss client]'s engine
    and the in-process harness of the server tests.

    {!call} is synchronous (send one message, read one message). A
    transport failure (connect refused, EOF mid-response, malformed
    response) is distinguished from a typed wire error so callers can
    tell "the server said no" from "there is no server". *)

type t

type failure =
  | Wire of Protocol.error  (** the server answered [ok:false] *)
  | Transport of string  (** connection or framing failure *)

val failure_to_string : failure -> string

val connect :
  ?codec:Protocol.codec -> ?retry_ms:int -> string -> (t, string) result
(** Connects to a {!Transport.parse} address ([tcp:HOST:PORT],
    [unix:PATH], or a bare socket path). [codec] defaults to [Json];
    [Binary] sends {!Protocol.binary_magic} immediately so the whole
    connection is binary-framed both ways. [retry_ms] bounds
    {!Transport.connect}'s exponential-backoff retry on
    connection-refused (default 1000 ms) — it papers over the gap
    between a server binding its socket and accepting. *)

val codec : t -> Protocol.codec
val close : t -> unit

val call :
  t ->
  ?id:int ->
  ?deadline_ms:int ->
  ?trace_id:string ->
  ?allow_partial:bool ->
  Protocol.request ->
  (Toss_json.t, failure) result
(** One request, one response payload. [trace_id] names the request in
    the server's logs (validated server-side, echoed in the response —
    use {!call_response} to read the echo). *)

val call_response :
  t ->
  ?id:int ->
  ?deadline_ms:int ->
  ?trace_id:string ->
  ?allow_partial:bool ->
  Protocol.request ->
  (Protocol.response, failure) result
(** Like {!call} but returns the whole response envelope — trace id,
    [server_ms], [queue_ms] and the body (which may itself be a wire
    error; only transport failures surface as [Error]).
    [allow_partial] opts into partial results from the sharded router
    (see {!Protocol.envelope}). *)

(** {1 Closed-loop load generation} — [toss client --bench] and the CI
    smoke test. *)

type bench_result = {
  requests : int;
  ok : int;
  cache_hits : int;  (** responses whose payload says ["cache":"hit"] *)
  errors : (string * int) list;  (** wire error code -> count *)
  transport_errors : int;
  elapsed_s : float;
  p50_ms : float;  (** client round-trip percentiles *)
  p95_ms : float;
  max_ms : float;
  server_p50_ms : float;
      (** percentiles of the server-reported [server_ms] — execution
          time alone, so comparing with [p50_ms] separates queueing and
          transport from compute (closed-loop round-trip numbers hide
          queueing delay) *)
  server_p95_ms : float;
  queue_p50_ms : float;  (** percentiles of the reported [queue_ms] *)
  queue_p95_ms : float;
}

val bench :
  ?codec:Protocol.codec ->
  socket:string ->
  requests:int ->
  concurrency:int ->
  ?deadline_ms:int ->
  (int -> Protocol.request) ->
  (bench_result, string) result
(** Runs [requests] requests across [concurrency] threads, each with its
    own connection, each thread issuing its share sequentially (closed
    loop: a thread has at most one request outstanding). The request
    factory is called with the global request index. [Error] only if no
    connection could be established at all.

    Closed-loop numbers understate tail latency under load (coordinated
    omission): a slow response delays the {e issuing} of subsequent
    requests, so queueing delay hides itself. Prefer [toss loadgen]
    ({!Toss_shard.Loadgen}) — an open-loop generator — for latency
    measurements. *)

val bench_to_json : bench_result -> Toss_json.t
