(** The wire protocol of [toss serve]: one request, one response, in
    either of two codecs sharing one JSON-value representation.

    The default codec is newline-delimited JSON — one request object
    per line, one response line per request — kept for debuggability
    (`echo '{"op":"ping"}' | nc -U …` works). The alternative is a
    length-prefixed binary framing of the same values: a client opens
    it by sending the single magic byte {!binary_magic} immediately
    after connecting (no JSON line can start with that byte, so the
    first byte of a connection names its codec); every subsequent
    message in {e both} directions is a frame — a 4-byte big-endian
    payload length (at most {!max_frame}) followed by the payload, a
    tagged binary encoding of the message's JSON value
    ({!encode_binary}). Both codecs serialize exactly
    {!request_to_json}/{!response_to_json}, so a response decodes to
    the same value under either — the cross-codec equivalence the
    server tests check.

    A request is an object with an ["op"] field selecting the
    operation, an optional client-chosen ["id"] echoed back verbatim in
    the response (so a pipelining client can match responses to
    requests), an optional ["deadline_ms"] overriding the server's
    default deadline for this request, an optional ["trace_id"] (1–128
    printable ASCII characters) naming the request in the server's
    logs — the server generates one when absent, and either way echoes
    it in the response — and an optional ["allow_partial"] boolean (the
    sharded router's partial-result opt-in; a single server ignores
    it). Responses are [{"id":…, "trace_id":…, "ok":true, "result":…,
    "server_ms":…, "queue_ms":…}] or the same envelope with
    [{"ok":false, "error":{"code":…, "message":…}}]; [server_ms] is
    server-measured execution time and [queue_ms] time spent waiting
    for a worker, so clients can split round-trip latency into queueing
    vs execution vs network.

    Error codes are a closed vocabulary so clients can switch on them:

    - [bad_request] — the message was a valid value but not a valid
      request (unknown op, missing field, wrong type);
    - [parse_error] — the line was not JSON / the frame was truncated,
      oversized or undecodable, or an insert carried unparseable XML;
    - [unknown_collection] — the named collection does not exist;
    - [query_error] — TQL parse or execution failure;
    - [overloaded] — admission control shed the request (queue full);
    - [deadline_exceeded] — the deadline passed while queued or
      mid-execution;
    - [shutting_down] — the server is stopping and accepts no new work;
    - [shard_unavailable] — the sharded router could not reach every
      shard a request needs (send ["allow_partial"] to accept the
      survivors' merged answer instead);
    - [internal] — the request raised an unexpected exception inside the
      server (e.g. a persistence I/O failure); the request got no normal
      answer but the connection and server remain usable. *)

type error_code =
  | Bad_request
  | Parse_error
  | Unknown_collection
  | Query_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Shard_unavailable
  | Internal

type error = { code : error_code; message : string }

val code_name : error_code -> string
(** The wire name, e.g. ["deadline_exceeded"]. *)

val code_of_name : string -> error_code option

val error : error_code -> string -> error

type request =
  | Ping
  | Insert of { collection : string; xml : string }
  | Query of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;  (** default [Toss] *)
      cache : bool;  (** consult/populate the result cache; default true *)
    }
  | Join of {
      left : string;
      right : string;
      tql : string;
      mode : Toss_core.Executor.mode;  (** default [Toss] *)
    }
      (** Condition join of two collections: the TQL pattern root's two
          children match [left] and [right] respectively. Joins bypass
          the result cache — a cached entry would need invalidation on
          writes to either collection, and the single-collection cache
          is keyed (and invalidated) per collection. *)
  | Explain of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;
    }
  | Stats
  | Metrics
      (** Prometheus text exposition of the server's metrics registry *)
  | Shutdown

val op_name : request -> string
(** The ["op"] field value — also the label of the server's per-op
    request metrics. *)

type envelope = {
  id : int option;  (** echoed back in the response *)
  deadline_ms : int option;  (** per-request deadline override *)
  trace_id : string option;
      (** client-chosen trace id ({!Toss_obs.Trace.is_valid} enforced
          at parse time); the server generates one when [None] *)
  allow_partial : bool;
      (** router only: accept a merged answer from the reachable shards
          when some shard is down, instead of [shard_unavailable] *)
  request : request;
}

val request_to_json : envelope -> Toss_json.t
(** The codec-independent encoding of a request — what both the JSON
    line and the binary frame serialize. *)

val request_of_json : Toss_json.t -> (envelope, error) result
(** Decodes a request value (either codec's payload). [Error] is
    always [bad_request] — the value parsed, but is not a request. *)

val parse_request : string -> (envelope, error) result
(** Decodes one JSON request line. [Error] distinguishes [parse_error]
    (not JSON) from [bad_request] (JSON, but not a request). *)

val request_to_line : envelope -> string
(** Encodes a request as one JSON line (no trailing newline) — the
    client side of {!parse_request}. *)

type response = {
  rid : int option;  (** the request's [id], if it carried one *)
  rtrace_id : string option;  (** the request's trace id, echoed *)
  server_ms : float option;  (** server-side execution time *)
  queue_ms : float option;  (** time spent queued before a worker *)
  body : (Toss_json.t, error) result;
}

val response :
  ?id:int ->
  ?trace_id:string ->
  ?server_ms:float ->
  ?queue_ms:float ->
  (Toss_json.t, error) result ->
  response
(** Convenience constructor; omitted options render as absent fields. *)

val response_to_json : response -> Toss_json.t
val response_of_json : Toss_json.t -> (response, string) result

val response_to_line : response -> string
(** Encodes a response as one JSON line (no trailing newline). *)

val parse_response : string -> (response, string) result
(** Decodes one JSON response line — the client side of
    {!response_to_line}. *)

(** {1 Binary codec} *)

type codec = Json | Binary

val codec_name : codec -> string
(** ["json"] / ["binary"] — the CLI's [--codec] values. *)

val codec_of_name : string -> codec option

val binary_magic : char
(** [0xB1] — sent once by a binary client as the very first byte of the
    connection. JSON requests start with ['{'] or whitespace, so the
    first byte is unambiguous. *)

val max_frame : int
(** Upper bound (64 MiB) on a frame payload; a frame whose header
    announces more is rejected as [parse_error] without allocating. *)

val encode_binary : Toss_json.t -> string
(** The tagged binary encoding of one value (no frame header): [N]
    null, [T]/[F] booleans, [D] + 8-byte big-endian IEEE-754 double,
    [S] + u32 length + bytes, [A] + u32 count + values, [O] + u32 count
    + (u32 key length + key + value) pairs. *)

val decode_binary : string -> (Toss_json.t, error) result
(** Inverse of {!encode_binary} over exactly one value; every rejection
    (truncation, range, unknown tag, trailing bytes, pathological
    nesting) is a typed [parse_error], never an exception. *)

val encode_frame : Toss_json.t -> string
(** 4-byte big-endian payload length + {!encode_binary} payload. *)

val decode_frame : string -> (Toss_json.t, error) result
(** Decodes exactly one frame; truncated input and oversized lengths
    are typed [parse_error]s. *)

val frame_length : string -> (int, error) result
(** Reads a frame header from the first 4 bytes: the payload length, or
    [parse_error] if the input is shorter than a header or the length
    exceeds {!max_frame} — the streaming check {!Wire} applies before
    allocating a frame buffer. *)
