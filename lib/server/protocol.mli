(** The wire protocol of [toss serve]: newline-delimited JSON.

    One request per line, one response line per request. A request is an
    object with an ["op"] field selecting the operation, an optional
    client-chosen ["id"] echoed back verbatim in the response (so a
    pipelining client can match responses to requests), and an optional
    ["deadline_ms"] overriding the server's default deadline for this
    request. Responses are [{"id":…, "ok":true, "result":…}] or
    [{"id":…, "ok":false, "error":{"code":…, "message":…}}].

    Error codes are a closed vocabulary so clients can switch on them:

    - [bad_request] — the line was valid JSON but not a valid request
      (unknown op, missing field, wrong type);
    - [parse_error] — the line was not JSON, or an insert carried
      unparseable XML;
    - [unknown_collection] — the named collection does not exist;
    - [query_error] — TQL parse or execution failure;
    - [overloaded] — admission control shed the request (queue full);
    - [deadline_exceeded] — the deadline passed while queued or
      mid-execution;
    - [shutting_down] — the server is stopping and accepts no new work;
    - [internal] — the request raised an unexpected exception inside the
      server (e.g. a persistence I/O failure); the request got no normal
      answer but the connection and server remain usable. *)

type error_code =
  | Bad_request
  | Parse_error
  | Unknown_collection
  | Query_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

type error = { code : error_code; message : string }

val code_name : error_code -> string
(** The wire name, e.g. ["deadline_exceeded"]. *)

val code_of_name : string -> error_code option

val error : error_code -> string -> error

type request =
  | Ping
  | Insert of { collection : string; xml : string }
  | Query of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;  (** default [Toss] *)
      cache : bool;  (** consult/populate the result cache; default true *)
    }
  | Explain of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;
    }
  | Stats
  | Shutdown

val op_name : request -> string
(** The ["op"] field value — also the label of the server's per-op
    request metrics. *)

type envelope = {
  id : int option;  (** echoed back in the response *)
  deadline_ms : int option;  (** per-request deadline override *)
  request : request;
}

val parse_request : string -> (envelope, error) result
(** Decodes one request line. [Error] distinguishes [parse_error] (not
    JSON) from [bad_request] (JSON, but not a request). *)

val request_to_line : envelope -> string
(** Encodes a request as one line (no trailing newline) — the client
    side of {!parse_request}. *)

type response = {
  rid : int option;  (** the request's [id], if it carried one *)
  body : (Toss_json.t, error) result;
}

val response_to_line : response -> string
(** Encodes a response as one line (no trailing newline). *)

val parse_response : string -> (response, string) result
(** Decodes one response line — the client side of
    {!response_to_line}. *)
