(** The wire protocol of [toss serve]: newline-delimited JSON.

    One request per line, one response line per request. A request is an
    object with an ["op"] field selecting the operation, an optional
    client-chosen ["id"] echoed back verbatim in the response (so a
    pipelining client can match responses to requests), an optional
    ["deadline_ms"] overriding the server's default deadline for this
    request, and an optional ["trace_id"] (1–128 printable ASCII
    characters) naming the request in the server's logs — the server
    generates one when absent, and either way echoes it in the
    response. Responses are [{"id":…, "trace_id":…, "ok":true,
    "result":…, "server_ms":…, "queue_ms":…}] or the same envelope
    with [{"ok":false, "error":{"code":…, "message":…}}]; [server_ms]
    is server-measured execution time and [queue_ms] time spent waiting
    for a worker, so clients can split round-trip latency into queueing
    vs execution vs network.

    Error codes are a closed vocabulary so clients can switch on them:

    - [bad_request] — the line was valid JSON but not a valid request
      (unknown op, missing field, wrong type);
    - [parse_error] — the line was not JSON, or an insert carried
      unparseable XML;
    - [unknown_collection] — the named collection does not exist;
    - [query_error] — TQL parse or execution failure;
    - [overloaded] — admission control shed the request (queue full);
    - [deadline_exceeded] — the deadline passed while queued or
      mid-execution;
    - [shutting_down] — the server is stopping and accepts no new work;
    - [internal] — the request raised an unexpected exception inside the
      server (e.g. a persistence I/O failure); the request got no normal
      answer but the connection and server remain usable. *)

type error_code =
  | Bad_request
  | Parse_error
  | Unknown_collection
  | Query_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

type error = { code : error_code; message : string }

val code_name : error_code -> string
(** The wire name, e.g. ["deadline_exceeded"]. *)

val code_of_name : string -> error_code option

val error : error_code -> string -> error

type request =
  | Ping
  | Insert of { collection : string; xml : string }
  | Query of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;  (** default [Toss] *)
      cache : bool;  (** consult/populate the result cache; default true *)
    }
  | Join of {
      left : string;
      right : string;
      tql : string;
      mode : Toss_core.Executor.mode;  (** default [Toss] *)
    }
      (** Condition join of two collections: the TQL pattern root's two
          children match [left] and [right] respectively. Joins bypass
          the result cache — a cached entry would need invalidation on
          writes to either collection, and the single-collection cache
          is keyed (and invalidated) per collection. *)
  | Explain of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;
    }
  | Stats
  | Metrics
      (** Prometheus text exposition of the server's metrics registry *)
  | Shutdown

val op_name : request -> string
(** The ["op"] field value — also the label of the server's per-op
    request metrics. *)

type envelope = {
  id : int option;  (** echoed back in the response *)
  deadline_ms : int option;  (** per-request deadline override *)
  trace_id : string option;
      (** client-chosen trace id ({!Toss_obs.Trace.is_valid} enforced
          at parse time); the server generates one when [None] *)
  request : request;
}

val parse_request : string -> (envelope, error) result
(** Decodes one request line. [Error] distinguishes [parse_error] (not
    JSON) from [bad_request] (JSON, but not a request). *)

val request_to_line : envelope -> string
(** Encodes a request as one line (no trailing newline) — the client
    side of {!parse_request}. *)

type response = {
  rid : int option;  (** the request's [id], if it carried one *)
  rtrace_id : string option;  (** the request's trace id, echoed *)
  server_ms : float option;  (** server-side execution time *)
  queue_ms : float option;  (** time spent queued before a worker *)
  body : (Toss_json.t, error) result;
}

val response :
  ?id:int ->
  ?trace_id:string ->
  ?server_ms:float ->
  ?queue_ms:float ->
  (Toss_json.t, error) result ->
  response
(** Convenience constructor; omitted options render as absent fields. *)

val response_to_line : response -> string
(** Encodes a response as one line (no trailing newline). *)

val parse_response : string -> (response, string) result
(** Decodes one response line — the client side of
    {!response_to_line}. *)
