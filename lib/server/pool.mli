(** Fixed worker thread pool with a bounded queue — the server's
    admission-control stage.

    [submit] never blocks: a job either enters the queue ([Accepted]),
    is shed because the queue is at [max_queue] ([Overloaded] — the
    wire's typed [overloaded] error), or is refused because the pool is
    stopping ([Stopped]). Workers dequeue FIFO.

    Queue depth and in-flight jobs are published as the
    [server.queue.depth] and [server.inflight] gauges; shed jobs count
    [server.shed.total].

    [workers = 0] is allowed: nothing ever dequeues, so with
    [max_queue = 0] every submit is shed — the deterministic overload
    configuration the cram tests rely on. *)

type t

type outcome = Accepted | Overloaded | Stopped

val create : workers:int -> max_queue:int -> t

val submit : t -> (unit -> unit) -> outcome
(** Exceptions escaping the job are swallowed (the job is responsible
    for reporting its own errors to its client). *)

val queue_depth : t -> int

val stop : t -> unit
(** Stops accepting work, lets workers drain the queue, then joins
    them. Idempotent. *)
