(** Fixed domain pool with a bounded queue — the server's
    admission-control {e and} parallelism stage.

    Each worker is an OCaml 5 {!Domain.t}, so jobs on different workers
    run truly in parallel (queries execute against pinned immutable
    snapshots and hold no lock — see {!Engine} and [docs/CONCURRENCY.md]).
    Keep the worker count at or below the machine's core count; domains
    are heavyweight compared to threads and the runtime recommends few
    of them.

    [submit] never blocks and is safe to call from any thread or domain:
    a job either enters the queue ([Accepted]), is shed because the
    queue is at [max_queue] ([Overloaded] — the wire's typed
    [overloaded] error), or is refused because the pool is stopping
    ([Stopped]). Workers dequeue FIFO.

    Queue depth and in-flight jobs are published as the
    [server.queue.depth] and [server.inflight] gauges; shed jobs count
    [server.shed.total]. Every dequeued job's admission→dequeue wait is
    observed into the [pool.queue_wait.seconds] histogram and passed to
    the job itself as [~queue_wait_s], so the server can echo queueing
    delay per response and the access log can record it.

    [domains = 0] is allowed: nothing ever dequeues, so with
    [max_queue = 0] every submit is shed — the deterministic overload
    configuration the cram tests rely on. *)

type t

type outcome = Accepted | Overloaded | Stopped

val create : domains:int -> max_queue:int -> t
(** Spawns [domains] worker domains immediately. *)

val submit : t -> (queue_wait_s:float -> unit) -> outcome
(** Exceptions escaping the job are swallowed (the job is responsible
    for reporting its own errors to its client). The job may run on any
    worker domain; anything it closes over must be domain-safe.
    [queue_wait_s] is the seconds the job sat in the queue between
    admission and dequeue (clamped non-negative against clock steps). *)

val queue_depth : t -> int

val stop : t -> unit
(** Stops accepting work, lets workers drain the queue, then joins
    them. Idempotent. *)
