type addr = Unix_sock of string | Tcp of string * int

let to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse s =
  let prefix p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "tcp:" then
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None ->
        Error (Printf.sprintf "%S: a TCP address is tcp:HOST:PORT" s)
    | Some i -> (
        let host = String.sub rest 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        match int_of_string_opt (String.sub rest (i + 1) (String.length rest - i - 1)) with
        | Some port when port >= 0 && port <= 65535 -> Ok (Tcp (host, port))
        | Some _ | None ->
            Error (Printf.sprintf "%S: TCP port must be 0-65535" s))
  else if prefix "unix:" then Ok (Unix_sock (after "unix:"))
  else if s = "" then Error "empty address"
  else Ok (Unix_sock s)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
      | exception Not_found ->
          Error (Printf.sprintf "cannot resolve host %S" host))

(* A live listener accepts (or queues) a probe connect; a stale socket
   file left by a dead server refuses it with ECONNREFUSED (as does a
   plain file at the path). Only claim the path in the refused case —
   unlinking unconditionally would silently steal the address from a
   running server, leaving it alive but unreachable. *)
let socket_in_use path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception Unix.Unix_error (_, _, _) ->
          (* EACCES, EAGAIN, … — can't prove it's dead, so don't steal. *)
          true)

let listen_unix path =
  (* ADDR_UNIX paths are limited to ~100 bytes by the kernel; fail with
     a real message instead of a truncated bind. *)
  if String.length path > 100 then
    Error
      (Printf.sprintf "socket path too long (%d bytes): %s" (String.length path)
         path)
  else if Sys.file_exists path && socket_in_use path then
    Error
      (Printf.sprintf "%S: a server is already listening on this socket" path)
  else begin
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind fd (Unix.ADDR_UNIX path) with
    | () ->
        Unix.listen fd 64;
        Ok (fd, path)
    | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error (Printf.sprintf "cannot bind %S: %s" path (Unix.error_message e))
  end

let listen_tcp host port =
  match resolve_host host with
  | Error msg -> Error msg
  | Ok inet -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match Unix.bind fd (Unix.ADDR_INET (inet, port)) with
      | () ->
          Unix.listen fd 64;
          (* Port 0 asks the kernel for a free port; report the one it
             picked so tests and scripts can connect. *)
          let resolved =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          Ok (fd, Printf.sprintf "tcp:%s:%d" host resolved)
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Error
            (Printf.sprintf "cannot bind tcp:%s:%d: %s" host port
               (Unix.error_message e)))

let listen = function
  | Unix_sock path -> listen_unix path
  | Tcp (host, port) -> listen_tcp host port

let unlisten = function
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()

let sockaddr = function
  | Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match resolve_host host with
      | Error msg -> Error msg
      | Ok inet -> Ok (Unix.PF_INET, Unix.ADDR_INET (inet, port)))

(* "The server is not up yet" errors: the socket file does not exist
   yet (ENOENT) or nothing is accepting on the address (ECONNREFUSED).
   Everything else — permissions, unreachable networks — fails fast. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ENOENT -> true
  | _ -> false

let connect ?(retry_ms = 1000) addr =
  match sockaddr addr with
  | Error msg -> Error msg
  | Ok (domain, sa) ->
      let fail e =
        Error
          (Printf.sprintf "cannot connect to %S: %s" (to_string addr)
             (Unix.error_message e))
      in
      (* Bounded exponential backoff: 5, 10, 20, … ms until the budget
         runs out. A racing start (router before its shards, a test
         before its server) resolves in one or two rounds; a dead
         address still fails within [retry_ms]. *)
      let rec attempt ~delay_s ~budget_s =
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        match Unix.connect fd sa with
        | () ->
            (match addr with
            | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
            | Unix_sock _ -> ());
            Ok fd
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if transient e && budget_s > 0. then begin
              let pause = Float.min delay_s budget_s in
              Thread.delay pause;
              attempt ~delay_s:(delay_s *. 2.) ~budget_s:(budget_s -. pause)
            end
            else fail e
      in
      attempt ~delay_s:0.005 ~budget_s:(float_of_int retry_ms /. 1000.)
