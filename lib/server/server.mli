(** The [toss serve] daemon: a Unix-domain socket accept loop in front
    of {!Engine} and {!Pool}.

    Request flow (the admission-control state machine documented in
    ARCHITECTURE.md; the MVCC/domain model in docs/CONCURRENCY.md):

    + a connection thread (a systhread — cheap, I/O-bound) reads one
      line and parses it;
    + [ping], [stats] and [shutdown] are answered inline on the
      connection thread — they must work even when the pool is saturated
      (that is how an operator observes an overloaded server);
    + [insert], [query] and [explain] are submitted to the domain pool
      with an absolute deadline stamped at admission. [Pool.submit]
      refusing the job produces the typed [overloaded] (queue full) or
      [shutting_down] error immediately — load is shed at the door, not
      buffered without bound;
    + a worker {e domain} re-checks the deadline when it dequeues the
      job (a request can die of old age while queued) and then executes
      it through {!Engine.exec}: queries pin a snapshot and run in
      parallel across workers, inserts serialize on the engine's write
      lock.

    Responses may therefore complete out of order on one connection;
    clients match them by [id]. One writer mutex per connection keeps
    response lines whole across writer domains. *)

type config = {
  socket_path : string;
  db_dir : string option;  (** hydrate from / append to this directory *)
  domains : int;
      (** query-worker domains; parallel query throughput scales with
          this up to the core count *)
  max_queue : int;
  default_deadline_ms : int option;
      (** applied when a request carries no [deadline_ms]; [None] means
          no deadline *)
  cache_capacity : int;  (** 0 disables the result cache *)
  metric : Toss_similarity.Metric.t option;
      (** similarity measure for the engine's session; [None] = the
          session default (Levenshtein). The CLI passes the same
          composite measure one-shot [toss query] uses, so both
          surfaces return the same answers. *)
  eps : float;
}

val default_config : socket_path:string -> config
(** 4 domains, queue of 64, no default deadline, cache of 256,
    [eps = 2]. *)

val run : ?ready:(unit -> unit) -> config -> (unit, string) result
(** Binds the socket (removing a stale socket file first), calls
    [ready] once listening, and serves until a [shutdown] request
    arrives. Drains the pool, closes every connection and removes the
    socket file before returning. *)
