(** The [toss serve] daemon: an accept loop over a {!Transport} address
    (Unix-domain socket or TCP) in front of {!Engine} and {!Pool}.

    Request flow (the admission-control state machine documented in
    ARCHITECTURE.md; the MVCC/domain model in docs/CONCURRENCY.md):

    + a connection thread (a systhread — cheap, I/O-bound) reads one
      message and parses it. The connection's codec is negotiated from
      its first byte ({!Wire}): {!Protocol.binary_magic} opens a binary
      framed stream, anything else newline-delimited JSON. Responses
      are written in the connection's codec;
    + [ping], [stats] and [shutdown] are answered inline on the
      connection thread — they must work even when the pool is saturated
      (that is how an operator observes an overloaded server);
    + [insert], [query] and [explain] are submitted to the domain pool
      with an absolute deadline stamped at admission. [Pool.submit]
      refusing the job produces the typed [overloaded] (queue full) or
      [shutting_down] error immediately — load is shed at the door, not
      buffered without bound;
    + a worker {e domain} re-checks the deadline when it dequeues the
      job (a request can die of old age while queued) and then executes
      it through {!Engine.exec}: queries pin a snapshot and run in
      parallel across workers, inserts serialize on the engine's write
      lock.

    Responses may therefore complete out of order on one connection;
    clients match them by [id]. One writer mutex per connection keeps
    response lines whole across writer domains.

    {2 Request-scoped observability}

    Every request is assigned a trace id (the client's ["trace_id"]
    field if it sent one, a generated one otherwise) and the id is
    echoed in the response. For pooled ops the id is installed in the
    worker domain's {!Toss_obs.Trace} slot around execution, so every
    span frame and event the request emits — on any domain — carries
    it; the slow-query sink ([--slow-ms]) reassembles those events into
    per-request records keyed by the id, correct under full
    parallelism. Reader systhreads never install a trace id (they share
    one domain's DLS across connections); inline ops are stamped
    directly in their log records instead.

    When [access_log] is set, the server appends one JSON line per
    request — before sending the response, so a client that has its
    answer can rely on the record existing. Schema (optional fields
    absent rather than null): [ts], [trace_id], [op], [collection],
    [version], [cache], [queue_s], [exec_s], [domain], [status], and —
    for requests selected by [trace_sample] — [trace], the full span
    tree. [status] is ["ok"] or the wire error code. Responses also
    carry [server_ms]/[queue_ms] so clients can split round-trip time
    (see {!Protocol}). *)

type config = {
  listen : Transport.addr;
      (** where to accept connections — a Unix-domain socket path or a
          TCP host/port (port [0] picks a free port; the resolved
          address is passed to [run]'s [ready]) *)
  db_dir : string option;  (** hydrate from / append to this directory *)
  domains : int;
      (** query-worker domains; parallel query throughput scales with
          this up to the core count *)
  max_queue : int;
  default_deadline_ms : int option;
      (** applied when a request carries no [deadline_ms]; [None] means
          no deadline *)
  cache_capacity : int;  (** 0 disables the result cache *)
  metric : Toss_similarity.Metric.t option;
      (** similarity measure for the engine's session; [None] = the
          session default (Levenshtein). The CLI passes the same
          composite measure one-shot [toss query] uses, so both
          surfaces return the same answers. *)
  eps : float;
  access_log : string option;
      (** append one JSONL record per request to this file (see the
          schema above); [None] disables the log *)
  trace_sample : int;
      (** record the full span tree into the access log for every Nth
          pooled request; [0] (the default) samples none. Sampling is
          head-based — the decision is made at admission — and costs
          nothing on unsampled requests. *)
}

val default_config : listen:Transport.addr -> config
(** 4 domains, queue of 64, no default deadline, cache of 256,
    [eps = 2], no access log, no trace sampling. *)

val run : ?ready:(string -> unit) -> config -> (unit, string) result
(** Binds the listen address (reclaiming a stale Unix socket file
    first), calls [ready] with the resolved address ({!Transport.parse}
    syntax; TCP port [0] is replaced by the kernel-assigned port) once
    listening, and serves until a [shutdown] request arrives. Drains
    the pool, closes every connection and removes the socket file (Unix
    transport) before returning. *)
