(** Codec-negotiated message IO over a connection — the streaming layer
    under {!Protocol}, shared by the server, the sharded router and the
    client.

    A connection speaks one codec, chosen by its first byte:
    {!Protocol.binary_magic} opens a binary framed stream, anything
    else is the first byte of a newline-delimited JSON stream (see
    {!Protocol}). {!reader} performs that negotiation lazily on the
    first {!read}; {!read_known} skips it when the codec is already
    known (the client chose it). *)

type read =
  | Msg of Toss_json.t  (** one decoded message *)
  | Eof  (** clean end of stream, between messages *)
  | Corrupt of Protocol.error
      (** the message was undecodable but the framing survived (a
          non-JSON line; a whole frame whose payload does not decode):
          answer with the typed [parse_error] and keep reading *)
  | Broken of Protocol.error
      (** the framing itself is lost (truncated frame, oversized
          length): answer and close — the stream cannot resync *)

type reader

val reader : in_channel -> reader

val codec : reader -> Protocol.codec
(** The negotiated codec; [Json] until the first byte arrives. *)

val read : reader -> read
(** Blocking read of the next message, negotiating the codec on the
    first call. *)

val read_known : Protocol.codec -> in_channel -> read
(** {!read} for a connection whose codec is fixed — the client side. *)

val write : Protocol.codec -> out_channel -> Toss_json.t -> unit
(** Writes one message (a JSON line or a binary frame). Does not flush;
    the caller owns buffering and write locking. *)

val open_binary : out_channel -> unit
(** Writes the magic byte that opens a binary connection — a binary
    client calls this once before its first message. *)
