(** The server's request executor: one {!Toss_core.Session} plus the
    result cache and durable storage, on the MVCC read/write split.

    {2 Concurrency contract}

    [exec] is safe to call concurrently from any number of domains (the
    {!Pool} workers) and threads:

    - {b Reads} ([Query]/[Explain]) take no engine lock. Each request
      pins one (SEO, snapshot) capture via {!Toss_core.Session.pin} —
      the request's linearization point — and executes against it
      lock-free. The pinned {!Toss_core.Session.pinned_version} is both
      the result-cache key component and the [version] reported in the
      answer, so every answer names the exact state it ran against, and
      a cached payload is only ever served to a request that pinned the
      same version (plus identical config/mode/TQL).
    - {b Writes} ([Insert]) serialize on an internal write mutex: the
      session insert (which publishes the new collection version), the
      document append to [db_dir] and the cache invalidation commit as
      one critical section. In-flight reads are unaffected — they keep
      answering at their pinned version; reads that pin after the write
      see the new version.
    - A stale re-population racing an invalidation (a reader finishing
      at version [v] after a writer published [v+1]) is harmless by
      construction: its cache entry is keyed at [v], versions only
      advance, so no future request can pin [v] again — the entry is
      dead weight until FIFO eviction, never a wrong answer.
    - [Stats]/[Metrics]/[Ping] touch only the domain-safe
      {!Toss_obs.Metrics} registry.

    [exec] is deadline-aware: the deadline is an absolute
    [Unix.gettimeofday] instant, checked on entry and then cooperatively
    inside the plan interpreter via {!Toss_core.Plan.run}'s [check]
    hook — per-request state, so cancellation is domain-safe. A missed
    deadline surfaces as the typed [deadline_exceeded] wire error, never
    a partial result. *)

type t

val create :
  ?db_dir:string ->
  ?metric:Toss_similarity.Metric.t ->
  ?eps:float ->
  ?cache_capacity:int ->
  unit ->
  (t, string) result
(** [db_dir]: hydrate the session from the database directory
    (created if missing) and append every subsequent insert to it.
    [metric] is the similarity measure (default Levenshtein, the
    {!Toss_core.Session} default); its name enters the cache-key
    fingerprint, so engines with different measures never share
    entries. [cache_capacity] of 0 disables the result cache
    (default 256). [Error] aggregates hydration failures
    ({!Toss_store.Persist.load_database}). *)

val config_fingerprint : t -> string
(** The SEO-configuration component of the cache key. *)

val exec :
  t -> deadline:float option -> Protocol.request -> (Toss_json.t, Protocol.error) result
(** Executes one request, from any domain (see the concurrency contract
    above). [Shutdown] is not the engine's business and answers like
    [Ping] (the server layer intercepts it first). *)

val exec_traced :
  t ->
  deadline:float option ->
  Protocol.request ->
  (Toss_json.t, Protocol.error) result * Toss_obs.Span.t option
(** Like {!exec}, but also returns the executed query's span tree when
    one was built: [Some] exactly for a [Query] that ran the executor
    (a cache hit runs nothing, so it has no tree), [None] otherwise.
    This is how the server records full traces for sampled requests at
    zero extra cost — the executor always builds the tree; the server
    merely chooses whether to serialize it. *)
