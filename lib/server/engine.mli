(** The server's request executor: one {!Toss_core.Session} plus the
    result cache and durable storage, behind a single mutex.

    OCaml systhreads share one runtime lock, so serializing engine
    access costs no real parallelism — queries were never going to run
    OCaml code concurrently. The serving concurrency lives in the
    connection and pool layers; the engine guarantees that every
    request observes a consistent (session, version, cache) state:
    an insert bumps the collection version, appends the document file
    and invalidates the cache in one critical section, so a cached
    entry can never be served for a version it did not run against.

    [exec] is deadline-aware: the deadline is an absolute
    [Unix.gettimeofday] instant, checked on entry and then cooperatively
    inside the plan interpreter via {!Toss_core.Plan.run}'s [check]
    hook. A missed deadline surfaces as the typed [deadline_exceeded]
    wire error, never a partial result. *)

type t

val create :
  ?db_dir:string ->
  ?metric:Toss_similarity.Metric.t ->
  ?eps:float ->
  ?cache_capacity:int ->
  unit ->
  (t, string) result
(** [db_dir]: hydrate the session from the database directory
    (created if missing) and append every subsequent insert to it.
    [metric] is the similarity measure (default Levenshtein, the
    {!Toss_core.Session} default); its name enters the cache-key
    fingerprint, so engines with different measures never share
    entries. [cache_capacity] of 0 disables the result cache
    (default 256). [Error] aggregates hydration failures
    ({!Toss_store.Persist.load_database}). *)

val config_fingerprint : t -> string
(** The SEO-configuration component of the cache key. *)

val exec :
  t -> deadline:float option -> Protocol.request -> (Toss_json.t, Protocol.error) result
(** Executes one request. [Shutdown] is not the engine's business and
    answers like [Ping] (the server layer intercepts it first). *)
