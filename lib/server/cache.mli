(** The server's versioned query-result cache.

    Entries are keyed on everything that determines a query's answer:
    the collection's name {e and version} (the monotonic write counter,
    {!Toss_store.Collection.version}), the SEO configuration fingerprint
    of the serving session, the query semantics, and the TQL text. A
    write bumps the collection version, so stale entries simply stop
    being addressable; {!invalidate} additionally drops a collection's
    entries eagerly so the table doesn't fill with dead keys under
    write-heavy load.

    Capacity-bounded with FIFO eviction; all operations are
    mutex-protected and therefore domain-safe — query workers on
    separate domains share one cache. Version-keying makes the one
    lock-free race benign: a reader finishing at version [v] may re-add
    its entry after a writer invalidated for [v+1], but that entry is
    keyed at [v], which no later request can pin again (versions only
    advance), so it is unreachable dead weight, never a stale answer.
    Hits, misses, evictions, invalidations and the live entry count are
    published to {!Toss_obs.Metrics} under [server.cache.*]. *)

type key = {
  collection : string;
  version : int;  (** the collection's write counter when the query ran *)
  config : string;  (** SEO configuration fingerprint (metric, eps, …) *)
  mode : string;  (** ["tax"] or ["toss"] *)
  tql : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256 entries. [capacity] of 0 disables storage (every
    lookup misses), which is how [--no-cache] is implemented. *)

val find : t -> key -> Toss_json.t option
(** Counts a [server.cache.hits] or [server.cache.misses] metric. *)

val add : t -> key -> Toss_json.t -> unit
(** Evicts the oldest entry when full. Replaces an existing entry for
    the same key. *)

val invalidate : t -> collection:string -> unit
(** Drops every entry for the collection, whatever its version. *)

val size : t -> int

val queue_length : t -> int
(** Length of the internal FIFO eviction queue — exposed so tests can
    assert it stays bounded: keys dropped by {!invalidate} are purged
    from the queue rather than leaking until the table fills. *)
