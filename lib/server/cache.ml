module Metrics = Toss_obs.Metrics

type key = {
  collection : string;
  version : int;
  config : string;
  mode : string;
  tql : string;
}

type t = {
  lock : Mutex.t;
  capacity : int;
  table : (key, Toss_json.t) Hashtbl.t;
  order : key Queue.t;  (** insertion order, for FIFO eviction *)
}

let m_hits = Metrics.counter "server.cache.hits"
let m_misses = Metrics.counter "server.cache.misses"
let m_evictions = Metrics.counter "server.cache.evictions"
let m_invalidations = Metrics.counter "server.cache.invalidations"
let g_entries = Metrics.gauge "server.cache.entries"

let create ?(capacity = 256) () =
  {
    lock = Mutex.create ();
    capacity;
    table = Hashtbl.create (max 16 capacity);
    order = Queue.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let note_size t = Metrics.set g_entries (float_of_int (Hashtbl.length t.table))

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          Metrics.incr m_hits;
          Some v
      | None ->
          Metrics.incr m_misses;
          None)

(* The order queue may hold keys already removed from the table (by
   [invalidate] or a same-key replace); eviction skips them. *)
let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some oldest ->
      if Hashtbl.mem t.table oldest then (
        Hashtbl.remove t.table oldest;
        Metrics.incr m_evictions)
      else evict_one t

(* Rebuild [order] keeping only the first occurrence of each key still
   in the table. Without this, keys removed by [invalidate] would sit in
   the queue forever whenever the table never reaches capacity (only
   [evict_one] drains stale entries otherwise). *)
let compact t =
  let seen = Hashtbl.create (Hashtbl.length t.table) in
  let keep = Queue.create () in
  Queue.iter
    (fun k ->
      if Hashtbl.mem t.table k && not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        Queue.push k keep
      end)
    t.order;
  Queue.clear t.order;
  Queue.transfer keep t.order

let add t key value =
  if t.capacity > 0 then
    locked t (fun () ->
        if not (Hashtbl.mem t.table key) then begin
          while Hashtbl.length t.table >= t.capacity do
            evict_one t
          done;
          Queue.push key t.order;
          (* Backstop: bound the queue even under patterns [invalidate]'s
             compaction doesn't see (e.g. repeated re-adds of a key whose
             stale copy is still queued). *)
          if Queue.length t.order > (2 * t.capacity) + 16 then compact t
        end;
        Hashtbl.replace t.table key value;
        note_size t)

let invalidate t ~collection =
  locked t (fun () ->
      let stale =
        Hashtbl.fold
          (fun k _ acc -> if k.collection = collection then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) stale;
      if stale <> [] then begin
        Metrics.incr m_invalidations;
        compact t
      end;
      note_size t)

let size t = locked t (fun () -> Hashtbl.length t.table)
let queue_length t = locked t (fun () -> Queue.length t.order)
