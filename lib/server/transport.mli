(** Server/client transports: Unix-domain sockets and TCP.

    An address is written ["tcp:HOST:PORT"], ["unix:PATH"], or a bare
    path (shorthand for a Unix socket). TCP port [0] asks the kernel
    for a free port; {!listen} reports the resolved address so tests
    and scripts can connect without racing for port numbers. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain stream socket *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val parse : string -> (addr, string) result
(** ["tcp:HOST:PORT"] (empty host means [127.0.0.1]), ["unix:PATH"],
    or a bare path (a Unix socket). *)

val to_string : addr -> string
(** [parse (to_string a) = Ok a]; Unix sockets print as the bare
    path. *)

val listen : addr -> (Unix.file_descr * string, string) result
(** Binds and listens; returns the listening fd and the resolved
    address string (TCP port 0 replaced by the kernel's pick). A Unix
    path is reclaimed if its socket file is stale, but refused if a
    live server is accepting on it. *)

val unlisten : addr -> unit
(** Removes a Unix socket file after the listener closed; no-op for
    TCP. *)

val connect : ?retry_ms:int -> addr -> (Unix.file_descr, string) result
(** Connects with bounded exponential backoff (5, 10, 20, … ms) while
    the address looks like a server that has not started accepting yet
    ([ECONNREFUSED], or [ENOENT] for a not-yet-bound Unix path), up to
    a total budget of [retry_ms] (default 1000). Sets [TCP_NODELAY] on
    TCP connections. Other errors fail immediately. *)
