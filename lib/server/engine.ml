module J = Toss_json
module Session = Toss_core.Session
module Tql = Toss_core.Tql
module Executor = Toss_core.Executor
module Explain = Toss_core.Explain
module Planner = Toss_core.Planner
module Collection = Toss_store.Collection
module Database = Toss_store.Database
module Persist = Toss_store.Persist
module Printer = Toss_xml.Printer
module Parser = Toss_xml.Parser
module Doc = Toss_xml.Tree.Doc
module Metrics = Toss_obs.Metrics

exception Deadline

type t = {
  write_lock : Mutex.t;
      (* serializes the write path only: session insert + persistence
         append + cache invalidation commit together. Queries never
         take it — they pin a session snapshot and run lock-free. *)
  session : Session.t;
  cache : Cache.t;
  cache_capacity : int;
  config : string;
  db_dir : string option;
}

let m_requests op = Metrics.counter ~labels:[ ("op", op) ] "server.requests.total"
let m_errors code = Metrics.counter ~labels:[ ("code", code) ] "server.errors.total"
let h_seconds op = Metrics.histogram ~labels:[ ("op", op) ] "server.request.seconds"

let err code fmt = Printf.ksprintf (fun m -> Error (Protocol.error code m)) fmt

let hydrate session dir =
  if Sys.file_exists dir then
    match Persist.load_database ~dir with
    | Error msg -> Error msg
    | Ok db ->
        List.iter
          (fun name ->
            let coll = Database.collection_exn db name in
            List.iter
              (fun id ->
                Session.add_document session ~collection:name
                  (Doc.to_tree (Collection.doc coll id)))
              (Collection.doc_ids coll))
          (Database.collection_names db);
        Ok ()
  else
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error msg ->
        Error (Printf.sprintf "cannot create database directory %S: %s" dir msg)

let create ?db_dir ?metric ?(eps = 2.0) ?(cache_capacity = 256) () =
  let metric =
    Option.value metric ~default:Toss_similarity.Levenshtein.metric
  in
  let session = Session.create ~metric ~eps () in
  let hydrated =
    match db_dir with None -> Ok () | Some dir -> hydrate session dir
  in
  match hydrated with
  | Error msg -> Error msg
  | Ok () ->
      Ok
        {
          write_lock = Mutex.create ();
          session;
          cache = Cache.create ~capacity:cache_capacity ();
          cache_capacity;
          config =
            Printf.sprintf "%s;eps=%g" metric.Toss_similarity.Metric.name eps;
          db_dir;
        }

let config_fingerprint t = t.config

let write_locked t f =
  Mutex.lock t.write_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.write_lock) f

let mode_name = function Executor.Tax -> "tax" | Executor.Toss -> "toss"

let check_of_deadline deadline () =
  match deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline
  | _ -> ()

(* The cached payload carries its compute-time cost; the cache status is
   stamped per response so a hit is distinguishable from the miss that
   populated it. *)
let with_cache_status status = function
  | J.Obj fields -> J.Obj (fields @ [ ("cache", J.Str status) ])
  | v -> v

let do_insert t ~collection ~xml =
  match Parser.parse xml with
  | Error e -> err Protocol.Parse_error "%s" (Format.asprintf "%a" Parser.pp_error e)
  | Ok tree ->
      let id = Session.insert t.session ~collection tree in
      let version = Session.version t.session ~collection in
      Option.iter
        (fun dir -> Persist.append_document ~dir ~collection id tree)
        t.db_dir;
      Cache.invalidate t.cache ~collection;
      Ok
        (J.Obj
           [
             ("collection", J.Str collection);
             ("doc_id", J.Num (float_of_int id));
             ("version", J.Num (float_of_int version));
           ])

(* The linearization point of a read is [Session.pin]: it captures the
   (SEO, snapshot) pair atomically with respect to writers, and both the
   cache key's [version] and the executed query come from that capture —
   so a cached payload and a computed answer for the same key are
   answers to the same exact collection state, no matter how many writes
   or other queries run meanwhile. *)
(* Returns the body plus the executed query's span tree (None on cache
   hits — nothing ran — and on errors), so the server can attach the
   trace to sampled access-log records without re-running anything. *)
let do_query t ~deadline ~collection ~tql ~mode ~cache =
  match Session.pin t.session ~collection with
  | Error msg -> (err Protocol.Unknown_collection "%s" msg, None)
  | Ok pinned -> (
      let version = Session.pinned_version pinned in
      let key =
        {
          Cache.collection;
          version;
          config = t.config;
          mode = mode_name mode;
          tql;
        }
      in
      let use_cache = cache && t.cache_capacity > 0 in
      match if use_cache then Cache.find t.cache key else None with
      | Some payload -> (Ok (with_cache_status "hit" payload), None)
      | None -> (
          let t0 = Unix.gettimeofday () in
          let check = check_of_deadline deadline in
          match Session.query_at ~mode ~check pinned tql with
          | exception Deadline ->
              ( err Protocol.Deadline_exceeded
                  "deadline exceeded during execution",
                None )
          | Error msg -> (err Protocol.Query_error "%s" msg, None)
          | Ok answer ->
              let compute_ms = (Unix.gettimeofday () -. t0) *. 1000. in
              let payload =
                J.Obj
                  [
                    ("collection", J.Str collection);
                    ("version", J.Num (float_of_int version));
                    ("count", J.Num (float_of_int (List.length answer.trees)));
                    ("compute_ms", J.Num compute_ms);
                    ( "trees",
                      J.Arr
                        (List.map
                           (fun tr -> J.Str (Printer.to_string ~decl:false tr))
                           answer.trees) );
                  ]
              in
              if use_cache then Cache.add t.cache key payload;
              ( Ok (with_cache_status "miss" payload),
                Option.map
                  (fun (s : Executor.stats) -> s.Executor.trace)
                  answer.Session.stats )))

(* Joins pin both snapshots atomically ([Session.pin2]) but bypass the
   result cache: its entries are keyed and invalidated per single
   collection, and a two-collection key would go stale on writes to
   either side. The deadline [check] reaches the pairing operator's
   probe loop, so a join is cancellable mid-probe — with no partial
   witnesses, since the whole request fails with [deadline_exceeded]. *)
let do_join t ~deadline ~left ~right ~tql ~mode =
  match Session.pin2 t.session ~left ~right with
  | Error msg -> (err Protocol.Unknown_collection "%s" msg, None)
  | Ok pinned -> (
      let lversion, rversion = Session.pinned2_versions pinned in
      let t0 = Unix.gettimeofday () in
      let check = check_of_deadline deadline in
      match Session.join_at ~mode ~check pinned tql with
      | exception Deadline ->
          ( err Protocol.Deadline_exceeded "deadline exceeded during execution",
            None )
      | Error msg -> (err Protocol.Query_error "%s" msg, None)
      | Ok answer ->
          let compute_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          let payload =
            J.Obj
              [
                ("left", J.Str left);
                ("right", J.Str right);
                ("left_version", J.Num (float_of_int lversion));
                ("right_version", J.Num (float_of_int rversion));
                ("count", J.Num (float_of_int (List.length answer.Session.trees)));
                ("compute_ms", J.Num compute_ms);
                ( "trees",
                  J.Arr
                    (List.map
                       (fun tr -> J.Str (Printer.to_string ~decl:false tr))
                       answer.Session.trees) );
              ]
          in
          ( Ok payload,
            Option.map
              (fun (s : Executor.stats) -> s.Executor.trace)
              answer.Session.stats ))

let do_explain t ~collection ~tql ~mode =
  match Session.pin t.session ~collection with
  | Error msg -> err Protocol.Unknown_collection "%s" msg
  | Ok pinned -> (
      match Tql.parse tql with
      | Error msg -> err Protocol.Query_error "TQL: %s" msg
      | Ok q -> (
          match Session.pinned_seo pinned with
          | Error msg -> err Protocol.Query_error "%s" msg
          | Ok seo -> (
              match q.Tql.target with
              | Tql.Project _ ->
                  err Protocol.Query_error "explain supports SELECT queries only"
              | Tql.Select sl ->
                  let plan =
                    Planner.plan_select ~mode ~optimize:true seo
                      (Session.pinned_snapshot pinned) ~pattern:q.Tql.pattern ~sl
                  in
                  let e =
                    Explain.with_plan (Explain.explain ~mode seo q.Tql.pattern) plan
                  in
                  Ok (J.parse_exn (Explain.to_json e)))))

let do_stats () =
  let snap = Metrics.snapshot () in
  Ok
    (J.Obj
       [
         ("metrics", J.parse_exn (Metrics.to_json snap));
         ("table", J.Str (Metrics.to_table snap));
       ])

let do_metrics () =
  Ok
    (J.Obj
       [ ("prometheus", J.Str (Metrics.to_prometheus (Metrics.snapshot ()))) ])

let exec_traced t ~deadline request =
  let op = Protocol.op_name request in
  Metrics.incr (m_requests op);
  let t0 = Unix.gettimeofday () in
  let result, trace =
    if (match deadline with Some d -> t0 > d | None -> false) then
      ( err Protocol.Deadline_exceeded "deadline exceeded before execution",
        None )
    else
      match request with
      | Protocol.Ping | Protocol.Shutdown ->
          (Ok (J.Obj [ ("pong", J.Bool true) ]), None)
      | Protocol.Stats -> (do_stats (), None)
      | Protocol.Metrics -> (do_metrics (), None)
      | Protocol.Insert { collection; xml } ->
          (write_locked t (fun () -> do_insert t ~collection ~xml), None)
      | Protocol.Query { collection; tql; mode; cache } ->
          do_query t ~deadline ~collection ~tql ~mode ~cache
      | Protocol.Join { left; right; tql; mode } ->
          do_join t ~deadline ~left ~right ~tql ~mode
      | Protocol.Explain { collection; tql; mode } ->
          (do_explain t ~collection ~tql ~mode, None)
  in
  Metrics.observe (h_seconds op) (Unix.gettimeofday () -. t0);
  (match result with
  | Error e -> Metrics.incr (m_errors (Protocol.code_name e.Protocol.code))
  | Ok _ -> ());
  (result, trace)

let exec t ~deadline request = fst (exec_traced t ~deadline request)
