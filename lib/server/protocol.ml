module J = Toss_json

type error_code =
  | Bad_request
  | Parse_error
  | Unknown_collection
  | Query_error
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Shard_unavailable
  | Internal

type error = { code : error_code; message : string }

let code_name = function
  | Bad_request -> "bad_request"
  | Parse_error -> "parse_error"
  | Unknown_collection -> "unknown_collection"
  | Query_error -> "query_error"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Shard_unavailable -> "shard_unavailable"
  | Internal -> "internal"

let code_of_name = function
  | "bad_request" -> Some Bad_request
  | "parse_error" -> Some Parse_error
  | "unknown_collection" -> Some Unknown_collection
  | "query_error" -> Some Query_error
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "shard_unavailable" -> Some Shard_unavailable
  | "internal" -> Some Internal
  | _ -> None

let error code message = { code; message }

type request =
  | Ping
  | Insert of { collection : string; xml : string }
  | Query of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;
      cache : bool;
    }
  | Join of {
      left : string;
      right : string;
      tql : string;
      mode : Toss_core.Executor.mode;
    }
  | Explain of {
      collection : string;
      tql : string;
      mode : Toss_core.Executor.mode;
    }
  | Stats
  | Metrics
  | Shutdown

let op_name = function
  | Ping -> "ping"
  | Insert _ -> "insert"
  | Query _ -> "query"
  | Join _ -> "join"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

type envelope = {
  id : int option;
  deadline_ms : int option;
  trace_id : string option;
  allow_partial : bool;
  request : request;
}

let mode_name = function Toss_core.Executor.Tax -> "tax" | Toss -> "toss"

let mode_of_name = function
  | "tax" -> Some Toss_core.Executor.Tax
  | "toss" -> Some Toss_core.Executor.Toss
  | _ -> None

(* Field decoding helpers: [required] distinguishes a missing member
   from one of the wrong kind, so the error message says which. *)

let required obj field conv kind =
  match J.member field obj with
  | None -> Error (error Bad_request (Printf.sprintf "missing field %S" field))
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None ->
          Error
            (error Bad_request
               (Printf.sprintf "field %S must be a %s" field kind)))

let optional obj field conv kind ~default =
  match J.member field obj with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None ->
          Error
            (error Bad_request
               (Printf.sprintf "field %S must be a %s" field kind)))

let ( let* ) = Result.bind

let mode_field obj =
  let* name = optional obj "mode" J.to_str "string" ~default:"toss" in
  match mode_of_name name with
  | Some m -> Ok m
  | None ->
      Error
        (error Bad_request
           (Printf.sprintf "field \"mode\" must be \"tax\" or \"toss\" (got %S)"
              name))

let decode_request obj op =
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "shutdown" -> Ok Shutdown
  | "insert" ->
      let* collection = required obj "collection" J.to_str "string" in
      let* xml = required obj "xml" J.to_str "string" in
      Ok (Insert { collection; xml })
  | "query" ->
      let* collection = required obj "collection" J.to_str "string" in
      let* tql = required obj "tql" J.to_str "string" in
      let* mode = mode_field obj in
      let* cache = optional obj "cache" J.to_bool "boolean" ~default:true in
      Ok (Query { collection; tql; mode; cache })
  | "join" ->
      let* left = required obj "left" J.to_str "string" in
      let* right = required obj "right" J.to_str "string" in
      let* tql = required obj "tql" J.to_str "string" in
      let* mode = mode_field obj in
      Ok (Join { left; right; tql; mode })
  | "explain" ->
      let* collection = required obj "collection" J.to_str "string" in
      let* tql = required obj "tql" J.to_str "string" in
      let* mode = mode_field obj in
      Ok (Explain { collection; tql; mode })
  | other -> Error (error Bad_request (Printf.sprintf "unknown op %S" other))

let request_of_json = function
  | J.Obj _ as obj ->
      let* op = required obj "op" J.to_str "string" in
      let* id = optional obj "id" (fun v -> Option.map Option.some (J.to_int v)) "number" ~default:None in
      let* deadline_ms =
        optional obj "deadline_ms"
          (fun v -> Option.map Option.some (J.to_int v))
          "number" ~default:None
      in
      let* trace_id =
        optional obj "trace_id"
          (fun v -> Option.map Option.some (J.to_str v))
          "string" ~default:None
      in
      let* () =
        match trace_id with
        | Some t when not (Toss_obs.Trace.is_valid t) ->
            Error
              (error Bad_request
                 "field \"trace_id\" must be 1-128 printable ASCII characters")
        | _ -> Ok ()
      in
      let* allow_partial =
        optional obj "allow_partial" J.to_bool "boolean" ~default:false
      in
      let* request = decode_request obj op in
      Ok { id; deadline_ms; trace_id; allow_partial; request }
  | _ -> Error (error Bad_request "request must be a JSON object")

let parse_request line =
  match J.parse line with
  | Error msg -> Error (error Parse_error msg)
  | Ok v -> request_of_json v

let request_to_json { id; deadline_ms; trace_id; allow_partial; request } =
  let base = [ ("op", J.Str (op_name request)) ] in
  let id_field =
    match id with Some i -> [ ("id", J.Num (float_of_int i)) ] | None -> []
  in
  let deadline_field =
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", J.Num (float_of_int ms)) ]
    | None -> []
  in
  let trace_field =
    match trace_id with Some t -> [ ("trace_id", J.Str t) ] | None -> []
  in
  let partial_field =
    if allow_partial then [ ("allow_partial", J.Bool true) ] else []
  in
  let op_fields =
    match request with
    | Ping | Stats | Metrics | Shutdown -> []
    | Insert { collection; xml } ->
        [ ("collection", J.Str collection); ("xml", J.Str xml) ]
    | Query { collection; tql; mode; cache } ->
        [
          ("collection", J.Str collection);
          ("tql", J.Str tql);
          ("mode", J.Str (mode_name mode));
          ("cache", J.Bool cache);
        ]
    | Join { left; right; tql; mode } ->
        [
          ("left", J.Str left);
          ("right", J.Str right);
          ("tql", J.Str tql);
          ("mode", J.Str (mode_name mode));
        ]
    | Explain { collection; tql; mode } ->
        [
          ("collection", J.Str collection);
          ("tql", J.Str tql);
          ("mode", J.Str (mode_name mode));
        ]
  in
  J.Obj (base @ id_field @ deadline_field @ trace_field @ partial_field @ op_fields)

let request_to_line env = J.to_string (request_to_json env)

type response = {
  rid : int option;
  rtrace_id : string option;
  server_ms : float option;
  queue_ms : float option;
  body : (J.t, error) result;
}

let response ?id ?trace_id ?server_ms ?queue_ms body =
  { rid = id; rtrace_id = trace_id; server_ms; queue_ms; body }

let response_to_json { rid; rtrace_id; server_ms; queue_ms; body } =
  let id_field =
    match rid with Some i -> [ ("id", J.Num (float_of_int i)) ] | None -> []
  in
  let trace_field =
    match rtrace_id with Some t -> [ ("trace_id", J.Str t) ] | None -> []
  in
  let num_field name = function
    | Some v -> [ (name, J.Num v) ]
    | None -> []
  in
  let rest =
    match body with
    | Ok result -> [ ("ok", J.Bool true); ("result", result) ]
    | Error { code; message } ->
        [
          ("ok", J.Bool false);
          ( "error",
            J.Obj
              [ ("code", J.Str (code_name code)); ("message", J.Str message) ]
          );
        ]
  in
  J.Obj
    (id_field @ trace_field @ rest
    @ num_field "server_ms" server_ms
    @ num_field "queue_ms" queue_ms)

let response_to_line r = J.to_string (response_to_json r)

let response_of_json obj =
  let rid = Option.bind (J.member "id" obj) J.to_int in
  let rtrace_id = Option.bind (J.member "trace_id" obj) J.to_str in
  let server_ms = Option.bind (J.member "server_ms" obj) J.to_num in
  let queue_ms = Option.bind (J.member "queue_ms" obj) J.to_num in
  let make body = Ok { rid; rtrace_id; server_ms; queue_ms; body } in
  match Option.bind (J.member "ok" obj) J.to_bool with
  | Some true -> (
      match J.member "result" obj with
      | Some result -> make (Ok result)
      | None -> Error "response has ok:true but no result")
  | Some false -> (
      match J.member "error" obj with
      | Some err ->
          let message =
            Option.value ~default:""
              (Option.bind (J.member "message" err) J.to_str)
          in
          let code =
            match
              Option.bind
                (Option.bind (J.member "code" err) J.to_str)
                code_of_name
            with
            | Some c -> c
            | None -> Bad_request
          in
          make (Error { code; message })
      | None -> Error "response has ok:false but no error")
  | _ -> Error "response lacks a boolean ok field"

let parse_response line =
  match J.parse line with
  | Error msg -> Error msg
  | Ok obj -> response_of_json obj

(* ------------------------------------------------------------------ *)
(* Binary codec                                                         *)
(* ------------------------------------------------------------------ *)

type codec = Json | Binary

let codec_name = function Json -> "json" | Binary -> "binary"

let codec_of_name = function
  | "json" -> Some Json
  | "binary" -> Some Binary
  | _ -> None

let binary_magic = '\xB1'
let max_frame = 64 * 1024 * 1024

(* One byte of tag, then the value: 'N' null, 'T'/'F' booleans, 'D' an
   IEEE-754 double (8 bytes, big-endian), 'S' a string (u32 length +
   bytes), 'A' an array (u32 count + values), 'O' an object (u32 count
   + (u32 key length + key bytes + value) pairs). All lengths are
   big-endian and bounded by [max_frame], so a hostile length can cost
   at most one frame's worth of memory. *)

let add_len buf n = Buffer.add_int32_be buf (Int32.of_int n)

let rec encode_value buf = function
  | J.Null -> Buffer.add_char buf 'N'
  | J.Bool true -> Buffer.add_char buf 'T'
  | J.Bool false -> Buffer.add_char buf 'F'
  | J.Num f ->
      Buffer.add_char buf 'D';
      Buffer.add_int64_be buf (Int64.bits_of_float f)
  | J.Str s ->
      Buffer.add_char buf 'S';
      add_len buf (String.length s);
      Buffer.add_string buf s
  | J.Arr items ->
      Buffer.add_char buf 'A';
      add_len buf (List.length items);
      List.iter (encode_value buf) items
  | J.Obj fields ->
      Buffer.add_char buf 'O';
      add_len buf (List.length fields);
      List.iter
        (fun (k, v) ->
          add_len buf (String.length k);
          Buffer.add_string buf k;
          encode_value buf v)
        fields

let encode_binary v =
  let buf = Buffer.create 256 in
  encode_value buf v;
  Buffer.contents buf

let truncated = error Parse_error "truncated binary value"
let max_depth = 512

let decode_binary s =
  let len = String.length s in
  let pos = ref 0 in
  let exception Bad of error in
  let fail e = raise (Bad e) in
  let need n = if len - !pos < n then fail truncated in
  let read_len () =
    need 4;
    let n = Int32.to_int (String.get_int32_be s !pos) in
    pos := !pos + 4;
    if n < 0 || n > max_frame then
      fail (error Parse_error (Printf.sprintf "binary length %d out of range" n));
    n
  in
  let read_string () =
    let n = read_len () in
    need n;
    let str = String.sub s !pos n in
    pos := !pos + n;
    str
  in
  let rec value depth =
    if depth > max_depth then
      fail (error Parse_error "binary value nested too deeply");
    need 1;
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | 'N' -> J.Null
    | 'T' -> J.Bool true
    | 'F' -> J.Bool false
    | 'D' ->
        need 8;
        let bits = String.get_int64_be s !pos in
        pos := !pos + 8;
        J.Num (Int64.float_of_bits bits)
    | 'S' -> J.Str (read_string ())
    | 'A' ->
        let n = read_len () in
        J.Arr (List.init n (fun _ -> value (depth + 1)))
    | 'O' ->
        let n = read_len () in
        J.Obj
          (List.init n (fun _ ->
               let k = read_string () in
               (k, value (depth + 1))))
    | c -> fail (error Parse_error (Printf.sprintf "unknown binary tag %C" c))
  in
  match value 0 with
  | v ->
      if !pos <> len then
        Error (error Parse_error "trailing bytes after binary value")
      else Ok v
  | exception Bad e -> Error e

let encode_frame v =
  let payload = encode_binary v in
  let buf = Buffer.create (String.length payload + 4) in
  add_len buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let frame_length header =
  if String.length header < 4 then
    Error (error Parse_error "truncated frame: missing length header")
  else
    let n = Int32.to_int (String.get_int32_be header 0) in
    if n < 0 || n > max_frame then
      Error
        (error Parse_error
           (Printf.sprintf "frame length %d exceeds the %d-byte limit" n
              max_frame))
    else Ok n

let decode_frame s =
  match frame_length s with
  | Error e -> Error e
  | Ok n ->
      let body = String.length s - 4 in
      if body < n then
        Error
          (error Parse_error
             (Printf.sprintf "truncated frame: header says %d bytes, got %d" n
                body))
      else if body > n then
        Error (error Parse_error "trailing bytes after frame")
      else decode_binary (String.sub s 4 n)
