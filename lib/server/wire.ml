module J = Toss_json

type read =
  | Msg of J.t
  | Eof
  | Corrupt of Protocol.error
  | Broken of Protocol.error

type reader = {
  ic : in_channel;
  mutable codec : Protocol.codec option;  (** [None] until the first byte *)
}

let reader ic = { ic; codec = None }
let codec r = Option.value r.codec ~default:Protocol.Json

let read_json_value line =
  match J.parse line with
  | Ok v -> Msg v
  | Error msg -> Corrupt (Protocol.error Protocol.Parse_error msg)

let rec read_json ic =
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> Eof
  | line when String.trim line = "" -> read_json ic
  | line -> read_json_value line

(* One frame: 4 header bytes, then exactly the announced payload. EOF
   cleanly between frames is [Eof]; EOF inside a frame is a truncation
   — the stream can never resync, so it is [Broken]. A payload that
   arrived whole but does not decode leaves the framing intact:
   [Corrupt], answerable and recoverable. *)
let read_binary ic =
  match input_char ic with
  | exception (End_of_file | Sys_error _) -> Eof
  | b0 -> (
      let header = Bytes.create 4 in
      Bytes.set header 0 b0;
      match really_input ic header 1 3 with
      | exception (End_of_file | Sys_error _) ->
          Broken (Protocol.error Protocol.Parse_error "truncated frame header")
      | () -> (
          match Protocol.frame_length (Bytes.to_string header) with
          | Error e -> Broken e
          | Ok n -> (
              let payload = Bytes.create n in
              match really_input ic payload 0 n with
              | exception (End_of_file | Sys_error _) ->
                  Broken
                    (Protocol.error Protocol.Parse_error
                       (Printf.sprintf
                          "truncated frame: header says %d bytes" n))
              | () -> (
                  match Protocol.decode_binary (Bytes.to_string payload) with
                  | Ok v -> Msg v
                  | Error e -> Corrupt e))))

let read_known codec ic =
  match codec with
  | Protocol.Json -> read_json ic
  | Protocol.Binary -> read_binary ic

(* First read of a connection: the first byte picks the codec. The
   magic byte opens a binary stream; anything else is the first byte of
   the first JSON line (read the rest of the line and parse the
   whole). *)
let negotiate r =
  match input_char r.ic with
  | exception (End_of_file | Sys_error _) -> Eof
  | c when c = Protocol.binary_magic ->
      r.codec <- Some Protocol.Binary;
      read_binary r.ic
  | c ->
      r.codec <- Some Protocol.Json;
      if c = '\n' then read_json r.ic
      else
        let rest =
          match input_line r.ic with
          | exception (End_of_file | Sys_error _) -> ""
          | l -> l
        in
        let line = String.make 1 c ^ rest in
        if String.trim line = "" then read_json r.ic
        else read_json_value line

let read r =
  match r.codec with
  | None -> negotiate r
  | Some codec -> read_known codec r.ic

let write codec oc v =
  match codec with
  | Protocol.Json ->
      output_string oc (J.to_string v);
      output_char oc '\n'
  | Protocol.Binary -> output_string oc (Protocol.encode_frame v)

let open_binary oc = output_char oc Protocol.binary_magic
