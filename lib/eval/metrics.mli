(** @deprecated This module was renamed to {!Quality}, which says what it
    measures (answer precision/recall/quality) and avoids the clash with
    the observability registry [Toss_obs.Metrics]. This alias keeps old
    call sites compiling; new code should use {!Quality}. *)

include module type of struct
  include Quality
end
