(** Answer-quality metrics (Section 1 and [14]).

    Precision is the fraction of returned answers that are correct; recall
    the fraction of correct answers that are returned; quality is the
    geometric mean [sqrt (precision * recall)] the paper adopts from its
    reference [14]. *)

type counts = { tp : int; fp : int; fn : int }

val counts : correct:string list -> returned:string list -> counts
(** Set semantics: both lists are deduplicated. *)

val precision : correct:string list -> returned:string list -> float
(** 1.0 for an empty answer (nothing returned is wrong). *)

val recall : correct:string list -> returned:string list -> float
(** 1.0 when nothing is correct (nothing can be missed). *)

val quality : precision:float -> recall:float -> float
val f1 : precision:float -> recall:float -> float

val evaluate : correct:string list -> returned:string list -> float * float * float
(** (precision, recall, quality). *)

val mean : float list -> float
(** 0 on the empty list. *)
