(** Deprecated alias of {!Toss_json}.

    The JSON reader was promoted to the shared dependency-free
    [toss.json] library (gaining a writer on the way) so the server's
    wire protocol, [Explain.to_json] and the bench baseline artifacts
    share one implementation. Use {!Toss_json} directly in new code.

    @deprecated Use {!Toss_json}. *)

include module type of struct
  include Toss_json
end
