(** A minimal JSON reader.

    Just enough of RFC 8259 to read back the artifacts this repository
    writes (bench baselines, metrics snapshots, profiler event logs) —
    kept dependency-free on purpose: the container pins the toolchain,
    so no [yojson]. Numbers are all parsed as [float]; strings decode
    the standard escapes including [\uXXXX] (encoded back to UTF-8;
    surrogate pairs are not combined). Object member order is
    preserved; duplicate keys are kept ([member] returns the first). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed); [Error]
    carries a message with a byte offset. Trailing non-whitespace after
    the value is an error. *)

val parse_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

(** {1 Accessors} — all total, returning [None] on kind mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
