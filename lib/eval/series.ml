type t = { name : string; columns : string list; rows : string list list }

let v ~name ~columns rows =
  if name = "" then invalid_arg "Series.v: empty name";
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Series.v: row %d has %d fields, header has %d" i
             (List.length row) width))
    rows;
  { name; columns; rows }

let escape_field f =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') f
  in
  if not needs_quoting then f
  else begin
    let buf = Buffer.create (String.length f + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      f;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let line row = String.concat "," (List.map escape_field row) in
  String.concat "\n" (line t.columns :: List.map line t.rows) ^ "\n"

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save_csv ~dir t =
  ensure_dir dir;
  let path = Filename.concat dir (t.name ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_csv t));
  path

let gnuplot_script t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "set datafile separator ','\n\
        set key autotitle columnhead\n\
        set xlabel %S\n\
        set ylabel 'value'\n\
        set term pngcairo size 800,500\n\
        set output '%s.png'\n"
       (match t.columns with c :: _ -> c | [] -> "x")
       t.name);
  let n = List.length t.columns in
  let plots =
    List.init (max 0 (n - 1)) (fun i ->
        Printf.sprintf "'%s.csv' using 1:%d with linespoints" t.name (i + 2))
  in
  Buffer.add_string buf ("plot " ^ String.concat ", \\\n     " plots ^ "\n");
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?metrics t =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let arr items = "[" ^ String.concat "," items ^ "]" in
  let fields =
    [
      ("name", str t.name);
      ("columns", arr (List.map str t.columns));
      ("rows", arr (List.map (fun row -> arr (List.map str row)) t.rows));
    ]
    @ match metrics with None -> [] | Some m -> [ ("metrics", m) ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let save_json ~dir ?metrics t =
  ensure_dir dir;
  let path = Filename.concat dir (t.name ^ ".json") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json ?metrics t));
  path

let save_all ~dir ?metrics series =
  List.concat_map
    (fun t ->
      let csv = save_csv ~dir t in
      let gp = Filename.concat dir (t.name ^ ".gp") in
      let oc = open_out gp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (gnuplot_script t));
      let json = save_json ~dir ?metrics t in
      [ csv; gp; json ])
    series
