include Quality
