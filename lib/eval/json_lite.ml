(* Deprecated alias: the reader grew a writer and moved to the shared
   [Toss_json] library (lib/json) so the server wire protocol,
   [Toss_core.Explain.to_json] and the bench baselines share one
   implementation. Existing [Toss_eval.Json_lite] users keep working. *)
include Toss_json
