type counts = { tp : int; fp : int; fn : int }

let dedup l = List.sort_uniq String.compare l

let counts ~correct ~returned =
  let correct = dedup correct and returned = dedup returned in
  let tp = List.length (List.filter (fun k -> List.mem k correct) returned) in
  { tp; fp = List.length returned - tp; fn = List.length correct - tp }

let precision ~correct ~returned =
  let { tp; fp; _ } = counts ~correct ~returned in
  if tp + fp = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fp)

let recall ~correct ~returned =
  let { tp; fn; _ } = counts ~correct ~returned in
  if tp + fn = 0 then 1.0 else float_of_int tp /. float_of_int (tp + fn)

let quality ~precision ~recall = sqrt (precision *. recall)

let f1 ~precision ~recall =
  if precision +. recall = 0. then 0. else 2. *. precision *. recall /. (precision +. recall)

let evaluate ~correct ~returned =
  let p = precision ~correct ~returned in
  let r = recall ~correct ~returned in
  (p, r, quality ~precision:p ~recall:r)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
