type entry = { median_s : float; runs : int }
type t = { label : string; entries : (string * entry) list }

let v ~label entries =
  if label = "" then invalid_arg "Baseline.v: empty label";
  { label; entries }

(* The artifact is written through the shared JSON writer; medians keep
   full precision (the writer escalates to %.17g whenever a shorter
   rendering would not re-parse to the same float). *)
let to_json t =
  Json_lite.to_string
    (Json_lite.Obj
       [
         ("bench", Json_lite.Str t.label);
         ( "experiments",
           Json_lite.Obj
             (List.map
                (fun (name, e) ->
                  ( name,
                    Json_lite.Obj
                      [
                        ("median_s", Json_lite.Num e.median_s);
                        ("runs", Json_lite.Num (float_of_int e.runs));
                      ] ))
                t.entries) );
       ])

let of_json s =
  match Json_lite.parse s with
  | Error msg -> Error ("baseline: " ^ msg)
  | Ok json -> (
      let label =
        Option.bind (Json_lite.member "bench" json) Json_lite.to_str
      in
      match (label, Json_lite.member "experiments" json) with
      | Some label, Some (Json_lite.Obj kvs) ->
          let entry (name, v) =
            match Option.bind (Json_lite.member "median_s" v) Json_lite.to_num with
            | Some median_s ->
                let runs =
                  match
                    Option.bind (Json_lite.member "runs" v) Json_lite.to_num
                  with
                  | Some r -> int_of_float r
                  | None -> 1
                in
                Ok (name, { median_s; runs })
            | None -> Error (Printf.sprintf "baseline: experiment %S has no median_s" name)
          in
          let rec all acc = function
            | [] -> Ok { label; entries = List.rev acc }
            | kv :: rest -> (
                match entry kv with
                | Ok e -> all (e :: acc) rest
                | Error _ as e -> e)
          in
          all [] kvs
      | _ -> Error "baseline: missing \"bench\" or \"experiments\"")

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

let load ~path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_json s

type verdict = {
  name : string;
  baseline_s : float;
  current_s : float;
  ratio : float;
  ok : bool;
}

let compare_runs ?(tolerance = 0.2) ~baseline ~current () =
  let verdicts =
    List.map
      (fun (name, (base : entry)) ->
        match List.assoc_opt name current.entries with
        | None ->
            { name; baseline_s = base.median_s; current_s = nan; ratio = nan; ok = false }
        | Some cur ->
            (* Floor sub-microsecond baselines: at that scale the ratio is
               clock noise, not a regression signal. *)
            let ratio = cur.median_s /. Float.max base.median_s 1e-6 in
            {
              name;
              baseline_s = base.median_s;
              current_s = cur.median_s;
              ratio;
              ok = ratio <= 1. +. tolerance;
            })
      baseline.entries
  in
  (verdicts, List.for_all (fun v -> v.ok) verdicts)

let pp_verdicts ppf verdicts =
  let name_w =
    List.fold_left (fun w v -> Stdlib.max w (String.length v.name)) 10 verdicts
  in
  Format.fprintf ppf "@[<v>%-*s %12s %12s %7s  %s@,"
    name_w "experiment" "base (ms)" "cur (ms)" "ratio" "gate";
  List.iter
    (fun v ->
      Format.fprintf ppf "%-*s %12.3f %12.3f %7.2f  %s@," name_w v.name
        (1000. *. v.baseline_s) (1000. *. v.current_s) v.ratio
        (if v.ok then "ok" else "FAIL"))
    verdicts;
  Format.fprintf ppf "@]"
