(** Result series: the machine-readable form of an experiment's table.

    Each bench prints a human table and can also persist the same rows as
    CSV plus a gnuplot script, so the paper's figures can be re-plotted
    from a run's artifacts. *)

type t = { name : string; columns : string list; rows : string list list }

val v : name:string -> columns:string list -> string list list -> t
(** @raise Invalid_argument when a row's width differs from the header's
    or the name is empty. *)

val to_csv : t -> string
(** RFC-4180-style: fields containing commas, quotes or newlines are
    quoted, quotes doubled. First line is the header. *)

val save_csv : dir:string -> t -> string
(** Writes [<dir>/<name>.csv] (creating [dir]) and returns the path. *)

val gnuplot_script : t -> string
(** A gnuplot source that plots every column against the first, reading
    [<name>.csv]; a convenience for regenerating the paper's line
    figures. *)

val to_json : ?metrics:string -> t -> string
(** The series as a JSON object [{"name", "columns", "rows"}]. [metrics],
    when given, must be a pre-rendered JSON value (e.g.
    [Toss_obs.Metrics.to_json] of a snapshot) and is embedded verbatim
    under a ["metrics"] key, so a run's artifact carries the
    observability counters that produced it. *)

val save_json : dir:string -> ?metrics:string -> t -> string
(** Writes [<dir>/<name>.json] (creating [dir]) and returns the path. *)

val save_all : dir:string -> ?metrics:string -> t list -> string list
(** CSVs plus one [.gp] and one [.json] per series; returns all written
    paths. [metrics] is embedded in each JSON artifact. *)
