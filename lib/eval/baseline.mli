(** Bench baselines and the perf regression gate.

    A baseline is the committed JSON artifact of one perf-suite run
    ([BENCH_2.json] at the repo root): per-experiment median latencies.
    The gate ({!compare_runs}) re-measures the same suite and fails any
    experiment whose median regressed beyond a tolerance (default 20%,
    the ISSUE's threshold), so later PRs cannot silently slow the
    rewrite→execute→assemble hot path. *)

type entry = { median_s : float; runs : int }

type t = {
  label : string;  (** suite identity, e.g. ["toss-perf-suite"] *)
  entries : (string * entry) list;  (** experiment name -> measurement *)
}

val v : label:string -> (string * entry) list -> t

val to_json : t -> string
(** [{"bench":label,"experiments":{name:{"median_s":…,"runs":…},…}}]. *)

val of_json : string -> (t, string) result
val save : path:string -> t -> unit
val load : path:string -> (t, string) result

(** {1 The gate} *)

type verdict = {
  name : string;
  baseline_s : float;
  current_s : float;  (** [nan] when the experiment was not re-measured *)
  ratio : float;  (** [current_s / baseline_s]; [nan] when missing *)
  ok : bool;
}

val compare_runs : ?tolerance:float -> baseline:t -> current:t -> unit -> verdict list * bool
(** One verdict per baseline experiment, in baseline order. An
    experiment passes when its ratio is at most [1. +. tolerance]
    (default [0.2]); one missing from [current] fails. Experiments only
    in [current] are ignored (they have nothing to regress against).
    The [bool] is the conjunction — [true] means the gate passes. *)

val pp_verdicts : Format.formatter -> verdict list -> unit
(** An aligned table: name, baseline/current milliseconds, ratio, and
    ok/FAIL per row. *)
