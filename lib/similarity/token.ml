let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let tokenize s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_alnum c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let token_set s = Sset.of_list (tokenize s)

let jaccard a b =
  let sa = token_set a and sb = token_set b in
  if Sset.is_empty sa && Sset.is_empty sb then 1.
  else
    let inter = Sset.cardinal (Sset.inter sa sb) in
    let union = Sset.cardinal (Sset.union sa sb) in
    float_of_int inter /. float_of_int union

let tf s =
  List.fold_left
    (fun m tok -> Smap.update tok (fun c -> Some (1 + Option.value ~default:0 c)) m)
    Smap.empty (tokenize s)

let cosine a b =
  let ta = tf a and tb = tf b in
  if Smap.is_empty ta && Smap.is_empty tb then 1.
  else if Smap.is_empty ta || Smap.is_empty tb then 0.
    (* Equal vectors have cosine exactly 1; computing it as
       dot/(sqrt s * sqrt s) rounds just below 1 and would make the
       derived distance violate d(x,x) = 0. *)
  else if Smap.equal Int.equal ta tb then 1.
  else begin
    let dot =
      Smap.fold
        (fun tok ca acc ->
          match Smap.find_opt tok tb with
          | Some cb -> acc + (ca * cb)
          | None -> acc)
        ta 0
    in
    let norm m = sqrt (float_of_int (Smap.fold (fun _ c acc -> acc + (c * c)) m 0)) in
    float_of_int dot /. (norm ta *. norm tb)
  end

let qgrams q s =
  if q <= 0 then invalid_arg "Token.qgrams: q must be positive";
  let padded = String.make (q - 1) '#' ^ s ^ String.make (q - 1) '#' in
  let n = String.length padded in
  if n < q then []
  else List.init (n - q + 1) (fun i -> String.sub padded i q)

let multiset grams =
  List.fold_left
    (fun m g -> Smap.update g (fun c -> Some (1 + Option.value ~default:0 c)) m)
    Smap.empty grams

let qgram_distance q a b =
  let ma = multiset (qgrams q a) and mb = multiset (qgrams q b) in
  let diff m m' =
    Smap.fold
      (fun g c acc -> acc + max 0 (c - Option.value ~default:0 (Smap.find_opt g m')))
      m 0
  in
  diff ma mb + diff mb ma

let jaccard_metric = Metric.of_similarity ~name:"jaccard" jaccard
let cosine_metric = Metric.of_similarity ~name:"cosine" cosine

let qgram_metric q =
  Metric.v
    ~name:(Printf.sprintf "%d-gram" q)
    ~strong:true
    (fun a b -> float_of_int (qgram_distance q a b))
