exception Lex_error of { line : int; column : int; message : string }

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
  keep_ws : bool;
}

let make ?(keep_whitespace = false) input =
  { input; pos = 0; line = 1; bol = 0; keep_ws = keep_whitespace }

let keep_whitespace st = st.keep_ws

let fail st message =
  raise (Lex_error { line = st.line; column = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.input.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let skip_whitespace st =
  while
    (not (eof st)) && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = prefix

let expect st prefix =
  if looking_at st prefix then
    for _ = 1 to String.length prefix do
      advance st
    done
  else fail st (Printf.sprintf "expected %S" prefix)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let entity st =
  expect st "&";
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let body = String.sub st.input start (st.pos - start) in
  expect st ";";
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      let numeric prefix base =
        let digits =
          String.sub body (String.length prefix) (String.length body - String.length prefix)
        in
        (* [Uchar.is_valid] also rejects the surrogate range D800–DFFF,
           which [Uchar.of_int] would refuse with an exception that is
           not a parse error. *)
        match int_of_string_opt (base ^ digits) with
        | Some code when code >= 0 && code < 0x110000 && Uchar.is_valid code ->
            let b = Buffer.create 4 in
            Buffer.add_utf_8_uchar b (Uchar.of_int code);
            Some (Buffer.contents b)
        | _ -> None
      in
      let resolved =
        if String.length body > 2 && body.[0] = '#' && (body.[1] = 'x' || body.[1] = 'X')
        then numeric "#x" "0x"
        else if String.length body > 1 && body.[0] = '#' then numeric "#" ""
        else None
      in
      (match resolved with
      | Some s -> s
      | None -> fail st (Printf.sprintf "unknown entity &%s;" body))

let quoted_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a quoted value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      Buffer.add_string buf (entity st);
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let attributes st =
  let rec go acc =
    skip_whitespace st;
    if is_name_start (peek st) then begin
      let attr_name = name st in
      skip_whitespace st;
      expect st "=";
      skip_whitespace st;
      let value = quoted_value st in
      go ((attr_name, value) :: acc)
    end
    else List.rev acc
  in
  go []

let skip_comment st =
  expect st "<!--";
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then expect st "-->"
    else begin
      advance st;
      go ()
    end
  in
  go ()

let cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then begin
      let s = String.sub st.input start (st.pos - start) in
      expect st "]]>";
      s
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_prolog st =
  skip_whitespace st;
  if looking_at st "<?" then begin
    while (not (eof st)) && not (looking_at st "?>") do
      advance st
    done;
    if eof st then fail st "unterminated XML declaration";
    expect st "?>"
  end;
  skip_whitespace st;
  while looking_at st "<!--" do
    skip_comment st;
    skip_whitespace st
  done;
  if looking_at st "<!DOCTYPE" then begin
    (* Skip to the matching '>' (bracketed internal subsets included). *)
    let depth = ref 0 in
    let stop = ref false in
    while not !stop do
      if eof st then fail st "unterminated DOCTYPE";
      (match peek st with
      | '[' -> incr depth
      | ']' -> decr depth
      | '>' when !depth = 0 -> stop := true
      | _ -> ());
      advance st
    done
  end;
  skip_whitespace st;
  while looking_at st "<!--" do
    skip_comment st;
    skip_whitespace st
  done

let skip_trailing st =
  skip_whitespace st;
  while looking_at st "<!--" do
    skip_comment st;
    skip_whitespace st
  done;
  if not (eof st) then fail st "trailing content after the root element"

let is_blank s =
  String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s
