(** Process-wide metrics registry.

    A single global registry of named, labelled series — counters, gauges
    and histograms — in the style of a Prometheus client, sized for a
    single-process OCaml server: registration returns a typed handle whose
    update operations are plain field mutations, so instrumenting a hot
    path costs a few nanoseconds and never allocates. The registry can be
    snapshotted at any time; snapshots render as an aligned text table
    (for the CLI) or as JSON (for the bench harness artifacts).

    Series identity is the [(name, labels)] pair: registering the same
    pair twice returns the same handle, so modules can register their
    instruments at top level without coordination. Registering a name
    under two different kinds raises [Invalid_argument].

    {2 Thread safety}

    The registry is domain-safe: queries run in parallel on the server's
    domain pool and all of them instrument these series. Counter and
    gauge updates are single atomic operations (lock-free, no updates
    lost under contention); each histogram serializes its observations
    with its own mutex; registration, {!snapshot} and {!reset} serialize
    on a registry mutex. {!snapshot} reads each cell atomically (per-cell
    for counters/gauges, under the histogram's mutex for distributions),
    so a snapshot taken mid-storm contains each series at one instant —
    though different series are read at slightly different instants. *)

type labels = (string * string) list
(** Label pairs, e.g. [["phase", "execute"]]. Order-insensitive:
    labels are sorted at registration. *)

(** {1 Typed handles} *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** A float free to go up and down. *)

type histogram
(** Distribution summary: count, sum, min, max, and counts in
    log-scaled buckets (decade upper bounds from [1e-6] to [1e4],
    plus +inf) — wide enough for both second-scale durations and
    fan-out counts. *)

val counter : ?labels:labels -> string -> counter
(** Registers (or retrieves) the counter [(name, labels)]. *)

val gauge : ?labels:labels -> string -> gauge
(** Registers (or retrieves) the gauge [(name, labels)]. *)

val histogram : ?labels:labels -> string -> histogram
(** Registers (or retrieves) the histogram [(name, labels)]. *)

val incr : ?by:int -> counter -> unit
(** Adds [by] (default 1) to the counter. Negative [by] raises
    [Invalid_argument]: counters only go up. *)

val set : gauge -> float -> unit
(** Sets the gauge's current value. *)

val observe : histogram -> float -> unit
(** Records one observation. *)

val observe_int : histogram -> int -> unit
(** [observe] of an integer quantity (fan-outs, candidate counts). *)

(** {1 Dynamic-label conveniences}

    For call sites whose labels vary per call (e.g. a per-pattern-label
    fan-out). These pay one hash lookup per call; prefer the typed
    handles on hot paths. *)

val incr_c : ?labels:labels -> ?by:int -> string -> unit
val set_g : ?labels:labels -> string -> float -> unit
val observe_h : ?labels:labels -> string -> float -> unit

(** {1 Snapshots} *)

type histogram_stats = {
  count : int;
  sum : float;
  min : float;  (** [nan] when [count = 0] *)
  max : float;  (** [nan] when [count = 0] *)
  buckets : (float * int) list;
      (** [(upper_bound, cumulative_count)] per bucket; the last bound is
          [infinity], whose count equals [count]. *)
}

type value = Counter of int | Gauge of float | Histogram of histogram_stats

type snapshot = (string * labels * value) list
(** Sorted by name, then labels, for deterministic output. *)

val snapshot : unit -> snapshot
(** A consistent copy of every registered series. *)

val reset : unit -> unit
(** Zeroes every series {e in place}: registrations survive, and —
    because a handle aliases the registered cell rather than a copy — a
    [counter]/[gauge]/[histogram] handle obtained {e before} the reset
    keeps recording into the same (now zeroed) series afterwards. There
    is no stale-handle hazard: modules may register their instruments
    once at load time no matter how often the registry is reset. Used by
    the bench harness to scope a snapshot to one experiment and by tests
    for isolation. *)

val names : snapshot -> string list
(** The distinct series names of a snapshot, sorted. *)

val find_counter : snapshot -> ?labels:labels -> string -> int option
(** The counter's value in the snapshot, if that series exists. *)

val find_gauge : snapshot -> ?labels:labels -> string -> float option
(** The gauge's value in the snapshot, if that series exists. *)

val find_histogram : snapshot -> ?labels:labels -> string -> histogram_stats option
(** The histogram's summary in the snapshot, if that series exists. *)

val quantile : histogram_stats -> float -> float
(** [quantile stats q] estimates the [q]-quantile ([q] clamped to
    [0, 1]) by linear interpolation inside the log-scaled bucket holding
    the target rank, clamped to the observed [min]/[max]. Exact when
    every observation is equal (the interpolation interval collapses to
    that value); otherwise accurate to within the bucket's decade.
    [nan] when the histogram is empty. *)

val to_table : snapshot -> string
(** An aligned, human-readable table: one line per series; histograms
    show count/mean/p50/p95/p99/max ({!quantile} estimates). *)

val to_json : snapshot -> string
(** Compact JSON object with ["counters"], ["gauges"] and ["histograms"]
    sub-objects keyed by [name{k="v",...}]; histogram objects carry
    count/sum/min/max, the {!quantile} estimates ["p50"]/["p95"]/["p99"],
    and the cumulative buckets. Keys and strings are JSON-escaped. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition (format 0.0.4) of the snapshot — what
    the server's [metrics] op returns, scrapeable by stock Prometheus.
    Registry names are sanitized to the exposition charset (every byte
    outside [[a-zA-Z0-9_]] becomes ['_'], so ["pool.queue_wait.seconds"]
    renders as [pool_queue_wait_seconds]); each metric gets one
    [# TYPE] header followed by all its label sets. Counters and gauges
    are one sample each; a histogram renders its cumulative
    [name_bucket{le="…"}] series (the registry's decade bounds,
    closing with [le="+Inf"]) plus [name_sum] and [name_count]. Label
    values escape backslash, quote and newline; non-finite numbers
    render as [NaN]/[+Inf]/[-Inf]. *)
