(** Structured per-query event log.

    Where {!Metrics} aggregates across queries and {!Span} times one
    query's phases, the event log answers "what happened, in order,
    while this query ran": each instrumentation point emits a typed
    event with a monotonic timestamp and a key/value payload, and every
    installed sink sees every event. Sinks are pluggable: a null sink, a
    bounded in-memory ring (tests, ad-hoc inspection), a line-delimited
    JSON writer (the CLI's [--profile file.jsonl]), and a slow-query
    sink that buffers each query's full event stream and flushes it —
    span tree included — as one JSONL record when the query exceeds a
    latency threshold (the CLI's [--slow-ms]).

    Emission is free when no sink is installed ({!emit} returns before
    allocating anything); instrumented code should guard payload
    construction with {!active}. Like the metrics registry, the sink
    list is process-global — and, like it, domain-safe: {!active} is a
    single lock-free load, while emission and sink management serialize
    on an internal mutex, so events from parallel query domains arrive
    whole and in one global [seq] order (interleaved {e across} queries,
    as concurrent execution implies).

    Each event is stamped with the emitting domain's current {!Trace}
    id, when one is set — that id is the key that makes the interleaved
    global stream attributable: the slow-query sink demultiplexes
    events into per-trace streams, so start-to-end capture is correct
    with any number of requests in flight. Untraced events (the
    single-domain CLI sets no trace id) share one default stream, which
    does assume one query at a time. *)

(** {1 Events} *)

type value = Str of string | Int of int | Float of float | Bool of bool

(** The typed event vocabulary of the query pipeline. [Custom] names an
    event outside the built-in vocabulary (rendered verbatim). *)
type kind =
  | Query_start  (** executor entered; payload: [op], [mode], [collection] *)
  | Rewrite_done  (** phase (i) finished; payload: [op], [queries] *)
  | Xpath_exec
      (** one label query answered by the store; payload: [label],
          [xpath], [rows], [elapsed_s] *)
  | Embed_done
      (** one document's assembly finished; payload: [doc],
          [embeddings], [witnesses] *)
  | Query_end
      (** executor returned; payload: [op], [results], [candidates],
          [embeddings], [elapsed_s]; carries the query's span tree *)
  | Custom of string

val kind_name : kind -> string
(** ["query_start"], ["rewrite_done"], … ; a [Custom] name verbatim. *)

type t = {
  seq : int;  (** strictly increasing across the process *)
  ts_s : float;
      (** seconds since the module was loaded; forced non-decreasing, so
          sorting by [ts_s] (ties broken by [seq]) is event order *)
  kind : kind;
  payload : (string * value) list;
  trace : Span.t option;  (** span tree attached to a [Query_end] *)
  trace_id : string option;
      (** the emitting domain's {!Trace.get} at emission time — the
          request this event belongs to; [None] outside a traced
          request (e.g. the CLI) *)
}

val payload_int : t -> string -> int option
val payload_str : t -> string -> string option
val payload_float : t -> string -> float option
(** Typed payload lookups ([payload_float] also reads an [Int]). *)

val to_json : t -> string
(** One-line JSON object: [{"seq":…,"ts_s":…,"kind":"…","payload":{…}}]
    plus a ["trace_id"] key after ["kind"] and a ["trace"] key (the
    {!Span.to_json} tree) at the end, each when present. *)

(** {1 Sinks} *)

type sink

val null : sink
(** Discards every event (an installed-but-off placeholder: unlike an
    empty sink list, it keeps {!active} true). *)

val memory : ?capacity:int -> unit -> sink
(** A bounded ring keeping the last [capacity] (default 1024) events. *)

val events : sink -> t list
(** The events a {!memory} sink retained, oldest first; [[]] for every
    other sink kind. *)

val jsonl : (string -> unit) -> sink
(** Calls the writer with one JSON line ({!to_json}, no newline) per
    event. *)

val jsonl_to_channel : out_channel -> sink
(** {!jsonl} writing [line ^ "\n"] to the channel, flushing per line so
    the log can be tailed while a query runs. *)

val slow_query : threshold_s:float -> write:(string -> unit) -> sink
(** Buffers events from each [Query_start] to the matching [Query_end];
    if the query's duration (the [Query_end]'s [elapsed_s] payload, else
    the start/end timestamp difference) is at least [threshold_s], the
    whole stream — including the [Query_end]'s span tree — is written as
    one JSON line: [{"type":"slow_query","trace_id":…,"threshold_s":…,
    "elapsed_s":…,"op":…,"n_events":…,"events":[…]}]. Events outside a
    query are dropped. [threshold_s = 0.] logs every query.

    Buffering is keyed by trace id, so capture is correct with requests
    in flight on many domains at once: each traced request reassembles
    into its own record containing only its own events, however the
    global stream interleaved. Events {e without} a trace id share one
    default stream (fine for the single-threaded CLI, where at most one
    untraced query runs at a time). A traced stream whose [Query_end]
    never arrives (deadline abort, crash mid-query) stays buffered
    until {!drop_trace}; the server drops every request's trace id when
    the request finishes, however it finishes. *)

val drop_trace : string -> unit
(** Discards any buffered slow-query stream for this trace id, in every
    installed sink — the cleanup for requests that emitted a
    [Query_start] but will never emit the matching [Query_end]. No-op
    when the id has no open stream. *)

val install : sink -> unit
(** Adds the sink to the process-global list (idempotent per sink). *)

val remove : sink -> unit

val clear_sinks : unit -> unit

val active : unit -> bool
(** Whether at least one sink is installed — guard payload construction
    on hot paths with this. *)

val emit : ?payload:(string * value) list -> ?trace:Span.t -> kind -> unit
(** Delivers one event to every installed sink; a no-op (no allocation,
    no timestamp read) when none is installed. *)
