(** Canonical span names of the query pipeline.

    The executor's statistics ([Executor.stats.phases]) are a view over
    the span tree: phase durations are found {e by name} in the trace, and
    EXPLAIN ANALYZE renders the same tree. Centralising the names makes
    that contract explicit — the physical operators, the phase view and
    the renderers all refer to the one constant, so they cannot drift
    apart. *)

val select_root : string
(** Root span of one [Executor.select] run (["executor.select"]). *)

val join_root : string
(** Root span of one [Executor.join] run (["executor.join"]). *)

(** {1 Phases} — the paper's three timed phases (Section 6). *)

val rewrite : string
(** Phase (i): pattern-tree rewrite and planning. *)

val execute : string
(** Phase (ii): XPath execution against the store. *)

val assemble : string
(** Phase (iii): witness-tree assembly. *)

(** {1 Physical operators} — per-operator spans nested inside the
    phases. *)

val xpath : string
(** One store round-trip for one label query (child of {!execute});
    annotated by the store with [rows]/[indexed]/[scanned]. *)

val prune : string
(** Candidate-document pruning (child of {!assemble}); annotated with
    [kept]/[total] document counts. *)

val embed : string
(** One document's embedding enumeration (child of {!assemble});
    annotated by the embedder with its funnel. *)

val matcher : string
(** One document's compiled single-pass match (child of {!assemble});
    annotated by the matcher with [nodes]/[structural]/[matches] — the
    compiled counterpart of {!embed}. *)

val pair : string
(** The join's pairing operator (child of {!assemble}); annotated with
    the chosen [strategy] (["hash"] or ["nested-loop"]). *)
