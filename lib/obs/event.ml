type value = Str of string | Int of int | Float of float | Bool of bool

type kind =
  | Query_start
  | Rewrite_done
  | Xpath_exec
  | Embed_done
  | Query_end
  | Custom of string

let kind_name = function
  | Query_start -> "query_start"
  | Rewrite_done -> "rewrite_done"
  | Xpath_exec -> "xpath_exec"
  | Embed_done -> "embed_done"
  | Query_end -> "query_end"
  | Custom name -> name

type t = {
  seq : int;
  ts_s : float;
  kind : kind;
  payload : (string * value) list;
  trace : Span.t option;
}

let payload_int e key =
  match List.assoc_opt key e.payload with Some (Int i) -> Some i | _ -> None

let payload_str e key =
  match List.assoc_opt key e.payload with Some (Str s) -> Some s | _ -> None

let payload_float e key =
  match List.assoc_opt key e.payload with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

(* -------------------------------- JSON -------------------------------- *)

let json_escape = Toss_json.escape

let json_value = function
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> if Float.is_finite f then Printf.sprintf "%.9g" f else "null"
  | Bool b -> if b then "true" else "false"

let to_json e =
  let payload =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
         e.payload)
  in
  let trace =
    match e.trace with
    | None -> ""
    | Some t -> ",\"trace\":" ^ Span.to_json t
  in
  Printf.sprintf "{\"seq\":%d,\"ts_s\":%.6f,\"kind\":\"%s\",\"payload\":{%s}%s}"
    e.seq e.ts_s (json_escape (kind_name e.kind)) payload trace

(* -------------------------------- Sinks ------------------------------- *)

type sink_impl =
  | Null
  | Memory of { capacity : int; q : t Queue.t }
  | Jsonl of (string -> unit)
  | Slow of {
      threshold_s : float;
      write : string -> unit;
      buf : t Queue.t;
      mutable in_query : bool;
    }

type sink = { id : int; impl : sink_impl }

let next_sink_id = Atomic.make 0

let make impl = { id = Atomic.fetch_and_add next_sink_id 1 + 1; impl }

(* One lock serializes sink installation, removal, emission and sink
   inspection: sink queues are mutable and events must arrive in [seq]
   order, so delivery from parallel domains is a critical section. The
   uninstrumented path ([active () = false]) never touches it. *)
let sink_lock = Mutex.create ()

let sink_locked f =
  Mutex.lock sink_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_lock) f

let null = make Null
let memory ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Event.memory: capacity must be positive";
  make (Memory { capacity; q = Queue.create () })

let events sink =
  sink_locked (fun () ->
      match sink.impl with
      | Memory { q; _ } -> List.of_seq (Queue.to_seq q)
      | _ -> [])

let jsonl write = make (Jsonl write)

let jsonl_to_channel oc =
  jsonl (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

let slow_query ~threshold_s ~write =
  make (Slow { threshold_s; write; buf = Queue.create (); in_query = false })

(* The sink list itself is an atomic so [active ()] — consulted before
   every payload construction on the query hot path — stays a lock-free
   load; all writes happen under [sink_lock]. *)
let sinks : sink list Atomic.t = Atomic.make []

let install sink =
  sink_locked (fun () ->
      let cur = Atomic.get sinks in
      if not (List.memq sink cur) then Atomic.set sinks (cur @ [ sink ]))

let remove sink =
  sink_locked (fun () ->
      Atomic.set sinks
        (List.filter (fun s -> s.id <> sink.id) (Atomic.get sinks)))

let clear_sinks () = sink_locked (fun () -> Atomic.set sinks [])
let active () = Atomic.get sinks <> []

(* ------------------------------ Emission ------------------------------ *)

(* [seq] and [last_ts] are only touched under [sink_lock] (see [emit]). *)
let seq = ref 0
let t0 = Unix.gettimeofday ()
let last_ts = ref 0.

(* Wall-clock can step backwards (NTP); event time must not. *)
let now () =
  let t = Unix.gettimeofday () -. t0 in
  let t = if t < !last_ts then !last_ts else t in
  last_ts := t;
  t

let flush_slow (s : sink_impl) =
  match s with
  | Slow slow ->
      let evs = List.of_seq (Queue.to_seq slow.buf) in
      Queue.clear slow.buf;
      slow.in_query <- false;
      (match (evs, List.rev evs) with
      | first :: _, last :: _ ->
          let elapsed =
            match payload_float last "elapsed_s" with
            | Some e -> e
            | None -> last.ts_s -. first.ts_s
          in
          if elapsed >= slow.threshold_s then begin
            let op =
              match payload_str last "op" with Some op -> op | None -> "?"
            in
            slow.write
              (Printf.sprintf
                 "{\"type\":\"slow_query\",\"threshold_s\":%.6f,\"elapsed_s\":%.6f,\"op\":\"%s\",\"n_events\":%d,\"events\":[%s]}"
                 slow.threshold_s elapsed (json_escape op) (List.length evs)
                 (String.concat "," (List.map to_json evs)))
          end
      | _ -> ())
  | _ -> ()

let deliver sink e =
  match sink.impl with
  | Null -> ()
  | Memory { capacity; q } ->
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q)
  | Jsonl write -> write (to_json e)
  | Slow slow -> (
      match e.kind with
      | Query_start ->
          (* A start with a stale open query: drop the orphaned stream. *)
          Queue.clear slow.buf;
          slow.in_query <- true;
          Queue.push e slow.buf
      | Query_end ->
          if slow.in_query then begin
            Queue.push e slow.buf;
            flush_slow sink.impl
          end
      | _ -> if slow.in_query then Queue.push e slow.buf)

let emit ?(payload = []) ?trace kind =
  match Atomic.get sinks with
  | [] -> ()
  | _ ->
      sink_locked (fun () ->
          match Atomic.get sinks with
          | [] -> ()
          | live ->
              incr seq;
              let e = { seq = !seq; ts_s = now (); kind; payload; trace } in
              List.iter (fun s -> deliver s e) live)
