type value = Str of string | Int of int | Float of float | Bool of bool

type kind =
  | Query_start
  | Rewrite_done
  | Xpath_exec
  | Embed_done
  | Query_end
  | Custom of string

let kind_name = function
  | Query_start -> "query_start"
  | Rewrite_done -> "rewrite_done"
  | Xpath_exec -> "xpath_exec"
  | Embed_done -> "embed_done"
  | Query_end -> "query_end"
  | Custom name -> name

type t = {
  seq : int;
  ts_s : float;
  kind : kind;
  payload : (string * value) list;
  trace : Span.t option;
  trace_id : string option;
}

let payload_int e key =
  match List.assoc_opt key e.payload with Some (Int i) -> Some i | _ -> None

let payload_str e key =
  match List.assoc_opt key e.payload with Some (Str s) -> Some s | _ -> None

let payload_float e key =
  match List.assoc_opt key e.payload with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

(* -------------------------------- JSON -------------------------------- *)

let json_escape = Toss_json.escape

let json_value = function
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Int i -> string_of_int i
  | Float f -> if Float.is_finite f then Printf.sprintf "%.9g" f else "null"
  | Bool b -> if b then "true" else "false"

let to_json e =
  let payload =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
         e.payload)
  in
  let trace_id =
    match e.trace_id with
    | None -> ""
    | Some id -> Printf.sprintf ",\"trace_id\":\"%s\"" (json_escape id)
  in
  let trace =
    match e.trace with
    | None -> ""
    | Some t -> ",\"trace\":" ^ Span.to_json t
  in
  Printf.sprintf "{\"seq\":%d,\"ts_s\":%.6f,\"kind\":\"%s\"%s,\"payload\":{%s}%s}"
    e.seq e.ts_s (json_escape (kind_name e.kind)) trace_id payload trace

(* -------------------------------- Sinks ------------------------------- *)

(* A slow-query sink keeps one buffered stream per concurrent request:
   events carrying a trace id are routed to the stream keyed by that id
   ([streams]), so interleaved events from parallel domains reassemble
   into per-request records; events without a trace id (the
   single-threaded CLI) share the one [default] stream, as before. *)
type slow_state = {
  threshold_s : float;
  write : string -> unit;
  streams : (string, t Queue.t) Hashtbl.t;  (* open traced streams *)
  default : t Queue.t;  (* the untraced stream *)
  mutable default_open : bool;
}

(* Backstop against streams that never see a [Query_end] when the owner
   also never calls [drop_trace]; in the server every job drops its
   trace in a [finally], so reaching this means a leak elsewhere. *)
let max_streams = 4096

type sink_impl =
  | Null
  | Memory of { capacity : int; q : t Queue.t }
  | Jsonl of (string -> unit)
  | Slow of slow_state

type sink = { id : int; impl : sink_impl }

let next_sink_id = Atomic.make 0

let make impl = { id = Atomic.fetch_and_add next_sink_id 1 + 1; impl }

(* One lock serializes sink installation, removal, emission and sink
   inspection: sink queues are mutable and events must arrive in [seq]
   order, so delivery from parallel domains is a critical section. The
   uninstrumented path ([active () = false]) never touches it. *)
let sink_lock = Mutex.create ()

let sink_locked f =
  Mutex.lock sink_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_lock) f

let null = make Null
let memory ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Event.memory: capacity must be positive";
  make (Memory { capacity; q = Queue.create () })

let events sink =
  sink_locked (fun () ->
      match sink.impl with
      | Memory { q; _ } -> List.of_seq (Queue.to_seq q)
      | _ -> [])

let jsonl write = make (Jsonl write)

let jsonl_to_channel oc =
  jsonl (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

let slow_query ~threshold_s ~write =
  make
    (Slow
       {
         threshold_s;
         write;
         streams = Hashtbl.create 16;
         default = Queue.create ();
         default_open = false;
       })

(* The sink list itself is an atomic so [active ()] — consulted before
   every payload construction on the query hot path — stays a lock-free
   load; all writes happen under [sink_lock]. *)
let sinks : sink list Atomic.t = Atomic.make []

let install sink =
  sink_locked (fun () ->
      let cur = Atomic.get sinks in
      if not (List.memq sink cur) then Atomic.set sinks (cur @ [ sink ]))

let remove sink =
  sink_locked (fun () ->
      Atomic.set sinks
        (List.filter (fun s -> s.id <> sink.id) (Atomic.get sinks)))

let clear_sinks () = sink_locked (fun () -> Atomic.set sinks [])
let active () = Atomic.get sinks <> []

(* ------------------------------ Emission ------------------------------ *)

(* [seq] and [last_ts] are only touched under [sink_lock] (see [emit]). *)
let seq = ref 0
let t0 = Unix.gettimeofday ()
let last_ts = ref 0.

(* Wall-clock can step backwards (NTP); event time must not. *)
let now () =
  let t = Unix.gettimeofday () -. t0 in
  let t = if t < !last_ts then !last_ts else t in
  last_ts := t;
  t

(* Write one completed stream as a slow-query record if it crossed the
   threshold. [trace_id] keys the record when the stream was traced. *)
let flush_slow (slow : slow_state) ~trace_id evs =
  match (evs, List.rev evs) with
  | first :: _, last :: _ ->
      let elapsed =
        match payload_float last "elapsed_s" with
        | Some e -> e
        | None -> last.ts_s -. first.ts_s
      in
      if elapsed >= slow.threshold_s then begin
        let op = match payload_str last "op" with Some op -> op | None -> "?" in
        let tid =
          match trace_id with
          | None -> ""
          | Some id -> Printf.sprintf ",\"trace_id\":\"%s\"" (json_escape id)
        in
        slow.write
          (Printf.sprintf
             "{\"type\":\"slow_query\"%s,\"threshold_s\":%.6f,\"elapsed_s\":%.6f,\"op\":\"%s\",\"n_events\":%d,\"events\":[%s]}"
             tid slow.threshold_s elapsed (json_escape op) (List.length evs)
             (String.concat "," (List.map to_json evs)))
      end
  | _ -> ()

let deliver sink e =
  match sink.impl with
  | Null -> ()
  | Memory { capacity; q } ->
      Queue.push e q;
      if Queue.length q > capacity then ignore (Queue.pop q)
  | Jsonl write -> write (to_json e)
  | Slow slow -> (
      match e.trace_id with
      | Some id -> (
          match e.kind with
          | Query_start ->
              (* A start for an id that already has an open stream can
                 only mean the previous request with that id never
                 ended; the fresh stream replaces the orphan. *)
              if Hashtbl.length slow.streams >= max_streams then
                Hashtbl.reset slow.streams;
              let q = Queue.create () in
              Queue.push e q;
              Hashtbl.replace slow.streams id q
          | Query_end -> (
              match Hashtbl.find_opt slow.streams id with
              | Some q ->
                  Queue.push e q;
                  Hashtbl.remove slow.streams id;
                  flush_slow slow ~trace_id:(Some id)
                    (List.of_seq (Queue.to_seq q))
              | None -> ())
          | _ -> (
              match Hashtbl.find_opt slow.streams id with
              | Some q -> Queue.push e q
              | None -> ()))
      | None -> (
          match e.kind with
          | Query_start ->
              (* A start with a stale open query: drop the orphaned
                 stream. *)
              Queue.clear slow.default;
              slow.default_open <- true;
              Queue.push e slow.default
          | Query_end ->
              if slow.default_open then begin
                Queue.push e slow.default;
                let evs = List.of_seq (Queue.to_seq slow.default) in
                Queue.clear slow.default;
                slow.default_open <- false;
                flush_slow slow ~trace_id:None evs
              end
          | _ -> if slow.default_open then Queue.push e slow.default))

let drop_trace id =
  if active () then
    sink_locked (fun () ->
        List.iter
          (fun s ->
            match s.impl with
            | Slow slow -> Hashtbl.remove slow.streams id
            | _ -> ())
          (Atomic.get sinks))

let emit ?(payload = []) ?trace kind =
  match Atomic.get sinks with
  | [] -> ()
  | _ ->
      (* Read the domain-local trace id before entering the critical
         section: it belongs to the emitting domain, not to whichever
         domain last held the lock. *)
      let trace_id = Trace.get () in
      sink_locked (fun () ->
          match Atomic.get sinks with
          | [] -> ()
          | live ->
              incr seq;
              let e =
                { seq = !seq; ts_s = now (); kind; payload; trace; trace_id }
              in
              List.iter (fun s -> deliver s e) live)
