type t = {
  name : string;
  elapsed_s : float;
  alloc_bytes : float;
  meta : (string * string) list;
  children : t list;
}

let tracing = Atomic.make false
let set_enabled b = Atomic.set tracing b
let enabled () = Atomic.get tracing

(* An open span under construction; children accumulate in reverse. *)
type frame = {
  fname : string;
  mutable fmeta : (string * string) list;
  start_s : float;
  start_alloc : float;  (* words; 0 when tracing is disabled *)
  mutable rev_children : t list;
}

(* The open-span stack is domain-local: each of the server's pool
   domains runs one query at a time, so its stack nests cleanly while
   other domains trace their own queries in parallel. (Systhreads within
   one domain share that domain's stack — interleaved spans from such
   threads can shear a trace, never crash; the server keeps its reader
   threads span-free.) *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

(* The ring of recent completed traces is shared across domains and
   mutex-guarded: recording happens once per root span, far off any hot
   path. *)
let ring_lock = Mutex.create ()
let capacity = ref 32
let ring : t list ref = ref []

let set_capacity n =
  if n < 1 then invalid_arg "Span.set_capacity";
  Mutex.lock ring_lock;
  capacity := n;
  ring := [];
  Mutex.unlock ring_lock

let clear_recent () =
  Mutex.lock ring_lock;
  ring := [];
  Mutex.unlock ring_lock

let recent () =
  Mutex.lock ring_lock;
  let r = !ring in
  Mutex.unlock ring_lock;
  r

let record root =
  Mutex.lock ring_lock;
  ring := root :: !ring;
  if List.length !ring > !capacity then
    ring := List.filteri (fun i _ -> i < !capacity) !ring;
  Mutex.unlock ring_lock

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let word_bytes = float_of_int (Sys.word_size / 8)

(* Finish the top frame into a node, attach it to its parent (or the ring
   buffer when it is a root), and return it. *)
let finish frame =
  let elapsed_s = Unix.gettimeofday () -. frame.start_s in
  let alloc_bytes =
    if Atomic.get tracing then
      Float.max 0. ((allocated_words () -. frame.start_alloc) *. word_bytes)
    else 0.
  in
  {
    name = frame.fname;
    elapsed_s;
    alloc_bytes;
    meta = frame.fmeta;
    children = List.rev frame.rev_children;
  }

let exec ?(meta = []) name fn =
  let stack = stack () in
  (* Stamp the frame with the domain's current trace id (if any) at
     open time, so every node of a request's span tree self-identifies
     even when subtrees are serialized separately. CLI runs never set a
     trace id, so their rendered spans are unchanged. *)
  let meta =
    match Trace.get () with
    | Some id -> ("trace_id", id) :: meta
    | None -> meta
  in
  let frame =
    {
      fname = name;
      fmeta = meta;
      start_s = Unix.gettimeofday ();
      start_alloc = (if Atomic.get tracing then allocated_words () else 0.);
      rev_children = [];
    }
  in
  stack := frame :: !stack;
  let close () =
    (match !stack with
    | top :: rest when top == frame -> stack := rest
    | _ ->
        (* Unbalanced nesting can only arise from an exception that
           skipped inner closes; drop frames down to ours. *)
        let rec pop = function
          | top :: rest when top == frame -> rest
          | _ :: rest -> pop rest
          | [] -> []
        in
        stack := pop !stack);
    let node = finish frame in
    (match !stack with
    | parent :: _ -> parent.rev_children <- node :: parent.rev_children
    | [] -> if Atomic.get tracing then record node);
    node
  in
  match fn () with
  | v -> (v, close ())
  | exception e ->
      ignore (close ());
      raise e

let annotate kvs =
  match !(stack ()) with
  | [] -> ()
  | frame :: _ -> frame.fmeta <- frame.fmeta @ kvs

let with_ ?meta name fn = fst (exec ?meta name fn)
let timed ?meta name fn = exec ?meta name fn

let run ?meta name fn =
  (* Temporarily detach from any enclosing stack (of this domain) so the
     caller gets a self-contained tree. The finished span still lands in
     the ring buffer (when tracing) — it is a root of its own trace. *)
  let stack = stack () in
  let saved = !stack in
  stack := [];
  Fun.protect
    ~finally:(fun () -> stack := saved)
    (fun () -> exec ?meta name fn)

let rec find t name =
  if t.name = name then Some t
  else List.find_map (fun c -> find c name) t.children

let total_s t = t.elapsed_s

let self_s t =
  Float.max 0.
    (t.elapsed_s -. List.fold_left (fun acc c -> acc +. c.elapsed_s) 0. t.children)

let human_bytes b =
  if b >= 1048576. then Printf.sprintf "%.1fMB" (b /. 1048576.)
  else if b >= 1024. then Printf.sprintf "%.1fkB" (b /. 1024.)
  else Printf.sprintf "%.0fB" b

let pp ppf t =
  let root_s = if t.elapsed_s > 0. then t.elapsed_s else 1. in
  let rec go indent span =
    Format.fprintf ppf "%s%-*s %9.6fs %5.1f%%" indent
      (Stdlib.max 1 (24 - String.length indent))
      span.name span.elapsed_s
      (100. *. span.elapsed_s /. root_s);
    if span.alloc_bytes > 0. then
      Format.fprintf ppf "  %s" (human_bytes span.alloc_bytes);
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v)
      span.meta;
    Format.fprintf ppf "@,";
    List.iter (go (indent ^ "  ")) span.children
  in
  Format.fprintf ppf "@[<v>";
  go "" t;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let rec to_json t =
  let meta =
    match t.meta with
    | [] -> ""
    | m ->
        Printf.sprintf ",\"meta\":{%s}"
          (String.concat ","
             (List.map (fun (k, v) -> Printf.sprintf "%S:%S" k v) m))
  in
  Printf.sprintf
    "{\"name\":%S,\"elapsed_s\":%.9f,\"alloc_bytes\":%.0f%s,\"children\":[%s]}"
    t.name t.elapsed_s t.alloc_bytes meta
    (String.concat "," (List.map to_json t.children))
