(* The current request's trace id, one slot per domain. Like the span
   stack (span.ml) this is Domain.DLS state: the server's pool domains
   run one request at a time, so a slot set around a job covers exactly
   that job's spans and events. Systhreads within a domain share the
   slot — which is why the server sets it only inside pool jobs, never
   from its reader threads. *)
let slot : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get () = !(Domain.DLS.get slot)

let with_id id fn =
  let cell = Domain.DLS.get slot in
  let saved = !cell in
  cell := Some id;
  Fun.protect ~finally:(fun () -> cell := saved) fn

(* ------------------------------ Generation ----------------------------- *)

(* splitmix64 over a process-unique atomic counter: ids are unique
   within the process by construction (distinct counter values) and
   unlikely to collide across restarts (the seed folds in wall-clock
   microseconds and the pid). Cheap enough to run per request. *)

let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let seed =
  let t = Unix.gettimeofday () in
  Int64.logxor
    (Int64.of_float (t *. 1e6))
    (splitmix64 (Int64.of_int (Unix.getpid ())))

let next = Atomic.make 0

let generate () =
  let n = Atomic.fetch_and_add next 1 in
  Printf.sprintf "%016Lx" (splitmix64 (Int64.add seed (Int64.of_int n)))

(* ------------------------------ Validation ----------------------------- *)

let max_length = 128

let is_valid id =
  let n = String.length id in
  n >= 1 && n <= max_length
  && String.for_all (fun c -> c >= '!' && c <= '~') id
