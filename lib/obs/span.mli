(** Lightweight tracing spans.

    A span measures one named region of execution: wall-clock time,
    and — when tracing is {!set_enabled} — the allocation delta over the
    region (via [Gc.quick_stat]). Spans nest: a {!with_} call inside
    another becomes a child in the finished tree, in execution order.
    Completed root spans are kept in a bounded ring buffer ({!recent})
    for after-the-fact inspection.

    Cost model: a span always records wall-clock time (two
    [Unix.gettimeofday] calls — the executor's phase statistics are a
    view over the span tree, so timing cannot be optional), but GC
    sampling and ring-buffer retention only happen when tracing is
    enabled. Tracing is {e disabled by default}, so instrumented code
    pays the same clock reads the hand-rolled timing did.

    Concurrency: the open-span context is {e domain-local}, so queries
    tracing on separate pool domains build independent, correctly
    nested trees in parallel. Systhreads within one domain share that
    domain's context — interleaved spans from such threads can attach to
    the wrong parent (never crash); keep span-producing work one-per-
    domain, as the server does. The {!recent} ring and the tracing flag
    are shared across domains and internally synchronized. *)

type t = {
  name : string;
  elapsed_s : float;  (** wall-clock duration *)
  alloc_bytes : float;
      (** bytes allocated during the span (minor + major − promoted);
          [0.] when tracing was disabled *)
  meta : (string * string) list;
      (** caller-supplied annotations; when the opening domain had a
          {!Trace} id set, a [("trace_id", id)] pair is prepended at
          open time, so every node of a request's tree self-identifies *)
  children : t list;  (** sub-spans, in execution order *)
}

val set_enabled : bool -> unit
(** Turns GC sampling and ring-buffer recording on or off (default off). *)

val enabled : unit -> bool

val with_ : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name fn] runs [fn] inside a span. If a span is already open,
    the new span becomes its child; otherwise it is a root and, when
    tracing is enabled, is pushed to {!recent} on completion. The span is
    finished (and recorded) even when [fn] raises. *)

val annotate : (string * string) list -> unit
(** Appends key/value pairs to the {e innermost open} span's [meta]
    (after any pairs given at {!with_} time); a no-op when no span is
    open. This is how an operator attaches actuals that are only known
    once it has run — the store annotates the executor's per-label
    [xpath] span with [rows]/[indexed]/[scanned], the embedder its
    [embed] span with candidate counts — which is what the CLI's
    [--explain-analyze] tree renders. *)

val timed : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a * t
(** Like {!with_}, but also returns the finished span — still attached as
    a child of any enclosing span (unlike {!run}, which detaches). Lets an
    instrumented call site reuse the span's measured [elapsed_s] instead
    of reading the clock again: the executor's [Xpath_exec] event reports
    exactly the enclosing [xpath] span's duration, so the event log and
    EXPLAIN ANALYZE cannot disagree about how long a store round-trip
    took. *)

val run : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a * t
(** Like {!with_}, but also returns the finished span — how the executor
    obtains the trace it exposes in its statistics. [run] always starts a
    fresh root (it detaches from any enclosing span), nested {!with_}
    calls attach as children, and the finished root is recorded in
    {!recent} when tracing is enabled. *)

(** {1 Inspection} *)

val find : t -> string -> t option
(** First span named [name] in a preorder walk (the span itself first). *)

val total_s : t -> float
(** The span's own wall-clock duration ([elapsed_s]). *)

val self_s : t -> float
(** Duration not covered by the span's direct children. *)

val recent : unit -> t list
(** Recently completed root spans, newest first. *)

val clear_recent : unit -> unit

val set_capacity : int -> unit
(** Resizes the ring buffer (default 32); drops retained spans. *)

val pp : Format.formatter -> t -> unit
(** Indented tree: one line per span with duration, share of the root,
    and allocation. *)

val to_string : t -> string

val to_json : t -> string
(** Nested JSON object mirroring the span tree. *)
