(** Per-request trace context.

    A trace id is an opaque string correlating everything one request
    did: the server stamps it on every {!Span} frame and {!Event}
    emitted while the request executes, echoes it in the response, and
    keys the access log and slow-query records by it. Clients may
    supply their own id (to join server records with their logs); the
    server generates one otherwise.

    The current id lives in a [Domain.DLS] slot — {b domain-local},
    like the span stack: each pool domain runs one request at a time,
    so wrapping the request body in {!with_id} scopes the id to exactly
    that request's spans and events. Systhreads within one domain share
    the slot; code running on shared-domain threads (the server's
    connection readers) must not set it. Plain CLI runs never set a
    trace id, and nothing is stamped when the slot is empty. *)

val get : unit -> string option
(** The calling domain's current trace id, if inside {!with_id}. *)

val with_id : string -> (unit -> 'a) -> 'a
(** [with_id id fn] runs [fn] with the calling domain's trace slot set
    to [id], restoring the previous value (even on exceptions). Nesting
    is allowed; the innermost id wins. *)

val generate : unit -> string
(** A fresh 16-hex-digit id — unique within the process (atomic
    counter) and seeded from wall-clock + pid so ids from different
    server runs are unlikely to collide. Safe from any domain. *)

val is_valid : string -> bool
(** Whether a client-supplied id is acceptable on the wire: 1–128
    printable non-space ASCII characters. The server rejects anything
    else as [bad_request] rather than copying arbitrary bytes into
    logs. *)
