type labels = (string * string) list

let bucket_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100.; 1_000.; 10_000.; infinity |]

(* Counters and gauges are single atomics (updates are one
   fetch-and-add / exchange, lock-free from any domain); a histogram
   mutates several fields per observation, so it carries its own mutex —
   uncontended in the common case of distinct series per call site. *)
type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  hlock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable hmin : float;
  mutable hmax : float;
  bucket_counts : int array;  (* non-cumulative; cumulated at snapshot time *)
}

type cell = C of counter | G of gauge | H of histogram

(* The process-wide registry, keyed by (name, sorted labels); all
   structural access (registration, snapshot, reset) is serialized by
   [registry_lock]. Handle updates never touch the lock. *)
let registry : (string * labels, cell) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let registry_locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let normalize labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register ?(labels = []) name make describe =
  let key = (name, normalize labels) in
  registry_locked (fun () ->
      match Hashtbl.find_opt registry key with
      | Some cell -> cell
      | None ->
          (* A name must keep one kind across all label sets. *)
          Hashtbl.iter
            (fun (n, _) cell ->
              if n = name && kind_name cell <> describe then
                invalid_arg
                  (Printf.sprintf "Metrics: %S already registered as a %s" name
                     (kind_name cell)))
            registry;
          let cell = make () in
          Hashtbl.replace registry key cell;
          cell)

let counter ?labels name =
  match register ?labels name (fun () -> C (Atomic.make 0)) "counter" with
  | C c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)

let gauge ?labels name =
  match register ?labels name (fun () -> G (Atomic.make 0.)) "gauge" with
  | G g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)

let new_histogram () =
  {
    hlock = Mutex.create ();
    count = 0;
    sum = 0.;
    hmin = nan;
    hmax = nan;
    bucket_counts = Array.make (Array.length bucket_bounds) 0;
  }

let histogram ?labels name =
  match register ?labels name (fun () -> H (new_histogram ())) "histogram" with
  | H h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters only go up";
  ignore (Atomic.fetch_and_add c by)

let set g v = Atomic.set g v

let bucket_index v =
  let rec go i = if v <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  Mutex.lock h.hlock;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if h.count = 1 then begin
    h.hmin <- v;
    h.hmax <- v
  end
  else begin
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v
  end;
  let i = bucket_index v in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1;
  Mutex.unlock h.hlock

let observe_int h v = observe h (float_of_int v)

let incr_c ?labels ?by name = incr ?by (counter ?labels name)
let set_g ?labels name v = set (gauge ?labels name) v
let observe_h ?labels name v = observe (histogram ?labels name) v

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

type value = Counter of int | Gauge of float | Histogram of histogram_stats

type snapshot = (string * labels * value) list

(* Reads the histogram under its own lock, so a snapshot taken during a
   storm of observations still sees each series at one instant. *)
let stats_of (h : histogram) =
  Mutex.lock h.hlock;
  let count = h.count and sum = h.sum and hmin = h.hmin and hmax = h.hmax in
  let bucket_counts = Array.copy h.bucket_counts in
  Mutex.unlock h.hlock;
  let cumulative = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           cumulative := !cumulative + bucket_counts.(i);
           (bound, !cumulative))
         bucket_bounds)
  in
  { count; sum; min = hmin; max = hmax; buckets }

let snapshot () =
  registry_locked (fun () ->
      Hashtbl.fold
        (fun (name, labels) cell acc ->
          let value =
            match cell with
            | C c -> Counter (Atomic.get c)
            | G g -> Gauge (Atomic.get g)
            | H h -> Histogram (stats_of h)
          in
          (name, labels, value) :: acc)
        registry [])
  |> List.sort compare

let reset () =
  registry_locked (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          match cell with
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0.
          | H h ->
              Mutex.lock h.hlock;
              h.count <- 0;
              h.sum <- 0.;
              h.hmin <- nan;
              h.hmax <- nan;
              Array.fill h.bucket_counts 0 (Array.length h.bucket_counts) 0;
              Mutex.unlock h.hlock)
        registry)

let names snap =
  List.sort_uniq String.compare (List.map (fun (n, _, _) -> n) snap)

let find_counter snap ?(labels = []) name =
  let labels = normalize labels in
  List.find_map
    (function
      | n, l, Counter v when n = name && l = labels -> Some v | _ -> None)
    snap

let find_gauge snap ?(labels = []) name =
  let labels = normalize labels in
  List.find_map
    (function n, l, Gauge v when n = name && l = labels -> Some v | _ -> None)
    snap

let find_histogram snap ?(labels = []) name =
  let labels = normalize labels in
  List.find_map
    (function
      | n, l, Histogram h when n = name && l = labels -> Some h | _ -> None)
    snap

let quantile (s : histogram_stats) q =
  if s.count = 0 then nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int s.count in
    let clamp v = Float.max s.min (Float.min s.max v) in
    let rec go prev_bound prev_cum = function
      | [] -> s.max
      | (bound, cum) :: rest ->
          (* Skip empty buckets and those entirely below the target rank. *)
          if cum = prev_cum || float_of_int cum < target then go bound cum rest
          else begin
            let lower = clamp prev_bound in
            let upper = clamp bound in
            let frac =
              (target -. float_of_int prev_cum)
              /. float_of_int (cum - prev_cum)
            in
            lower +. (frac *. (upper -. lower))
          end
    in
    go 0. 0 s.buckets
  end

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let to_table snap =
  let lines =
    List.map
      (fun (name, labels, value) ->
        let key = name ^ render_labels labels in
        let rendered =
          match value with
          | Counter c -> string_of_int c
          | Gauge g -> Printf.sprintf "%g" g
          | Histogram { count = 0; _ } -> "count=0"
          | Histogram h ->
              Printf.sprintf "count=%d mean=%g p50=%g p95=%g p99=%g max=%g"
                h.count
                (h.sum /. float_of_int h.count)
                (quantile h 0.5) (quantile h 0.95) (quantile h 0.99) h.max
        in
        (key, rendered))
      snap
  in
  let width = List.fold_left (fun w (k, _) -> Stdlib.max w (String.length k)) 0 lines in
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%-*s  %s\n" width k v) lines)

(* -------------------------------- JSON -------------------------------- *)

let json_escape = Toss_json.escape

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k v) fields) ^ "}"

let to_json snap =
  let keyed f =
    List.filter_map
      (fun (name, labels, value) ->
        Option.map (fun v -> (name ^ render_labels labels, v)) (f value))
      snap
  in
  let counters =
    keyed (function Counter c -> Some (string_of_int c) | _ -> None)
  in
  let gauges = keyed (function Gauge g -> Some (json_float g) | _ -> None) in
  let histograms =
    keyed (function
      | Histogram h ->
          let buckets =
            List.map
              (fun (bound, count) ->
                ( (if bound = infinity then "+inf" else Printf.sprintf "%g" bound),
                  string_of_int count ))
              h.buckets
          in
          Some
            (json_obj
               [
                 ("count", string_of_int h.count);
                 ("sum", json_float h.sum);
                 ("min", json_float h.min);
                 ("max", json_float h.max);
                 ("p50", json_float (quantile h 0.5));
                 ("p95", json_float (quantile h 0.95));
                 ("p99", json_float (quantile h 0.99));
                 ("buckets", json_obj buckets);
               ])
      | _ -> None)
  in
  let section kvs =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) v) kvs)
    ^ "}"
  in
  json_obj
    [
      ("counters", section counters);
      ("gauges", section gauges);
      ("histograms", section histograms);
    ]

(* ----------------------------- Prometheus ------------------------------ *)

(* Text exposition format, version 0.0.4: what a stock Prometheus
   server scrapes. Registry names use dots ("server.requests.total");
   the metric-name charset is [a-zA-Z0-9_:], so every illegal byte
   maps to '_'. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_'
        || (c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

(* Label values admit any UTF-8 with backslash, quote and newline
   escaped. *)
let prom_label_value v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_label_value v))
             labels)
      ^ "}"

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* The snapshot is name-sorted, so all label sets of one metric are
     adjacent; the [typed] set keeps the mandatory "# TYPE" header to
     one occurrence per metric even if two registry names sanitize to
     the same exposition name. *)
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let sample name labels value =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (prom_labels labels) value)
  in
  List.iter
    (fun (name, labels, value) ->
      let n = prom_name name in
      match value with
      | Counter c ->
          type_line n "counter";
          sample n labels (string_of_int c)
      | Gauge g ->
          type_line n "gauge";
          sample n labels (prom_float g)
      | Histogram h ->
          type_line n "histogram";
          List.iter
            (fun (bound, cum) ->
              sample (n ^ "_bucket")
                (labels @ [ ("le", prom_float bound) ])
                (string_of_int cum))
            h.buckets;
          sample (n ^ "_sum") labels (prom_float h.sum);
          sample (n ^ "_count") labels (string_of_int h.count))
    snap;
  Buffer.contents buf
