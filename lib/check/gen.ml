module Tree = Toss_xml.Tree
module Printer = Toss_xml.Printer
module Hierarchy = Toss_hierarchy.Hierarchy
module Levenshtein = Toss_similarity.Levenshtein
module Ontology = Toss_ontology.Ontology
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Seo = Toss_core.Seo

type op = Select | Join

type case = {
  seed : int;
  op : op;
  docs : Tree.t list;
  right_docs : Tree.t list;  (** empty for selections *)
  isa_edges : (string * string) list;
  part_edges : (string * string) list;
  eps : float;
  pattern : Pattern.t;
  sl : int list;
}

(* ----------------------------- pools ------------------------------ *)

(* Small pools on purpose: collisions between document values, ontology
   terms and query constants are what make every predicate reachable.
   The near-miss spellings (model/models, vldb/vld) sit within small
   Levenshtein distance of each other to exercise both the SEA clusters
   and the raw-distance fallback for unknown pairs; the numerals include
   pairs that are textually different but numerically equal ("7"/"7.0",
   "42"/"0042") to exercise the numeric-equality semantics the rewriter
   must not push as exact text. *)
let tag_pool = [ "article"; "paper"; "book"; "note"; "item"; "venue" ]

let word_pool =
  [ "model"; "models"; "relation"; "relational"; "database"; "databases";
    "vldb"; "vld"; "survey" ]

let number_pool = [ "7"; "7.0"; "42"; "0042"; "1999"; "1999.0"; "2001"; "3.5" ]

let type_names = [ "int"; "float"; "year"; "string" ]

(* Terms eligible to appear in the generated ontology, in a fixed order:
   edges only ever point from a lower index to a strictly higher one, so
   any edge subset is acyclic by construction (and stays so under the
   shrinker's edge dropping). *)
let ontology_terms =
  tag_pool @ word_pool @ [ "publication"; "thing"; "1999"; "42" ]

let constant_pool = tag_pool @ word_pool @ number_pool @ [ "publication"; "thing" ]

(* Near-miss spellings straddling the generated ε values (0, 1, 2): the
   word pool's distance-1 and distance-2 pairs plus two misspellings kept
   out of [ontology_terms] — always unknown to the hierarchy — so
   similarity-join cases exercise both the cluster signatures and the
   metric-fallback bucket of the sim-pair operator. *)
let near_miss_pool = word_pool @ [ "databse"; "modell" ]

(* ---------------------------- documents --------------------------- *)

let gen_content ?pool rng =
  match pool with
  | Some p -> Rng.pick rng p
  | None -> if Rng.bool rng then Rng.pick rng word_pool else Rng.pick rng number_pool

let gen_attrs rng =
  if Rng.chance rng 20 then [ ("k", Rng.pick rng word_pool) ] else []

let rec gen_element ?pool rng ~depth ~budget =
  let tag = Rng.pick rng tag_pool in
  let attrs = gen_attrs rng in
  if depth >= 3 || !budget <= 1 || Rng.chance rng 40 then begin
    decr budget;
    let children =
      if Rng.chance rng 75 then [ Tree.text (gen_content ?pool rng) ] else []
    in
    Tree.element ~attrs tag children
  end
  else begin
    decr budget;
    let n = 1 + Rng.int rng 3 in
    let children = ref [] in
    for _ = 1 to n do
      if !budget > 0 then
        children := gen_element ?pool rng ~depth:(depth + 1) ~budget :: !children
    done;
    (* Occasional mixed content: a text node among element children. *)
    let children =
      if Rng.chance rng 15 then Tree.text (gen_content ?pool rng) :: !children
      else !children
    in
    Tree.element ~attrs tag (List.rev children)
  end

let gen_doc ?pool rng =
  let budget = ref (4 + Rng.int rng 9) in
  gen_element ?pool rng ~depth:0 ~budget

let gen_docs ?pool rng = List.init (1 + Rng.int rng 3) (fun _ -> gen_doc ?pool rng)

(* ---------------------------- ontology ---------------------------- *)

let gen_edges rng ~max_edges terms =
  let arr = Array.of_list terms in
  let n = Array.length arr in
  List.init (Rng.int rng (max_edges + 1)) (fun _ ->
      let i = Rng.int rng (n - 1) in
      let j = i + 1 + Rng.int rng (n - i - 1) in
      (arr.(i), arr.(j)))
  |> List.sort_uniq compare

let seo_of case =
  let h pairs = Hierarchy.of_pairs pairs in
  Seo.create_exn ~metric:Levenshtein.metric ~eps:case.eps
    (Ontology.of_list
       [ (Ontology.isa, h case.isa_edges); (Ontology.part_of, h case.part_edges) ])

(* --------------------------- conditions --------------------------- *)

let cmps =
  [ Condition.Eq; Condition.Neq; Condition.Le; Condition.Ge; Condition.Lt;
    Condition.Gt ]

(* One atom over the given labels, drawing every predicate of the TOSS
   algebra. *)
let gen_atom rng labels =
  let l = Rng.pick rng labels in
  let node_term l = if Rng.chance rng 25 then Condition.Tag l else Condition.Content l in
  let term_or_type () =
    if Rng.chance rng 25 then Rng.pick rng type_names else Rng.pick rng constant_pool
  in
  match Rng.int rng 12 with
  | 0 -> Condition.Sim (Condition.Content l, Condition.Str (Rng.pick rng constant_pool))
  | 1 -> Condition.Isa (Condition.Content l, Condition.Str (Rng.pick rng constant_pool))
  | 2 -> Condition.Isa (Condition.Tag l, Condition.Str (Rng.pick rng constant_pool))
  | 3 -> Condition.Part_of (node_term l, Condition.Str (Rng.pick rng constant_pool))
  | 4 -> Condition.Instance_of (Condition.Content l, Condition.Str (term_or_type ()))
  | 5 -> Condition.Subtype_of (Condition.Content l, Condition.Str (Rng.pick rng constant_pool))
  | 6 -> Condition.Below (Condition.Content l, Condition.Str (term_or_type ()))
  | 7 -> Condition.Below (Condition.Tag l, Condition.Str (term_or_type ()))
  | 8 -> Condition.Above (Condition.Str (term_or_type ()), node_term l)
  | 9 ->
      Condition.Cmp
        ( Condition.Content l,
          Rng.pick rng cmps,
          Condition.Str
            (if Rng.chance rng 60 then Rng.pick rng number_pool
             else Rng.pick rng word_pool) )
  | 10 -> Condition.Contains (Condition.Content l, Rng.pick rng [ "data"; "model"; "19"; "a" ])
  | _ -> Condition.Cmp (Condition.Content l, Condition.Eq, Condition.Content (Rng.pick rng labels))

(* A top-level conjunct: usually an atom, sometimes a disjunction or a
   negation (neither of which the rewriter may push down). *)
let gen_conjunct rng labels =
  match Rng.int rng 10 with
  | 0 -> Condition.Or (gen_atom rng labels, gen_atom rng labels)
  | 1 -> Condition.Not (gen_atom rng labels)
  | _ -> gen_atom rng labels

let gen_condition rng labels ~extra =
  let anchors =
    List.filter_map
      (fun l ->
        if Rng.chance rng 55 then Some (Condition.tag_eq l (Rng.pick rng tag_pool))
        else None)
      labels
  in
  let extras = List.init extra (fun _ -> gen_conjunct rng labels) in
  Condition.conj (anchors @ extras)

let gen_sl rng labels = List.filter (fun _ -> Rng.chance rng 40) labels

(* ---------------------------- patterns ---------------------------- *)

let edge rng = if Rng.bool rng then Pattern.Pc else Pattern.Ad

(* A random pattern shape over the given labels: each label after the
   first attaches under a uniformly chosen earlier one. *)
let gen_shape rng = function
  | [] -> invalid_arg "gen_shape: no labels"
  | root :: rest ->
      let attach = Hashtbl.create 8 in
      List.fold_left
        (fun seen l ->
          let parent = Rng.pick rng seen in
          Hashtbl.replace attach parent
            ((edge rng, l)
            :: Option.value ~default:[] (Hashtbl.find_opt attach parent));
          seen @ [ l ])
        [ root ] rest
      |> ignore;
      let rec build l =
        Pattern.node l
          (List.rev_map
             (fun (k, c) -> (k, build c))
             (Option.value ~default:[] (Hashtbl.find_opt attach l)))
      in
      build root

let gen_select_case rng seed =
  let n_labels = 1 + Rng.int rng 4 in
  let labels = List.init n_labels (fun i -> i + 1) in
  let shape = gen_shape rng labels in
  let condition = gen_condition rng labels ~extra:(1 + Rng.int rng 3) in
  {
    seed;
    op = Select;
    docs = gen_docs rng;
    right_docs = [];
    isa_edges = gen_edges rng ~max_edges:6 ontology_terms;
    part_edges = gen_edges rng ~max_edges:4 ontology_terms;
    eps = Rng.pick rng [ 0.; 1.; 2. ];
    pattern = Pattern.v shape condition;
    sl = gen_sl rng labels;
  }

let gen_join_case rng seed =
  let n_left = 1 + Rng.int rng 2 and n_right = 1 + Rng.int rng 2 in
  let left_labels = List.init n_left (fun i -> i + 1) in
  let right_labels = List.init n_right (fun i -> n_left + i + 1) in
  let left = gen_shape rng left_labels and right = gen_shape rng right_labels in
  let root = Pattern.node 0 [ (edge rng, left); (edge rng, right) ] in
  (* A third of join cases are similarity joins proper: the only cross
     atom is a [~] (or Toss-evaluated [isa]) over content drawn from the
     shared near-miss pool, so the planner's sim-pair lowering — not the
     hash path — carries the case, against corpora where ε decides which
     pairs match. *)
  let sim_cross = Rng.chance rng 35 in
  let cross_eq =
    if (not sim_cross) && Rng.chance rng 70 then
      [ Condition.Cmp
          ( Condition.Content (Rng.pick rng left_labels),
            Condition.Eq,
            Condition.Content (Rng.pick rng right_labels) ) ]
    else []
  in
  (* A second cross atom beyond the equality keys: with the hash path
     chosen, this is the recheck that [Hash_no_recheck] skips. *)
  let cross_extra =
    if sim_cross then
      [ (let l = Rng.pick rng left_labels and r = Rng.pick rng right_labels in
         match Rng.int rng 4 with
         | 0 -> Condition.Isa (Condition.Content l, Condition.Content r)
         | 1 -> Condition.Isa (Condition.Content r, Condition.Content l)
         | _ -> Condition.Sim (Condition.Content l, Condition.Content r)) ]
    else
    match cross_eq with
    | [ Condition.Cmp (lt, _, rt) ] when Rng.chance rng 50 ->
        (* Reuse the hash-key pair. [Neq]/[Lt] contradict the key equality,
           so any probe match whose recheck is skipped is an instant
           discrepancy; [Sim] separates textual from numeric equality
           ("7" vs "7.0" share a hash key and satisfy [Eq] but not
           TAX-mode [~]). *)
        [ (match Rng.int rng 3 with
           | 0 -> Condition.Cmp (lt, Condition.Neq, rt)
           | 1 -> Condition.Cmp (lt, Condition.Lt, rt)
           | _ -> Condition.Sim (lt, rt)) ]
    | _ ->
        if Rng.chance rng 50 then
          [ (let l = Rng.pick rng left_labels and r = Rng.pick rng right_labels in
             match Rng.int rng 3 with
             | 0 -> Condition.Cmp (Condition.Content l, Condition.Neq, Condition.Content r)
             | 1 -> Condition.Cmp (Condition.Content l, Condition.Le, Condition.Content r)
             | _ -> Condition.Sim (Condition.Content l, Condition.Content r)) ]
        else []
  in
  let side_conds =
    [ gen_condition rng left_labels ~extra:(Rng.int rng 2);
      gen_condition rng right_labels ~extra:(Rng.int rng 2) ]
  in
  let condition = Condition.conj (side_conds @ cross_eq @ cross_extra) in
  let pool = if sim_cross then Some near_miss_pool else None in
  {
    seed;
    op = Join;
    docs = gen_docs ?pool rng;
    right_docs = gen_docs ?pool rng;
    isa_edges = gen_edges rng ~max_edges:6 ontology_terms;
    part_edges = gen_edges rng ~max_edges:4 ontology_terms;
    eps = Rng.pick rng [ 0.; 1.; 2. ];
    pattern = Pattern.v root condition;
    sl = gen_sl rng (left_labels @ right_labels);
  }

let case ?op seed =
  let rng = Rng.create seed in
  let op =
    match op with Some op -> op | None -> if Rng.chance rng 60 then Select else Join
  in
  match op with Select -> gen_select_case rng seed | Join -> gen_join_case rng seed

(* ------------------------- repro printing ------------------------- *)

let ocaml_string s = Printf.sprintf "%S" s

let term_to_ocaml = function
  | Condition.Tag i -> Printf.sprintf "Tag %d" i
  | Condition.Content i -> Printf.sprintf "Content %d" i
  | Condition.Str s -> Printf.sprintf "Str %s" (ocaml_string s)

let cmp_to_ocaml = function
  | Condition.Eq -> "Eq" | Condition.Neq -> "Neq" | Condition.Le -> "Le"
  | Condition.Ge -> "Ge" | Condition.Lt -> "Lt" | Condition.Gt -> "Gt"

let rec condition_to_ocaml c =
  let t = term_to_ocaml and s = ocaml_string in
  match c with
  | Condition.True -> "True"
  | Condition.Cmp (x, op, y) ->
      Printf.sprintf "Cmp (%s, %s, %s)" (t x) (cmp_to_ocaml op) (t y)
  | Condition.Contains (x, v) -> Printf.sprintf "Contains (%s, %s)" (t x) (s v)
  | Condition.Sim (x, y) -> Printf.sprintf "Sim (%s, %s)" (t x) (t y)
  | Condition.Isa (x, y) -> Printf.sprintf "Isa (%s, %s)" (t x) (t y)
  | Condition.Part_of (x, y) -> Printf.sprintf "Part_of (%s, %s)" (t x) (t y)
  | Condition.Instance_of (x, y) -> Printf.sprintf "Instance_of (%s, %s)" (t x) (t y)
  | Condition.Subtype_of (x, y) -> Printf.sprintf "Subtype_of (%s, %s)" (t x) (t y)
  | Condition.Below (x, y) -> Printf.sprintf "Below (%s, %s)" (t x) (t y)
  | Condition.Above (x, y) -> Printf.sprintf "Above (%s, %s)" (t x) (t y)
  | Condition.And (p, q) ->
      Printf.sprintf "And (%s, %s)" (condition_to_ocaml p) (condition_to_ocaml q)
  | Condition.Or (p, q) ->
      Printf.sprintf "Or (%s, %s)" (condition_to_ocaml p) (condition_to_ocaml q)
  | Condition.Not p -> Printf.sprintf "Not (%s)" (condition_to_ocaml p)

let rec node_to_ocaml (n : Pattern.node) =
  match n.Pattern.children with
  | [] -> Printf.sprintf "Pattern.leaf %d" n.Pattern.label
  | children ->
      Printf.sprintf "Pattern.node %d [ %s ]" n.Pattern.label
        (String.concat "; "
           (List.map
              (fun (k, c) ->
                Printf.sprintf "(%s, %s)"
                  (match k with Pattern.Pc -> "Pattern.Pc" | Pattern.Ad -> "Pattern.Ad")
                  (node_to_ocaml c))
              children))

let edges_to_ocaml edges =
  String.concat "; "
    (List.map (fun (a, b) -> Printf.sprintf "(%s, %s)" (ocaml_string a) (ocaml_string b)) edges)

let docs_to_ocaml docs =
  String.concat ";\n    "
    (List.map
       (fun d -> Printf.sprintf "Parser.parse_exn {xml|%s|xml}" (Printer.to_string d))
       docs)

(* A paste-into-test reproduction: everything needed to rebuild the case
   with the library's public constructors (open Toss_tax.Condition for
   the condition constructors). *)
let to_ocaml c =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "(* seed %d *)\n" c.seed;
  add "let docs = [ %s ] in\n" (docs_to_ocaml c.docs);
  (match c.op with
  | Select -> ()
  | Join -> add "let right_docs = [ %s ] in\n" (docs_to_ocaml c.right_docs));
  add "let isa_edges = [ %s ] in\n" (edges_to_ocaml c.isa_edges);
  add "let part_edges = [ %s ] in\n" (edges_to_ocaml c.part_edges);
  add "let pattern = Pattern.v (%s)\n  (%s) in\n"
    (node_to_ocaml c.pattern.Pattern.root)
    (condition_to_ocaml c.pattern.Pattern.condition);
  add "let sl = [ %s ] in\n"
    (String.concat "; " (List.map string_of_int c.sl));
  add "(* eps = %g; op = %s *)"
    c.eps
    (match c.op with Select -> "select" | Join -> "join");
  Buffer.contents buf

let pp ppf c = Format.pp_print_string ppf (to_ocaml c)
