(** Seeded random generation of differential-test cases.

    A case bundles everything one query evaluation needs: a corpus (two
    for joins), an explicit ontology (edge lists, so the shrinker can
    drop edges), a similarity threshold, a pattern tree with a condition
    drawing on every predicate of the TOSS algebra ([~], [isa],
    [instance_of], [subtype_of], [above], [below], [part_of], typed
    comparisons, containment), and a selection list.

    Generation is deterministic: [case seed] always builds the same case,
    on every OCaml version ({!Rng} is self-contained), so CI can report a
    failing seed and a developer can replay it. Ontology edges always
    point from a lower to a strictly higher index in a fixed term order,
    so generated (and shrunk) hierarchies are acyclic by construction. *)

type op = Select | Join

type case = {
  seed : int;
  op : op;
  docs : Toss_xml.Tree.t list;
  right_docs : Toss_xml.Tree.t list;  (** empty for selections *)
  isa_edges : (string * string) list;
  part_edges : (string * string) list;
  eps : float;
  pattern : Toss_tax.Pattern.t;
  sl : int list;
}

val case : ?op:op -> int -> case
(** The case for one seed; [op] forces the operator kind (otherwise
    ~60% selections). About a third of join cases are similarity joins
    proper: their only cross atom is a [~] or [isa] over content, and
    both corpora draw from a shared pool of near-miss spellings
    straddling the generated ε values, so the planner's sim-pair
    lowering carries the case and the ε threshold decides which pairs
    match. *)

val seo_of : case -> Toss_core.Seo.t
(** The similarity-enhanced ontology the case's edges and ε describe
    (Levenshtein metric). *)

val to_ocaml : case -> string
(** A paste-into-test reproduction of the case, using the library's
    public constructors. *)

val pp : Format.formatter -> case -> unit
