module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Witness = Toss_tax.Witness
module Algebra = Toss_tax.Algebra

(* The reference evaluator: selections and joins straight from the TAX
   embedding semantics (Definition 3), with none of the engine's
   machinery — no rewriting, no store queries, no index, no planner, no
   candidate prefilters, no hash partitioning. Every total map from
   pattern labels to document nodes is enumerated and checked against
   the structural constraints and then the full condition. Exponential
   in the pattern size by design: it is only ever run on the tiny
   corpora the generator produces, and its value is exactly that it
   shares no code path with the executor it judges. *)

(* All structural embeddings of [pattern]'s node tree into [doc]:
   pc edges must map to parent-child pairs, ad edges to strict
   ancestor-descendant pairs. [root_images] restricts the root's image
   (used by the join oracle to pin a pc side to the document root).
   Bindings come out in pattern-preorder label order. *)
let structural_maps ?root_images doc (pattern : Pattern.t) =
  let all = Doc.nodes doc in
  let rec assign binding (pnode : Pattern.node) image =
    let binding = (pnode.Pattern.label, image) :: binding in
    List.fold_left
      (fun partials (kind, child) ->
        let ok n =
          match (kind : Pattern.edge_kind) with
          | Pattern.Pc -> Doc.is_child doc ~parent:image ~child:n
          | Pattern.Ad -> Doc.is_descendant doc ~anc:image ~desc:n
        in
        let options = List.filter ok all in
        List.concat_map
          (fun b -> List.concat_map (assign b child) options)
          partials)
      [ binding ]
      pnode.Pattern.children
  in
  let roots = match root_images with Some nodes -> nodes | None -> all in
  List.concat_map (assign [] pattern.Pattern.root) roots
  |> List.map List.rev

let env_of doc binding label =
  Option.map (fun n -> (doc, n)) (List.assoc_opt label binding)

let dedup trees =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      if Hashtbl.mem seen t then false
      else begin
        Hashtbl.replace seen t ();
        true
      end)
    trees

let select ~eval ~pattern ~sl docs =
  let n_embeddings = ref 0 in
  let results =
    List.concat_map
      (fun doc ->
        let sat =
          List.filter
            (fun b -> eval (env_of doc b) pattern.Pattern.condition)
            (structural_maps doc pattern)
        in
        n_embeddings := !n_embeddings + List.length sat;
        (* Set semantics per document: identical witnesses from distinct
           documents are distinct results, as in TAX. *)
        dedup (List.map (fun b -> Witness.of_binding doc b ~sl) sat))
      docs
  in
  (results, !n_embeddings)

let rec subtree_labels (n : Pattern.node) =
  n.Pattern.label :: List.concat_map (fun (_, c) -> subtree_labels c) n.Pattern.children

let join ~eval ~pattern ~sl left_docs right_docs =
  let root = pattern.Pattern.root in
  let (lkind, lchild), (rkind, rchild) =
    match root.Pattern.children with
    | [ l; r ] -> (l, r)
    | _ -> invalid_arg "Oracle.join: the pattern root must have exactly two children"
  in
  let root_label = root.Pattern.label in
  (* Conjuncts mentioning the synthetic product root hold by construction
     of the result and are dropped — the executor's documented contract. *)
  let cross =
    Condition.conj
      (List.filter
         (fun c -> not (List.mem root_label (Condition.labels_used c)))
         (Condition.top_conjuncts pattern.Pattern.condition))
  in
  let side kind child docs =
    let sub = Pattern.v child Condition.True in
    let sl = List.filter (fun l -> List.mem l (subtree_labels child)) sl in
    List.concat_map
      (fun doc ->
        let root_images =
          (* A pc edge from the product root pins the side to the
             document root; an ad edge lets it match anywhere. *)
          match (kind : Pattern.edge_kind) with
          | Pattern.Pc -> Some [ Doc.root doc ]
          | Pattern.Ad -> None
        in
        List.map (fun b -> (doc, b)) (structural_maps ?root_images doc sub))
      docs
    |> fun maps -> (maps, sl)
  in
  let lefts, left_sl = side lkind lchild left_docs in
  let rights, right_sl = side rkind rchild right_docs in
  let pair_env (ldoc, lbind) (rdoc, rbind) label =
    match List.assoc_opt label lbind with
    | Some n -> Some (ldoc, n)
    | None -> Option.map (fun n -> (rdoc, n)) (List.assoc_opt label rbind)
  in
  List.concat_map
    (fun ((ldoc, lbind) as l) ->
      List.filter_map
        (fun ((rdoc, rbind) as r) ->
          if eval (pair_env l r) cross then
            Some
              (Tree.element Algebra.prod_root_tag
                 [
                   Witness.of_binding ldoc lbind ~sl:left_sl;
                   Witness.of_binding rdoc rbind ~sl:right_sl;
                 ])
          else None)
        rights)
    lefts
  |> dedup
