(** Deterministic pseudo-random numbers for the differential harness.

    A self-contained splitmix64 stream: unlike [Stdlib.Random], the
    sequence for a given seed is identical across OCaml versions, so a
    failing case seed reported by CI reproduces anywhere. *)

type t

val create : int -> t

val int : t -> int -> int
(** [int t n] is uniform in [0, n); raises for [n <= 0]. *)

val bool : t -> bool

val chance : t -> int -> bool
(** [chance t pct] is true with probability [pct]%. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; raises on the empty list. *)

val sub_seed : t -> int
(** A fresh non-negative seed for a derived stream — how the harness
    gives every case its own independent generator. *)
