module Tree = Toss_xml.Tree
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition

(* Greedy delta-debugging: try every single-step reduction of the case;
   whenever one still reproduces a discrepancy, restart from the smaller
   case; stop at a fixpoint. Reductions drop whole documents, prune
   document subtrees, drop top-level condition conjuncts, drop ontology
   edges, drop SL entries, and remove leaf pattern nodes (together with
   the conjuncts and SL entries that mention them). *)

let drop_nth n xs = List.filteri (fun i _ -> i <> n) xs

let indices xs = List.init (List.length xs) Fun.id

(* Every tree obtainable by deleting one element child somewhere in the
   tree (the root itself stays). *)
let prune_variants tree =
  let rec go t =
    match t with
    | Tree.Text _ -> []
    | Tree.Element { tag; attrs; children } ->
        let drops =
          List.filter_map
            (fun i ->
              match List.nth children i with
              | Tree.Element _ -> Some (Tree.element ~attrs tag (drop_nth i children))
              | Tree.Text _ -> None)
            (indices children)
        in
        let recursed =
          List.concat_map
            (fun i ->
              List.map
                (fun c' ->
                  Tree.element ~attrs tag
                    (List.mapi (fun j c -> if j = i then c' else c) children))
                (go (List.nth children i)))
            (indices children)
        in
        drops @ recursed
  in
  go tree

(* Remove one leaf (non-root, and for joins not a side root) from the
   pattern shape; the condition loses every conjunct mentioning the
   label, and SL its entry. *)
let rec remove_label (n : Pattern.node) label =
  let children =
    List.filter_map
      (fun (k, c) ->
        if c.Pattern.label = label && c.Pattern.children = [] then None
        else Some (k, remove_label c label))
      n.Pattern.children
  in
  Pattern.node n.Pattern.label children

let removable_leaves (case : Gen.case) =
  let protected =
    match case.Gen.op with
    | Gen.Select -> [ case.Gen.pattern.Pattern.root.Pattern.label ]
    | Gen.Join ->
        (* The product root and its two side roots must survive. *)
        case.Gen.pattern.Pattern.root.Pattern.label
        :: List.map (fun (_, c) -> c.Pattern.label) case.Gen.pattern.Pattern.root.Pattern.children
  in
  let rec leaves (n : Pattern.node) =
    match n.Pattern.children with
    | [] -> [ n.Pattern.label ]
    | cs -> List.concat_map (fun (_, c) -> leaves c) cs
  in
  List.filter (fun l -> not (List.mem l protected)) (leaves case.Gen.pattern.Pattern.root)

let without_label (case : Gen.case) label =
  let root = remove_label case.Gen.pattern.Pattern.root label in
  let condition =
    Condition.conj
      (List.filter
         (fun c -> not (List.mem label (Condition.labels_used c)))
         (Condition.top_conjuncts case.Gen.pattern.Pattern.condition))
  in
  {
    case with
    Gen.pattern = Pattern.v root condition;
    sl = List.filter (fun l -> l <> label) case.Gen.sl;
  }

(* All one-step reductions, smallest-impact classes first (documents
   before structure: the acceptance bar is a few-document repro). *)
let reductions (case : Gen.case) =
  let conjuncts = Condition.top_conjuncts case.Gen.pattern.Pattern.condition in
  let with_condition cs =
    { case with Gen.pattern = Pattern.v case.Gen.pattern.Pattern.root (Condition.conj cs) }
  in
  List.concat
    [
      List.map (fun i -> { case with Gen.docs = drop_nth i case.Gen.docs })
        (indices case.Gen.docs);
      List.map (fun i -> { case with Gen.right_docs = drop_nth i case.Gen.right_docs })
        (indices case.Gen.right_docs);
      (if List.length conjuncts > 1 then
         List.map (fun i -> with_condition (drop_nth i conjuncts)) (indices conjuncts)
       else []);
      List.map (fun i -> { case with Gen.isa_edges = drop_nth i case.Gen.isa_edges })
        (indices case.Gen.isa_edges);
      List.map (fun i -> { case with Gen.part_edges = drop_nth i case.Gen.part_edges })
        (indices case.Gen.part_edges);
      List.map (fun i -> { case with Gen.sl = drop_nth i case.Gen.sl })
        (indices case.Gen.sl);
      List.map (without_label case) (removable_leaves case);
      List.concat_map
        (fun i ->
          List.map
            (fun d' ->
              { case with
                Gen.docs = List.mapi (fun j d -> if j = i then d' else d) case.Gen.docs })
            (prune_variants (List.nth case.Gen.docs i)))
        (indices case.Gen.docs);
      List.concat_map
        (fun i ->
          List.map
            (fun d' ->
              { case with
                Gen.right_docs =
                  List.mapi (fun j d -> if j = i then d' else d) case.Gen.right_docs })
            (prune_variants (List.nth case.Gen.right_docs i)))
        (indices case.Gen.right_docs);
    ]

let minimize ?(max_steps = 400) ?simjoin (case : Gen.case) =
  let steps = ref 0 in
  let rec go case failure =
    let next =
      List.find_map
        (fun candidate ->
          if !steps >= max_steps then None
          else begin
            incr steps;
            match Diff.check_case ?simjoin candidate with
            | Some f -> Some (candidate, f)
            | None -> None
          end)
        (reductions case)
    in
    match next with
    | Some (smaller, f) -> go smaller f
    | None -> (case, failure, !steps)
  in
  match Diff.check_case ?simjoin case with
  | None -> invalid_arg "Shrink.minimize: case does not fail"
  | Some failure -> go case failure
