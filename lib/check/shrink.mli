(** Greedy minimization of failing differential-test cases.

    Given a (corpus, SEO, query) triple on which {!Diff.check_case}
    reports a discrepancy, repeatedly applies the smallest-footprint
    reduction that still fails — dropping documents (on either side of a
    join), pruning document subtrees (again on both sides), dropping
    top-level condition conjuncts, ontology edges and SL entries, and
    removing leaf pattern nodes — until no single-step reduction
    reproduces the failure. *)

val minimize :
  ?max_steps:int -> ?simjoin:bool -> Gen.case -> Gen.case * Diff.failure * int
(** [minimize case] returns a locally-minimal failing case, its (possibly
    different) discrepancy, and the number of candidate cases tried.
    [max_steps] bounds the number of oracle-vs-executor comparisons spent
    shrinking (default 400). [simjoin] is forwarded to every
    {!Diff.check_case} call, so a failure found with the sim-pair
    operator disabled shrinks under the same configuration.

    @raise Invalid_argument if [case] does not fail to begin with. *)
