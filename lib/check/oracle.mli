(** The naive reference oracle: TOSS/TAX semantics evaluated directly
    from the embedding definitions, sharing no code path with the
    executor — no rewriting, no store, no index, no planner. Brute-force
    (exponential in pattern size), for test corpora only. *)

val select :
  eval:(Toss_tax.Condition.env -> Toss_tax.Condition.t -> bool) ->
  pattern:Toss_tax.Pattern.t ->
  sl:int list ->
  Toss_xml.Tree.Doc.t list ->
  Toss_xml.Tree.t list * int
(** Witness trees of [σ_{P,SL}] over the documents (set semantics per
    document, document order), plus the total number of
    condition-satisfying embeddings — which must equal the executor's
    [n_embeddings] funnel stat. *)

val join :
  eval:(Toss_tax.Condition.env -> Toss_tax.Condition.t -> bool) ->
  pattern:Toss_tax.Pattern.t ->
  sl:int list ->
  Toss_xml.Tree.Doc.t list ->
  Toss_xml.Tree.Doc.t list ->
  Toss_xml.Tree.t list
(** Condition join under the executor's documented contract: the root's
    two children match in the left and right corpora (a pc edge from the
    root pins that side to its document root), conjuncts mentioning the
    product root hold by construction, and results are globally
    deduplicated product trees. *)
