(** The differential-testing run loop behind [toss check].

    Draws [runs] cases from a seeded master stream, checks each against
    the oracle under every engine configuration, and on the first
    discrepancy shrinks it to a locally-minimal repro. Supports fault
    injection (see {!Toss_core.Plan.fault}) so the harness itself can be
    tested: an injected planner fault must be caught and shrunk. *)

type outcome =
  | Pass of { runs : int }
  | Fail of {
      run : int;  (** 1-based index of the failing run *)
      case_seed : int;
      failure : Diff.failure;  (** already shrunk *)
      steps : int;  (** candidate cases tried while shrinking *)
    }

val fault_of_string : string -> Toss_core.Plan.fault option
(** Recognizes {!fault_names}. *)

val fault_names : string list

val run :
  ?fault:Toss_core.Plan.fault ->
  ?op:Gen.op ->
  ?simjoin:bool ->
  seed:int ->
  runs:int ->
  unit ->
  outcome
(** Deterministic for a given (seed, runs, op, simjoin, fault). The
    injected fault is active only for the duration of the call;
    [Plan.fault] is restored on exit, including on exceptions.
    [simjoin:false] runs every join through the nested-loop reference
    instead of the sim-pair operator — the CI matrix's second axis. *)

val repro : Diff.failure -> string
(** The paste-into-test reproduction for a failure: a comment naming the
    mode/configuration and discrepancy, then {!Gen.to_ocaml}. *)

val report : Format.formatter -> outcome -> unit
(** Human-readable summary: a ["PASS"] line, or a ["DISCREPANCY"] block
    with oracle vs executor results, the shrunk case, and the repro. *)
