(** One case, every engine configuration, against the oracle.

    A case passes when, for both semantics (TAX and TOSS) and all four
    engine configurations (planner on/off × value index on/off — which
    also covers hash vs nested-loop pairing for joins), the executor's
    results equal the oracle's as canonicalized witness-tree multisets,
    and (for selections) the executor's [n_embeddings] funnel stat equals
    the oracle's count of condition-satisfying embeddings. *)

type config = { planner : bool; use_index : bool }

val configs : config list
(** The four planner/index combinations, most-optimized first. *)

val config_name : config -> string

type failure = {
  case : Gen.case;
  mode : Toss_core.Executor.mode;
  config : config;
  expected : Toss_xml.Tree.t list;  (** oracle results, canonicalized *)
  got : Toss_xml.Tree.t list;  (** executor results, canonicalized *)
  detail : string;
}

val mode_name : Toss_core.Executor.mode -> string

val canonical : Toss_xml.Tree.t list -> Toss_xml.Tree.t list
(** Sorted by {!Toss_xml.Tree.compare} — the multiset normal form
    results are compared in. *)

val check_case : Gen.case -> failure option
(** [None] when every mode × configuration agrees with the oracle; the
    first discrepancy otherwise. *)
