(** One case, every engine configuration, against the oracle.

    A case passes when, for both semantics (TAX and TOSS) and all eight
    engine configurations (compiled matcher on/off × planner on/off ×
    value index on/off — which also covers hash/sim-pair vs nested-loop
    pairing for joins), the executor's results equal the oracle's as
    canonicalized witness-tree multisets, and (for selections) the
    executor's [n_embeddings] funnel stat equals the oracle's count of
    condition-satisfying embeddings. Because the compiled axis runs the
    same cases through both the arena matcher and the interpreted
    scan/prune/embed pipeline, the interpreter serves as a second,
    in-engine reference alongside the naive oracle. *)

type config = { compile : bool; planner : bool; use_index : bool }

val configs : config list
(** The eight compile/planner/index combinations, most-optimized
    first. *)

val config_name : config -> string

type failure = {
  case : Gen.case;
  mode : Toss_core.Executor.mode;
  config : config;
  expected : Toss_xml.Tree.t list;  (** oracle results, canonicalized *)
  got : Toss_xml.Tree.t list;  (** executor results, canonicalized *)
  detail : string;
}

val mode_name : Toss_core.Executor.mode -> string

val canonical : Toss_xml.Tree.t list -> Toss_xml.Tree.t list
(** Sorted by {!Toss_xml.Tree.compare} — the multiset normal form
    results are compared in. *)

val check_case : ?simjoin:bool -> Gen.case -> failure option
(** [None] when every mode × configuration agrees with the oracle; the
    first discrepancy otherwise. [simjoin] (default true) is forwarded
    to {!Toss_core.Executor.join} — the CLI's [--no-simjoin] axis, which
    pins the nested-loop pairing for similarity cross-conditions instead
    of the sim-pair operator. *)
