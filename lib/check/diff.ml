module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Collection = Toss_store.Collection
module Condition = Toss_tax.Condition
module Executor = Toss_core.Executor
module Toss_condition = Toss_core.Toss_condition

type config = { compile : bool; planner : bool; use_index : bool }

let configs =
  [
    { compile = true; planner = true; use_index = true };
    { compile = true; planner = true; use_index = false };
    { compile = true; planner = false; use_index = true };
    { compile = true; planner = false; use_index = false };
    { compile = false; planner = true; use_index = true };
    { compile = false; planner = true; use_index = false };
    { compile = false; planner = false; use_index = true };
    { compile = false; planner = false; use_index = false };
  ]

let config_name c =
  Printf.sprintf "compile=%s planner=%s index=%s"
    (if c.compile then "on" else "off")
    (if c.planner then "on" else "off")
    (if c.use_index then "on" else "off")

type failure = {
  case : Gen.case;
  mode : Executor.mode;
  config : config;
  expected : Tree.t list;
  got : Tree.t list;
  detail : string;
}

let mode_name = function Executor.Tax -> "tax" | Executor.Toss -> "toss"

(* Results compare as canonicalized multisets: [Tree.compare] is a total
   order, so sorting both sides makes the comparison order-insensitive
   while still counting duplicates. *)
let canonical trees = List.sort Tree.compare trees

let equal_multiset a b =
  List.length a = List.length b && List.for_all2 Tree.equal a b

let modes = [ Executor.Tax; Executor.Toss ]

let check_case ?(simjoin = true) (case : Gen.case) =
  let seo = Gen.seo_of case in
  let coll = Collection.snapshot (Collection.of_trees ~name:"check" case.Gen.docs) in
  let rcoll =
    Collection.snapshot (Collection.of_trees ~name:"check-right" case.Gen.right_docs)
  in
  let docs = List.map Doc.of_tree case.Gen.docs in
  let rdocs = List.map Doc.of_tree case.Gen.right_docs in
  let pattern = case.Gen.pattern and sl = case.Gen.sl in
  let fail mode config expected got detail =
    Some { case; mode; config; expected; got; detail }
  in
  let check_mode mode =
    let eval =
      match mode with
      | Executor.Tax -> Condition.eval_tax
      | Executor.Toss -> Toss_condition.evaluator seo
    in
    match case.Gen.op with
    | Gen.Select ->
        let oracle_trees, oracle_n = Oracle.select ~eval ~pattern ~sl docs in
        let expected = canonical oracle_trees in
        List.find_map
          (fun config ->
            let results, stats =
              Executor.select ~mode ~planner:config.planner
                ~compile:config.compile ~use_index:config.use_index seo coll
                ~pattern ~sl
            in
            let got = canonical results in
            if not (equal_multiset expected got) then
              fail mode config expected got
                (Printf.sprintf "select result multiset differs (oracle %d, executor %d)"
                   (List.length expected) (List.length got))
            else if stats.Executor.n_embeddings <> oracle_n then
              fail mode config expected got
                (Printf.sprintf "embedding count differs (oracle %d, executor %d)"
                   oracle_n stats.Executor.n_embeddings)
            else None)
          configs
    | Gen.Join ->
        let expected = canonical (Oracle.join ~eval ~pattern ~sl docs rdocs) in
        List.find_map
          (fun config ->
            let results, _ =
              Executor.join ~mode ~planner:config.planner
                ~compile:config.compile ~use_index:config.use_index ~simjoin seo
                coll rcoll ~pattern ~sl
            in
            let got = canonical results in
            if not (equal_multiset expected got) then
              fail mode config expected got
                (Printf.sprintf "join result multiset differs (oracle %d, executor %d)"
                   (List.length expected) (List.length got))
            else None)
          configs
  in
  List.find_map check_mode modes
