module Plan = Toss_core.Plan

type outcome =
  | Pass of { runs : int }
  | Fail of {
      run : int;  (** 1-based index of the failing run *)
      case_seed : int;
      failure : Diff.failure;  (** already shrunk *)
      steps : int;  (** cases tried while shrinking *)
    }

let fault_of_string = function
  | "none" -> Some Plan.No_fault
  | "hash-no-recheck" -> Some Plan.Hash_no_recheck
  | "prune-first-only" -> Some Plan.Prune_first_only
  | "no-dedup" -> Some Plan.No_dedup
  | "compile-skip-descendant-edge" -> Some Plan.Compile_skip_descendant_edge
  | "simjoin-prefix-too-short" -> Some Plan.Simjoin_prefix_too_short
  | "simjoin-no-recheck" -> Some Plan.Simjoin_no_recheck
  | _ -> None

let fault_names =
  [
    "none";
    "hash-no-recheck";
    "prune-first-only";
    "no-dedup";
    "compile-skip-descendant-edge";
    "simjoin-prefix-too-short";
    "simjoin-no-recheck";
  ]

let doc_count (case : Gen.case) =
  List.length case.Gen.docs + List.length case.Gen.right_docs

let run ?(fault = Plan.No_fault) ?op ?simjoin ~seed ~runs () =
  let master = Rng.create seed in
  let with_fault f =
    Plan.fault := fault;
    Fun.protect ~finally:(fun () -> Plan.fault := Plan.No_fault) f
  in
  with_fault (fun () ->
      let rec go i =
        if i > runs then Pass { runs }
        else
          let case_seed = Rng.sub_seed master in
          let case = Gen.case ?op case_seed in
          match Diff.check_case ?simjoin case with
          | None -> go (i + 1)
          | Some _ ->
              let _shrunk, failure, steps = Shrink.minimize ?simjoin case in
              Fail { run = i; case_seed; failure; steps }
      in
      go 1)

let repro (failure : Diff.failure) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "(* mode=%s %s — %s *)\n" (Diff.mode_name failure.Diff.mode)
       (Diff.config_name failure.Diff.config)
       failure.Diff.detail);
  Buffer.add_string b (Gen.to_ocaml failure.Diff.case);
  Buffer.contents b

let report ppf outcome =
  match outcome with
  | Pass { runs } ->
      Format.fprintf ppf "PASS: %d cases, all engine configurations agree with the oracle@."
        runs
  | Fail { run; case_seed; failure; _ } ->
      let case = failure.Diff.case in
      Format.fprintf ppf "DISCREPANCY on run %d (case seed %d)@." run case_seed;
      Format.fprintf ppf "  mode: %s, %s@." (Diff.mode_name failure.Diff.mode)
        (Diff.config_name failure.Diff.config);
      Format.fprintf ppf "  %s@." failure.Diff.detail;
      Format.fprintf ppf "  shrunk to %d document(s)@." (doc_count case);
      Format.fprintf ppf "@[<v 2>  oracle (%d):@,%a@]@."
        (List.length failure.Diff.expected)
        (Format.pp_print_list (fun ppf t ->
             Format.pp_print_string ppf (Toss_xml.Printer.to_string t)))
        failure.Diff.expected;
      Format.fprintf ppf "@[<v 2>  executor (%d):@,%a@]@."
        (List.length failure.Diff.got)
        (Format.pp_print_list (fun ppf t ->
             Format.pp_print_string ppf (Toss_xml.Printer.to_string t)))
        failure.Diff.got;
      Format.fprintf ppf "shrunk case:@.%a@." Gen.pp case;
      Format.fprintf ppf "paste-into-test repro:@.%s@." (repro failure)
