(* Splitmix64. The standard library's [Random] changed algorithms between
   OCaml 4 and 5; the differential harness needs the same case stream for
   a given seed on every compiler in CI, so it carries its own generator. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t = Int64.logand (next t) 1L = 1L

let chance t pct = int t 100 < pct

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let sub_seed t = Int64.to_int (Int64.shift_right_logical (next t) 2)
