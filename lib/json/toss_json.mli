(** The repository's one JSON implementation: a minimal reader and a
    writer sharing the same value type.

    Grown out of [Toss_eval.Json_lite] (which remains as a deprecated
    alias) when the server's wire protocol, [Explain.to_json] and the
    bench baseline artifacts each needed the same escaping rules — kept
    dependency-free on purpose: the container pins the toolchain, so no
    [yojson].

    Reading is just enough of RFC 8259 for the artifacts this repository
    writes. Numbers are all parsed as [float]; strings decode the
    standard escapes including [\uXXXX] (encoded back to UTF-8;
    surrogate pairs are not combined). Object member order is preserved;
    duplicate keys are kept ([member] returns the first).

    Writing is compact (no insignificant whitespace) and emits only
    valid JSON: strings escape the two mandatory characters plus
    control characters as [\uXXXX]; integral floats print without a
    fractional part; non-finite floats (which RFC 8259 cannot express)
    print as [null]. [to_string] and [parse] round-trip: for every
    value [v], [parse (to_string v) = Ok v] up to float precision. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Reading} *)

val parse : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed); [Error]
    carries a message with a byte offset. Trailing non-whitespace after
    the value is an error. *)

val parse_exn : string -> t
(** @raise Invalid_argument on parse failure. *)

(** {1 Accessors} — all total, returning [None] on kind mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]. *)

val to_list : t -> t list option
val to_num : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option

val to_int : t -> int option
(** [Num] truncated to [int] — the reader parses every number as
    [float], so integral wire fields come back through this. *)

(** {1 Writing} *)

val escape : string -> string
(** The body of a JSON string literal (no surrounding quotes): escapes
    the double quote, the backslash, and all control characters below
    [0x20] (newline, carriage return and tab symbolically, the rest as
    [\uXXXX]). Bytes [>= 0x80] pass through, so UTF-8 text stays
    UTF-8. *)

val quote : string -> string
(** [escape] with the surrounding quotes — a complete string literal. *)

val to_string : t -> string
(** Compact rendering. Object members keep their list order. *)
