type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

let fail pos msg = raise (Fail (Printf.sprintf "%s at offset %d" msg pos))

(* Recursive descent over [s] with a mutable cursor. *)
let parse_value s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  (* Encode a decoded \uXXXX code point as UTF-8 bytes. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  (* Exactly four hex digits — [int_of_string "0x…"] would also admit
     OCaml numeric-literal underscores and signs. *)
  let read_hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail !pos "bad \\u escape"
      in
      v := (!v lsl 4) lor d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   let start = !pos in
                   let cp = read_hex4 () in
                   let cp =
                     (* UTF-16 surrogate halves are not code points: a
                        high surrogate must combine with the low
                        surrogate escaped right after it, anything else
                        would decode to invalid UTF-8 (CESU-8). *)
                     if cp >= 0xd800 && cp <= 0xdbff then begin
                       if
                         not
                           (!pos + 2 <= n
                           && s.[!pos] = '\\'
                           && s.[!pos + 1] = 'u')
                       then fail start "unpaired high surrogate";
                       pos := !pos + 2;
                       let lo = read_hex4 () in
                       if lo >= 0xdc00 && lo <= 0xdfff then
                         0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                       else fail start "unpaired high surrogate"
                     end
                     else if cp >= 0xdc00 && cp <= 0xdfff then
                       fail start "unpaired low surrogate"
                     else cp
                   in
                   add_utf8 buf cp
               | c -> fail !pos (Printf.sprintf "bad escape %C" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail start "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let parse_member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            (key, value ())
          in
          let rec members acc =
            let kv = parse_member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail !pos "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some _ -> Num (parse_number ())
  in
  let v = value () in
  skip_ws ();
  if !pos < n then fail !pos "trailing input after value";
  v

let parse s =
  match parse_value s with v -> Ok v | exception Fail msg -> Error msg

let parse_exn s =
  match parse s with
  | Ok v -> v
  | Error msg -> invalid_arg ("Toss_json.parse: " ^ msg)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None

(* ------------------------------ writer ---------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

(* Shortest rendering that still round-trips: integral floats print as
   integers, others at increasing precision until re-parsing recovers
   the same bits. JSON has no non-finite numbers; render those as null
   rather than emit something no reader accepts. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (number_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            go item)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf
