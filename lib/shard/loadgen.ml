module J = Toss_json
module P = Toss_server.Protocol
module Client = Toss_server.Client
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Sax = Toss_xml.Sax
module Parser = Toss_xml.Parser
module Printer = Toss_xml.Printer

type config = {
  target : string;
  codec : P.codec;
  collection : string;
  requests : int;
  qps : float;
  concurrency : int;
  seed : int;
  n_papers : int;
  zipf_s : float;
  deadline_ms : int option;
}

let default_config ~target =
  {
    target;
    codec = P.Json;
    collection = "bib";
    requests = 400;
    qps = 200.;
    concurrency = 8;
    seed = 42;
    n_papers = 60;
    zipf_s = 1.1;
    deadline_ms = None;
  }

type report = {
  requests : int;
  ok : int;
  errors : (string * int) list;
  transport_errors : int;
  docs : int;
  elapsed_s : float;
  target_qps : float;
  achieved_qps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Workload construction                                               *)

let plain s =
  (* keep template strings trivially embeddable in TQL literals *)
  String.for_all (fun c -> c <> '"' && c <> '\\') s

let rec uniq seen = function
  | [] -> []
  | x :: rest ->
      if List.mem x seen then uniq seen rest else x :: uniq (x :: seen) rest

let take n l = List.filteri (fun i _ -> i < n) l

(* The query mix: similarity author lookups, ontology venue selections,
   exact venue matches, and conjunctions — all built from strings the
   rendered corpus actually contains. *)
let templates (rendered : Dblp_gen.t) =
  let authors =
    uniq []
      (List.filter_map
         (fun (_, _, s) -> if plain s then Some s else None)
         rendered.Dblp_gen.author_strings)
    |> take 5
  in
  let venues =
    uniq []
      (List.filter_map
         (fun (_, s) -> if plain s then Some s else None)
         rendered.Dblp_gen.venue_strings)
    |> take 3
  in
  let sim a =
    Printf.sprintf
      "MATCH #1:inproceedings(/#2:author) WHERE #2.content ~ \"%s\" SELECT #1"
      a
  in
  let exact v =
    Printf.sprintf
      "MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content = \"%s\" \
       SELECT #1"
      v
  in
  let conj a =
    Printf.sprintf
      "MATCH #1:inproceedings(/#2:author, /#3:booktitle) WHERE #2.content ~ \
       \"%s\" AND #3.content isa \"database conference\" SELECT #1"
      a
  in
  let isa =
    "MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa \"database \
     conference\" SELECT #1"
  in
  Array.of_list
    ((isa :: List.map sim authors)
    @ List.map exact venues
    @ take 3 (List.map conj authors))

(* Zipf(s) over [0, m): cdf sampled by binary-search-free linear scan —
   m is ~a dozen. *)
let query_mix ~seed ~n_papers =
  templates (Dblp_gen.render ~seed (Corpus.generate ~seed ~n_papers ()))

let zipf_cdf ~s m =
  let w = Array.init m (fun i -> 1. /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let pick cdf u =
  let m = Array.length cdf in
  let rec go i = if i >= m - 1 || u <= cdf.(i) then i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Ingest: corpus -> one DBLP document -> SAX split -> wire inserts    *)

let ingest_corpus cfg =
  let corpus = Corpus.generate ~seed:cfg.seed ~n_papers:cfg.n_papers () in
  let rendered = Dblp_gen.render ~seed:cfg.seed corpus in
  let xml = Printer.to_string rendered.Dblp_gen.tree in
  match Sax.trees_where (fun tag -> String.equal tag "inproceedings") xml with
  | Error e ->
      Error
        (Printf.sprintf "cannot split corpus: %s"
           (Format.asprintf "%a" Parser.pp_error e))
  | Ok docs -> (
      match Client.connect ~codec:cfg.codec cfg.target with
      | Error msg -> Error msg
      | Ok conn ->
          let rec insert n = function
            | [] -> Ok n
            | d :: rest -> (
                match
                  Client.call conn ?deadline_ms:cfg.deadline_ms
                    (P.Insert
                       {
                         collection = cfg.collection;
                         xml = Printer.to_string ~decl:false d;
                       })
                with
                | Ok _ -> insert (n + 1) rest
                | Error f -> Error ("ingest: " ^ Client.failure_to_string f))
          in
          let r = insert 0 docs in
          Client.close conn;
          Result.map (fun n -> (n, rendered)) r)

(* ------------------------------------------------------------------ *)
(* Open-loop run                                                       *)

type tally = {
  mutable t_ok : int;
  mutable t_errors : (string * int) list;
  mutable t_transport : int;
  mutable t_latencies : float list;  (* ms, completion - scheduled arrival *)
}

let count_error tally code =
  let n = try List.assoc code tally.t_errors with Not_found -> 0 in
  tally.t_errors <- (code, n + 1) :: List.remove_assoc code tally.t_errors

let percentile sorted q =
  match sorted with
  | [||] -> 0.
  | a ->
      let n = Array.length a in
      let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
      a.(max 0 (min (n - 1) idx))

let run ?(ingest = true) cfg =
  let cfg = { cfg with concurrency = max 1 cfg.concurrency } in
  if cfg.qps <= 0. then Error "qps must be positive"
  else if cfg.requests <= 0 then Error "requests must be positive"
  else
    (* The template mix needs the rendered corpus even when ingest is
       skipped; rendering is deterministic, so it matches whatever an
       earlier run with the same seed inserted. *)
    let setup =
      if ingest then ingest_corpus cfg
      else
        let corpus = Corpus.generate ~seed:cfg.seed ~n_papers:cfg.n_papers () in
        Ok (0, Dblp_gen.render ~seed:cfg.seed corpus)
    in
    match setup with
    | Error msg -> Error msg
    | Ok (docs, rendered) ->
        let tmpl = templates rendered in
        let st = Random.State.make [| cfg.seed; 0x10adf10 |] in
        let cdf = zipf_cdf ~s:cfg.zipf_s (Array.length tmpl) in
        (* The whole schedule — which template, and when — is drawn up
           front: the offered load is independent of how the server
           responds, which is the open-loop property. *)
        let choices =
          Array.init cfg.requests (fun _ ->
              pick cdf (Random.State.float st 1.))
        in
        let arrivals =
          let t = ref 0. in
          Array.init cfg.requests (fun _ ->
              let u = Random.State.float st 1. in
              t := !t +. (-.log (1. -. u)) /. cfg.qps;
              !t)
        in
        let next = Atomic.make 0 in
        let tallies =
          Array.init cfg.concurrency (fun _ ->
              { t_ok = 0; t_errors = []; t_transport = 0; t_latencies = [] })
        in
        let t0 = Unix.gettimeofday () in
        let worker w =
          match Client.connect ~codec:cfg.codec cfg.target with
          | Error _ -> ()  (* surviving workers drain the schedule *)
          | Ok conn ->
              let tally = tallies.(w) in
              let rec loop () =
                let i = Atomic.fetch_and_add next 1 in
                if i < cfg.requests then begin
                  let sched = t0 +. arrivals.(i) in
                  let now = Unix.gettimeofday () in
                  if sched > now then Thread.delay (sched -. now);
                  let q =
                    P.Query
                      {
                        collection = cfg.collection;
                        tql = tmpl.(choices.(i));
                        mode = Toss_core.Executor.Toss;
                        cache = true;
                      }
                  in
                  (match Client.call conn ?deadline_ms:cfg.deadline_ms q with
                  | Ok _ -> tally.t_ok <- tally.t_ok + 1
                  | Error (Client.Wire e) ->
                      count_error tally (P.code_name e.P.code)
                  | Error (Client.Transport _) ->
                      tally.t_transport <- tally.t_transport + 1);
                  tally.t_latencies <-
                    ((Unix.gettimeofday () -. sched) *. 1000.)
                    :: tally.t_latencies;
                  loop ()
                end
              in
              loop ();
              Client.close conn
        in
        let threads =
          Array.init cfg.concurrency (fun w -> Thread.create worker w)
        in
        Array.iter Thread.join threads;
        let elapsed_s = Unix.gettimeofday () -. t0 in
        let ok = Array.fold_left (fun a t -> a + t.t_ok) 0 tallies in
        let errors =
          Array.fold_left
            (fun acc t ->
              List.fold_left
                (fun acc (code, n) ->
                  let prev = try List.assoc code acc with Not_found -> 0 in
                  (code, prev + n) :: List.remove_assoc code acc)
                acc t.t_errors)
            [] tallies
        in
        let transport = Array.fold_left (fun a t -> a + t.t_transport) 0 tallies in
        let processed =
          ok + transport + List.fold_left (fun a (_, n) -> a + n) 0 errors
        in
        (* requests no worker could even attempt (every connection died)
           are transport failures too *)
        let transport_errors = transport + (cfg.requests - processed) in
        let lat =
          Array.of_list
            (List.concat_map (fun t -> t.t_latencies) (Array.to_list tallies))
        in
        Array.sort compare lat;
        Ok
          {
            requests = cfg.requests;
            ok;
            errors = List.sort compare errors;
            transport_errors;
            docs;
            elapsed_s;
            target_qps = cfg.qps;
            achieved_qps =
              (if elapsed_s > 0. then float_of_int processed /. elapsed_s
               else 0.);
            p50_ms = percentile lat 0.5;
            p90_ms = percentile lat 0.9;
            p99_ms = percentile lat 0.99;
            p999_ms = percentile lat 0.999;
            max_ms = percentile lat 1.0;
          }

let report_to_json r =
  J.Obj
    [
      ("requests", J.Num (float_of_int r.requests));
      ("ok", J.Num (float_of_int r.ok));
      ( "errors",
        J.Obj (List.map (fun (k, n) -> (k, J.Num (float_of_int n))) r.errors) );
      ("transport_errors", J.Num (float_of_int r.transport_errors));
      ("docs", J.Num (float_of_int r.docs));
      ("elapsed_s", J.Num r.elapsed_s);
      ("target_qps", J.Num r.target_qps);
      ("achieved_qps", J.Num r.achieved_qps);
      ("p50_ms", J.Num r.p50_ms);
      ("p90_ms", J.Num r.p90_ms);
      ("p99_ms", J.Num r.p99_ms);
      ("p999_ms", J.Num r.p999_ms);
      ("max_ms", J.Num r.max_ms);
    ]

let failed r = r.transport_errors > 0 || r.errors <> []
