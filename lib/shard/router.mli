(** [toss router]: a scatter-gather front-end speaking the same wire
    protocol as [toss serve], fanning requests out over a static
    {!Shard_map} and merging the answers so a client cannot tell a
    sharded deployment from a single server.

    {2 Routing}

    - [insert] into a partitioned collection goes to the {!Shard_map.owner}
      shard under the collection's own name, and to every other shard
      under the {!Shard_map.shadow} name — the vocabulary mirror that
      keeps every shard's similarity ontology equal to an unsharded
      server's (see {!Shard_map}). Inserts into a replicated collection
      go to every shard verbatim. The router serializes inserts so
      replicas and its own per-collection sequence counters stay
      consistent; the reported [doc_id]/[version] are the router's
      logical numbering (identical to an unsharded server's), not any
      one shard's.
    - [query] on a partitioned collection fans out to all shards and
      merges: trees concatenated and canonicalized with
      {!Toss_check.Diff.canonical} (the multiset normal form the
      differential harness compares in), [version] = sum of shard
      versions, [count] = merged tree count, [cache] = ["hit"] iff
      every shard hit, plus a per-shard array of
      [{shard, addr, server_ms, queue_ms, count}]. A shard that does
      not know the collection contributes an empty partition;
      [unknown_collection] propagates only when {e every} shard reports
      it. Queries on replicated collections go to one shard (failing
      over in map order) and pass through verbatim.
    - [join] is exact when at least one side is replicated: the fan-out
      computes [L_i ⋈ R] per shard and the merged union is the full
      join. Both sides replicated routes to a single shard; both sides
      partitioned (with more than one shard) is a typed [query_error].
    - [explain] is answered by the first shard that knows the
      collection; [stats] by the router's own metrics registry;
      [metrics] merges every shard's Prometheus exposition, tagging
      each sample with a [shard="N"] label (the router's own samples
      get [shard="router"]); [shutdown] cascades to every shard and
      then stops the router.

    {2 Partial results}

    An unreachable shard fails the requests that need it with the typed
    [shard_unavailable] error. A request carrying ["allow_partial":true]
    instead gets the merge of the reachable shards' answers, stamped
    [{"partial":true, "failed":[addr, …]}] — except inserts, which are
    never partial (a half-applied insert would silently diverge the
    shards), and except when no shard at all is reachable.

    Trace ids and deadlines propagate to every shard hop; the
    router→shard hop always uses the binary codec. *)

type config = {
  listen : Toss_server.Transport.addr;
  map : Shard_map.t;
  connect_retry_ms : int;
      (** backoff budget per shard connect (see
          {!Toss_server.Transport.connect}) *)
}

val default_config :
  listen:Toss_server.Transport.addr -> map:Shard_map.t -> config
(** [connect_retry_ms = 1000]. *)

val run : ?ready:(string -> unit) -> config -> (unit, string) result
(** Binds the listen address, calls [ready] with the resolved address,
    and serves until a [shutdown] request arrives (which cascades to
    the shards). Connections negotiate JSON/binary per the first byte,
    exactly like the single server. *)
