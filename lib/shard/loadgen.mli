(** [toss loadgen]: an open-loop load generator for the query server
    and the sharded router.

    {2 Why open loop}

    [toss client --bench] is closed-loop: each thread waits for a
    response before issuing its next request, so a slow response {e
    delays the offered load} — queueing delay hides itself from the
    measurement (coordinated omission), and reported tails are far
    rosier than what an independent client population would see. This
    generator is open-loop: request {e arrival times} are drawn up
    front from a Poisson process at the target rate, and each request's
    latency is measured from its {e scheduled arrival} to its
    completion — a request that could not even be sent on time (all
    workers busy) accrues the backlog it caused. That makes p99/p999
    honest under saturation, which is exactly the regime a sharding
    tier is for.

    {2 Workload}

    The corpus is generated deterministically ({!Toss_data.Corpus} +
    {!Toss_data.Dblp_gen}), rendered to one DBLP XML document, split
    into per-paper documents by the streaming SAX selector
    ({!Toss_xml.Sax.trees_where} on [inproceedings]) and inserted
    through the normal wire path — so ingest exercises the server's
    insert path, not a side door. Queries are drawn zipfian (exponent
    {!config.zipf_s}) from a fixed template mix built from strings that
    actually occur in the rendered corpus: similarity ([~]) author
    lookups, ontology ([isa]) venue selections, exact matches and
    conjunctions — so answers are non-empty and the similarity/ontology
    machinery is on the hot path. *)

type config = {
  target : string;  (** server/router address, {!Toss_server.Transport.parse} syntax *)
  codec : Toss_server.Protocol.codec;
  collection : string;
  requests : int;
  qps : float;  (** target offered load, requests/second *)
  concurrency : int;  (** worker threads (connections); the in-flight cap *)
  seed : int;  (** corpus, template draw and arrival-process seed *)
  n_papers : int;  (** corpus size to generate and ingest *)
  zipf_s : float;  (** template popularity skew; [0.] = uniform *)
  deadline_ms : int option;  (** per-request deadline forwarded on the wire *)
}

val default_config : target:string -> config
(** JSON codec, collection ["bib"], 400 requests at 200 qps, 8 workers,
    seed 42, 60 papers, zipf 1.1, no deadline. *)

type report = {
  requests : int;
  ok : int;
  errors : (string * int) list;  (** wire error code -> count *)
  transport_errors : int;
  docs : int;  (** documents ingested during setup *)
  elapsed_s : float;
  target_qps : float;
  achieved_qps : float;
  p50_ms : float;  (** open-loop latency percentiles: completion − scheduled arrival *)
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

val query_mix : seed:int -> n_papers:int -> string array
(** The TQL templates a run with the same [seed] and [n_papers] draws
    from — exposed so closed-loop comparisons (the [serve-sharded]
    bench experiment) can offer the same mix and isolate the
    measurement methodology rather than the workload. *)

val run : ?ingest:bool -> config -> (report, string) result
(** Generates and ingests the corpus (unless [ingest] is [false] —
    e.g. when pointing several runs at one server), then offers
    [requests] requests at [qps] and reports. [Error] only on setup
    failure (unreachable target, ingest rejection); request-level
    failures are counted in the report. *)

val report_to_json : report -> Toss_json.t

val failed : report -> bool
(** Whether any request failed (wire error or transport error) — the
    CLI's exit-status predicate. *)
