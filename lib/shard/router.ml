module J = Toss_json
module P = Toss_server.Protocol
module Client = Toss_server.Client
module Wire = Toss_server.Wire
module Transport = Toss_server.Transport
module Parser = Toss_xml.Parser
module Printer = Toss_xml.Printer
module Diff = Toss_check.Diff
module Metrics = Toss_obs.Metrics
module Trace = Toss_obs.Trace

type config = {
  listen : Transport.addr;
  map : Shard_map.t;
  connect_retry_ms : int;
}

let default_config ~listen ~map = { listen; map; connect_retry_ms = 1000 }

let m_requests op = Metrics.counter ~labels:[ ("op", op) ] "router.requests.total"
let m_errors code = Metrics.counter ~labels:[ ("code", code) ] "router.errors.total"
let m_shard_fail shard =
  Metrics.counter ~labels:[ ("shard", shard) ] "router.shard.failures.total"
let h_seconds op = Metrics.histogram ~labels:[ ("op", op) ] "router.request.seconds"

let err code fmt = Printf.ksprintf (fun m -> Error (P.error code m)) fmt

(* ------------------------------------------------------------------ *)
(* Shard connection pools                                              *)

type pool = {
  p_addr : string;
  p_lock : Mutex.t;
  mutable p_idle : Client.t list;
}

type state = {
  config : config;
  pools : pool array;
  ins_lock : Mutex.t;
      (* serializes inserts: replicas must apply them in one order, and
         the sequence counters must agree with what was sent *)
  seqs : (string, int ref) Hashtbl.t;  (* partitioned collection -> next seq *)
  lock : Mutex.t;  (* guards the accept-loop state below *)
  mutable stopping : bool;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let take_conn state i =
  let p = state.pools.(i) in
  Mutex.lock p.p_lock;
  let cached =
    match p.p_idle with
    | [] -> None
    | c :: rest ->
        p.p_idle <- rest;
        Some c
  in
  Mutex.unlock p.p_lock;
  match cached with
  | Some c -> Ok c
  | None ->
      Client.connect ~codec:P.Binary ~retry_ms:state.config.connect_retry_ms
        p.p_addr

let put_conn state i c =
  let p = state.pools.(i) in
  Mutex.lock p.p_lock;
  p.p_idle <- c :: p.p_idle;
  Mutex.unlock p.p_lock

let drain_pools state =
  Array.iter
    (fun p ->
      Mutex.lock p.p_lock;
      List.iter Client.close p.p_idle;
      p.p_idle <- [];
      Mutex.unlock p.p_lock)
    state.pools

(* One request to one shard. A transport failure on a pooled connection
   may only mean the shard restarted since the connection was cached, so
   the request is retried once on a fresh connection before the shard is
   declared unreachable. *)
let shard_call state i ?deadline_ms ?trace_id request =
  let once conn =
    match Client.call_response conn ?deadline_ms ?trace_id request with
    | Ok resp ->
        put_conn state i conn;
        Ok resp
    | Error (Client.Wire e) ->
        put_conn state i conn;
        Error (Client.Wire e)
    | Error (Client.Transport msg) ->
        Client.close conn;
        Error (Client.Transport msg)
  in
  match take_conn state i with
  | Error msg -> Error msg
  | Ok conn -> (
      match once conn with
      | Ok resp -> Ok resp
      | Error (Client.Wire e) ->
          (* impossible from call_response, but keep the type total *)
          Error (P.code_name e.P.code ^ ": " ^ e.P.message)
      | Error (Client.Transport _) -> (
          match
            Client.connect ~codec:P.Binary
              ~retry_ms:state.config.connect_retry_ms state.pools.(i).p_addr
          with
          | Error msg -> Error msg
          | Ok fresh -> (
              match once fresh with
              | Ok resp -> Ok resp
              | Error f -> Error (Client.failure_to_string f))))

(* Fan a request constructor out over shard indices, one thread per
   shard, and collect (index, result) pairs in index order. *)
let scatter targets f =
  let slots = Array.make (List.length targets) None in
  let threads =
    List.mapi
      (fun k i -> Thread.create (fun () -> slots.(k) <- Some (i, f i)) ())
      targets
  in
  List.iter Thread.join threads;
  Array.to_list slots |> List.filter_map Fun.id

let all_shards state = List.init (Shard_map.n state.config.map) Fun.id

(* ------------------------------------------------------------------ *)
(* Payload accessors                                                   *)

let jnum v = Option.bind v J.to_num
let jstr v = Option.bind v J.to_str
let num_field payload name = Option.value (jnum (J.member name payload)) ~default:0.

let trees_of_payload payload =
  match Option.bind (J.member "trees" payload) J.to_list with
  | None -> Ok []
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match J.to_str x with
            | None -> err P.Internal "shard returned a non-string tree"
            | Some xml -> (
                match Parser.parse xml with
                | Ok t -> go (t :: acc) rest
                | Error e ->
                    err P.Internal "shard returned unparseable tree: %s"
                      (Format.asprintf "%a" Parser.pp_error e)))
      in
      go [] items

let shard_entry state i resp count =
  J.Obj
    [
      ("shard", J.Num (float_of_int i));
      ("addr", J.Str (Shard_map.addr state.config.map i));
      ("server_ms", J.Num (Option.value resp.P.server_ms ~default:0.));
      ("queue_ms", J.Num (Option.value resp.P.queue_ms ~default:0.));
      ("count", J.Num count);
    ]

let partial_fields state failed =
  if failed = [] then []
  else
    [
      ("partial", J.Bool true);
      ( "failed",
        J.Arr
          (List.map
             (fun i -> J.Str (Shard_map.addr state.config.map i))
             failed) );
    ]

(* ------------------------------------------------------------------ *)
(* Fan-out + merge                                                     *)

(* Splits scatter results into transport failures and shard answers,
   enforcing the partial-result contract: any unreachable shard fails
   the request with [shard_unavailable] unless the client opted into
   partial results — and even then at least one shard must answer. *)
let gathered state ~allow_partial results k =
  let failed =
    List.filter_map
      (fun (i, r) -> match r with Error _ -> Some i | Ok _ -> None)
      results
  in
  List.iter
    (fun i -> Metrics.incr (m_shard_fail (string_of_int i)))
    failed;
  let answered =
    List.filter_map
      (fun (i, r) -> match r with Ok resp -> Some (i, resp) | Error _ -> None)
      results
  in
  match (failed, answered) with
  | [], _ -> k ~failed:[] answered
  | _ :: _, [] ->
      err P.Shard_unavailable "no shard reachable (%d of %d down)"
        (List.length failed) (List.length results)
  | i :: _, _ when not allow_partial ->
      let msg =
        match List.assoc_opt i results with
        | Some (Error m) -> m
        | _ -> "unreachable"
      in
      err P.Shard_unavailable
        "shard %d (%s) unreachable: %s (send \"allow_partial\":true to \
         accept a partial result)"
        i
        (Shard_map.addr state.config.map i)
        msg
  | failed, answered -> k ~failed answered

(* A partitioned fan-out read: [unknown_collection] from a shard means
   "my partition is empty" unless every shard says it; any other wire
   error propagates as the request's answer. *)
let split_bodies answered =
  let wire_err =
    List.find_map
      (fun (_, resp) ->
        match resp.P.body with
        | Error e when e.P.code <> P.Unknown_collection -> Some e
        | _ -> None)
      answered
  in
  match wire_err with
  | Some e -> Error e
  | None ->
      let oks =
        List.filter_map
          (fun (i, resp) ->
            match resp.P.body with
            | Ok payload -> Some (i, resp, payload)
            | Error _ -> None)
          answered
      in
      if oks <> [] then Ok oks
      else
        (* every shard answered [unknown_collection] — propagate it *)
        match answered with
        | (_, resp) :: _ -> (
            match resp.P.body with Error e -> Error e | Ok _ -> assert false)
        | [] -> Error (P.error P.Shard_unavailable "no shard answered")

let canonical_trees per_shard =
  let merged = Diff.canonical (List.concat per_shard) in
  ( List.length merged,
    J.Arr (List.map (fun t -> J.Str (Printer.to_string ~decl:false t)) merged)
  )

let merge_query state ~collection ~failed answered =
  match split_bodies answered with
  | Error e -> Error e
  | Ok oks -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | (i, resp, payload) :: rest -> (
            match trees_of_payload payload with
            | Error e -> Error e
            | Ok trees -> collect ((i, resp, payload, trees) :: acc) rest)
      in
      match collect [] oks with
      | Error e -> Error e
      | Ok parts ->
          let count, trees =
            canonical_trees (List.map (fun (_, _, _, ts) -> ts) parts)
          in
          let version =
            List.fold_left
              (fun acc (_, _, p, _) -> acc +. num_field p "version")
              0. parts
          in
          let compute_ms =
            List.fold_left
              (fun acc (_, _, p, _) -> Float.max acc (num_field p "compute_ms"))
              0. parts
          in
          let all_hit =
            List.for_all
              (fun (_, _, p, _) -> jstr (J.member "cache" p) = Some "hit")
              parts
          in
          let shards =
            List.map
              (fun (i, resp, p, _) -> shard_entry state i resp (num_field p "count"))
              parts
          in
          Ok
            (J.Obj
               ([
                  ("collection", J.Str collection);
                  ("version", J.Num version);
                  ("count", J.Num (float_of_int count));
                  ("compute_ms", J.Num compute_ms);
                  ("trees", trees);
                  ("shards", J.Arr shards);
                  ("cache", J.Str (if all_hit then "hit" else "miss"));
                ]
               @ partial_fields state failed)))

let merge_join state ~left ~right ~failed answered =
  match split_bodies answered with
  | Error e -> Error e
  | Ok oks -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | (i, resp, payload) :: rest -> (
            match trees_of_payload payload with
            | Error e -> Error e
            | Ok trees -> collect ((i, resp, payload, trees) :: acc) rest)
      in
      match collect [] oks with
      | Error e -> Error e
      | Ok parts ->
          let count, trees =
            canonical_trees (List.map (fun (_, _, _, ts) -> ts) parts)
          in
          (* A partitioned side's total version is the sum of its
             partitions; a replicated side's copies all report the same
             version, so the max is the true value. *)
          let version side field =
            if Shard_map.replicated state.config.map side then
              List.fold_left
                (fun acc (_, _, p, _) -> Float.max acc (num_field p field))
                0. parts
            else
              List.fold_left
                (fun acc (_, _, p, _) -> acc +. num_field p field)
                0. parts
          in
          let compute_ms =
            List.fold_left
              (fun acc (_, _, p, _) -> Float.max acc (num_field p "compute_ms"))
              0. parts
          in
          let shards =
            List.map
              (fun (i, resp, p, _) -> shard_entry state i resp (num_field p "count"))
              parts
          in
          Ok
            (J.Obj
               ([
                  ("left", J.Str left);
                  ("right", J.Str right);
                  ("left_version", J.Num (version left "left_version"));
                  ("right_version", J.Num (version right "right_version"));
                  ("count", J.Num (float_of_int count));
                  ("compute_ms", J.Num compute_ms);
                  ("trees", trees);
                  ("shards", J.Arr shards);
                ]
               @ partial_fields state failed)))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let next_seq state collection =
  match Hashtbl.find_opt state.seqs collection with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add state.seqs collection r;
      r

let reject_shadow collection k =
  if Shard_map.is_shadow collection then
    err P.Bad_request
      "collection %S is in the router's reserved vocabulary-shadow \
       namespace"
      collection
  else k ()

let do_insert state ?deadline_ms ?trace_id ~collection ~xml () =
  reject_shadow collection @@ fun () ->
  Mutex.lock state.ins_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock state.ins_lock)
    (fun () ->
      let map = state.config.map in
      if Shard_map.replicated map collection then begin
        (* every replica must apply the insert; inserts are never
           partial *)
        let results =
          scatter (all_shards state) (fun i ->
              shard_call state i ?deadline_ms ?trace_id
                (P.Insert { collection; xml }))
        in
        let rec first_answer = function
          | [] -> err P.Shard_unavailable "no shard reachable"
          | (i, Error msg) :: _ ->
              Metrics.incr (m_shard_fail (string_of_int i));
              err P.Shard_unavailable "shard %d (%s) unreachable: %s" i
                (Shard_map.addr map i) msg
          | (_, Ok resp) :: rest -> (
              match resp.P.body with
              | Error e -> Error e
              | Ok payload -> if rest = [] then Ok payload else first_answer rest)
        in
        first_answer results
      end
      else begin
        let seq = next_seq state collection in
        let owner = Shard_map.owner map ~collection ~seq:!seq in
        (* owner first: it validates the XML, and a rejected insert must
           not leave shadows (or bump the sequence) anywhere *)
        match
          shard_call state owner ?deadline_ms ?trace_id
            (P.Insert { collection; xml })
        with
        | Error msg ->
            Metrics.incr (m_shard_fail (string_of_int owner));
            err P.Shard_unavailable "shard %d (%s) unreachable: %s" owner
              (Shard_map.addr map owner) msg
        | Ok { P.body = Error e; _ } -> Error e
        | Ok { P.body = Ok _; _ } -> (
            let doc_id = !seq in
            incr seq;
            let others =
              List.filter (fun i -> i <> owner) (all_shards state)
            in
            let shadow = Shard_map.shadow collection in
            let results =
              scatter others (fun i ->
                  shard_call state i ?deadline_ms ?trace_id
                    (P.Insert { collection = shadow; xml }))
            in
            let failure =
              List.find_map
                (fun (i, r) ->
                  match r with
                  | Error msg -> Some (i, P.error P.Shard_unavailable msg)
                  | Ok { P.body = Error e; _ } -> Some (i, e)
                  | Ok _ -> None)
                results
            in
            match failure with
            | Some (i, e) ->
                (* the document is stored, but shard [i]'s ontology no
                   longer sees the full vocabulary — surface it loudly *)
                Metrics.incr (m_shard_fail (string_of_int i));
                err P.Shard_unavailable
                  "vocabulary mirror to shard %d (%s) failed (%s): shard \
                   ontologies may diverge until it is re-inserted"
                  i (Shard_map.addr map i) e.P.message
            | None ->
                Ok
                  (J.Obj
                     [
                       ("collection", J.Str collection);
                       ("doc_id", J.Num (float_of_int doc_id));
                       ("version", J.Num (float_of_int (doc_id + 1)));
                       ("shard", J.Num (float_of_int owner));
                     ]))
      end)

(* A replicated read needs any one healthy replica: walk the map in
   order, failing over on transport errors only. *)
let replicated_call state ?deadline_ms ?trace_id request =
  let rec go = function
    | [] -> err P.Shard_unavailable "no shard reachable"
    | i :: rest -> (
        match shard_call state i ?deadline_ms ?trace_id request with
        | Ok resp -> resp.P.body
        | Error _ ->
            Metrics.incr (m_shard_fail (string_of_int i));
            go rest)
  in
  go (all_shards state)

let do_query state ?deadline_ms ?trace_id ~allow_partial ~collection ~tql
    ~mode ~cache () =
  reject_shadow collection @@ fun () ->
  let request = P.Query { collection; tql; mode; cache } in
  if Shard_map.replicated state.config.map collection then
    replicated_call state ?deadline_ms ?trace_id request
  else
    let results =
      scatter (all_shards state) (fun i ->
          shard_call state i ?deadline_ms ?trace_id request)
    in
    gathered state ~allow_partial results (fun ~failed answered ->
        merge_query state ~collection ~failed answered)

let do_join state ?deadline_ms ?trace_id ~allow_partial ~left ~right ~tql
    ~mode () =
  reject_shadow left @@ fun () ->
  reject_shadow right @@ fun () ->
  let map = state.config.map in
  let request = P.Join { left; right; tql; mode } in
  let lrep = Shard_map.replicated map left
  and rrep = Shard_map.replicated map right in
  if Shard_map.n map = 1 || (lrep && rrep) then
    replicated_call state ?deadline_ms ?trace_id request
  else if lrep || rrep then
    let results =
      scatter (all_shards state) (fun i ->
          shard_call state i ?deadline_ms ?trace_id request)
    in
    gathered state ~allow_partial results (fun ~failed answered ->
        merge_join state ~left ~right ~failed answered)
  else
    err P.Query_error
      "join of two partitioned collections is not supported: replicate \
       one side (--replicate %s or --replicate %s) to make the \
       broadcast join exact"
      left right

let do_explain state ?deadline_ms ?trace_id ~collection ~tql ~mode () =
  reject_shadow collection @@ fun () ->
  let request = P.Explain { collection; tql; mode } in
  let rec go last = function
    | [] -> (
        match last with
        | Some e -> Error e
        | None -> err P.Shard_unavailable "no shard reachable")
    | i :: rest -> (
        match shard_call state i ?deadline_ms ?trace_id request with
        | Error _ ->
            Metrics.incr (m_shard_fail (string_of_int i));
            go last rest
        | Ok resp -> (
            match resp.P.body with
            | Error ({ P.code = P.Unknown_collection; _ } as e) ->
                (* this shard owns no partition of the collection; the
                   plan lives wherever the data does *)
                go (Some e) rest
            | body -> body))
  in
  go None (all_shards state)

let do_stats () =
  let snap = Metrics.snapshot () in
  Ok
    (J.Obj
       [
         ("metrics", J.parse_exn (Metrics.to_json snap));
         ("table", J.Str (Metrics.to_table snap));
       ])

(* Prometheus merge: each shard's exposition re-labelled with
   shard="N" (the router's own samples with shard="router"), # HELP/#
   TYPE comments kept once per metric name. *)
let relabel ~shard ~seen text =
  let buf = Buffer.create (String.length text + 256) in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.length line > 0 && line.[0] = '#' then begin
           (* "# TYPE name kind" / "# HELP name text" *)
           let keep =
             match String.split_on_char ' ' line with
             | "#" :: kind :: name :: _ ->
                 let key = kind ^ " " ^ name in
                 if Hashtbl.mem seen key then false
                 else begin
                   Hashtbl.add seen key ();
                   true
                 end
             | _ -> true
           in
           if keep then begin
             Buffer.add_string buf line;
             Buffer.add_char buf '\n'
           end
         end
         else begin
           (match String.index_opt line '{' with
           | Some b ->
               Buffer.add_string buf (String.sub line 0 (b + 1));
               Buffer.add_string buf (Printf.sprintf "shard=%S," shard);
               Buffer.add_string buf
                 (String.sub line (b + 1) (String.length line - b - 1))
           | None -> (
               match String.index_opt line ' ' with
               | Some sp ->
                   Buffer.add_string buf (String.sub line 0 sp);
                   Buffer.add_string buf (Printf.sprintf "{shard=%S}" shard);
                   Buffer.add_string buf
                     (String.sub line sp (String.length line - sp))
               | None -> Buffer.add_string buf line));
           Buffer.add_char buf '\n'
         end);
  Buffer.contents buf

let do_metrics state ?deadline_ms ?trace_id ~allow_partial () =
  let results =
    scatter (all_shards state) (fun i ->
        shard_call state i ?deadline_ms ?trace_id P.Metrics)
  in
  gathered state ~allow_partial results (fun ~failed answered ->
      match split_bodies answered with
      | Error e -> Error e
      | Ok oks ->
          let seen = Hashtbl.create 64 in
          let own =
            relabel ~shard:"router" ~seen
              (Metrics.to_prometheus (Metrics.snapshot ()))
          in
          let per_shard =
            List.map
              (fun (i, _, payload) ->
                let text =
                  Option.value (jstr (J.member "prometheus" payload)) ~default:""
                in
                relabel ~shard:(string_of_int i) ~seen text)
              oks
          in
          Ok
            (J.Obj
               ([ ("prometheus", J.Str (String.concat "" (own :: per_shard))) ]
               @ partial_fields state failed)))

let do_shutdown state ?deadline_ms ?trace_id () =
  ignore
    (scatter (all_shards state) (fun i ->
         shard_call state i ?deadline_ms ?trace_id P.Shutdown));
  Mutex.lock state.lock;
  state.stopping <- true;
  Mutex.unlock state.lock;
  Ok (J.Obj [ ("stopping", J.Bool true) ])

let dispatch state (env : P.envelope) ~trace_id =
  let deadline_ms = env.P.deadline_ms in
  let allow_partial = env.P.allow_partial in
  match env.P.request with
  | P.Ping -> Ok (J.Obj [ ("pong", J.Bool true) ])
  | P.Insert { collection; xml } ->
      do_insert state ?deadline_ms ~trace_id ~collection ~xml ()
  | P.Query { collection; tql; mode; cache } ->
      do_query state ?deadline_ms ~trace_id ~allow_partial ~collection ~tql
        ~mode ~cache ()
  | P.Join { left; right; tql; mode } ->
      do_join state ?deadline_ms ~trace_id ~allow_partial ~left ~right ~tql
        ~mode ()
  | P.Explain { collection; tql; mode } ->
      do_explain state ?deadline_ms ~trace_id ~collection ~tql ~mode ()
  | P.Stats -> do_stats ()
  | P.Metrics -> do_metrics state ?deadline_ms ~trace_id ~allow_partial ()
  | P.Shutdown -> do_shutdown state ?deadline_ms ~trace_id ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)

let stopped state =
  Mutex.lock state.lock;
  let s = state.stopping in
  Mutex.unlock state.lock;
  s

(* Requests are handled inline on the reader thread: the router is
   I/O-bound (its work is fanning out and merging), and the per-shard
   scatter already runs on its own threads. Responses therefore come
   back in request order on each connection. *)
let handle_conn state fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let r = Wire.reader ic in
  let send resp =
    match
      Wire.write (Wire.codec r) oc (P.response_to_json resp);
      flush oc
    with
    | () -> ()
    | exception Sys_error _ -> ()
  in
  let handle v =
    match P.request_of_json v with
    | Error e ->
        Metrics.incr (m_errors (P.code_name e.P.code));
        send (P.response (Error e))
    | Ok env ->
        let trace_id =
          match env.P.trace_id with Some t -> t | None -> Trace.generate ()
        in
        let op = P.op_name env.P.request in
        Metrics.incr (m_requests op);
        let t0 = Unix.gettimeofday () in
        let body = dispatch state env ~trace_id in
        let elapsed = Unix.gettimeofday () -. t0 in
        Metrics.observe (h_seconds op) elapsed;
        (match body with
        | Error e -> Metrics.incr (m_errors (P.code_name e.P.code))
        | Ok _ -> ());
        send
          (P.response ?id:env.P.id ~trace_id ~server_ms:(elapsed *. 1000.) body)
  in
  let rec loop () =
    match Wire.read r with
    | Wire.Eof -> ()
    | Wire.Msg v ->
        handle v;
        if not (stopped state) then loop ()
    | Wire.Corrupt e ->
        Metrics.incr (m_errors (P.code_name e.P.code));
        send (P.response (Error e));
        loop ()
    | Wire.Broken e ->
        Metrics.incr (m_errors (P.code_name e.P.code));
        send (P.response (Error e))
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock state.lock;
      state.conns <- List.filter (fun c -> c <> fd) state.conns;
      Mutex.unlock state.lock;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    loop

let run ?(ready = fun (_ : string) -> ()) config =
  match Transport.listen config.listen with
  | Error msg -> Error msg
  | Ok (listen_fd, resolved) ->
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let state =
        {
          config;
          pools =
            Array.init (Shard_map.n config.map) (fun i ->
                {
                  p_addr = Shard_map.addr config.map i;
                  p_lock = Mutex.create ();
                  p_idle = [];
                });
          ins_lock = Mutex.create ();
          seqs = Hashtbl.create 16;
          lock = Mutex.create ();
          stopping = false;
          conns = [];
          threads = [];
        }
      in
      ready resolved;
      let rec accept_loop () =
        if not (stopped state) then begin
          (match Unix.select [ listen_fd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
              match Unix.accept listen_fd with
              | exception Unix.Unix_error (_, _, _) -> ()
              | fd, _ ->
                  Mutex.lock state.lock;
                  state.conns <- fd :: state.conns;
                  state.threads <-
                    Thread.create (fun () -> handle_conn state fd) ()
                    :: state.threads;
                  Mutex.unlock state.lock));
          accept_loop ()
        end
      in
      accept_loop ();
      Unix.close listen_fd;
      Transport.unlisten config.listen;
      Mutex.lock state.lock;
      let doomed = state.conns in
      state.conns <- [];
      let threads = state.threads in
      state.threads <- [];
      Mutex.unlock state.lock;
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error (_, _, _) -> ())
        doomed;
      List.iter Thread.join threads;
      drain_pools state;
      Ok ()
