type t = { shards : string array; replicated : string list }

let make ~shards ~replicated =
  if shards = [] then Error "a shard map needs at least one shard"
  else
    let rec check = function
      | [] -> Ok { shards = Array.of_list shards; replicated }
      | a :: rest -> (
          match Toss_server.Transport.parse a with
          | Ok _ -> check rest
          | Error msg -> Error (Printf.sprintf "shard %S: %s" a msg))
    in
    check shards

let n t = Array.length t.shards
let addr t i = t.shards.(i)
let addrs t = Array.to_list t.shards
let replicated t collection = List.mem collection t.replicated

let splitmix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let owner t ~collection ~seq =
  (* FNV-1a over the name, then a splitmix64 finalizer mixing in the
     sequence number — cheap, stable, and well-spread even for doc
     sequences 0,1,2,… of a single collection. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    collection;
  let z = splitmix64 (Int64.add !h (Int64.of_int seq)) in
  Int64.to_int
    (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int (n t)))

let shadow_prefix = ".vocab."
let shadow collection = shadow_prefix ^ collection

let is_shadow name =
  String.length name >= String.length shadow_prefix
  && String.sub name 0 (String.length shadow_prefix) = shadow_prefix
