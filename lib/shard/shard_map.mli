(** The router's static shard map: which shard owns which document.

    A map is a fixed, ordered list of shard addresses plus the set of
    {e replicated} collection names. Collections not in that set are
    {e partitioned}: each inserted document lands on exactly one shard
    ({!owner}, a hash of the collection name and the router-assigned
    document sequence number), and queries fan out to every shard and
    merge. Replicated collections store every document on every shard;
    queries route to any single shard, and they make joins against
    partitioned collections exact (see {!Router}).

    {2 Vocabulary shadows}

    TOSS similarity semantics are corpus-sensitive: the session builds
    one similarity-enhanced ontology (SEO) over the vocabulary of {e
    all} documents, and a string's cluster assignment depends on what
    other strings exist. Partitioning naively would give each shard a
    different SEO and make merged answers diverge from a single
    server's. The router therefore mirrors every partitioned insert to
    the non-owner shards under the {!shadow} name [".vocab.C"] — the
    document feeds every shard's ontology but never matches a query
    against [C] (patterns match within one collection). Every shard
    thus holds the full vocabulary, its SEO equals the unsharded
    server's, and per-shard answers merge into exactly the unsharded
    answer. Shadow names are reserved: the router rejects client
    requests that name them ({!is_shadow}). *)

type t

val make :
  shards:string list -> replicated:string list -> (t, string) result
(** Validates that there is at least one shard and that every address
    parses ({!Toss_server.Transport.parse} syntax: [tcp:HOST:PORT],
    [unix:PATH], or a bare socket path). *)

val n : t -> int
(** Number of shards. *)

val addr : t -> int -> string
(** Address of shard [i] (0-based, in [make]'s order). *)

val addrs : t -> string list

val replicated : t -> string -> bool
(** Whether [collection] is replicated on every shard. *)

val owner : t -> collection:string -> seq:int -> int
(** The shard owning document number [seq] of a partitioned
    collection: a splitmix64 finalizer over an FNV-1a hash of the
    collection name mixed with [seq], mod {!n}. Deterministic, so a
    restarted router with the same map and counters routes
    identically. *)

val shadow : string -> string
(** [shadow "C"] is [".vocab.C"] — the name non-owner shards store a
    partitioned document under so their ontology sees its vocabulary. *)

val is_shadow : string -> bool
(** Whether a collection name is in the reserved shadow namespace. *)
