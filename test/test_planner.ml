(* Planner equivalence and unit tests.

   The planner must never change answers, only the work done to produce
   them. The equivalence suite runs a generated workload (50+
   query/mode combinations over the Section 6 corpus) through every
   config in {compile on, off} x {planner on, off} x {use_index on, off}
   and requires identical result trees (same list, same order) and
   identical embedding counts — in particular, the compiled single-pass
   matcher must agree exactly with the interpreted scan/prune/embed
   pipeline. Joins get a fourth axis (sim-pair on/off). Unit tests pin
   the selectivity estimator, the most-selective-first scan ordering,
   and the hash/sim-pair/nested-loop pairing choice (including the
   tiny-build-side fallback). *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Pattern = Toss_tax.Pattern
module Condition = Toss_tax.Condition
module Collection = Toss_store.Collection
module Xpath_parser = Toss_store.Xpath_parser
module Span = Toss_obs.Span
module Seo = Toss_core.Seo
module Executor = Toss_core.Executor
module Planner = Toss_core.Planner
module Plan = Toss_core.Plan
module Rewrite = Toss_core.Rewrite
module Corpus = Toss_data.Corpus
module Dblp_gen = Toss_data.Dblp_gen
module Sigmod_gen = Toss_data.Sigmod_gen
module Workload = Toss_data.Workload

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let corpus = Corpus.generate ~seed:11 ~n_papers:80 ()
let dblp = Dblp_gen.render ~seed:11 corpus
let sigmod = Sigmod_gen.render ~seed:11 corpus

(* One big document (the DBLP rendering) and one genuinely multi-document
   collection (one SIGMOD proceedings page per document), so candidate-doc
   pruning has documents to drop. *)
let dblp_coll =
  let c = Collection.create "dblp" in
  ignore (Collection.add_document c dblp.Dblp_gen.tree);
  Collection.snapshot c

let sigmod_coll =
  let c = Collection.create "sigmod" in
  List.iter (fun t -> ignore (Collection.add_document c t)) sigmod.Sigmod_gen.trees;
  Collection.snapshot c

let seo =
  let docs =
    Doc.of_tree dblp.Dblp_gen.tree
    :: List.map Doc.of_tree sigmod.Sigmod_gen.trees
  in
  match Seo.of_documents ~metric:Workload.experiment_metric ~eps:2.0 docs with
  | Ok seo -> seo
  | Error msg -> failwith msg

let configs =
  [
    (true, true, true); (true, true, false); (true, false, true);
    (true, false, false); (false, true, true); (false, true, false);
    (false, false, true); (false, false, false);
  ]

(* Run one selection under every config; all eight must agree exactly. *)
let check_select_equivalent ~what coll mode ~pattern ~sl =
  let reference = ref None in
  List.iter
    (fun (compile, planner, use_index) ->
      let results, stats =
        Executor.select ~mode ~compile ~planner ~use_index seo coll ~pattern ~sl
      in
      let tag =
        Printf.sprintf "%s compile=%b planner=%b index=%b" what compile planner
          use_index
      in
      match !reference with
      | None -> reference := Some (results, stats.Executor.n_embeddings)
      | Some (r0, e0) ->
          checkb (tag ^ ": same results") true (results = r0);
          checki (tag ^ ": same embeddings") e0 stats.Executor.n_embeddings)
    configs

(* Joins add a fourth axis: the sim-pair operator on/off. Every
   (compile, planner, index, simjoin) combination must return the same
   witness trees in the same order — in particular the signature-indexed
   pairing must agree witness-for-witness with the nested loop it
   replaces. *)
let check_join_equivalent ~what ~pattern ~sl =
  let reference = ref None in
  List.iter
    (fun (compile, planner, use_index) ->
      List.iter
        (fun simjoin ->
          let results, stats =
            Executor.join ~compile ~planner ~use_index ~simjoin seo dblp_coll
              sigmod_coll ~pattern ~sl
          in
          let tag =
            Printf.sprintf "%s compile=%b planner=%b index=%b simjoin=%b" what
              compile planner use_index simjoin
          in
          match !reference with
          | None -> reference := Some (results, stats.Executor.n_embeddings)
          | Some (r0, e0) ->
              checkb (tag ^ ": same results") true (results = r0);
              checki (tag ^ ": same embeddings") e0 stats.Executor.n_embeddings)
        [ true; false ])
    configs

(* ------------------- equivalence: selections ---------------------- *)

(* 25 workload queries x 2 modes = 50 query/mode combinations, each run
   under all four configs. *)
let test_selection_equivalence () =
  let queries = Workload.selection_queries ~n:25 corpus in
  checki "workload size" 25 (List.length queries);
  List.iter
    (fun (q : Workload.query) ->
      List.iter
        (fun mode ->
          check_select_equivalent
            ~what:(Printf.sprintf "q%d" q.Workload.query_id)
            dblp_coll mode ~pattern:q.Workload.pattern ~sl:q.Workload.sl)
        [ Executor.Tax; Executor.Toss ])
    queries

(* The same workload against the multi-document SIGMOD collection: the
   patterns mostly miss there, so pruning drops documents wholesale and
   must still agree with the unpruned plans. *)
let test_selection_equivalence_multidoc () =
  let queries = Workload.selection_queries ~n:8 corpus in
  List.iter
    (fun (q : Workload.query) ->
      check_select_equivalent
        ~what:(Printf.sprintf "sigmod q%d" q.Workload.query_id)
        sigmod_coll Executor.Toss ~pattern:q.Workload.pattern ~sl:q.Workload.sl)
    queries;
  let pattern, sl = Workload.scalability_selection () in
  List.iter
    (fun coll ->
      check_select_equivalent ~what:"scalability" coll Executor.Toss ~pattern ~sl)
    [ dblp_coll; sigmod_coll ]

(* A query with actual SIGMOD matches, so multi-document pruning keeps a
   non-trivial subset. *)
let test_sigmod_hits_equivalence () =
  let open Pattern in
  let pattern =
    v
      (node 1 [ pc (leaf 2) ])
      (Condition.conj
         [
           Condition.tag_eq 1 "article";
           Condition.tag_eq 2 "initPage";
           Condition.Cmp (Condition.Content 2, Condition.Le, Condition.Str "60");
         ])
  in
  check_select_equivalent ~what:"articles by page" sigmod_coll Executor.Toss
    ~pattern ~sl:[];
  (* The interpreted planner trace carries a prune span; the naive plan
     has none, and the compiled matcher replaces both with match spans. *)
  let _, stats = Executor.select ~compile:false seo sigmod_coll ~pattern ~sl:[] in
  checkb "planner trace has a prune span" true
    (Span.find stats.Executor.trace "prune" <> None);
  let _, stats =
    Executor.select ~compile:false ~planner:false seo sigmod_coll ~pattern ~sl:[]
  in
  checkb "naive trace has no prune span" true
    (Span.find stats.Executor.trace "prune" = None);
  let _, stats = Executor.select seo sigmod_coll ~pattern ~sl:[] in
  checkb "compiled trace has no prune span" true
    (Span.find stats.Executor.trace "prune" = None);
  checkb "compiled trace has a match span" true
    (Span.find stats.Executor.trace "match" <> None)

(* ---------------------- equivalence: joins ------------------------ *)

let equi_join_pattern () =
  let open Pattern in
  let left = node 1 [ pc (leaf 2) ] in
  let right = node 3 [ pc (leaf 4) ] in
  let root = node 0 [ ad left; ad right ] in
  let condition =
    Condition.conj
      [
        Condition.tag_eq 0 Toss_tax.Algebra.prod_root_tag;
        Condition.tag_eq 1 "inproceedings";
        Condition.tag_eq 2 "year";
        Condition.tag_eq 3 "proceedings";
        Condition.tag_eq 4 "confYear";
        Condition.Cmp (Condition.Content 2, Condition.Eq, Condition.Content 4);
      ]
  in
  (v root condition, [ 1; 3 ])

let test_join_equivalence_similarity () =
  (* Figure 16(b): a ~ cross-condition — under the planner this lowers
     to the signature-indexed sim-pair operator, whose answers must
     match the nested-loop reference (the simjoin=false axis) exactly. *)
  let pattern, sl = Workload.join_query () in
  check_join_equivalent ~what:"sim join" ~pattern ~sl

let test_join_equivalence_hash () =
  let pattern, sl = equi_join_pattern () in
  (* The hash path must agree with the nested loop on a join that really
     produces pairs — an empty answer would make this vacuous. *)
  let results, _ = Executor.join seo dblp_coll sigmod_coll ~pattern ~sl in
  checkb "equi-join has matches" true (Workload.result_key_pairs results <> []);
  check_join_equivalent ~what:"equi join" ~pattern ~sl

(* ---------------------- unit: selectivity ------------------------- *)

let small_coll =
  let c = Collection.create "small" in
  (match
     Collection.add_xml c "<r><a>x</a><a>y</a><b>x</b><c><a>x</a></c></r>"
   with
  | Ok _ -> ()
  | Error _ -> failwith "bad xml");
  c

let est ?value_index q =
  Collection.estimate_rows ?value_index small_coll (Xpath_parser.parse_exn q)

let test_estimate_rows () =
  checki "tag count" 3 (est "//a");
  checki "unknown tag" 0 (est "//zzz");
  checki "eq refinement" 2 (est "//a[.='x']");
  checki "or sums" 3 (est "//a[.='x' or .='y']");
  checki "and takes min" 1 (est "//a[.='x' and .='y']");
  checki "union of paths sums" 4 (est "//a|//b");
  checki "no refinement without value index" 3 (est ~value_index:false "//a[.='x']");
  checki "capped at collection size" 6 (est "//*");
  checki "tag stats" 3 (Collection.tag_count small_coll "a");
  checki "docs with tag" 1 (Collection.docs_with_tag small_coll "a");
  checki "eq count" 2 (Collection.eq_count small_coll ~tag:"a" ~value:"x")

(* ---------------------- unit: scan ordering ----------------------- *)

let test_scan_ordering () =
  let queries = Workload.selection_queries ~n:1 corpus in
  let q = List.hd queries in
  (* Scan shaping is an interpreted-pipeline concern: the compiled plan
     (the default) issues no scans at all. *)
  let compiled =
    Planner.plan_select seo dblp_coll ~pattern:q.Workload.pattern
      ~sl:q.Workload.sl
  in
  checkb "compiled plan has no scans" true (Plan.scans compiled = []);
  let plan =
    Planner.plan_select ~compile:false seo dblp_coll ~pattern:q.Workload.pattern
      ~sl:q.Workload.sl
  in
  let scans = Plan.scans plan in
  let ests = List.map (fun s -> Option.get s.Plan.est_rows) scans in
  checkb "estimates ascend" true (List.sort compare ests = ests);
  (* The naive plan keeps rewrite (pattern preorder) order and carries no
     estimates. *)
  let naive =
    Planner.plan_select ~compile:false ~optimize:false seo dblp_coll
      ~pattern:q.Workload.pattern ~sl:q.Workload.sl
  in
  checkb "naive order is preorder" true
    (List.map (fun s -> s.Plan.scan_label) (Plan.scans naive)
    = Pattern.labels q.Workload.pattern);
  checkb "naive has no estimates" true
    (List.for_all (fun s -> s.Plan.est_rows = None) (Plan.scans naive))

(* ------------------- unit: pairing strategy ----------------------- *)

let is_hash plan =
  match plan.Plan.root with
  | Plan.Dedup (Plan.Hash_pair _) -> true
  | _ -> false

let is_nested plan =
  match plan.Plan.root with
  | Plan.Dedup (Plan.Nested_loop_pair _) -> true
  | _ -> false

let is_sim plan =
  match plan.Plan.root with
  | Plan.Dedup (Plan.Sim_pair _) -> true
  | _ -> false

let test_pairing_choice () =
  let eq_pattern, eq_sl = equi_join_pattern () in
  let sim_pattern, sim_sl = Workload.join_query () in
  let plan_of ?optimize ?simjoin pattern sl =
    Planner.plan_join ?optimize ?simjoin seo dblp_coll sigmod_coll ~pattern ~sl
  in
  checkb "equality lowers to hash" true (is_hash (plan_of eq_pattern eq_sl));
  checkb "similarity lowers to sim-pair" true
    (is_sim (plan_of sim_pattern sim_sl));
  checkb "no sim-pair with --no-simjoin" true
    (is_nested (plan_of ~simjoin:false sim_pattern sim_sl));
  checkb "no hash without the planner" true
    (is_nested (plan_of ~optimize:false eq_pattern eq_sl));
  checkb "no sim-pair without the planner" true
    (is_nested (plan_of ~optimize:false sim_pattern sim_sl));
  (* A 1-document build side is below the planner's threshold: the
     quadratic term is already gone, so signature construction would be
     pure overhead. *)
  let tiny_coll =
    let c = Collection.create "tiny" in
    (match Collection.add_xml c "<proceedings><confYear>1999</confYear></proceedings>" with
    | Ok _ -> ()
    | Error _ -> failwith "bad xml");
    Collection.snapshot c
  in
  checkb "tiny build side falls back to nested loop" true
    (is_nested
       (Planner.plan_join seo dblp_coll tiny_coll ~pattern:sim_pattern
          ~sl:sim_sl));
  (* Key orientation is normalized: writing the atom right-to-left must
     still be recognized. *)
  let open Pattern in
  let flipped =
    v
      (node 0 [ ad (node 1 [ pc (leaf 2) ]); ad (node 3 [ pc (leaf 4) ]) ])
      (Condition.conj
         [
           Condition.tag_eq 0 Toss_tax.Algebra.prod_root_tag;
           Condition.tag_eq 1 "inproceedings";
           Condition.tag_eq 2 "year";
           Condition.tag_eq 3 "proceedings";
           Condition.tag_eq 4 "confYear";
           Condition.Cmp (Condition.Content 4, Condition.Eq, Condition.Content 2);
         ])
  in
  checkb "flipped equality still hashes" true
    (is_hash (plan_of flipped [ 1; 3 ]));
  match (plan_of flipped [ 1; 3 ]).Plan.root with
  | Plan.Dedup (Plan.Hash_pair { keys = [ (l, r) ]; _ }) ->
      checkb "left key term is the left side's" true (l = Condition.Content 2);
      checkb "right key term is the right side's" true (r = Condition.Content 4)
  | _ -> Alcotest.fail "expected a single-key hash pair"

(* --------------------- unit: rewrite cache ------------------------ *)

let test_rewrite_cache () =
  let direct = Seo.isa_below seo "database conference" in
  let cached = Rewrite.isa_below seo "database conference" in
  checkb "cached expansion matches Seo" true (cached = direct);
  checkb "second call stable" true
    (Rewrite.isa_below seo "database conference" = direct);
  checkb "similar terms cached too" true
    (Rewrite.similar_terms seo "VLDB" = Seo.similar_terms seo "VLDB")

(* The expansion cache is keyed on the physical SEO value. Swapping the
   SEO — or just its ε, which always means building a new SEO since the
   type is immutable — must never serve the previous ontology's
   expansions. Regression test: interleave two SEOs that give different
   answers for the same constants and require every cached answer to
   match a fresh uncached walk. *)
let test_rewrite_cache_invalidation () =
  let module Hierarchy = Toss_hierarchy.Hierarchy in
  let module Ontology = Toss_ontology.Ontology in
  let module Levenshtein = Toss_similarity.Levenshtein in
  let seo_a =
    Seo.create_exn ~metric:Levenshtein.metric ~eps:0.5
      (Ontology.of_list
         [ (Ontology.isa, Hierarchy.of_pairs [ ("model", "article") ]) ])
  in
  let seo_b =
    Seo.create_exn ~metric:Levenshtein.metric ~eps:1.0
      (Ontology.of_list
         [ (Ontology.isa,
            Hierarchy.of_pairs
              [ ("model", "article"); ("models", "article"); ("note", "article") ]) ])
  in
  (* The two ontologies genuinely disagree, so a stale hit is visible. *)
  checkb "fixture: ontologies disagree on isa" true
    (Seo.isa_below seo_a "article" <> Seo.isa_below seo_b "article");
  checkb "fixture: eps changes similarity" true
    (Seo.similar_terms seo_a "model" <> Seo.similar_terms seo_b "model");
  List.iter
    (fun seo ->
      checkb "isa expansion follows the live SEO" true
        (Rewrite.isa_below seo "article" = Seo.isa_below seo "article");
      checkb "similar expansion follows the live SEO" true
        (Rewrite.similar_terms seo "model" = Seo.similar_terms seo "model");
      checkb "part expansion follows the live SEO" true
        (Rewrite.part_below seo "article" = Seo.part_below seo "article"))
    [ seo_a; seo_b; seo_a; seo_b; seo_a ]

let () =
  Alcotest.run "toss_planner"
    [
      ( "equivalence",
        [
          Alcotest.test_case "selection workload (50 query/mode runs)" `Quick
            test_selection_equivalence;
          Alcotest.test_case "multi-document collection" `Quick
            test_selection_equivalence_multidoc;
          Alcotest.test_case "pruning keeps matching docs" `Quick
            test_sigmod_hits_equivalence;
          Alcotest.test_case "similarity join" `Quick
            test_join_equivalence_similarity;
          Alcotest.test_case "equi join (hash vs nested loop)" `Quick
            test_join_equivalence_hash;
        ] );
      ( "planner units",
        [
          Alcotest.test_case "selectivity estimation" `Quick test_estimate_rows;
          Alcotest.test_case "scan ordering" `Quick test_scan_ordering;
          Alcotest.test_case "pairing strategy" `Quick test_pairing_choice;
          Alcotest.test_case "rewrite expansion cache" `Quick test_rewrite_cache;
          Alcotest.test_case "cache invalidation on SEO/eps change" `Quick
            test_rewrite_cache_invalidation;
        ] );
    ]
