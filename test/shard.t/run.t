Scale-out serving end to end: two shard servers behind a scatter-gather
router, all over Unix-domain sockets here (the TCP transport and the
binary codec are covered by the server unit tests and the CI smoke job).
Socket paths must stay short, so everything lives in a fresh temp dir.

  $ D=$(mktemp -d)
  $ S1=$D/shard1.sock S2=$D/shard2.sock R=$D/router.sock

  $ toss serve --socket $S1 --db $D/db1 --domains 2 > shard1.log 2>&1 &
  $ toss serve --socket $S2 --db $D/db2 --domains 2 > shard2.log 2>&1 &
  $ P2=$!
  $ for i in $(seq 1 100); do [ -S $S1 ] && [ -S $S2 ] && break; sleep 0.1; done
  $ toss router --socket $R --shard $S1 --shard $S2 --connect-retry-ms 200 > router.log 2>&1 &
  $ for i in $(seq 1 100); do [ -S $R ] && break; sleep 0.1; done

The router speaks the same wire protocol as a single server:

  $ toss client --socket $R ping
  {"pong":true}

Inserts are hash-partitioned. Each document lands on exactly one owner
shard under the collection's name — and on every other shard under the
reserved vocabulary-shadow name, so all shards build the same
similarity ontology as one unsharded server would. The reported doc id
and version are the router's logical numbering, and the owner shard is
named:

  $ toss generate --papers 4 --seed 7 -o doc.xml
  $ for i in 1 2 3 4 5 6; do toss client --socket $R insert bib doc.xml; done
  {"collection":"bib","doc_id":0,"version":1,"shard":0}
  {"collection":"bib","doc_id":1,"version":2,"shard":1}
  {"collection":"bib","doc_id":2,"version":3,"shard":1}
  {"collection":"bib","doc_id":3,"version":4,"shard":1}
  {"collection":"bib","doc_id":4,"version":5,"shard":1}
  {"collection":"bib","doc_id":5,"version":6,"shard":1}

The durable directories make the routing visible: every document is
owned by exactly one shard ("bib"), and every shard holds all six
documents once shadows (".vocab.bib") are counted in:

  $ ls $D/db1/bib $D/db2/bib | grep -c '\.xml'
  6
  $ ls $D/db1/bib $D/db1/.vocab.bib | grep -c '\.xml'
  6
  $ ls $D/db2/bib $D/db2/.vocab.bib | grep -c '\.xml'
  6

A query fans out to every shard and merges: the version is the sum of
the shard versions (= the router's logical version), the witnesses are
the canonicalized multiset union, and the answer names each shard's
contribution. The merged cache status is "hit" only when every shard
hit:

  $ Q='MATCH #1:inproceedings(/#2:booktitle) WHERE #2.content isa "database conference" SELECT #1'
  $ toss client --socket $R query bib "$Q" | grep -o '"collection":"bib","version":6,"count":18'
  "collection":"bib","version":6,"count":18
  $ toss client --socket $R query bib "$Q" | grep -o '"cache":"hit"'
  "cache":"hit"
  $ toss client --socket $R query bib "$Q" | grep -o '"shard":[01],"addr":"[^"]*"' | sed "s#$D#DIR#"
  "shard":0,"addr":"DIR/shard1.sock"
  "shard":1,"addr":"DIR/shard2.sock"

A join of two partitioned collections over more than one shard cannot
be computed exactly by broadcast, so it is a typed refusal, not a
silently wrong answer:

  $ toss client --socket $R insert reviews doc.xml > /dev/null
  $ J='MATCH #0:pt(//#1:inproceedings(/#2:booktitle), //#3:inproceedings(/#4:booktitle)) WHERE #2.content ~ #4.content SELECT #1,#3'
  $ toss client --socket $R join bib reviews "$J"
  error query_error: join of two partitioned collections is not supported: replicate one side (--replicate bib or --replicate reviews) to make the broadcast join exact
  [1]

The merged Prometheus exposition tags every shard's samples, with the
router's own under shard="router":

  $ toss client --socket $R metrics | grep '^# TYPE router_requests_total'
  # TYPE router_requests_total counter
  $ toss client --socket $R metrics | grep -o 'shard="router"' | sort -u
  shard="router"
  $ toss client --socket $R metrics | grep -o 'shard="[01]"' | sort -u
  shard="0"
  shard="1"

The open-loop load generator drives the router like any server —
ingest through the wire, then a zipfian TQL mix at a target rate:

  $ toss loadgen --socket $R --requests 60 --qps 600 --papers 8 --concurrency 4 | grep -o '"requests":60,"ok":60,"errors":{},"transport_errors":0'
  "requests":60,"ok":60,"errors":{},"transport_errors":0

Now kill shard 2 out from under the router. A fan-out request that
needs it fails with the typed shard_unavailable error:

  $ kill -9 $P2
  $ toss client --socket $R query bib "$Q" 2>&1 | sed "s#$D#DIR#g"
  error shard_unavailable: shard 1 (DIR/shard2.sock) unreachable: cannot connect to "DIR/shard2.sock": Connection refused (send "allow_partial":true to accept a partial result)

Opting in gets the reachable shards' merged answer, stamped partial
with the failed shard named:

  $ toss client --socket $R --allow-partial query bib "$Q" | sed "s#$D#DIR#g" | grep -o '"partial":true,"failed":\["DIR/shard2.sock"\]'
  "partial":true,"failed":["DIR/shard2.sock"]

Inserts are never partial — a half-applied write would silently
diverge the shards:

  $ toss client --socket $R --allow-partial insert bib doc.xml 2>&1 | sed "s#$D#DIR#g" | sed 's/unreachable: .*/unreachable: .../'
  error shard_unavailable: shard 1 (DIR/shard2.sock) unreachable: ...

Shutdown cascades: stopping the router stops the surviving shards too:

  $ toss client --socket $R shutdown
  {"stopping":true}
  $ wait
  $ tail -1 router.log
  toss router: stopped
  $ tail -1 shard1.log
  toss serve: stopped
  $ grep -c listening router.log
  1

  $ rm -rf $D
