(* Tests for the XML tree model, parser, printer and type inference. *)

module Tree = Toss_xml.Tree
module Doc = Tree.Doc
module Parser = Toss_xml.Parser
module Printer = Toss_xml.Printer
module Value_type = Toss_xml.Value_type

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_il = Alcotest.(check (list int))

let parse = Parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Tree constructors and folds                                          *)
(* ------------------------------------------------------------------ *)

let sample =
  Tree.element "inproceedings"
    [
      Tree.leaf "author" "Jeff Ullman";
      Tree.leaf "title" "Principles";
      Tree.element "venue" [ Tree.leaf "name" "PODS" ];
    ]

let test_tree_basics () =
  checks "string value concatenates" "Jeff UllmanPrinciplesPODS" (Tree.string_value sample);
  checki "size counts text nodes" 8 (Tree.size sample);
  checki "n_elements" 5 (Tree.n_elements sample);
  checkb "tag of element" true (Tree.tag sample = Some "inproceedings");
  checkb "tag of text" true (Tree.tag (Tree.text "x") = None)

let test_tree_map_fold () =
  let upper = Tree.map_tags String.uppercase_ascii sample in
  checkb "mapped tag" true (Tree.tag upper = Some "INPROCEEDINGS");
  let count = Tree.fold (fun n _ -> n + 1) 0 sample in
  checki "fold visits every node" (Tree.size sample) count

let test_tree_equality () =
  checkb "equal to itself" true (Tree.equal sample sample);
  checkb "order matters" false
    (Tree.equal
       (Tree.element "r" [ Tree.leaf "a" "1"; Tree.leaf "b" "2" ])
       (Tree.element "r" [ Tree.leaf "b" "2"; Tree.leaf "a" "1" ]));
  checkb "attrs matter" false
    (Tree.equal (Tree.element ~attrs:[ ("k", "v") ] "a" []) (Tree.element "a" []))

(* ------------------------------------------------------------------ *)
(* Frozen documents                                                     *)
(* ------------------------------------------------------------------ *)

let doc = Doc.of_tree sample

let test_doc_structure () =
  checki "root is 0" 0 (Doc.root doc);
  checki "five elements" 5 (Doc.size doc);
  checks "root tag" "inproceedings" (Doc.tag doc 0);
  check_il "children of root" [ 1; 2; 3 ] (Doc.children doc 0);
  checkb "parent of root" true (Doc.parent doc 0 = None);
  checkb "parent of child" true (Doc.parent doc 1 = Some 0);
  checki "depth of grandchild" 2 (Doc.depth doc 4)

let test_doc_ancestry () =
  checkb "child relation" true (Doc.is_child doc ~parent:0 ~child:1);
  checkb "not grandchild as child" false (Doc.is_child doc ~parent:0 ~child:4);
  checkb "descendant" true (Doc.is_descendant doc ~anc:0 ~desc:4);
  checkb "strict" false (Doc.is_descendant doc ~anc:3 ~desc:3);
  checkb "not reversed" false (Doc.is_descendant doc ~anc:4 ~desc:0);
  check_il "descendants of venue" [ 4 ] (Doc.descendants doc 3);
  check_il "descendants of root" [ 1; 2; 3; 4 ] (Doc.descendants doc 0)

let test_doc_content_and_tags () =
  checks "leaf content" "Jeff Ullman" (Doc.content doc 1);
  checks "inner content is string-value" "PODS" (Doc.content doc 3);
  check_il "by_tag author" [ 1 ] (Doc.by_tag doc "author");
  check_il "by_tag missing" [] (Doc.by_tag doc "zzz");
  Alcotest.(check (list string)) "tags sorted"
    [ "author"; "inproceedings"; "name"; "title"; "venue" ]
    (Doc.tags doc)

let test_doc_order () =
  checkb "document order" true (Doc.precedes doc 1 2);
  checkb "not reflexive" false (Doc.precedes doc 2 2)

let test_doc_subtree_roundtrip () =
  checkb "subtree of root rebuilds the tree" true (Tree.equal (Doc.to_tree doc) sample);
  checkb "subtree of inner node" true
    (Tree.equal (Doc.subtree doc 3) (Tree.element "venue" [ Tree.leaf "name" "PODS" ]))

let test_doc_rejects_text_root () =
  Alcotest.check_raises "text root" (Invalid_argument "Doc.of_tree: root must be an element")
    (fun () -> ignore (Doc.of_tree (Tree.text "x")))

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let t = parse "<a><b>hello</b><c/></a>" in
  checkb "structure" true
    (Tree.equal t (Tree.element "a" [ Tree.leaf "b" "hello"; Tree.element "c" [] ]))

let test_parse_attributes () =
  let t = parse {|<paper key="p1" year='1999'/>|} in
  match t with
  | Tree.Element { attrs; _ } ->
      checkb "double quoted" true (List.assoc_opt "key" attrs = Some "p1");
      checkb "single quoted" true (List.assoc_opt "year" attrs = Some "1999")
  | _ -> Alcotest.fail "expected element"

let test_parse_entities () =
  checks "predefined entities" "a<b&c>d\"e'f"
    (Tree.string_value (parse "<x>a&lt;b&amp;c&gt;d&quot;e&apos;f</x>"));
  checks "decimal reference" "A" (Tree.string_value (parse "<x>&#65;</x>"));
  checks "hex reference" "A" (Tree.string_value (parse "<x>&#x41;</x>"));
  checks "entity in attribute" "a&b"
    (match parse {|<x k="a&amp;b"/>|} with
    | Tree.Element { attrs; _ } -> List.assoc "k" attrs
    | _ -> "")

let test_parse_prolog_comments_cdata () =
  let t =
    parse
      {|<?xml version="1.0"?>
        <!-- header comment -->
        <!DOCTYPE dblp SYSTEM "dblp.dtd">
        <a><!-- inner --><b><![CDATA[x < y & z]]></b></a>|}
  in
  checks "cdata kept verbatim" "x < y & z" (Tree.string_value t)

let test_parse_whitespace_handling () =
  let t = parse "<a>\n  <b>x</b>\n</a>" in
  checkb "whitespace-only text dropped" true
    (Tree.equal t (Tree.element "a" [ Tree.leaf "b" "x" ]));
  let kept = Parser.parse_exn ~keep_whitespace:true "<a> <b>x</b></a>" in
  checki "whitespace kept on demand" 4 (Tree.size kept)

let expect_error input =
  match Parser.parse input with
  | Ok _ -> Alcotest.fail ("expected a parse error for " ^ input)
  | Error _ -> ()

let test_parse_errors () =
  expect_error "<a><b></a>";
  expect_error "<a>";
  expect_error "text only";
  expect_error "<a></a><b></b>";
  expect_error "<a>&unknown;</a>";
  expect_error "<a foo=bar></a>";
  let () =
    match Parser.parse "<a>\n<b></c></a>" with
    | Error e -> checki "line number reported" 2 e.Parser.line
    | Ok _ -> Alcotest.fail "expected mismatch error"
  in
  ()

let test_parse_fragment () =
  match Parser.parse_fragment "<a/><b>x</b>" with
  | Ok [ a; b ] ->
      checkb "first" true (Tree.equal a (Tree.element "a" []));
      checkb "second" true (Tree.equal b (Tree.leaf "b" "x"))
  | Ok _ -> Alcotest.fail "expected two roots"
  | Error e -> Alcotest.fail (Format.asprintf "%a" Parser.pp_error e)

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)
(* ------------------------------------------------------------------ *)

let test_print_escaping () =
  checks "text escaping" "<x>a&amp;b&lt;c&gt;d</x>"
    (Printer.to_string (Tree.leaf "x" "a&b<c>d"));
  checks "attr escaping" {|<x k="a&quot;b"/>|}
    (Printer.to_string (Tree.element ~attrs:[ ("k", "a\"b") ] "x" []))

let test_print_parse_roundtrip () =
  let printed = Printer.to_string sample in
  checkb "roundtrip" true (Tree.equal (parse printed) sample);
  let pretty = Printer.to_pretty_string sample in
  checkb "pretty roundtrip" true (Tree.equal (parse pretty) sample)

let test_byte_size () =
  checki "byte size matches serialization" (String.length (Printer.to_string sample))
    (Printer.byte_size sample)

(* Random trees: parse (print t) = t. *)
let tree_gen =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c"; "item"; "x1" ] in
  let text_gen = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let rec tree n =
    if n <= 0 then map2 (fun t s -> Tree.leaf t s) tag_gen text_gen
    else
      frequency
        [
          (1, map2 (fun t s -> Tree.leaf t s) tag_gen text_gen);
          ( 2,
            let* tag = tag_gen in
            let* kids = list_size (int_range 0 3) (tree (n - 1)) in
            return (Tree.element tag kids) );
        ]
  in
  tree 3

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"parse inverts print on generated trees" ~count:200 tree_gen
    (fun t -> Tree.equal (parse (Printer.to_string t)) t)

(* A sharper round-trip property: text and attribute values draw from
   the full escaping-relevant alphabet (markup characters, both quote
   kinds, entity ampersands, tabs, newlines, "]]>"), elements may carry
   attributes, and whitespace-only text nodes are allowed. Reparsing
   with [keep_whitespace:true] must reproduce the tree exactly. The
   generator keeps trees in parse normal form — no empty and no adjacent
   text nodes, since serialization concatenates those irrecoverably. *)
let nasty_tree_gen =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "item"; "x1" ] in
  let nasty_char =
    oneofl [ '&'; '<'; '>'; '"'; '\''; ']'; ' '; '\t'; '\n'; 'a'; 'z'; '0' ]
  in
  let text_gen = string_size ~gen:nasty_char (int_range 1 8) in
  let attrs_gen =
    let* n = int_range 0 2 in
    let* vals = list_repeat n text_gen in
    return (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vals)
  in
  let no_adjacent_text children =
    let rec ok = function
      | Tree.Text _ :: Tree.Text _ :: _ -> false
      | _ :: rest -> ok rest
      | [] -> true
    in
    ok children
  in
  let rec tree n =
    let leaf =
      let* tag = tag_gen and* attrs = attrs_gen and* s = text_gen in
      return (Tree.Element { tag; attrs; children = [ Tree.Text s ] })
    in
    if n <= 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 2,
            let* tag = tag_gen and* attrs = attrs_gen in
            let* kids =
              list_size (int_range 0 3)
                (frequency [ (1, map (fun s -> Tree.Text s) text_gen); (2, tree (n - 1)) ])
            in
            let kids = if no_adjacent_text kids then kids else [] in
            return (Tree.Element { tag; attrs; children = kids }) );
        ]
  in
  tree 3

let prop_nasty_roundtrip =
  QCheck2.Test.make ~name:"roundtrip with escaping and whitespace edge cases"
    ~count:500 nasty_tree_gen (fun t ->
      match Parser.parse ~keep_whitespace:true (Printer.to_string t) with
      | Ok t' -> Tree.equal t' t
      | Error e -> QCheck2.Test.fail_reportf "reparse failed: %s" e.Parser.message)

let test_roundtrip_edge_cases () =
  let rt t =
    match Parser.parse ~keep_whitespace:true (Printer.to_string t) with
    | Ok t' -> Tree.equal t' t
    | Error _ -> false
  in
  checkb "markup characters in text" true
    (rt (Tree.leaf "a" "x < y && z > \"w\" 'v'"));
  checkb "cdata-terminator in text" true (rt (Tree.leaf "a" "]]>"));
  checkb "both quote kinds in attributes" true
    (rt (Tree.Element
           { tag = "a"; attrs = [ ("k", {|say "hi" & 'bye' <now>|}) ]; children = [] }));
  checkb "whitespace-only text survives keep_whitespace" true
    (rt (Tree.element "a" [ Tree.element "b" []; Tree.Text "  \n\t "; Tree.element "c" [] ]));
  checkb "attribute with newline and tab" true
    (rt (Tree.Element { tag = "a"; attrs = [ ("k", "l1\nl2\tend") ]; children = [] }));
  (* Character references: astral-plane scalars are fine, surrogate code
     points are a parse error — not a crash. *)
  checkb "astral char-ref parses" true
    (match Parser.parse "<a>&#x1F600;</a>" with Ok _ -> true | Error _ -> false);
  checkb "surrogate char-ref is a clean error" true
    (match Parser.parse "<a>&#xD800;</a>" with Ok _ -> false | Error _ -> true);
  checkb "out-of-range char-ref is a clean error" true
    (match Parser.parse "<a>&#x110000;</a>" with Ok _ -> false | Error _ -> true)

let prop_doc_preorder_invariants =
  QCheck2.Test.make ~name:"preorder ids are consistent with ancestry" ~count:100 tree_gen
    (fun t ->
      let d = Doc.of_tree t in
      List.for_all
        (fun n ->
          List.for_all
            (fun c -> Doc.parent d c = Some n && Doc.is_descendant d ~anc:n ~desc:c)
            (Doc.children d n))
        (Doc.nodes d))

(* ------------------------------------------------------------------ *)
(* Type inference                                                       *)
(* ------------------------------------------------------------------ *)

let vt = Alcotest.testable Value_type.pp Value_type.equal

let test_type_inference () =
  Alcotest.check vt "year" Value_type.Year (Value_type.infer "1999");
  Alcotest.check vt "int" Value_type.Int (Value_type.infer "42");
  Alcotest.check vt "big int not year" Value_type.Int (Value_type.infer "30000");
  Alcotest.check vt "float" Value_type.Float (Value_type.infer "3.14");
  Alcotest.check vt "string" Value_type.String (Value_type.infer "SIGMOD");
  Alcotest.check vt "trimmed" Value_type.Year (Value_type.infer " 1999 ");
  checkb "of_name inverts name" true
    (List.for_all
       (fun t -> Value_type.of_name (Value_type.name t) = Some t)
       [ Value_type.Int; Value_type.Float; Value_type.Year; Value_type.String ]);
  checkb "unknown name" true (Value_type.of_name "blob" = None)

(* ------------------------------------------------------------------ *)
(* SAX                                                                  *)
(* ------------------------------------------------------------------ *)

module Sax = Toss_xml.Sax

let test_sax_events () =
  match Sax.events "<a k=\"v\"><b>hi</b><c/></a>" with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Parser.pp_error e)
  | Ok events ->
      checkb "event sequence" true
        (events
        = [
            Sax.Start_element { tag = "a"; attrs = [ ("k", "v") ] };
            Sax.Start_element { tag = "b"; attrs = [] };
            Sax.Text "hi";
            Sax.End_element "b";
            Sax.Start_element { tag = "c"; attrs = [] };
            Sax.End_element "c";
            Sax.End_element "a";
          ])

let test_sax_entities () =
  match Sax.events "<a>x&amp;y<![CDATA[ <raw> ]]></a>" with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Parser.pp_error e)
  | Ok events ->
      let texts =
        List.filter_map (function Sax.Text s -> Some s | _ -> None) events
      in
      checkb "entity decoded and cdata merged" true (texts = [ "x&y <raw> " ])

let dblp_like =
  {|<dblp>
      <inproceedings key="p1"><title>A</title></inproceedings>
      <article key="p2"><title>B</title></article>
      <inproceedings key="p3"><title>C</title></inproceedings>
    </dblp>|}

let test_sax_trees_where () =
  match Sax.trees_where (fun tag -> tag = "inproceedings") dblp_like with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Parser.pp_error e)
  | Ok trees ->
      checki "two matches" 2 (List.length trees);
      checkb "first rebuilt" true
        (Tree.equal (List.hd trees)
           (Tree.element ~attrs:[ ("key", "p1") ] "inproceedings"
              [ Tree.leaf "title" "A" ]))

let test_sax_limit () =
  match Sax.trees_where ~limit:1 (fun tag -> tag = "inproceedings") dblp_like with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Parser.pp_error e)
  | Ok trees -> checki "stops at the limit" 1 (List.length trees)

let test_sax_count () =
  checkb "counts without building" true
    (Sax.count (fun t -> t = "title") dblp_like = Ok 3);
  checkb "zero" true (Sax.count (fun t -> t = "zzz") dblp_like = Ok 0)

let test_sax_errors () =
  (match Sax.events "<a><b></a>" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched tags accepted");
  match Sax.count (fun _ -> true) "no xml here" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let prop_sax_rebuilds_parser_trees =
  QCheck2.Test.make ~name:"trees_where on the root tag rebuilds the parsed tree"
    ~count:100 tree_gen (fun t ->
      let printed = Printer.to_string t in
      match Tree.tag t with
      | None -> true
      | Some root_tag -> (
          match Sax.trees_where (fun tag -> tag = root_tag) printed with
          | Ok [ rebuilt ] -> Tree.equal rebuilt (parse printed)
          | _ -> false))

let () =
  Alcotest.run "toss_xml"
    [
      ( "tree",
        [
          Alcotest.test_case "basics" `Quick test_tree_basics;
          Alcotest.test_case "map and fold" `Quick test_tree_map_fold;
          Alcotest.test_case "structural equality" `Quick test_tree_equality;
        ] );
      ( "doc",
        [
          Alcotest.test_case "structure" `Quick test_doc_structure;
          Alcotest.test_case "ancestry" `Quick test_doc_ancestry;
          Alcotest.test_case "content and tags" `Quick test_doc_content_and_tags;
          Alcotest.test_case "document order" `Quick test_doc_order;
          Alcotest.test_case "subtree roundtrip" `Quick test_doc_subtree_roundtrip;
          Alcotest.test_case "rejects text root" `Quick test_doc_rejects_text_root;
          QCheck_alcotest.to_alcotest prop_doc_preorder_invariants;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple document" `Quick test_parse_simple;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "prolog, comments, cdata" `Quick
            test_parse_prolog_comments_cdata;
          Alcotest.test_case "whitespace" `Quick test_parse_whitespace_handling;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "fragments" `Quick test_parse_fragment;
        ] );
      ( "printer",
        [
          Alcotest.test_case "escaping" `Quick test_print_escaping;
          Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "roundtrip edge cases" `Quick test_roundtrip_edge_cases;
          QCheck_alcotest.to_alcotest prop_nasty_roundtrip;
          Alcotest.test_case "byte size" `Quick test_byte_size;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
        ] );
      ("types", [ Alcotest.test_case "inference" `Quick test_type_inference ]);
      ( "sax",
        [
          Alcotest.test_case "event stream" `Quick test_sax_events;
          Alcotest.test_case "entities and cdata in events" `Quick test_sax_entities;
          Alcotest.test_case "trees_where" `Quick test_sax_trees_where;
          Alcotest.test_case "trees_where limit" `Quick test_sax_limit;
          Alcotest.test_case "count" `Quick test_sax_count;
          Alcotest.test_case "errors" `Quick test_sax_errors;
          QCheck_alcotest.to_alcotest prop_sax_rebuilds_parser_trees;
        ] );
    ]
